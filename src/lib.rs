//! # kwt-tiny
//!
//! Umbrella crate for the KWT-Tiny reproduction
//! (*KWT-Tiny: RISC-V Accelerated, Embedded Keyword Spotting Transformer*,
//! SOCC 2024). Re-exports every subsystem so examples and integration tests
//! can reach the whole pipeline through one dependency:
//!
//! * [`tensor`] — float + quantised kernels (the paper's Table VI library)
//! * [`audio`] — MFCC front end (batch + streaming)
//! * [`engine`] — unified inference engine: the float, quantised and
//!   RV32-simulated pipelines behind one `classify` API with zero-alloc
//!   scratch arenas, batching and streaming KWS
//! * [`dataset`] — synthetic Google-Speech-Commands substitute
//! * [`model`] — the KWT architecture (KWT-1 and KWT-Tiny presets)
//! * [`train`] — from-scratch training (manual backprop, Adam)
//! * [`quant`] — power-of-two post-training quantisation, Q8.24, LUTs
//! * [`rvasm`] — RV32 assembler-as-a-library
//! * [`rv32`] — RV32IMC simulator with the custom-1 extension
//! * [`baremetal`] — generated bare-metal inference images
//! * [`hw`] — FPGA area model (Table VIII substitute)

pub use kwt_audio as audio;
pub use kwt_baremetal as baremetal;
pub use kwt_dataset as dataset;
pub use kwt_engine as engine;
pub use kwt_hw as hw;
pub use kwt_model as model;
pub use kwt_quant as quant;
pub use kwt_rv32 as rv32;
pub use kwt_rvasm as rvasm;
pub use kwt_tensor as tensor;
pub use kwt_train as train;
