//! Figs. 3-5: cycle attribution of one float inference by operation,
//! and within the attention / MLP blocks.
//!
//! ```text
//! cargo run --release --example profile_breakdown
//! ```

use kwt_tiny::baremetal::regions::{aggregate_by_op, filter_block};
use kwt_tiny::baremetal::InferenceImage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = kwt_bench::ExpContext::default();
    let (params, test) = ctx.trained_tiny();
    let image = InferenceImage::build_float(&params)?;
    let (_, run, report) = image.run(&test.x[0])?;

    println!("one float inference: {} cycles\n", run.cycles);
    println!("Fig. 3 — whole inference by operation:");
    for (op, cycles) in aggregate_by_op(&report.regions) {
        println!(
            "  {op:<12} {cycles:>10}  {:>5.1}%",
            100.0 * cycles as f64 / run.cycles as f64
        );
    }
    for (fig, block) in [("Fig. 4 — self-attention", "attn"), ("Fig. 5 — MLP", "mlp")] {
        let entries = filter_block(&report.regions, block);
        let total: u64 = entries.iter().map(|(_, c)| c).sum();
        println!("\n{fig} ({total} cycles):");
        for (op, cycles) in entries {
            println!(
                "  {op:<12} {cycles:>10}  {:>5.1}%",
                100.0 * cycles as f64 / total.max(1) as f64
            );
        }
    }
    println!("\nfull region table:\n{}", report.to_table());
    Ok(())
}
