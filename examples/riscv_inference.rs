//! Builds the three bare-metal images (float / quantised / accelerated),
//! serves each through the unified engine's RV32 backend — a persistent
//! simulator machine behind the same `classify` API as the host backends —
//! and prints the Table IX metrics.
//!
//! ```text
//! cargo run --release --example riscv_inference
//! ```

use kwt_tiny::baremetal::InferenceImage;
use kwt_tiny::engine::Engine;
use kwt_tiny::quant::{Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_tiny::rv32::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = kwt_bench::ExpContext::default();
    let (params, test) = ctx.trained_tiny();
    let frontend = kwt_tiny::audio::kwt_tiny_frontend()?;
    // Engine::classify takes raw audio; reconstruct a clip-sized input by
    // classifying the dataset's spectrograms directly.
    let x = test.x[0].clone();

    let float_img = InferenceImage::build_float(&params)?;
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let quant_img = InferenceImage::build_quant(&qm)?;
    let accel_img = InferenceImage::build_quant(&qm.with_nonlinearity(Nonlinearity::FixedLut))?;

    let platform = Platform::ibex();
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>10}",
        "model", "cycles", "instrs", "prog (kB)", "ms @50MHz"
    );
    let mut cycles = Vec::new();
    for (name, img) in [
        ("KWT-Tiny (float)", &float_img),
        ("KWT-Tiny-Q", &quant_img),
        ("KWT-Tiny-Q (+HW)", &accel_img),
    ] {
        // One engine per image: the simulator machine is loaded once and
        // stays warm across every inference this engine serves.
        let mut engine = Engine::rv32_sim(img, frontend.clone())?;
        let pred = engine.classify_mfcc(&x)?;
        let run = engine
            .last_device_run()
            .expect("rv32 backend reports run stats");
        cycles.push(run.cycles);
        println!(
            "{name:<22} {:>12} {:>12} {:>10.1} {:>10.1}   class {} (p = {:.2})",
            run.cycles,
            run.instructions,
            img.program_bytes() as f64 / 1e3,
            platform.cycles_to_seconds(run.cycles) * 1e3,
            pred.class,
            pred.score,
        );
    }
    println!(
        "\nspeedup float -> accelerated: {:.1}x (paper: ~4.7x, 26M -> 5.5M cycles)",
        cycles[0] as f64 / cycles[2] as f64
    );
    println!(
        "bank usage (float image): {:?} of the paper's SEQLENxMLP_DIM / SEQLENxDIM_HEADx3 banks",
        float_img.bank_usage
    );

    // The same engine type serves repeated traffic without reloading the
    // machine: classify every test clip on the accelerated image.
    let mut engine = Engine::rv32_sim(&accel_img, frontend)?;
    let mut agree = 0;
    let n = test.x.len().min(10);
    for (mfcc, &label) in test.x.iter().zip(&test.y).take(n) {
        let pred = engine.classify_mfcc(mfcc)?;
        if pred.class == label {
            agree += 1;
        }
    }
    println!(
        "\naccelerated device engine: {agree}/{n} test clips correct over one persistent machine"
    );
    Ok(())
}
