//! Builds the three bare-metal images (float / quantised / accelerated),
//! runs them on the RV32IMC simulator and prints the Table IX metrics.
//!
//! ```text
//! cargo run --release --example riscv_inference
//! ```

use kwt_tiny::baremetal::InferenceImage;
use kwt_tiny::quant::{Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_tiny::rv32::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = kwt_bench::ExpContext::default();
    let (params, test) = ctx.trained_tiny();
    let x = test.x[0].clone();

    let float_img = InferenceImage::build_float(&params)?;
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let quant_img = InferenceImage::build_quant(&qm)?;
    let accel_img = InferenceImage::build_quant(&qm.with_nonlinearity(Nonlinearity::FixedLut))?;

    let platform = Platform::ibex();
    println!("{:<22} {:>12} {:>12} {:>10} {:>10}", "model", "cycles", "instrs", "prog (kB)", "ms @50MHz");
    let mut cycles = Vec::new();
    for (name, img) in [
        ("KWT-Tiny (float)", &float_img),
        ("KWT-Tiny-Q", &quant_img),
        ("KWT-Tiny-Q (+HW)", &accel_img),
    ] {
        let (logits, run, _) = img.run(&x)?;
        cycles.push(run.cycles);
        println!(
            "{name:<22} {:>12} {:>12} {:>10.1} {:>10.1}   logits {:?}",
            run.cycles,
            run.instructions,
            img.program_bytes() as f64 / 1e3,
            platform.cycles_to_seconds(run.cycles) * 1e3,
            logits
        );
    }
    println!("\nspeedup float -> accelerated: {:.1}x (paper: ~4.7x, 26M -> 5.5M cycles)", cycles[0] as f64 / cycles[2] as f64);
    println!("bank usage (float image): {:?} of the paper's SEQLENxMLP_DIM / SEQLENxDIM_HEADx3 banks", float_img.bank_usage);
    Ok(())
}
