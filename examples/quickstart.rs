//! Quickstart: synthesise keywords, train KWT-Tiny, then serve it through
//! the unified inference engine — one-shot, batched and streaming.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kwt_tiny::dataset::{GscConfig, Split, SyntheticGsc};
use kwt_tiny::engine::{Engine, StreamingConfig, StreamingKws};
use kwt_tiny::model::{KwtConfig, KwtParams};
use kwt_tiny::train::{evaluate, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic "dog / notdog" dataset (GSC substitute).
    let ds = SyntheticGsc::new(GscConfig {
        samples_per_class: [300, 60, 100],
        ..GscConfig::default()
    });
    let frontend = kwt_tiny::audio::kwt_tiny_frontend()?;
    let train = ds.materialize(Split::Train, &frontend)?;
    let val = ds.materialize(Split::Val, &frontend)?;
    let test = ds.materialize(Split::Test, &frontend)?;

    // 2. The paper's KWT-Tiny: exactly 1646 parameters.
    let config = KwtConfig::kwt_tiny();
    println!(
        "KWT-Tiny: {} parameters ({} bytes as f32)",
        config.param_count(),
        config.memory_bytes_f32()
    );

    // 3. Train briefly.
    let mut trainer = Trainer::new(
        KwtParams::init(config, 42)?,
        TrainConfig {
            epochs: 10,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    let report = trainer.fit(&train, &val)?;
    println!(
        "best val accuracy: {:.1}%",
        report.best_val_accuracy * 100.0
    );
    let (test_acc, _) = evaluate(trainer.params(), &test)?;
    println!("test accuracy: {:.1}%", test_acc * 100.0);

    // 4. Serve the trained model through the unified engine: audio in,
    //    prediction out, with all arenas allocated once up front.
    let names = ds.class_names();
    let mut engine = Engine::host_float(trainer.params().clone(), frontend)?;
    let (wave, label) = ds.utterance(Split::Test, 1);
    let pred = engine.classify(&wave)?;
    println!(
        "clip with true class `{}` classified as `{}` (p = {:.2})",
        names[label], names[pred.class], pred.score
    );

    // 5. Batched classification over a few clips at once.
    let clips: Vec<Vec<f32>> = (0..4).map(|i| ds.utterance(Split::Test, i).0).collect();
    let batch = engine.classify_batch(&clips)?;
    let batch_classes: Vec<&str> = batch.iter().map(|p| names[p.class].as_str()).collect();
    println!(
        "batch of {} clips classified as {:?}",
        clips.len(),
        batch_classes
    );

    // 6. Streaming keyword spotting: feed the microphone-style stream in
    //    arbitrary chunks; decisions fire per hop with majority smoothing.
    let mut kws = StreamingKws::new(engine, StreamingConfig::default())?;
    let mut decisions = Vec::new();
    for i in 0..3 {
        let (wave, _) = ds.utterance(Split::Test, i);
        for chunk in wave.chunks(1_000) {
            decisions.extend(kws.push(chunk)?);
        }
    }
    println!(
        "streamed 3 s of audio -> {} sliding-window decisions, last smoothed class `{}`",
        decisions.len(),
        names[decisions.last().expect("stream long enough").smoothed_class]
    );
    Ok(())
}
