//! Quickstart: synthesise a keyword, extract MFCCs, run KWT-Tiny.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kwt_tiny::dataset::{GscConfig, Split, SyntheticGsc};
use kwt_tiny::model::{KwtConfig, KwtParams};
use kwt_tiny::train::{evaluate, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic "dog / notdog" dataset (GSC substitute).
    let ds = SyntheticGsc::new(GscConfig {
        samples_per_class: [300, 60, 100],
        ..GscConfig::default()
    });
    let frontend = kwt_tiny::audio::kwt_tiny_frontend()?;
    let train = ds.materialize(Split::Train, &frontend)?;
    let val = ds.materialize(Split::Val, &frontend)?;
    let test = ds.materialize(Split::Test, &frontend)?;

    // 2. The paper's KWT-Tiny: exactly 1646 parameters.
    let config = KwtConfig::kwt_tiny();
    println!("KWT-Tiny: {} parameters ({} bytes as f32)", config.param_count(), config.memory_bytes_f32());

    // 3. Train briefly.
    let mut trainer = Trainer::new(
        KwtParams::init(config, 42)?,
        TrainConfig { epochs: 10, verbose: true, ..TrainConfig::default() },
    );
    let report = trainer.fit(&train, &val)?;
    println!("best val accuracy: {:.1}%", report.best_val_accuracy * 100.0);

    // 4. Evaluate and classify one clip.
    let (test_acc, _) = evaluate(trainer.params(), &test)?;
    println!("test accuracy: {:.1}%", test_acc * 100.0);
    let (wave, label) = ds.utterance(Split::Test, 1);
    let mfcc = frontend.extract_padded(&wave)?;
    let pred = kwt_tiny::model::predict(trainer.params(), &mfcc)?;
    let names = ds.class_names();
    println!("clip with true class `{}` classified as `{}`", names[label], names[pred]);
    Ok(())
}
