//! Full KWT-Tiny training at the paper's difficulty (Table IV setting).
//!
//! ```text
//! cargo run --release --example train_keyword_spotter
//! ```

use kwt_tiny::dataset::{GscConfig, Split, SyntheticGsc};
use kwt_tiny::model::{KwtConfig, KwtParams};
use kwt_tiny::train::{confusion_matrix, evaluate, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t0 = std::time::Instant::now();
    let ds = SyntheticGsc::new(GscConfig::paper_binary());
    let fe = kwt_tiny::audio::kwt_tiny_frontend()?;
    let train = ds.materialize(Split::Train, &fe)?;
    let val = ds.materialize(Split::Val, &fe)?;
    let test = ds.materialize(Split::Test, &fe)?;
    println!(
        "data: {} train / {} val / {} test in {:.1}s",
        train.len(),
        val.len(),
        test.len(),
        t0.elapsed().as_secs_f32()
    );

    let mut trainer = Trainer::new(
        KwtParams::init(KwtConfig::kwt_tiny(), 42)?,
        TrainConfig {
            epochs: 30,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    let report = trainer.fit(&train, &val)?;
    let (acc, preds) = evaluate(trainer.params(), &test)?;
    println!(
        "\nbest val {:.1}% (epoch {}), test {:.1}% — paper: 87.2%",
        report.best_val_accuracy * 100.0,
        report.best_epoch,
        acc * 100.0
    );
    let cm = confusion_matrix(&preds, &test.y, 2);
    println!("confusion matrix [true][pred]: {cm:?}");
    trainer
        .params()
        .save_json("results/kwt_tiny_trained.json")?;
    println!("saved to results/kwt_tiny_trained.json (used by `paper` tables)");
    Ok(())
}
