//! The Table V experiment: accuracy across power-of-two scale factors.
//!
//! ```text
//! cargo run --release --example quantization_sweep
//! ```

use kwt_tiny::quant::sweep::{scale_sweep, PAPER_TABLE5_PAIRS};
use kwt_tiny::quant::Nonlinearity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = kwt_bench_ctx();
    let (params, test) = ctx.trained_tiny();
    println!(
        "sweeping {} scale pairs over {} test clips...",
        PAPER_TABLE5_PAIRS.len(),
        test.len()
    );
    let rows = scale_sweep(
        &params,
        &test,
        &PAPER_TABLE5_PAIRS,
        Nonlinearity::FloatExact,
    )?;
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>14}",
        "weights", "input", "accuracy", "saturations", "max |acc|"
    );
    for r in rows {
        println!(
            "{:>8} {:>8} {:>9.1}% {:>12} {:>14}",
            r.weight_factor,
            r.input_factor,
            r.accuracy * 100.0,
            r.saturations,
            r.max_abs_acc
        );
    }
    println!("\npaper Table V: 60.3% / 71% / 77.3% / 82.5% / 65.2%");
    Ok(())
}

fn kwt_bench_ctx() -> kwt_bench::ExpContext {
    kwt_bench::ExpContext::default()
}
