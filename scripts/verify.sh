#!/usr/bin/env bash
# Tier-1 verification plus the benchmark smoke pass and regression gates
# (see ROADMAP.md and .github/workflows/ci.yml).
#
#   scripts/verify.sh            # build + tests + bench smoke + gates
#   scripts/verify.sh --fast     # build + tests only (tier-1)
#   scripts/verify.sh --ci       # sandboxed-runner mode: the scratch dir
#                                # lives under target/ and no cleanup trap
#                                # is installed (some CI sandboxes kill the
#                                # trap handler or mount /tmp noexec)
#
# Tier-1 (must stay green): release build and the full test suite.
# The smoke pass then runs every criterion bench exactly once,
# single-iteration `paper bench-engine` and `paper bench-serve --smoke`
# in a scratch directory (so the committed BENCH_*.json artefacts are
# not overwritten with smoke-mode numbers), and the regression gates:
#
#   * `paper check-a8`       — A8-vs-i16 top-1 agreement (>= 99 %) and
#                              device/host bit-identity;
#   * `paper check-frontend` — fixed-point MFCC vs f64 oracle top-1
#                              agreement (>= 99.5 %) on the synth split;
#   * `paper check-cycles`   — device cycles per image flavour vs the
#                              committed BENCH_engine.json (<= +3 %);
#   * `paper check-cluster`  — multi-hart cluster gate: a 1-hart cluster
#                              bit- and cycle-identical to the serial
#                              session, 4-hart wave logits bit-identical
#                              to serial, >= 3x clips-per-SoC-cycle at 4
#                              harts, soc_cycles <= +3 % vs the committed
#                              BENCH_engine.json;
#   * `paper check-serve`    — serving gate: fused-wave and serial-device
#                              decision streams bit-identical, >= 2x
#                              detections-per-SoC-cycle from cross-session
#                              batching, throughput / sim-p99 within 5 %
#                              of the committed BENCH_serve.json;
#   * `paper check-tuning`   — kernel-specialiser autotuner gate: the
#                              sweep must be deterministic, the committed
#                              results/TUNED_KERNELS.txt must match a
#                              fresh derivation, and no tuned kernel may
#                              be slower than its generic counterpart;
#   * `paper fault-sweep`    — chaos harness: injected faults across the
#                              taxonomy x every image flavour must yield
#                              typed errors, exact recovery, or exact
#                              failover — and zero host panics;
#   * `paper check-cascade`  — wake-word cascade gate: device cascade
#                              verdicts bit-identical to the plain
#                              verifier, cascade cheaper per hour than the
#                              always-on KWT-1 at 5 % keyword duty, stage
#                              cycles within 5 % of the committed
#                              BENCH_cascade.json (skips the baseline
#                              comparison when none is committed);
#   * `paper check-calibration` — offline GSC v2 subset integrity
#                              (manifest-checksummed) plus the per-dataset
#                              A8 exponent calibration reaching >= 99 %
#                              top-1 agreement with the float model.
#
# The docs build (`cargo doc --no-deps` with warnings denied) also runs
# here so rustdoc regressions fail verification, matching CI's docs job.
#
# Every step reports its own name on failure, so CI logs point straight
# at the broken stage.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
ci=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        --ci) ci=1 ;;
        *)
            echo "verify: unknown option '$arg' (expected --fast and/or --ci)" >&2
            exit 2
            ;;
    esac
done

fail() {
    echo "verify: FAILED at step '$1'" >&2
    exit 1
}

echo "== tier-1: cargo build --release =="
cargo build --release || fail "cargo build --release"

echo "== tier-1: cargo test -q =="
cargo test -q || fail "cargo test"

if [[ "$fast" == 1 ]]; then
    echo "verify: tier-1 green (--fast)"
    exit 0
fi

if [[ "$ci" == 1 ]]; then
    scratch="target/verify-scratch"
    rm -rf "$scratch"
    mkdir -p "$scratch"
    scratch="$(cd "$scratch" && pwd)"
else
    scratch="$(mktemp -d)"
    trap 'rm -rf "$scratch"' EXIT
fi
paper_bin="$(pwd)/target/release/paper"

echo "== smoke: KWT_BENCH_SMOKE=1 cargo bench =="
KWT_BENCH_SMOKE=1 cargo bench -q || fail "bench smoke"

echo "== smoke: paper bench-engine (scratch dir) =="
(cd "$scratch" && KWT_BENCH_SMOKE=1 "$paper_bin" bench-engine >/dev/null) \
    || fail "paper bench-engine"
echo "bench-engine smoke OK"

echo "== smoke: paper bench-serve --smoke (scratch dir) =="
(cd "$scratch" && "$paper_bin" bench-serve --smoke >/dev/null) \
    || fail "paper bench-serve"
echo "bench-serve smoke OK"

echo "== gate: paper check-a8 (A8-vs-i16 agreement + device bit-identity) =="
(cd "$scratch" && "$paper_bin" check-a8 >/dev/null) || fail "paper check-a8"
echo "check-a8 OK"

echo "== gate: paper check-frontend (fixed-point MFCC agreement) =="
(cd "$scratch" && "$paper_bin" check-frontend >/dev/null) || fail "paper check-frontend"
echo "check-frontend OK"

echo "== gate: paper check-cycles (device cycles vs committed baseline) =="
"$paper_bin" check-cycles || fail "paper check-cycles"
echo "check-cycles OK"

echo "== gate: paper check-cluster (multi-hart identity + throughput) =="
"$paper_bin" check-cluster || fail "paper check-cluster"
echo "check-cluster OK"

echo "== gate: paper check-serve (serving identity + multiplexing win) =="
"$paper_bin" check-serve || fail "paper check-serve"
echo "check-serve OK"

echo "== gate: paper check-tuning (kernel-specialiser artefact in sync) =="
"$paper_bin" check-tuning || fail "paper check-tuning"
echo "check-tuning OK"

echo "== gate: paper fault-sweep --smoke (fault taxonomy x image flavours) =="
(cd "$scratch" && "$paper_bin" fault-sweep --smoke >/dev/null) \
    || fail "paper fault-sweep"
echo "fault-sweep OK"

echo "== smoke: paper bench-cascade --smoke (scratch dir) =="
(cd "$scratch" && "$paper_bin" bench-cascade --smoke >/dev/null) \
    || fail "paper bench-cascade"
echo "bench-cascade smoke OK"

echo "== gate: paper check-cascade (verdict identity + cycle economics) =="
"$paper_bin" check-cascade || fail "paper check-cascade"
echo "check-cascade OK"

echo "== gate: paper check-calibration (subset integrity + A8 agreement) =="
"$paper_bin" check-calibration || fail "paper check-calibration"
echo "check-calibration OK"

echo "== docs: cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q >/dev/null 2>&1 \
    || fail "cargo doc"
echo "docs OK"

echo "== smoke: isa_ratio example =="
cargo run --release -q -p kwt-bench --example isa_ratio >/dev/null \
    || fail "isa_ratio example"
echo "isa_ratio OK"

echo "verify: all green"
