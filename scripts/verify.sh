#!/usr/bin/env bash
# Tier-1 verification plus a benchmark smoke pass (see ROADMAP.md).
#
#   scripts/verify.sh            # build + tests + bench smoke
#   scripts/verify.sh --fast     # build + tests only
#
# Tier-1 (must stay green): release build and the full test suite.
# The smoke pass then runs every criterion bench exactly once and a
# single-iteration `paper bench-engine` in a scratch directory (so the
# committed BENCH_*.json artefacts are not overwritten with smoke-mode
# numbers).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

if [[ "${1:-}" != "--fast" ]]; then
    echo "== smoke: KWT_BENCH_SMOKE=1 cargo bench =="
    KWT_BENCH_SMOKE=1 cargo bench -q

    echo "== smoke: paper bench-engine (scratch dir) =="
    scratch="$(mktemp -d)"
    trap 'rm -rf "$scratch"' EXIT
    paper_bin="$(pwd)/target/release/paper"
    (cd "$scratch" && KWT_BENCH_SMOKE=1 "$paper_bin" bench-engine >/dev/null)
    echo "bench-engine smoke OK"

    echo "== smoke: paper check-a8 (A8-vs-i16 agreement + device bit-identity) =="
    (cd "$scratch" && "$paper_bin" check-a8 >/dev/null)
    echo "check-a8 OK"

    echo "== smoke: isa_ratio example =="
    cargo run --release -q -p kwt-bench --example isa_ratio >/dev/null
    echo "isa_ratio OK"
fi

echo "verify: all green"
