//! End-to-end integration: audio synthesis -> MFCC -> training ->
//! quantisation -> sweep, on a reduced budget so the suite stays fast.

use kwt_tiny::dataset::{GscConfig, Split, SyntheticGsc, Task};
use kwt_tiny::model::{KwtConfig, KwtParams};
use kwt_tiny::quant::sweep::scale_sweep;
use kwt_tiny::quant::{Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_tiny::train::{evaluate, TrainConfig, Trainer};

fn quick_dataset() -> SyntheticGsc {
    SyntheticGsc::new(GscConfig {
        task: Task::Binary { target: "dog" },
        samples_per_class: [160, 40, 60],
        ..GscConfig::default()
    })
}

#[test]
fn full_pipeline_learns_quantises_and_stays_consistent() {
    let ds = quick_dataset();
    let fe = kwt_tiny::audio::kwt_tiny_frontend().unwrap();
    let train = ds.materialize(Split::Train, &fe).unwrap();
    let val = ds.materialize(Split::Val, &fe).unwrap();
    let test = ds.materialize(Split::Test, &fe).unwrap();

    // train briefly at easy difficulty
    let mut trainer = Trainer::new(
        KwtParams::init(KwtConfig::kwt_tiny(), 42).unwrap(),
        TrainConfig {
            epochs: 14,
            ..TrainConfig::default()
        },
    );
    let report = trainer.fit(&train, &val).unwrap();
    assert!(
        report.best_val_accuracy > 0.8,
        "training failed: {:.2}",
        report.best_val_accuracy
    );
    let params = trainer.into_params();
    let (float_acc, _) = evaluate(&params, &test).unwrap();
    assert!(float_acc > 0.75, "float test accuracy {float_acc:.2}");

    // paper-best quantisation must stay close to float accuracy
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let mut hits = 0;
    for (x, &y) in test.x.iter().zip(&test.y) {
        if qm.predict(x).unwrap() == y {
            hits += 1;
        }
    }
    let q_acc = hits as f64 / test.len() as f64;
    // A briefly-trained model quantises worse than the paper's fully
    // trained one (weights are larger; more i8 saturation at scale 64).
    // The claim tested here is "no collapse", not the paper's 5-point gap
    // (that is measured by `paper table5` on the fully trained model).
    assert!(
        q_acc > 0.55 && q_acc > float_acc - 0.30,
        "quantisation collapsed: float {float_acc:.2} vs quant {q_acc:.2}"
    );

    // sweep shape: the paper-best pair must beat the coarsest pair
    let rows = scale_sweep(
        &params,
        &test,
        &[(8, 8), (64, 32)],
        Nonlinearity::FloatExact,
    )
    .unwrap();
    assert!(
        rows[1].accuracy >= rows[0].accuracy,
        "64/32 ({:.2}) should be >= 8/8 ({:.2})",
        rows[1].accuracy,
        rows[0].accuracy
    );
}

#[test]
fn dataset_is_deterministic_across_materialisations() {
    let ds = quick_dataset();
    let fe = kwt_tiny::audio::kwt_tiny_frontend().unwrap();
    let a = ds.materialize(Split::Val, &fe).unwrap();
    let b = ds.materialize(Split::Val, &fe).unwrap();
    for (x, y) in a.x.iter().zip(&b.x) {
        assert_eq!(x, y);
    }
    assert_eq!(a.y, b.y);
}
