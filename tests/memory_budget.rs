//! The 64 kB constraint (Table II) and the two-bank memory discipline
//! (paper section V).

use kwt_tiny::baremetal::InferenceImage;
use kwt_tiny::model::{KwtConfig, KwtParams};
use kwt_tiny::quant::{QuantConfig, QuantizedKwt};
use kwt_tiny::rv32::Platform;

#[test]
fn images_fit_the_64kb_platform() {
    let params = KwtParams::init(KwtConfig::kwt_tiny(), 3).unwrap();
    let float_img = InferenceImage::build_float(&params).unwrap();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let quant_img = InferenceImage::build_quant(&qm).unwrap();
    let ram = Platform::ibex().ram_size as usize;
    for img in [&float_img, &quant_img] {
        assert!(
            img.program_bytes() + 4096 < ram,
            "image ({} B) + stack exceeds {ram} B",
            img.program_bytes()
        );
    }
    // quantisation shrinks the image (paper: 58.8 kB -> 44.4 kB)
    assert!(quant_img.program_bytes() < float_img.program_bytes());
}

#[test]
fn banks_match_paper_sizing() {
    // bank1 = SEQLEN x MLP_DIM elements, bank2 = SEQLEN x DIM_HEAD x 3.
    let c = KwtConfig::kwt_tiny();
    let params = KwtParams::init(c, 3).unwrap();
    let img = InferenceImage::build_float(&params).unwrap();
    let [b1, b2] = img.bank_usage;
    assert_eq!(b1.1, c.seqlen() * c.mlp_dim * 4);
    assert_eq!(b2.1, c.seqlen() * c.dim_head * 3 * 4);
    // high water fits, and bank2 is used to capacity by the Q/K/V split
    assert!(b1.0 <= b1.1 && b2.0 <= b2.1);
    assert_eq!(b2.0, b2.1, "Q/K/V split should exactly fill bank2");
}

#[test]
fn kwt1_float_image_exceeds_64kb_as_expected() {
    // KWT-1 (2.42 MB of weights) cannot fit the platform — the very
    // motivation for KWT-Tiny. The builder must refuse.
    let params = KwtParams::init(KwtConfig::kwt1(), 3).unwrap();
    assert!(InferenceImage::build_float(&params).is_err());
}
