//! Umbrella-level smoke of the unified engine: all three backends behind
//! one API, agreeing with each other qualitatively and with their one-shot
//! counterparts exactly.

use kwt_tiny::baremetal::InferenceImage;
use kwt_tiny::engine::{BackendKind, Engine, StreamingConfig, StreamingKws};
use kwt_tiny::model::{KwtConfig, KwtParams};
use kwt_tiny::quant::{Nonlinearity, QuantConfig, QuantizedKwt};

fn trained_ish() -> KwtParams {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    p
}

fn clip(freq: f64) -> Vec<f32> {
    (0..16_000)
        .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / 16_000.0).sin() as f32 * 0.5)
        .collect()
}

#[test]
fn one_engine_type_serves_all_three_backends() {
    let params = trained_ish();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let image =
        InferenceImage::build_quant(&qm.clone().with_nonlinearity(Nonlinearity::FixedLut)).unwrap();
    let fe = kwt_tiny::audio::kwt_tiny_frontend().unwrap();
    let mut engines = [
        Engine::host_float(params, fe.clone()).unwrap(),
        Engine::host_quant(qm, fe.clone()).unwrap(),
        Engine::rv32_sim(&image, fe).unwrap(),
    ];
    let audio = clip(440.0);
    let kinds: Vec<BackendKind> = engines.iter().map(|e| e.kind()).collect();
    assert_eq!(
        kinds,
        [
            BackendKind::HostFloat,
            BackendKind::HostQuant,
            BackendKind::Rv32Sim
        ]
    );
    let mut classes = Vec::new();
    for engine in &mut engines {
        let pred = engine.classify(&audio).unwrap();
        assert_eq!(pred.logits.len(), 2);
        assert!((pred.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        classes.push(pred.class);
    }
    // quantisation preserves the decision on an easy input
    assert_eq!(classes[0], classes[1]);
    assert_eq!(classes[1], classes[2]);
}

#[test]
fn streaming_kws_spots_over_a_continuous_stream() {
    let fe = kwt_tiny::audio::kwt_tiny_frontend().unwrap();
    let engine = Engine::host_float(trained_ish(), fe).unwrap();
    let mut kws = StreamingKws::new(engine, StreamingConfig::default()).unwrap();
    let audio = clip(600.0);
    let mut n = 0;
    for chunk in audio.iter().as_slice().chunks(640) {
        n += kws.push(chunk).unwrap().len();
    }
    // one clip = T frames = exactly one full window
    assert_eq!(n, 1);
    // two more seconds keep the decisions flowing, one per hop
    for chunk in audio.chunks(640) {
        n += kws.push(chunk).unwrap().len();
    }
    assert!(n > 20, "only {n} decisions after 2 s");
}
