//! Differential tests: generated bare-metal programs vs the host models,
//! plus the Table IX cycle ordering.

use kwt_tiny::baremetal::{Flavor, InferenceImage};
use kwt_tiny::model::{KwtConfig, KwtParams};
use kwt_tiny::quant::{Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_tiny::tensor::Mat;

fn model() -> KwtParams {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 2024).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    p
}

fn input(seed: u64) -> Mat<f32> {
    Mat::from_fn(26, 16, |r, c| {
        let h = seed
            .wrapping_add((r * 16 + c) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 12.0
    })
}

#[test]
fn all_three_flavours_agree_with_host_and_order_cycles() {
    let params = model();
    let float_img = InferenceImage::build_float(&params).unwrap();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let quant_img = InferenceImage::build_quant(&qm).unwrap();
    let accel_img =
        InferenceImage::build_quant(&qm.clone().with_nonlinearity(Nonlinearity::FixedLut)).unwrap();
    assert_eq!(float_img.flavor, Flavor::Float);
    assert_eq!(quant_img.flavor, Flavor::Quantized);
    assert_eq!(accel_img.flavor, Flavor::Accelerated);

    let x = input(7);
    let (fl, rf, _) = float_img.run(&x).unwrap();
    let (ql, rq, _) = quant_img.run(&x).unwrap();
    let (al, ra, _) = accel_img.run(&x).unwrap();

    // float image vs host float forward
    let host = kwt_tiny::model::forward(&params, &x).unwrap();
    for (d, h) in fl.iter().zip(&host) {
        assert!((d - h).abs() < 2e-3 * h.abs().max(1.0), "float: {d} vs {h}");
    }
    // quant images vs host quant model (logits at the activation scale)
    let hq = qm.forward(&x).unwrap();
    for (d, h) in ql.iter().zip(&hq) {
        assert!((d - h).abs() < 0.25, "quant: {d} vs {h}");
    }
    let ha = qm
        .with_nonlinearity(Nonlinearity::FixedLut)
        .forward(&x)
        .unwrap();
    for (d, h) in al.iter().zip(&ha) {
        assert!((d - h).abs() < 0.25, "accel: {d} vs {h}");
    }
    // Table IX ordering and magnitude
    assert!(rf.cycles > rq.cycles && rq.cycles > ra.cycles);
    assert!(rf.cycles as f64 / ra.cycles as f64 > 3.0);
    assert!(rf.cycles > 1_000_000, "float inference suspiciously cheap");
}

#[test]
fn argmax_agreement_across_inputs() {
    let params = model();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let quant_img = InferenceImage::build_quant(&qm).unwrap();
    let mut agree = 0;
    let n = 6;
    for seed in 0..n {
        let x = input(100 + seed);
        let (dev, _, _) = quant_img.run(&x).unwrap();
        let host = qm.forward(&x).unwrap();
        if (dev[1] > dev[0]) == (host[1] > host[0]) {
            agree += 1;
        }
    }
    assert!(agree >= n - 1, "agreement {agree}/{n}");
}
