//! # kwt-baremetal
//!
//! The generated bare-metal program: everything that runs *on* the
//! simulated Ibex core.
//!
//! The paper implements KWT-Tiny inference in bare-metal C; this crate
//! plays that role by *generating* RV32 machine code through
//! [`kwt_rvasm`]:
//!
//! * [`softfloat`] — an IEEE-754 single-precision library in assembly
//!   (add/sub/mul/div/convert/compare). The Ibex has no FPU (Table II),
//!   so every float operation in the float model pays tens-to-hundreds
//!   of integer instructions — exactly the cost the paper's quantisation
//!   and custom instructions attack.
//! * [`mathlib`] — `expf`, `erff`, `rsqrtf` and scalar GELU on top of the
//!   soft-float ops (the C library's `expf`/`erf` equivalents).
//! * [`kernels`] — the Table VI tensor library as assembly routines, in
//!   float, quantised-integer and custom-instruction-accelerated
//!   flavours.
//! * [`specialise`] — the emit-time kernel specialiser: a geometry-driven
//!   generator for `kdot4.i8` GEMM and LayerNorm kernels (unrolled K,
//!   register-cached activation rows, strides folded into immediates,
//!   fused requant epilogues) plus the committed autotuning artefact
//!   ([`specialise::TunedKernels`]) that records cycle-counter-selected
//!   unroll/blocking factors per model geometry.
//! * [`image`] — complete inference programs (float / quantised /
//!   quantised+HW) with the paper's two static memory banks (§V),
//!   profiling region markers (Figs. 3–5) and a host harness to run them
//!   on the [`kwt_rv32`] simulator. The A8 image emits a tuned
//!   specialised kernel for every GEMM/LayerNorm call site, keeping the
//!   generic kernels as the misalignment fallback and differential
//!   oracle.
//!
//! Rounding note: the soft-float ops round toward zero (truncate) and
//! flush denormals, where host `f32` rounds to nearest-even. Differential
//! tests therefore compare with a 1-ULP-per-op tolerance; the *cycle
//! cost*, which is what the paper measures, is unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod banks;
pub mod cluster;
mod error;
pub mod image;
pub mod kernels;
pub mod mathlib;
pub mod regions;
pub mod softfloat;
pub mod specialise;

pub use banks::Bank;
pub use cluster::{ClusterSession, ClusterWave};
pub use error::{BuildError, DeviceError};
pub use image::{DeviceSession, Flavor, InferenceImage, RecoveryReport};
pub use kernels::{A8Kernels, KernelIsa};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, BuildError>;
