//! The Table VI tensor library as generated RV32 assembly, in three
//! flavours:
//!
//! * **float** — every scalar op goes through the soft-float library
//!   (the paper's non-quantised KWT-Tiny, 26 M cycles)
//! * **quantised** — INT8-weight/INT16-residual integer matmuls with
//!   float SoftMax/LayerNorm/GELU behind dequantise/requantise
//!   boundaries (KWT-Tiny-Q, 13 M cycles)
//! * **accelerated** — the same integer pipeline with SoftMax and GELU
//!   rewritten over the `custom-1` instructions (KWT-Tiny-Q +HW,
//!   5.5 M cycles)
//!
//! Orthogonally, the integer kernels come in two ISA variants
//! ([`KernelIsa`]):
//!
//! * [`KernelIsa::Rv32im`] — scalar `lh`/`lb`/`mul`/`add` inner loops;
//!   kept bit-for-bit as the differential oracle
//! * [`KernelIsa::Xkwtdot`] — the custom-2 packed-MAC extension:
//!   `kdot2.i16` dot-product inner loops (fed by `lw`/`klw.b2h` packed
//!   operand loads), `ksat.i16` saturating epilogues, and
//!   `kcvt.h2f`/`kcvt.f2h` single-instruction quantisation boundaries.
//!   The weight-matrix GEMM (`matmul_q`) takes its weights
//!   **transposed** (`N×K` row-major) so the packed loads walk
//!   contiguous memory; misaligned or non-multiple-of-4 `K` falls back
//!   to a scalar loop over the same transposed layout, so results are
//!   always bit-identical to the oracle.
//!
//! Calling conventions follow the RISC-V ILP32 ABI: arguments `a0..a7`,
//! caller-saved `t*`, callee-saved `s*`.

use crate::mathlib::{epilogue, li_f32, prologue, MathLib};
use crate::softfloat::SoftFloat;
use kwt_rvasm::{
    emit, Asm, CustomOp, Inst, Label, PackedOp, Reg, CSR_PROFILE_POP, CSR_PROFILE_PUSH,
};

use Reg::{Ra, Zero, A0, A1, A2, A3, A4, A5, A6, A7, T0, T1, T2, T3, T4, T5, T6};
use Reg::{S0, S1, S10, S11, S2, S3, S4, S5, S6, S7, S8, S9};

/// Which instruction set the integer GEMM / quantisation kernels are
/// emitted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelIsa {
    /// Scalar RV32IM inner loops — the differential oracle.
    Rv32im,
    /// Xkwtdot custom-2 packed-MAC inner loops. Under this ISA,
    /// `matmul_q` expects its weight operand **transposed** (`N×K`
    /// row-major) so packed loads are contiguous.
    Xkwtdot,
}

impl KernelIsa {
    /// Stable lowercase name (used by benchmark artefacts).
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelIsa::Rv32im => "rv32im",
            KernelIsa::Xkwtdot => "xkwtdot",
        }
    }
}

/// Entry labels for every generated kernel.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// `matmul_f32(A, B, bias|0, out, M, K, N)` — O(n³), soft-float MACs.
    pub matmul_f32: Label,
    /// `matmul_q(A:i16, W:i8, bias:i32|0, out:i16, M, K, N, shift)`.
    ///
    /// Under [`KernelIsa::Xkwtdot`] the weight operand is the
    /// **transposed** matrix (`N×K` row-major) so the packed loads walk
    /// contiguous memory; the image builder emits weights accordingly.
    pub matmul_q: Label,
    /// `matmul_qq(A:i16, B:i16, 0, out:i16, M, K, N, shift)`.
    pub matmul_qq: Label,
    /// `add_f32(dst, src, len)` — residual add.
    pub add_f32: Label,
    /// `add_sat_i16(dst, src, len)` — saturating residual add.
    pub add_sat_i16: Label,
    /// `copy_bytes(dst, src, len)`.
    pub copy_bytes: Label,
    /// `scale_f32(ptr, len, scale_bits)` — in-place scalar multiply.
    pub scale_f32: Label,
    /// `softmax_f32(ptr, len)` — max-normalised, `expf` + one division.
    pub softmax_f32: Label,
    /// `softmax_accel(ptr, len)` — Q8.24 LUT pipeline (§VI).
    pub softmax_accel: Label,
    /// `gelu_f32(ptr, len)` — exact GELU via `erff` per element.
    pub gelu_f32: Label,
    /// `gelu_accel(ptr, len)` — `ALU_TO_FIXED`/`ALU_GELU`/`ALU_TO_FLOAT`.
    pub gelu_accel: Label,
    /// `layer_norm_f32(x, gamma, beta, rows, cols, inv_n_bits, eps_bits)`.
    pub layer_norm_f32: Label,
    /// `dequant(src:i16, dst:f32, len, scale_bits)` — `x / 2^y`.
    pub dequant: Label,
    /// `requant(src:f32, dst:i16, len, scale_bits)` — `floor(x * 2^y)`,
    /// saturating to i16 (matches the host quantiser exactly).
    pub requant: Label,
    /// `attention_f32(Q, K, V, out, S, dh, row_buf, scale_bits)` —
    /// row-wise scaled dot-product attention (never materialises the
    /// `S x S` score matrix, §V memory discipline).
    pub attention_f32: Label,
    /// `attention_q(Q, K, V, out, S, dh, row16_buf, params_ptr)` —
    /// quantised row-wise attention; `params` selects float or LUT
    /// softmax.
    pub attention_q: Label,
    /// `copy_strided(dst, src, rows, src_stride_bytes, width_bytes)` —
    /// the paper's `splitIntoQKV()`: gathers a column block into a
    /// contiguous matrix.
    pub copy_strided: Label,
    /// `ln_q(x:i16, gamma, beta, rows, cols, params)` — quantised
    /// LayerNorm: dequantise row → float LN → requantise (§IV).
    pub ln_q: Label,
    /// `gelu_q(x:i16, rows, cols, params)` — quantised GELU boundary,
    /// float or LUT inner kernel.
    pub gelu_q: Label,
}

/// Byte offsets into the `ln_q` parameter block.
pub mod ln_params {
    /// f32 bits: dequantisation factor `2^-y_a`.
    pub const DEQ: i32 = 0;
    /// f32 bits: requantisation factor `2^y_a`.
    pub const REQ: i32 = 4;
    /// f32 bits: `1/cols`.
    pub const INV_N: i32 = 8;
    /// f32 bits: layer-norm epsilon.
    pub const EPS: i32 = 12;
    /// u32: float scratch row address.
    pub const SCRATCH: i32 = 16;
    /// Total block size in bytes.
    pub const SIZE: usize = 20;
}

/// Byte offsets into the `gelu_q` parameter block.
pub mod gelu_params {
    /// f32 bits: dequantisation factor `2^-y_a`.
    pub const DEQ: i32 = 0;
    /// f32 bits: requantisation factor `2^y_a`.
    pub const REQ: i32 = 4;
    /// u32: float scratch row address.
    pub const SCRATCH: i32 = 8;
    /// u32: 0 = float GELU, 1 = LUT GELU.
    pub const NONLINEARITY: i32 = 12;
    /// Total block size in bytes.
    pub const SIZE: usize = 16;
}

/// Byte offsets into the `attention_q` parameter block.
pub mod attn_params {
    /// i32: activation-scale shift (`y_a`).
    pub const SHIFT: i32 = 0;
    /// f32 bits: `1/sqrt(dim_head)`.
    pub const INV_SQRT_DH: i32 = 4;
    /// f32 bits: dequantisation factor `2^-y_a`.
    pub const DEQ: i32 = 8;
    /// f32 bits: requantisation factor `2^y_a`.
    pub const REQ: i32 = 12;
    /// u32: address of the float row buffer.
    pub const ROWF: i32 = 16;
    /// u32: 0 = float softmax, 1 = LUT softmax.
    pub const NONLINEARITY: i32 = 20;
    /// u32: address of the padded V-transpose scratch (`dh × KP` i16,
    /// Xkwtdot images only; 0 otherwise).
    pub const VT: i32 = 24;
    /// u32: padded score length `KP = S.next_multiple_of(4)` (the row16
    /// buffer holds `KP` entries; entries past `S` stay zero).
    pub const KP: i32 = 28;
    /// Total block size in bytes.
    pub const SIZE: usize = 32;
}

fn push_region(asm: &mut Asm, region: u32) {
    asm.li(T0, region as i32);
    asm.emit(Inst::Csrrw {
        rd: Zero,
        rs1: T0,
        csr: CSR_PROFILE_PUSH,
    });
}

fn pop_region(asm: &mut Asm) {
    asm.emit(Inst::Csrrw {
        rd: Zero,
        rs1: Zero,
        csr: CSR_PROFILE_POP,
    });
}

impl Kernels {
    /// Emits all kernels for the scalar [`KernelIsa::Rv32im`] ISA
    /// (soft-float and math libraries must already be emitted into the
    /// same `asm`).
    pub fn emit(asm: &mut Asm, sf: &SoftFloat, math: &MathLib) -> Kernels {
        Self::emit_with_isa(asm, sf, math, KernelIsa::Rv32im)
    }

    /// Emits all kernels for the chosen ISA. Under
    /// [`KernelIsa::Xkwtdot`] the integer matmuls, the saturating
    /// residual add and the quantisation boundaries are emitted over the
    /// custom-2 packed instructions (and `matmul_q` expects transposed
    /// weights); everything else is shared.
    pub fn emit_with_isa(asm: &mut Asm, sf: &SoftFloat, math: &MathLib, isa: KernelIsa) -> Kernels {
        let matmul_f32 = emit_matmul_f32(asm, sf);
        let (matmul_q, matmul_qq, add_sat_i16, dequant, requant) = match isa {
            KernelIsa::Rv32im => (
                emit_matmul_int(asm, "k_matmul_q", false),
                emit_matmul_int(asm, "k_matmul_qq", true),
                emit_add_sat_i16(asm),
                emit_dequant(asm, sf),
                emit_requant(asm, sf),
            ),
            KernelIsa::Xkwtdot => {
                // the scalar i16×i16 loop stays resident as the
                // tail-jump target for shapes the packed path skips
                let qq_scalar = emit_matmul_int(asm, "k_matmul_qq_scalar", true);
                (
                    emit_matmul_qt_packed(asm),
                    emit_matmul_qq_packed(asm, qq_scalar),
                    emit_add_sat_i16_packed(asm),
                    emit_dequant_packed(asm),
                    emit_requant_packed(asm),
                )
            }
        };
        let (scale_f32, layer_norm_f32) = match isa {
            KernelIsa::Rv32im => (emit_scale_f32(asm, sf), emit_layer_norm_f32(asm, sf, math)),
            KernelIsa::Xkwtdot => (
                emit_scale_f32_packed(asm),
                emit_layer_norm_f32_packed(asm, math),
            ),
        };
        let add_f32 = emit_add_f32(asm, sf);
        let copy_bytes = emit_copy_bytes(asm);
        let softmax_f32 = emit_softmax_f32(asm, sf, math);
        let softmax_accel = emit_softmax_accel(asm);
        let gelu_f32 = emit_gelu_f32(asm, math);
        let gelu_accel = emit_gelu_accel(asm);
        let attention_f32 = emit_attention_f32(asm, matmul_f32, scale_f32, softmax_f32);
        let attention_q = match isa {
            KernelIsa::Rv32im => emit_attention_q(
                asm,
                matmul_qq,
                dequant,
                requant,
                scale_f32,
                softmax_f32,
                softmax_accel,
            ),
            KernelIsa::Xkwtdot => emit_attention_q_packed(
                asm,
                matmul_qq,
                dequant,
                requant,
                scale_f32,
                softmax_f32,
                softmax_accel,
            ),
        };
        let copy_strided = emit_copy_strided(asm);
        let ln_q = emit_ln_q(asm, dequant, requant, layer_norm_f32);
        let gelu_q = emit_gelu_q(asm, dequant, requant, gelu_f32, gelu_accel);
        Kernels {
            matmul_f32,
            matmul_q,
            matmul_qq,
            add_f32,
            add_sat_i16,
            copy_bytes,
            scale_f32,
            softmax_f32,
            softmax_accel,
            gelu_f32,
            gelu_accel,
            layer_norm_f32,
            dequant,
            requant,
            attention_f32,
            attention_q,
            copy_strided,
            ln_q,
            gelu_q,
        }
    }
}

/// `copy_strided(a0=dst, a1=src, a2=rows, a3=src_stride, a4=width)` —
/// leaf: gathers `width` bytes every `src_stride` bytes.
fn emit_copy_strided(asm: &mut Asm) -> Label {
    let entry = asm.here("k_copy_strided");
    let rowl = asm.new_label();
    let bytel = asm.new_label();
    let rowd = asm.new_label();
    let done = asm.new_label();
    asm.bind(rowl).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.mv(T0, A4);
    asm.mv(T1, A1);
    asm.bind(bytel).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: T0,
            rs2: Zero,
            offset: 0,
        },
        rowd,
    );
    asm.emit(Inst::Lbu {
        rd: T3,
        rs1: T1,
        imm: 0,
    });
    asm.emit(Inst::Sb {
        rs2: T3,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: -1,
    });
    asm.jump_to(bytel);
    asm.bind(rowd).expect("fresh");
    asm.emit(Inst::Add {
        rd: A1,
        rs1: A1,
        rs2: A3,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.jump_to(rowl);
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// `ln_q(a0=x16, a1=gamma, a2=beta, a3=rows, a4=cols, a5=params)` —
/// per-row dequantise → float LayerNorm → requantise.
fn emit_ln_q(asm: &mut Asm, dequant: Label, requant: Label, ln_f32: Label) -> Label {
    let entry = asm.here("k_ln_q");
    let saves = [Ra, S0, S1, S2, S3, S4, S5];
    let frame = prologue(asm, &saves);
    let row = asm.new_label();
    let done = asm.new_label();
    asm.mv(S0, A0); // x row
    asm.mv(S1, A1); // gamma
    asm.mv(S2, A2); // beta
    asm.mv(S3, A3); // rows
    asm.mv(S4, A4); // cols
    asm.mv(S5, A5); // params
    asm.bind(row).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S3,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.mv(A0, S0);
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S5,
        imm: ln_params::SCRATCH,
    });
    asm.mv(A2, S4);
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S5,
        imm: ln_params::DEQ,
    });
    asm.call(dequant);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S5,
        imm: ln_params::SCRATCH,
    });
    asm.mv(A1, S1);
    asm.mv(A2, S2);
    asm.li(A3, 1);
    asm.mv(A4, S4);
    asm.emit(Inst::Lw {
        rd: A5,
        rs1: S5,
        imm: ln_params::INV_N,
    });
    asm.emit(Inst::Lw {
        rd: A6,
        rs1: S5,
        imm: ln_params::EPS,
    });
    asm.call(ln_f32);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S5,
        imm: ln_params::SCRATCH,
    });
    asm.mv(A1, S0);
    asm.mv(A2, S4);
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S5,
        imm: ln_params::REQ,
    });
    asm.call(requant);
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: S4,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: S0,
        rs1: S0,
        rs2: T0,
    });
    asm.emit(Inst::Addi {
        rd: S3,
        rs1: S3,
        imm: -1,
    });
    asm.jump_to(row);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `gelu_q(a0=x16, a1=rows, a2=cols, a3=params)` — per-row dequantise →
/// (float | LUT) GELU → requantise.
fn emit_gelu_q(
    asm: &mut Asm,
    dequant: Label,
    requant: Label,
    gelu_f32: Label,
    gelu_accel: Label,
) -> Label {
    let entry = asm.here("k_gelu_q");
    let saves = [Ra, S0, S1, S2, S3];
    let frame = prologue(asm, &saves);
    let row = asm.new_label();
    let done = asm.new_label();
    let accel = asm.new_label();
    let after = asm.new_label();
    asm.mv(S0, A0);
    asm.mv(S1, A1);
    asm.mv(S2, A2);
    asm.mv(S3, A3);
    asm.bind(row).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S1,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.mv(A0, S0);
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S3,
        imm: gelu_params::SCRATCH,
    });
    asm.mv(A2, S2);
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S3,
        imm: gelu_params::DEQ,
    });
    asm.call(dequant);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S3,
        imm: gelu_params::SCRATCH,
    });
    asm.mv(A1, S2);
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: S3,
        imm: gelu_params::NONLINEARITY,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        accel,
    );
    asm.call(gelu_f32);
    asm.jump_to(after);
    asm.bind(accel).expect("fresh");
    asm.call(gelu_accel);
    asm.bind(after).expect("fresh");
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S3,
        imm: gelu_params::SCRATCH,
    });
    asm.mv(A1, S0);
    asm.mv(A2, S2);
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S3,
        imm: gelu_params::REQ,
    });
    asm.call(requant);
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: S2,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: S0,
        rs1: S0,
        rs2: T0,
    });
    asm.emit(Inst::Addi {
        rd: S1,
        rs1: S1,
        imm: -1,
    });
    asm.jump_to(row);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `matmul_f32(a0=A, a1=B, a2=bias|0, a3=out, a4=M, a5=K, a6=N)`.
fn emit_matmul_f32(asm: &mut Asm, sf: &SoftFloat) -> Label {
    let entry = asm.here("k_matmul_f32");
    let saves = [Ra, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11];
    let frame = prologue(asm, &saves);
    let outer = asm.new_label();
    let done = asm.new_label();
    let jloop = asm.new_label();
    let jdone = asm.new_label();
    let zinit = asm.new_label();
    let kinit = asm.new_label();
    let kloop = asm.new_label();

    asm.mv(S0, A0); // A row pointer
    asm.mv(S1, A1); // B
    asm.mv(S2, A2); // bias (0 = none)
    asm.mv(S3, A3); // out row pointer
    asm.mv(S4, A4); // M counter
    asm.mv(S5, A5); // K
    asm.emit(Inst::Slli {
        rd: S6,
        rs1: A6,
        shamt: 2,
    }); // N*4

    asm.bind(outer).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S4,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.li(S7, 0); // j4
    asm.bind(jloop).expect("fresh");
    asm.branch_to(
        Inst::Bgeu {
            rs1: S7,
            rs2: S6,
            offset: 0,
        },
        jdone,
    );
    // acc = bias ? bias[j] : 0.0
    asm.branch_to(
        Inst::Beq {
            rs1: S2,
            rs2: Zero,
            offset: 0,
        },
        zinit,
    );
    asm.emit(Inst::Add {
        rd: T0,
        rs1: S2,
        rs2: S7,
    });
    asm.emit(Inst::Lw {
        rd: S9,
        rs1: T0,
        imm: 0,
    });
    asm.jump_to(kinit);
    asm.bind(zinit).expect("fresh");
    asm.li(S9, 0);
    asm.bind(kinit).expect("fresh");
    asm.mv(S8, S5); // k counter
    asm.mv(S10, S0); // pa
    asm.emit(Inst::Add {
        rd: S11,
        rs1: S1,
        rs2: S7,
    }); // pw = B + j4
    asm.bind(kloop).expect("fresh");
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S10,
        imm: 0,
    });
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S11,
        imm: 0,
    });
    asm.call(sf.mul);
    asm.mv(A1, S9);
    asm.call(sf.add);
    asm.mv(S9, A0);
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: 4,
    });
    asm.emit(Inst::Add {
        rd: S11,
        rs1: S11,
        rs2: S6,
    });
    asm.emit(Inst::Addi {
        rd: S8,
        rs1: S8,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: S8,
            rs2: Zero,
            offset: 0,
        },
        kloop,
    );
    // out[i, j] = acc
    asm.emit(Inst::Add {
        rd: T0,
        rs1: S3,
        rs2: S7,
    });
    asm.emit(Inst::Sw {
        rs2: S9,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S7,
        rs1: S7,
        imm: 4,
    });
    asm.jump_to(jloop);
    asm.bind(jdone).expect("fresh");
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: S5,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: S0,
        rs1: S0,
        rs2: T0,
    });
    asm.emit(Inst::Add {
        rd: S3,
        rs1: S3,
        rs2: S6,
    });
    asm.emit(Inst::Addi {
        rd: S4,
        rs1: S4,
        imm: -1,
    });
    asm.jump_to(outer);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// Integer matmul, leaf routine (no calls):
/// `a0=A(i16), a1=B(i8 or i16), a2=bias(i32)|0, a3=out(i16), a4=M, a5=K,
/// a6=N, a7=arith-shift`. `wide_b` selects i16 B (activation-activation).
fn emit_matmul_int(asm: &mut Asm, name: &str, wide_b: bool) -> Label {
    let entry = asm.here(name);
    let outer = asm.new_label();
    let done = asm.new_label();
    let jloop = asm.new_label();
    let jdone = asm.new_label();
    let zinit = asm.new_label();
    let k0 = asm.new_label();
    let kloop = asm.new_label();
    let chk_lo = asm.new_label();
    let store_ok = asm.new_label();

    asm.bind(outer).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A4,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.li(T0, 0); // j
    asm.bind(jloop).expect("fresh");
    asm.branch_to(
        Inst::Bgeu {
            rs1: T0,
            rs2: A6,
            offset: 0,
        },
        jdone,
    );
    // acc = bias ? bias[j] : 0
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        zinit,
    );
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T0,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A2,
        rs2: T5,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T5,
        imm: 0,
    });
    asm.jump_to(k0);
    asm.bind(zinit).expect("fresh");
    asm.li(T2, 0);
    asm.bind(k0).expect("fresh");
    asm.mv(T1, A5); // k counter
    asm.mv(T3, A0); // pa
    if wide_b {
        asm.emit(Inst::Slli {
            rd: T4,
            rs1: T0,
            shamt: 1,
        });
        asm.emit(Inst::Add {
            rd: T4,
            rs1: A1,
            rs2: T4,
        }); // pw = B + 2j
    } else {
        asm.emit(Inst::Add {
            rd: T4,
            rs1: A1,
            rs2: T0,
        }); // pw = B + j
    }
    asm.bind(kloop).expect("fresh");
    asm.emit(Inst::Lh {
        rd: T5,
        rs1: T3,
        imm: 0,
    });
    if wide_b {
        asm.emit(Inst::Lh {
            rd: T6,
            rs1: T4,
            imm: 0,
        });
    } else {
        asm.emit(Inst::Lb {
            rd: T6,
            rs1: T4,
            imm: 0,
        });
    }
    asm.emit(Inst::Mul {
        rd: T5,
        rs1: T5,
        rs2: T6,
    });
    asm.emit(Inst::Add {
        rd: T2,
        rs1: T2,
        rs2: T5,
    });
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: 2,
    });
    if wide_b {
        asm.emit(Inst::Slli {
            rd: T5,
            rs1: A6,
            shamt: 1,
        });
        asm.emit(Inst::Add {
            rd: T4,
            rs1: T4,
            rs2: T5,
        });
    } else {
        asm.emit(Inst::Add {
            rd: T4,
            rs1: T4,
            rs2: A6,
        });
    }
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        kloop,
    );
    // shift back to the activation scale, saturate to i16
    asm.emit(Inst::Sra {
        rd: T2,
        rs1: T2,
        rs2: A7,
    });
    asm.li(T5, 32767);
    asm.branch_to(
        Inst::Bge {
            rs1: T5,
            rs2: T2,
            offset: 0,
        },
        chk_lo,
    );
    asm.mv(T2, T5);
    asm.bind(chk_lo).expect("fresh");
    asm.li(T6, -32768);
    asm.branch_to(
        Inst::Bge {
            rs1: T2,
            rs2: T6,
            offset: 0,
        },
        store_ok,
    );
    asm.mv(T2, T6);
    asm.bind(store_ok).expect("fresh");
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T0,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A3,
        rs2: T5,
    });
    asm.emit(Inst::Sh {
        rs2: T2,
        rs1: T5,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 1,
    });
    asm.jump_to(jloop);
    asm.bind(jdone).expect("fresh");
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: A5,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: A0,
        rs1: A0,
        rs2: T5,
    });
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: A6,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: A3,
        rs1: A3,
        rs2: T5,
    });
    asm.emit(Inst::Addi {
        rd: A4,
        rs1: A4,
        imm: -1,
    });
    asm.jump_to(outer);
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// Xkwtdot `matmul_q` over **transposed** weights, leaf:
/// `a0=A(i16, M×K row-major), a1=Wt(i8, N×K row-major), a2=bias(i32)|0,
/// a3=out(i16), a4=M, a5=K, a6=N, a7=arith-shift`.
///
/// Fast path (A 4-aligned, Wt 2-aligned, `K % 4 == 0`, `K > 0`): four
/// MACs per iteration — two `lw` A-operand loads, two `klw.b2h` widening
/// weight loads, two `kdot2.i16` accumulates — plus a `ksat.i16`
/// epilogue. Anything else runs the scalar loop over the same transposed
/// layout, so outputs are bit-identical either way (wrapping i32
/// accumulation is associative).
fn emit_matmul_qt_packed(asm: &mut Asm) -> Label {
    let entry = asm.here("k_matmul_qt_packed");
    let slow = asm.new_label();
    let outer = asm.new_label();
    let done = asm.new_label();
    let jloop = asm.new_label();
    let jdone = asm.new_label();
    let zinit = asm.new_label();
    let k0 = asm.new_label();
    let kloop = asm.new_label();

    // dispatch: fast path needs A % 4 == 0, Wt % 2 == 0, K % 4 == 0, K > 0
    asm.emit(Inst::Andi {
        rd: T0,
        rs1: A0,
        imm: 3,
    });
    asm.emit(Inst::Andi {
        rd: T1,
        rs1: A1,
        imm: 1,
    });
    asm.emit(Inst::Or {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.emit(Inst::Andi {
        rd: T1,
        rs1: A5,
        imm: 3,
    });
    asm.emit(Inst::Or {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T0,
            rs2: Zero,
            offset: 0,
        },
        slow,
    );
    asm.branch_to(
        Inst::Beq {
            rs1: A5,
            rs2: Zero,
            offset: 0,
        },
        slow,
    );

    asm.bind(outer).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A4,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.mv(T4, A1); // pw walks the whole Wt once per A row
    asm.li(T0, 0); // j
    asm.bind(jloop).expect("fresh");
    asm.branch_to(
        Inst::Bgeu {
            rs1: T0,
            rs2: A6,
            offset: 0,
        },
        jdone,
    );
    // acc = bias ? bias[j] : 0
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        zinit,
    );
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T0,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A2,
        rs2: T5,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T5,
        imm: 0,
    });
    asm.jump_to(k0);
    asm.bind(zinit).expect("fresh");
    asm.li(T2, 0);
    asm.bind(k0).expect("fresh");
    // k-loop: 8 MACs per iteration (counter pre-biased by -8 so the
    // loop needs no spare register for the bound), then an optional
    // 4-MAC tail for K % 8 == 4.
    let ktail = asm.new_label();
    let kdone = asm.new_label();
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: A5,
        imm: -8,
    });
    asm.mv(T3, A0); // pa
    asm.branch_to(
        Inst::Blt {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        ktail,
    );
    asm.bind(kloop).expect("fresh");
    for blk in 0..4 {
        asm.emit(Inst::KlwB2h {
            rd: T5,
            rs1: T4,
            imm: 2 * blk,
        });
        asm.emit(Inst::Lw {
            rd: T6,
            rs1: T3,
            imm: 4 * blk,
        });
        asm.emit(Inst::Packed {
            op: PackedOp::Kdot2I16,
            rd: T2,
            rs1: T6,
            rs2: T5,
        });
    }
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 8,
    });
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: 16,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -8,
    });
    asm.branch_to(
        Inst::Bge {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        kloop,
    );
    asm.bind(ktail).expect("fresh");
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 8,
    }); // remaining: 0 or 4
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        kdone,
    );
    for blk in 0..2 {
        asm.emit(Inst::KlwB2h {
            rd: T5,
            rs1: T4,
            imm: 2 * blk,
        });
        asm.emit(Inst::Lw {
            rd: T6,
            rs1: T3,
            imm: 4 * blk,
        });
        asm.emit(Inst::Packed {
            op: PackedOp::Kdot2I16,
            rd: T2,
            rs1: T6,
            rs2: T5,
        });
    }
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 4,
    });
    asm.bind(kdone).expect("fresh");
    // shift back to the activation scale, saturate, store
    asm.emit(Inst::Packed {
        op: PackedOp::KsatI16,
        rd: T2,
        rs1: T2,
        rs2: A7,
    });
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T0,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A3,
        rs2: T5,
    });
    asm.emit(Inst::Sh {
        rs2: T2,
        rs1: T5,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 1,
    });
    asm.jump_to(jloop);
    asm.bind(jdone).expect("fresh");
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: A5,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: A0,
        rs1: A0,
        rs2: T5,
    });
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: A6,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: A3,
        rs1: A3,
        rs2: T5,
    });
    asm.emit(Inst::Addi {
        rd: A4,
        rs1: A4,
        imm: -1,
    });
    asm.jump_to(outer);
    asm.bind(done).expect("fresh");
    asm.ret();

    // scalar fallback over the same transposed layout (any K, any
    // alignment) — contiguous weight walk, `ksat.i16` epilogue.
    let souter = asm.new_label();
    let sdone = asm.new_label();
    let sjloop = asm.new_label();
    let sjdone = asm.new_label();
    let szinit = asm.new_label();
    let sk0 = asm.new_label();
    let skloop = asm.new_label();
    let sepi = asm.new_label();
    asm.bind(slow).expect("fresh");
    asm.bind(souter).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A4,
            rs2: Zero,
            offset: 0,
        },
        sdone,
    );
    asm.mv(T4, A1);
    asm.li(T0, 0);
    asm.bind(sjloop).expect("fresh");
    asm.branch_to(
        Inst::Bgeu {
            rs1: T0,
            rs2: A6,
            offset: 0,
        },
        sjdone,
    );
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        szinit,
    );
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T0,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A2,
        rs2: T5,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T5,
        imm: 0,
    });
    asm.jump_to(sk0);
    asm.bind(szinit).expect("fresh");
    asm.li(T2, 0);
    asm.bind(sk0).expect("fresh");
    asm.mv(T1, A5);
    asm.mv(T3, A0);
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        sepi,
    );
    asm.bind(skloop).expect("fresh");
    asm.emit(Inst::Lh {
        rd: T5,
        rs1: T3,
        imm: 0,
    });
    asm.emit(Inst::Lb {
        rd: T6,
        rs1: T4,
        imm: 0,
    });
    asm.emit(Inst::Mul {
        rd: T5,
        rs1: T5,
        rs2: T6,
    });
    asm.emit(Inst::Add {
        rd: T2,
        rs1: T2,
        rs2: T5,
    });
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        skloop,
    );
    asm.bind(sepi).expect("fresh");
    asm.emit(Inst::Packed {
        op: PackedOp::KsatI16,
        rd: T2,
        rs1: T2,
        rs2: A7,
    });
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T0,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A3,
        rs2: T5,
    });
    asm.emit(Inst::Sh {
        rs2: T2,
        rs1: T5,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 1,
    });
    asm.jump_to(sjloop);
    asm.bind(sjdone).expect("fresh");
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: A5,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: A0,
        rs1: A0,
        rs2: T5,
    });
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: A6,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: A3,
        rs1: A3,
        rs2: T5,
    });
    asm.emit(Inst::Addi {
        rd: A4,
        rs1: A4,
        imm: -1,
    });
    asm.jump_to(souter);
    asm.bind(sdone).expect("fresh");
    asm.ret();
    entry
}

/// Xkwtdot `matmul_qq`, leaf: same contract and layout as the scalar
/// i16×i16 matmul (`a1 = B, K×N row-major`). The attention score rows
/// (`N == 1`, aligned, `K % 4 == 0`) take a `kdot2.i16` fast path —
/// there both operands are contiguous i16 vectors; every other shape
/// tail-jumps to the resident scalar loop with the arguments untouched.
fn emit_matmul_qq_packed(asm: &mut Asm, qq_scalar: Label) -> Label {
    let entry = asm.here("k_matmul_qq_packed");
    let slow = asm.new_label();
    let outer = asm.new_label();
    let done = asm.new_label();
    let zinit = asm.new_label();
    let k0 = asm.new_label();
    let kloop = asm.new_label();

    asm.li(T0, 1);
    asm.branch_to(
        Inst::Bne {
            rs1: A6,
            rs2: T0,
            offset: 0,
        },
        slow,
    );
    asm.emit(Inst::Or {
        rd: T0,
        rs1: A0,
        rs2: A1,
    });
    asm.emit(Inst::Andi {
        rd: T0,
        rs1: T0,
        imm: 3,
    });
    asm.emit(Inst::Andi {
        rd: T1,
        rs1: A5,
        imm: 3,
    });
    asm.emit(Inst::Or {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T0,
            rs2: Zero,
            offset: 0,
        },
        slow,
    );
    asm.branch_to(
        Inst::Beq {
            rs1: A5,
            rs2: Zero,
            offset: 0,
        },
        slow,
    );

    asm.bind(outer).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A4,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        zinit,
    );
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: A2,
        imm: 0,
    });
    asm.jump_to(k0);
    asm.bind(zinit).expect("fresh");
    asm.li(T2, 0);
    asm.bind(k0).expect("fresh");
    let ktail = asm.new_label();
    let kdone = asm.new_label();
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: A5,
        imm: -8,
    });
    asm.mv(T3, A0); // pa
    asm.mv(T4, A1); // pb (contiguous: N == 1)
    asm.branch_to(
        Inst::Blt {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        ktail,
    );
    asm.bind(kloop).expect("fresh");
    for blk in 0..4 {
        asm.emit(Inst::Lw {
            rd: T5,
            rs1: T3,
            imm: 4 * blk,
        });
        asm.emit(Inst::Lw {
            rd: T6,
            rs1: T4,
            imm: 4 * blk,
        });
        asm.emit(Inst::Packed {
            op: PackedOp::Kdot2I16,
            rd: T2,
            rs1: T5,
            rs2: T6,
        });
    }
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: 16,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 16,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -8,
    });
    asm.branch_to(
        Inst::Bge {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        kloop,
    );
    asm.bind(ktail).expect("fresh");
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 8,
    }); // remaining: 0 or 4
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        kdone,
    );
    for blk in 0..2 {
        asm.emit(Inst::Lw {
            rd: T5,
            rs1: T3,
            imm: 4 * blk,
        });
        asm.emit(Inst::Lw {
            rd: T6,
            rs1: T4,
            imm: 4 * blk,
        });
        asm.emit(Inst::Packed {
            op: PackedOp::Kdot2I16,
            rd: T2,
            rs1: T5,
            rs2: T6,
        });
    }
    asm.bind(kdone).expect("fresh");
    asm.emit(Inst::Packed {
        op: PackedOp::KsatI16,
        rd: T2,
        rs1: T2,
        rs2: A7,
    });
    asm.emit(Inst::Sh {
        rs2: T2,
        rs1: A3,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A3,
        rs1: A3,
        imm: 2,
    });
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: A5,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: A0,
        rs1: A0,
        rs2: T5,
    });
    asm.emit(Inst::Addi {
        rd: A4,
        rs1: A4,
        imm: -1,
    });
    asm.jump_to(outer);
    asm.bind(done).expect("fresh");
    asm.ret();
    // general shapes: the scalar kernel with identical layout
    asm.bind(slow).expect("fresh");
    asm.jump_to(qq_scalar);
    entry
}

/// Xkwtdot `add_sat_i16(a0=dst, a1=src, a2=len)` — the scalar loop with
/// the branchy clamp collapsed into one `ksat.i16` (shift 0), leaf.
fn emit_add_sat_i16_packed(asm: &mut Asm) -> Label {
    let entry = asm.here("k_add_sat_i16_packed");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.bind(lp).expect("fresh");
    asm.emit(Inst::Lh {
        rd: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Lh {
        rd: T1,
        rs1: A1,
        imm: 0,
    });
    asm.emit(Inst::Add {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KsatI16,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Sh {
        rs2: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        lp,
    );
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// Xkwtdot `dequant(a0=src i16, a1=dst f32, a2=len, a3=scale_bits 2^-y)`
/// — leaf, one `kcvt.h2f` per element. The shift is recovered from the
/// power-of-two scale's exponent field (`y = 127 - (bits >> 23)`), so
/// the calling convention matches the scalar kernel exactly.
fn emit_dequant_packed(asm: &mut Asm) -> Label {
    let entry = asm.here("k_dequant_packed");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.emit(Inst::Srli {
        rd: T0,
        rs1: A3,
        shamt: 23,
    });
    asm.li(T1, 127);
    asm.emit(Inst::Sub {
        rd: T0,
        rs1: T1,
        rs2: T0,
    }); // y
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.bind(lp).expect("fresh");
    asm.emit(Inst::Lh {
        rd: T2,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtH2F,
        rd: T2,
        rs1: T2,
        rs2: T0,
    });
    asm.emit(Inst::Sw {
        rs2: T2,
        rs1: A1,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        lp,
    );
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// Xkwtdot `requant(a0=src f32, a1=dst i16, a2=len, a3=scale_bits 2^y)`
/// — leaf, one `kcvt.f2h` (multiply, floor, saturate) per element,
/// replacing a soft-float multiply + float-to-int call chain.
fn emit_requant_packed(asm: &mut Asm) -> Label {
    let entry = asm.here("k_requant_packed");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.emit(Inst::Srli {
        rd: T0,
        rs1: A3,
        shamt: 23,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: -127,
    }); // y
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.bind(lp).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtF2H,
        rd: T2,
        rs1: T2,
        rs2: T0,
    });
    asm.emit(Inst::Sh {
        rs2: T2,
        rs1: A1,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        lp,
    );
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// `add_f32(a0=dst, a1=src, a2=len)` — `dst[i] += src[i]`.
fn emit_add_f32(asm: &mut Asm, sf: &SoftFloat) -> Label {
    let entry = asm.here("k_add_f32");
    let saves = [Ra, S0, S1, S2];
    let frame = prologue(asm, &saves);
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.mv(S0, A0);
    asm.mv(S1, A1);
    asm.mv(S2, A2);
    asm.bind(lp).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S0,
        imm: 0,
    });
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S1,
        imm: 0,
    });
    asm.call(sf.add);
    asm.emit(Inst::Sw {
        rs2: A0,
        rs1: S0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S0,
        rs1: S0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S1,
        rs1: S1,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S2,
        rs1: S2,
        imm: -1,
    });
    asm.jump_to(lp);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `add_sat_i16(a0=dst, a1=src, a2=len)` — saturating halfword add, leaf.
fn emit_add_sat_i16(asm: &mut Asm) -> Label {
    let entry = asm.here("k_add_sat_i16");
    let lp = asm.new_label();
    let done = asm.new_label();
    let chk_lo = asm.new_label();
    let store = asm.new_label();
    asm.bind(lp).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Lh {
        rd: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Lh {
        rd: T1,
        rs1: A1,
        imm: 0,
    });
    asm.emit(Inst::Add {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.li(T2, 32767);
    asm.branch_to(
        Inst::Bge {
            rs1: T2,
            rs2: T0,
            offset: 0,
        },
        chk_lo,
    );
    asm.mv(T0, T2);
    asm.bind(chk_lo).expect("fresh");
    asm.li(T2, -32768);
    asm.branch_to(
        Inst::Bge {
            rs1: T0,
            rs2: T2,
            offset: 0,
        },
        store,
    );
    asm.mv(T0, T2);
    asm.bind(store).expect("fresh");
    asm.emit(Inst::Sh {
        rs2: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.jump_to(lp);
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// `copy_bytes(a0=dst, a1=src, a2=len)` — leaf byte copy.
fn emit_copy_bytes(asm: &mut Asm) -> Label {
    let entry = asm.here("k_copy_bytes");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.bind(lp).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Lbu {
        rd: T0,
        rs1: A1,
        imm: 0,
    });
    asm.emit(Inst::Sb {
        rs2: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.jump_to(lp);
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// `scale_f32(a0=ptr, a1=len, a2=scale_bits)` — `ptr[i] *= scale`.
fn emit_scale_f32(asm: &mut Asm, sf: &SoftFloat) -> Label {
    let entry = asm.here("k_scale_f32");
    let saves = [Ra, S0, S1, S2];
    let frame = prologue(asm, &saves);
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.mv(S0, A0);
    asm.mv(S1, A1);
    asm.mv(S2, A2);
    asm.bind(lp).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S1,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S0,
        imm: 0,
    });
    asm.mv(A1, S2);
    asm.call(sf.mul);
    asm.emit(Inst::Sw {
        rs2: A0,
        rs1: S0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S0,
        rs1: S0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S1,
        rs1: S1,
        imm: -1,
    });
    asm.jump_to(lp);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `softmax_f32(a0=ptr, a1=len)` — eq. (10): subtract max, `expf`, one
/// soft division, scale.
fn emit_softmax_f32(asm: &mut Asm, sf: &SoftFloat, math: &MathLib) -> Label {
    let entry = asm.here("k_softmax_f32");
    let saves = [Ra, S0, S1, S2, S3, S4, S5];
    let frame = prologue(asm, &saves);
    let l1 = asm.new_label();
    let l1_done = asm.new_label();
    let no_upd = asm.new_label();
    let l2 = asm.new_label();
    let l2_done = asm.new_label();
    let l3 = asm.new_label();
    let l3_done = asm.new_label();

    asm.mv(S0, A0); // ptr
    asm.mv(S1, A1); // len
                    // pass 1: max
    asm.emit(Inst::Lw {
        rd: S3,
        rs1: S0,
        imm: 0,
    }); // max = ptr[0]
    asm.emit(Inst::Addi {
        rd: S2,
        rs1: S0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S5,
        rs1: S1,
        imm: -1,
    });
    asm.bind(l1).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S5,
            rs2: Zero,
            offset: 0,
        },
        l1_done,
    );
    asm.mv(A0, S3);
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S2,
        imm: 0,
    });
    asm.call(sf.lt);
    asm.branch_to(
        Inst::Beq {
            rs1: A0,
            rs2: Zero,
            offset: 0,
        },
        no_upd,
    );
    asm.emit(Inst::Lw {
        rd: S3,
        rs1: S2,
        imm: 0,
    });
    asm.bind(no_upd).expect("fresh");
    asm.emit(Inst::Addi {
        rd: S2,
        rs1: S2,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S5,
        rs1: S5,
        imm: -1,
    });
    asm.jump_to(l1);
    asm.bind(l1_done).expect("fresh");
    // pass 2: exp(x - max), accumulate the sum
    asm.li(S4, 0); // sum = 0.0f
    asm.mv(S2, S0);
    asm.mv(S5, S1);
    asm.bind(l2).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S5,
            rs2: Zero,
            offset: 0,
        },
        l2_done,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S2,
        imm: 0,
    });
    asm.mv(A1, S3);
    asm.call(sf.sub);
    asm.call(math.expf);
    asm.emit(Inst::Sw {
        rs2: A0,
        rs1: S2,
        imm: 0,
    });
    asm.mv(A1, S4);
    asm.call(sf.add);
    asm.mv(S4, A0);
    asm.emit(Inst::Addi {
        rd: S2,
        rs1: S2,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S5,
        rs1: S5,
        imm: -1,
    });
    asm.jump_to(l2);
    asm.bind(l2_done).expect("fresh");
    // inv = 1 / sum (the one expensive soft-float division)
    li_f32(asm, A0, 1.0);
    asm.mv(A1, S4);
    asm.call(sf.div);
    asm.mv(S4, A0);
    // pass 3: multiply by inv
    asm.mv(S2, S0);
    asm.mv(S5, S1);
    asm.bind(l3).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S5,
            rs2: Zero,
            offset: 0,
        },
        l3_done,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S2,
        imm: 0,
    });
    asm.mv(A1, S4);
    asm.call(sf.mul);
    asm.emit(Inst::Sw {
        rs2: A0,
        rs1: S2,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S2,
        rs1: S2,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S5,
        rs1: S5,
        imm: -1,
    });
    asm.jump_to(l3);
    asm.bind(l3_done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `softmax_accel(a0=ptr, a1=len)` — leaf, custom-instruction pipeline:
/// `ALU_TO_FIXED` → fixed max → `ALU_EXP` → integer sum → `ALU_INVERT` →
/// Q8.24 multiply → `ALU_TO_FLOAT`.
fn emit_softmax_accel(asm: &mut Asm) -> Label {
    let entry = asm.here("k_softmax_accel");
    let p1 = asm.new_label();
    let p1_done = asm.new_label();
    let no_upd = asm.new_label();
    let p2 = asm.new_label();
    let p2_done = asm.new_label();
    let p3 = asm.new_label();
    let p3_done = asm.new_label();

    // pass 1: to fixed (in place), track max
    asm.mv(T0, A0);
    asm.mv(T1, A1);
    asm.emit(Inst::Lui {
        rd: T2,
        imm: 0x8000_0000u32 as i32,
    }); // min i32
    asm.bind(p1).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        p1_done,
    );
    asm.emit(Inst::Lw {
        rd: T3,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::ToFixed,
        rd: T3,
        rs1: T3,
        rs2: Zero,
    });
    asm.emit(Inst::Sw {
        rs2: T3,
        rs1: T0,
        imm: 0,
    });
    asm.branch_to(
        Inst::Bge {
            rs1: T2,
            rs2: T3,
            offset: 0,
        },
        no_upd,
    );
    asm.mv(T2, T3);
    asm.bind(no_upd).expect("fresh");
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -1,
    });
    asm.jump_to(p1);
    asm.bind(p1_done).expect("fresh");
    // pass 2: e = ALU_EXP(max - x), sum in plain integer adds
    asm.mv(T0, A0);
    asm.mv(T1, A1);
    asm.li(T4, 0);
    asm.bind(p2).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        p2_done,
    );
    asm.emit(Inst::Lw {
        rd: T3,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Sub {
        rd: T3,
        rs1: T2,
        rs2: T3,
    }); // z = max - x >= 0
    asm.emit(Inst::Custom {
        op: CustomOp::Exp,
        rd: T3,
        rs1: T3,
        rs2: Zero,
    });
    asm.emit(Inst::Sw {
        rs2: T3,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Add {
        rd: T4,
        rs1: T4,
        rs2: T3,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -1,
    });
    asm.jump_to(p2);
    asm.bind(p2_done).expect("fresh");
    // invert the sum
    asm.emit(Inst::Custom {
        op: CustomOp::Invert,
        rd: T4,
        rs1: T4,
        rs2: Zero,
    });
    // pass 3: p = e * inv (Q8.24), back to float
    asm.mv(T0, A0);
    asm.mv(T1, A1);
    asm.bind(p3).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        p3_done,
    );
    asm.emit(Inst::Lw {
        rd: T3,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Mulhu {
        rd: T5,
        rs1: T3,
        rs2: T4,
    });
    asm.emit(Inst::Mul {
        rd: T6,
        rs1: T3,
        rs2: T4,
    });
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T5,
        shamt: 8,
    });
    asm.emit(Inst::Srli {
        rd: T6,
        rs1: T6,
        shamt: 24,
    });
    asm.emit(Inst::Or {
        rd: T5,
        rs1: T5,
        rs2: T6,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::ToFloat,
        rd: T5,
        rs1: T5,
        rs2: Zero,
    });
    asm.emit(Inst::Sw {
        rs2: T5,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -1,
    });
    asm.jump_to(p3);
    asm.bind(p3_done).expect("fresh");
    asm.ret();
    entry
}

/// `gelu_f32(a0=ptr, a1=len)` — scalar exact GELU per element.
fn emit_gelu_f32(asm: &mut Asm, math: &MathLib) -> Label {
    let entry = asm.here("k_gelu_f32");
    let saves = [Ra, S0, S1];
    let frame = prologue(asm, &saves);
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.mv(S0, A0);
    asm.mv(S1, A1);
    asm.bind(lp).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S1,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S0,
        imm: 0,
    });
    asm.call(math.gelu);
    asm.emit(Inst::Sw {
        rs2: A0,
        rs1: S0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S0,
        rs1: S0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S1,
        rs1: S1,
        imm: -1,
    });
    asm.jump_to(lp);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `gelu_accel(a0=ptr, a1=len)` — leaf: TO_FIXED → ALU_GELU → TO_FLOAT.
fn emit_gelu_accel(asm: &mut Asm) -> Label {
    let entry = asm.here("k_gelu_accel");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.bind(lp).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A1,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Lw {
        rd: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::ToFixed,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::Gelu,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::ToFloat,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Sw {
        rs2: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: -1,
    });
    asm.jump_to(lp);
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// Xkwtdot `scale_f32(a0=ptr, a1=len, a2=scale_bits)` — leaf: one
/// inline `kfmul.t` per element, same truncating result as the
/// call-based scalar kernel.
fn emit_scale_f32_packed(asm: &mut Asm) -> Label {
    let entry = asm.here("k_scale_f32_packed");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.branch_to(
        Inst::Beq {
            rs1: A1,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.bind(lp).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KfmulT,
        rd: T0,
        rs1: T0,
        rs2: A2,
    });
    asm.emit(Inst::Sw {
        rs2: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: A1,
            rs2: Zero,
            offset: 0,
        },
        lp,
    );
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// Xkwtdot `layer_norm_f32` — identical contract and float-operation
/// sequence to the scalar kernel, but every soft-float call collapsed
/// into an inline `kfadd.t`/`kfsub.t`/`kfmul.t` (the ops execute the
/// same truncating arithmetic, so results are bit-identical). Only
/// `rsqrtf` remains a call.
fn emit_layer_norm_f32_packed(asm: &mut Asm, math: &MathLib) -> Label {
    use PackedOp::{KfaddT, KfmulT, KfsubT};
    let entry = asm.here("k_layer_norm_f32_packed");
    let saves = [Ra, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11];
    let frame = prologue(asm, &saves);
    let row_loop = asm.new_label();
    let done = asm.new_label();
    let l1 = asm.new_label();
    let l1d = asm.new_label();
    let l2 = asm.new_label();
    let l2d = asm.new_label();
    let l3 = asm.new_label();
    let l3d = asm.new_label();

    asm.mv(S0, A0); // x row
    asm.mv(S1, A1); // gamma
    asm.mv(S2, A2); // beta
    asm.mv(S3, A3); // rows counter
    asm.mv(S4, A4); // cols
    asm.mv(S5, A5); // inv_n
    asm.mv(S6, A6); // eps
    asm.bind(row_loop).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S3,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    // mean = (Σ x) * inv_n
    asm.li(S8, 0);
    asm.mv(S9, S0);
    asm.mv(S10, S4);
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l1d,
    );
    asm.bind(l1).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: S9,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: S8,
        rs1: T1,
        rs2: S8,
    });
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l1,
    );
    asm.bind(l1d).expect("fresh");
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: S7,
        rs1: S8,
        rs2: S5,
    }); // mean
        // var = (Σ (x - mean)^2) * inv_n
    asm.li(S8, 0);
    asm.mv(S9, S0);
    asm.mv(S10, S4);
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l2d,
    );
    asm.bind(l2).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: S9,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfsubT,
        rd: T1,
        rs1: T1,
        rs2: S7,
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T1,
        rs2: T1,
    });
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: S8,
        rs1: T1,
        rs2: S8,
    });
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l2,
    );
    asm.bind(l2d).expect("fresh");
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: A0,
        rs1: S8,
        rs2: S5,
    }); // var
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: A0,
        rs1: A0,
        rs2: S6,
    }); // + eps
    asm.call(math.rsqrtf);
    asm.mv(S11, A0); // inv_std
                     // x = ((x - mean) * inv_std) * gamma + beta
    asm.mv(S9, S0);
    asm.mv(S10, S4);
    asm.li(S8, 0); // byte offset into gamma/beta
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l3d,
    );
    asm.bind(l3).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: S9,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfsubT,
        rd: T1,
        rs1: T1,
        rs2: S7,
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T1,
        rs2: S11,
    });
    asm.emit(Inst::Add {
        rd: T0,
        rs1: S1,
        rs2: S8,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T1,
        rs2: T2,
    });
    asm.emit(Inst::Add {
        rd: T0,
        rs1: S2,
        rs2: S8,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: T1,
        rs1: T1,
        rs2: T2,
    });
    asm.emit(Inst::Sw {
        rs2: T1,
        rs1: S9,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S8,
        rs1: S8,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l3,
    );
    asm.bind(l3d).expect("fresh");
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: S4,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: S0,
        rs1: S0,
        rs2: T0,
    });
    asm.emit(Inst::Addi {
        rd: S3,
        rs1: S3,
        imm: -1,
    });
    asm.jump_to(row_loop);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `layer_norm_f32(a0=x, a1=gamma, a2=beta, a3=rows, a4=cols,
/// a5=inv_n_bits, a6=eps_bits)` — per-row eqs. (4)–(5), `rsqrtf` for the
/// inverse standard deviation.
fn emit_layer_norm_f32(asm: &mut Asm, sf: &SoftFloat, math: &MathLib) -> Label {
    let entry = asm.here("k_layer_norm_f32");
    let saves = [Ra, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11];
    let frame = prologue(asm, &saves);
    let row_loop = asm.new_label();
    let done = asm.new_label();
    let l1 = asm.new_label();
    let l1d = asm.new_label();
    let l2 = asm.new_label();
    let l2d = asm.new_label();
    let l3 = asm.new_label();
    let l3d = asm.new_label();

    asm.mv(S0, A0); // x row
    asm.mv(S1, A1); // gamma
    asm.mv(S2, A2); // beta
    asm.mv(S3, A3); // rows counter
    asm.mv(S4, A4); // cols
    asm.mv(S5, A5); // inv_n
    asm.mv(S6, A6); // eps
    asm.bind(row_loop).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S3,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    // mean
    asm.li(S8, 0);
    asm.mv(S9, S0);
    asm.mv(S10, S4);
    asm.bind(l1).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l1d,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S9,
        imm: 0,
    });
    asm.mv(A1, S8);
    asm.call(sf.add);
    asm.mv(S8, A0);
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.jump_to(l1);
    asm.bind(l1d).expect("fresh");
    asm.mv(A0, S8);
    asm.mv(A1, S5);
    asm.call(sf.mul);
    asm.mv(S7, A0); // mean
                    // variance
    asm.li(S8, 0);
    asm.mv(S9, S0);
    asm.mv(S10, S4);
    asm.bind(l2).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l2d,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S9,
        imm: 0,
    });
    asm.mv(A1, S7);
    asm.call(sf.sub);
    asm.mv(A1, A0);
    asm.call(sf.mul); // (x-mean)^2
    asm.mv(A1, S8);
    asm.call(sf.add);
    asm.mv(S8, A0);
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.jump_to(l2);
    asm.bind(l2d).expect("fresh");
    asm.mv(A0, S8);
    asm.mv(A1, S5);
    asm.call(sf.mul); // var
    asm.mv(A1, S6);
    asm.call(sf.add); // var + eps
    asm.call(math.rsqrtf);
    asm.mv(S11, A0); // inv_std
                     // normalise the row
    asm.mv(S9, S0);
    asm.mv(S10, S4);
    asm.li(S8, 0); // byte offset into gamma/beta
    asm.bind(l3).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l3d,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S9,
        imm: 0,
    });
    asm.mv(A1, S7);
    asm.call(sf.sub);
    asm.mv(A1, S11);
    asm.call(sf.mul);
    asm.emit(Inst::Add {
        rd: T0,
        rs1: S1,
        rs2: S8,
    });
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: T0,
        imm: 0,
    });
    asm.call(sf.mul);
    asm.emit(Inst::Add {
        rd: T0,
        rs1: S2,
        rs2: S8,
    });
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: T0,
        imm: 0,
    });
    asm.call(sf.add);
    asm.emit(Inst::Sw {
        rs2: A0,
        rs1: S9,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S8,
        rs1: S8,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.jump_to(l3);
    asm.bind(l3d).expect("fresh");
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: S4,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: S0,
        rs1: S0,
        rs2: T0,
    });
    asm.emit(Inst::Addi {
        rd: S3,
        rs1: S3,
        imm: -1,
    });
    asm.jump_to(row_loop);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `dequant(a0=src i16, a1=dst f32, a2=len, a3=scale_bits 2^-y)`.
fn emit_dequant(asm: &mut Asm, sf: &SoftFloat) -> Label {
    let entry = asm.here("k_dequant");
    let saves = [Ra, S0, S1, S2, S3];
    let frame = prologue(asm, &saves);
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.mv(S0, A0);
    asm.mv(S1, A1);
    asm.mv(S2, A2);
    asm.mv(S3, A3);
    asm.bind(lp).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Lh {
        rd: A0,
        rs1: S0,
        imm: 0,
    });
    asm.call(sf.i2f);
    asm.mv(A1, S3);
    asm.call(sf.mul);
    asm.emit(Inst::Sw {
        rs2: A0,
        rs1: S1,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S0,
        rs1: S0,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: S1,
        rs1: S1,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S2,
        rs1: S2,
        imm: -1,
    });
    asm.jump_to(lp);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `requant(a0=src f32, a1=dst i16, a2=len, a3=scale_bits 2^y)` —
/// `floor(x * 2^y)` saturated to i16: the exact host semantics.
fn emit_requant(asm: &mut Asm, sf: &SoftFloat) -> Label {
    let entry = asm.here("k_requant");
    let saves = [Ra, S0, S1, S2, S3];
    let frame = prologue(asm, &saves);
    let lp = asm.new_label();
    let done = asm.new_label();
    let chk_lo = asm.new_label();
    let store = asm.new_label();
    asm.mv(S0, A0);
    asm.mv(S1, A1);
    asm.mv(S2, A2);
    asm.mv(S3, A3);
    asm.bind(lp).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S0,
        imm: 0,
    });
    asm.mv(A1, S3);
    asm.call(sf.mul);
    asm.call(sf.f2i_floor);
    asm.li(T0, 32767);
    asm.branch_to(
        Inst::Bge {
            rs1: T0,
            rs2: A0,
            offset: 0,
        },
        chk_lo,
    );
    asm.mv(A0, T0);
    asm.bind(chk_lo).expect("fresh");
    asm.li(T0, -32768);
    asm.branch_to(
        Inst::Bge {
            rs1: A0,
            rs2: T0,
            offset: 0,
        },
        store,
    );
    asm.mv(A0, T0);
    asm.bind(store).expect("fresh");
    asm.emit(Inst::Sh {
        rs2: A0,
        rs1: S1,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S0,
        rs1: S0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S1,
        rs1: S1,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: S2,
        rs1: S2,
        imm: -1,
    });
    asm.jump_to(lp);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `attention_f32(a0=Q, a1=K, a2=V, a3=out, a4=S, a5=dh, a6=row_buf,
/// a7=scale_bits)` — row-wise SDPA driver (eq. 1 via eq. 10).
fn emit_attention_f32(asm: &mut Asm, matmul: Label, scale: Label, softmax: Label) -> Label {
    use crate::regions::{BLOCK_ATTENTION, OP_MATMUL, OP_OTHER, OP_SOFTMAX};
    let entry = asm.here("k_attention_f32");
    let saves = [Ra, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10];
    let frame = prologue(asm, &saves);
    let row = asm.new_label();
    let done = asm.new_label();

    asm.mv(S0, A0); // Q
    asm.mv(S1, A1); // K
    asm.mv(S2, A2); // V
    asm.mv(S3, A3); // out
    asm.mv(S4, A4); // S
    asm.mv(S5, A5); // dh
    asm.mv(S6, A6); // row buffer
    asm.mv(S7, A7); // scale bits
    asm.mv(S8, S4); // row counter
    asm.mv(S9, S0); // q row ptr
    asm.mv(S10, S3); // out row ptr
    asm.bind(row).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S8,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    // scores_row = K (S x dh) * q_row (dh x 1)
    push_region(asm, BLOCK_ATTENTION | OP_MATMUL);
    asm.mv(A0, S1);
    asm.mv(A1, S9);
    asm.li(A2, 0);
    asm.mv(A3, S6);
    asm.mv(A4, S4);
    asm.mv(A5, S5);
    asm.li(A6, 1);
    asm.call(matmul);
    pop_region(asm);
    // scale by 1/sqrt(dh)
    push_region(asm, BLOCK_ATTENTION | OP_OTHER);
    asm.mv(A0, S6);
    asm.mv(A1, S4);
    asm.mv(A2, S7);
    asm.call(scale);
    pop_region(asm);
    // softmax
    push_region(asm, BLOCK_ATTENTION | OP_SOFTMAX);
    asm.mv(A0, S6);
    asm.mv(A1, S4);
    asm.call(softmax);
    pop_region(asm);
    // out_row = probs (1 x S) * V (S x dh)
    push_region(asm, BLOCK_ATTENTION | OP_MATMUL);
    asm.mv(A0, S6);
    asm.mv(A1, S2);
    asm.li(A2, 0);
    asm.mv(A3, S10);
    asm.li(A4, 1);
    asm.mv(A5, S4);
    asm.mv(A6, S5);
    asm.call(matmul);
    pop_region(asm);
    // advance row pointers
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: S5,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: S9,
        rs1: S9,
        rs2: T0,
    });
    asm.emit(Inst::Add {
        rd: S10,
        rs1: S10,
        rs2: T0,
    });
    asm.emit(Inst::Addi {
        rd: S8,
        rs1: S8,
        imm: -1,
    });
    asm.jump_to(row);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `attention_q(a0=Q, a1=K, a2=V, a3=out, a4=S, a5=dh, a6=row16,
/// a7=params)` — quantised row-wise SDPA with float or LUT softmax
/// (see [`attn_params`]).
#[allow(clippy::too_many_arguments)]
fn emit_attention_q(
    asm: &mut Asm,
    matmul_qq: Label,
    dequant: Label,
    requant: Label,
    scale: Label,
    softmax_f32: Label,
    softmax_accel: Label,
) -> Label {
    use crate::regions::{BLOCK_ATTENTION, OP_MATMUL, OP_OTHER, OP_QUANT, OP_SOFTMAX};
    let entry = asm.here("k_attention_q");
    let saves = [Ra, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10];
    let frame = prologue(asm, &saves);
    let row = asm.new_label();
    let done = asm.new_label();
    let use_accel = asm.new_label();
    let softmax_done = asm.new_label();

    asm.mv(S0, A0); // Q
    asm.mv(S1, A1); // K
    asm.mv(S2, A2); // V
    asm.mv(S3, A3); // out
    asm.mv(S4, A4); // S
    asm.mv(S5, A5); // dh
    asm.mv(S6, A6); // row16
    asm.mv(S7, A7); // params
    asm.mv(S8, S4); // counter
    asm.mv(S9, S0); // q row
    asm.mv(S10, S3); // out row
    asm.bind(row).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S8,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    // scores_row (i16) = K * q_row, shifted back to the activation scale
    push_region(asm, BLOCK_ATTENTION | OP_MATMUL);
    asm.mv(A0, S1);
    asm.mv(A1, S9);
    asm.li(A2, 0);
    asm.mv(A3, S6);
    asm.mv(A4, S4);
    asm.mv(A5, S5);
    asm.li(A6, 1);
    asm.emit(Inst::Lw {
        rd: A7,
        rs1: S7,
        imm: attn_params::SHIFT,
    });
    asm.call(matmul_qq);
    pop_region(asm);
    // dequantise the row to float scratch
    push_region(asm, BLOCK_ATTENTION | OP_QUANT);
    asm.mv(A0, S6);
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S7,
        imm: attn_params::ROWF,
    });
    asm.mv(A2, S4);
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S7,
        imm: attn_params::DEQ,
    });
    asm.call(dequant);
    pop_region(asm);
    // scale by 1/sqrt(dh)
    push_region(asm, BLOCK_ATTENTION | OP_OTHER);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S7,
        imm: attn_params::ROWF,
    });
    asm.mv(A1, S4);
    asm.emit(Inst::Lw {
        rd: A2,
        rs1: S7,
        imm: attn_params::INV_SQRT_DH,
    });
    asm.call(scale);
    pop_region(asm);
    // softmax (float or LUT)
    push_region(asm, BLOCK_ATTENTION | OP_SOFTMAX);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S7,
        imm: attn_params::ROWF,
    });
    asm.mv(A1, S4);
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: S7,
        imm: attn_params::NONLINEARITY,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        use_accel,
    );
    asm.call(softmax_f32);
    asm.jump_to(softmax_done);
    asm.bind(use_accel).expect("fresh");
    asm.call(softmax_accel);
    asm.bind(softmax_done).expect("fresh");
    pop_region(asm);
    // requantise probabilities
    push_region(asm, BLOCK_ATTENTION | OP_QUANT);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S7,
        imm: attn_params::ROWF,
    });
    asm.mv(A1, S6);
    asm.mv(A2, S4);
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S7,
        imm: attn_params::REQ,
    });
    asm.call(requant);
    pop_region(asm);
    // out_row = probs (1 x S) * V (S x dh), integer
    push_region(asm, BLOCK_ATTENTION | OP_MATMUL);
    asm.mv(A0, S6);
    asm.mv(A1, S2);
    asm.li(A2, 0);
    asm.mv(A3, S10);
    asm.li(A4, 1);
    asm.mv(A5, S4);
    asm.mv(A6, S5);
    asm.emit(Inst::Lw {
        rd: A7,
        rs1: S7,
        imm: attn_params::SHIFT,
    });
    asm.call(matmul_qq);
    pop_region(asm);
    // advance
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: S5,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: S9,
        rs1: S9,
        rs2: T0,
    });
    asm.emit(Inst::Add {
        rd: S10,
        rs1: S10,
        rs2: T0,
    });
    asm.emit(Inst::Addi {
        rd: S8,
        rs1: S8,
        imm: -1,
    });
    asm.jump_to(row);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// Xkwtdot `attention_q` — same contract as the scalar kernel (plus the
/// [`attn_params::VT`]/[`attn_params::KP`] fields and a `KP`-entry
/// `row16` buffer). Before the row loop it materialises a zero-padded
/// transpose of `V` (`dh × KP`, built once per call), which turns the
/// scalar-fallback `probs × V` product into a packed `Vᵀ × probs`
/// matrix-vector product on the `kdot2.i16` fast path. Padded lanes
/// multiply zero probabilities, so the wrapping-i32 accumulation — and
/// therefore every logit — is bit-identical to the scalar kernel.
#[allow(clippy::too_many_arguments)]
fn emit_attention_q_packed(
    asm: &mut Asm,
    matmul_qq: Label,
    dequant: Label,
    requant: Label,
    scale: Label,
    softmax_f32: Label,
    softmax_accel: Label,
) -> Label {
    use crate::regions::{BLOCK_ATTENTION, OP_MATMUL, OP_OTHER, OP_QUANT, OP_SOFTMAX};
    let entry = asm.here("k_attention_q_packed");
    let saves = [Ra, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11];
    let frame = prologue(asm, &saves);
    let row = asm.new_label();
    let done = asm.new_label();
    let use_accel = asm.new_label();
    let softmax_done = asm.new_label();
    let tj = asm.new_label();
    let tjd = asm.new_label();
    let tk = asm.new_label();
    let tkd = asm.new_label();
    let tz = asm.new_label();
    let tzd = asm.new_label();
    let pz = asm.new_label();
    let pzd = asm.new_label();

    asm.mv(S0, A0); // Q
    asm.mv(S1, A1); // K
    asm.mv(S2, A2); // V
    asm.mv(S3, A3); // out
    asm.mv(S4, A4); // S
    asm.mv(S5, A5); // dh
    asm.mv(S6, A6); // row16 (KP entries, tail zeroed below)
    asm.mv(S7, A7); // params
    asm.emit(Inst::Lw {
        rd: S11,
        rs1: S7,
        imm: attn_params::VT,
    });

    // ---- preamble: VT[j, k] = V[k, j], columns S..KP zero-padded ----
    push_region(asm, BLOCK_ATTENTION | OP_OTHER);
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: S7,
        imm: attn_params::KP,
    });
    asm.emit(Inst::Slli {
        rd: A0,
        rs1: S5,
        shamt: 1,
    }); // src column stride dh*2
    asm.li(T2, 0); // j
    asm.bind(tj).expect("fresh");
    asm.branch_to(
        Inst::Bgeu {
            rs1: T2,
            rs2: S5,
            offset: 0,
        },
        tjd,
    );
    asm.emit(Inst::Slli {
        rd: T3,
        rs1: T2,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: T3,
        rs1: S2,
        rs2: T3,
    }); // src = V + 2j
    asm.emit(Inst::Mul {
        rd: T4,
        rs1: T2,
        rs2: T1,
    });
    asm.emit(Inst::Slli {
        rd: T4,
        rs1: T4,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: T4,
        rs1: S11,
        rs2: T4,
    }); // dst = VT + j*KP*2
    asm.mv(T5, S4); // k counter
    asm.bind(tk).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: T5,
            rs2: Zero,
            offset: 0,
        },
        tkd,
    );
    asm.emit(Inst::Lh {
        rd: T6,
        rs1: T3,
        imm: 0,
    });
    asm.emit(Inst::Sh {
        rs2: T6,
        rs1: T4,
        imm: 0,
    });
    asm.emit(Inst::Add {
        rd: T3,
        rs1: T3,
        rs2: A0,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: T5,
        rs1: T5,
        imm: -1,
    });
    asm.jump_to(tk);
    asm.bind(tkd).expect("fresh");
    asm.emit(Inst::Sub {
        rd: T5,
        rs1: T1,
        rs2: S4,
    }); // pad count
    asm.bind(tz).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: T5,
            rs2: Zero,
            offset: 0,
        },
        tzd,
    );
    asm.emit(Inst::Sh {
        rs2: Zero,
        rs1: T4,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: T5,
        rs1: T5,
        imm: -1,
    });
    asm.jump_to(tz);
    asm.bind(tzd).expect("fresh");
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: 1,
    });
    asm.jump_to(tj);
    asm.bind(tjd).expect("fresh");
    // zero the probability pad tail once (requant never writes it)
    asm.emit(Inst::Sub {
        rd: T5,
        rs1: T1,
        rs2: S4,
    });
    asm.emit(Inst::Slli {
        rd: T3,
        rs1: S4,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: T3,
        rs1: S6,
        rs2: T3,
    });
    asm.bind(pz).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: T5,
            rs2: Zero,
            offset: 0,
        },
        pzd,
    );
    asm.emit(Inst::Sh {
        rs2: Zero,
        rs1: T3,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: 2,
    });
    asm.emit(Inst::Addi {
        rd: T5,
        rs1: T5,
        imm: -1,
    });
    asm.jump_to(pz);
    asm.bind(pzd).expect("fresh");
    pop_region(asm);

    asm.mv(S8, S4); // row counter
    asm.mv(S9, S0); // q row
    asm.mv(S10, S3); // out row
    asm.bind(row).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S8,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    // scores_row (i16) = K * q_row (packed N == 1 fast path)
    push_region(asm, BLOCK_ATTENTION | OP_MATMUL);
    asm.mv(A0, S1);
    asm.mv(A1, S9);
    asm.li(A2, 0);
    asm.mv(A3, S6);
    asm.mv(A4, S4);
    asm.mv(A5, S5);
    asm.li(A6, 1);
    asm.emit(Inst::Lw {
        rd: A7,
        rs1: S7,
        imm: attn_params::SHIFT,
    });
    asm.call(matmul_qq);
    pop_region(asm);
    // dequantise the row to float scratch
    push_region(asm, BLOCK_ATTENTION | OP_QUANT);
    asm.mv(A0, S6);
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S7,
        imm: attn_params::ROWF,
    });
    asm.mv(A2, S4);
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S7,
        imm: attn_params::DEQ,
    });
    asm.call(dequant);
    pop_region(asm);
    // scale by 1/sqrt(dh)
    push_region(asm, BLOCK_ATTENTION | OP_OTHER);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S7,
        imm: attn_params::ROWF,
    });
    asm.mv(A1, S4);
    asm.emit(Inst::Lw {
        rd: A2,
        rs1: S7,
        imm: attn_params::INV_SQRT_DH,
    });
    asm.call(scale);
    pop_region(asm);
    // softmax (float or LUT)
    push_region(asm, BLOCK_ATTENTION | OP_SOFTMAX);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S7,
        imm: attn_params::ROWF,
    });
    asm.mv(A1, S4);
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: S7,
        imm: attn_params::NONLINEARITY,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        use_accel,
    );
    asm.call(softmax_f32);
    asm.jump_to(softmax_done);
    asm.bind(use_accel).expect("fresh");
    asm.call(softmax_accel);
    asm.bind(softmax_done).expect("fresh");
    pop_region(asm);
    // requantise probabilities
    push_region(asm, BLOCK_ATTENTION | OP_QUANT);
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S7,
        imm: attn_params::ROWF,
    });
    asm.mv(A1, S6);
    asm.mv(A2, S4);
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S7,
        imm: attn_params::REQ,
    });
    asm.call(requant);
    pop_region(asm);
    // out_row = Vᵀ (dh × KP) * probs (KP × 1) — packed fast path; the
    // zero-padded lanes contribute nothing, so this equals the scalar
    // probs × V product bit-for-bit
    push_region(asm, BLOCK_ATTENTION | OP_MATMUL);
    asm.mv(A0, S11);
    asm.mv(A1, S6);
    asm.li(A2, 0);
    asm.mv(A3, S10);
    asm.mv(A4, S5);
    asm.emit(Inst::Lw {
        rd: A5,
        rs1: S7,
        imm: attn_params::KP,
    });
    asm.li(A6, 1);
    asm.emit(Inst::Lw {
        rd: A7,
        rs1: S7,
        imm: attn_params::SHIFT,
    });
    asm.call(matmul_qq);
    pop_region(asm);
    // advance
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: S5,
        shamt: 1,
    });
    asm.emit(Inst::Add {
        rd: S9,
        rs1: S9,
        rs2: T0,
    });
    asm.emit(Inst::Add {
        rd: S10,
        rs1: S10,
        rs2: T0,
    });
    asm.emit(Inst::Addi {
        rd: S8,
        rs1: S8,
        imm: -1,
    });
    asm.jump_to(row);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

// =====================================================================
// A8W8 kernels: fully-INT8 activations over `kdot4.i8`.
// =====================================================================

/// Byte offsets into the `ln_a8` parameter block.
pub mod a8_ln_params {
    /// f32 bits: stream dequantisation scale (`2^-y`).
    pub const DEQ: i32 = 0;
    /// f32 bits: stream requantisation scale (`2^y'`).
    pub const REQ: i32 = 4;
    /// f32 bits: `1/cols`.
    pub const INV_N: i32 = 8;
    /// f32 bits: layer-norm epsilon.
    pub const EPS: i32 = 12;
    /// u32: float scratch row address (≥ `cols` floats) caching the
    /// dequantised row across the three passes.
    pub const SCRATCH: i32 = 16;
    /// Total block size in bytes.
    pub const SIZE: usize = 20;
}

/// Byte offsets into the `attention_a8` parameter block.
pub mod a8_attn_params {
    /// u32: score epilogue shift (`2·attn_bits − score_bits`).
    pub const SHIFT_SCORES: i32 = 0;
    /// f32 bits: folded score dequantisation,
    /// `2^-score_bits / sqrt(dim_head)`.
    pub const SCORE_DEQ: i32 = 4;
    /// f32 bits: probability requantisation scale (`2^prob_bits`).
    pub const PROB_REQ: i32 = 8;
    /// u32: context epilogue shift (`prob_bits`).
    pub const SHIFT_CTX: i32 = 12;
    /// u32: address of the Q8.24 softmax scratch row (`S` words).
    pub const ROWF: i32 = 16;
    /// u32: address of the padded V-transpose scratch (`dh × KP` i8).
    pub const VT: i32 = 20;
    /// Total block size in bytes.
    pub const SIZE: usize = 24;
}

/// Entry labels of the A8W8 kernel set (always [`KernelIsa::Xkwtdot`]:
/// the whole point of the i8-activation pipeline is the 4-lane dot).
///
/// Calling conventions (ILP32, all leaf except `ln_a8`/`attention_a8`):
///
/// * `matmul_a8(A:i8, Wt:i8 N×K, bias:i32|0, out:i8, M, K, N, shift)` —
///   weights **transposed** like the i16 Xkwtdot GEMM; fast path needs
///   `A % 4 == 0`, `Wt % 4 == 0`, `K % 4 == 0` (16 MACs per unrolled
///   iteration, `ksat.i16` + `kclip 7` epilogue), anything else runs a
///   bit-identical scalar loop over the same layout.
/// * `add_sat_i8(dst, src, len)` — residual add, `kclip 7` clamp.
/// * `dequant8(src:i8, dst:f32, len, scale_bits)` — `kcvt.h2f` +
///   one truncating `kfmul.t` (supports scales below one).
/// * `requant8(src:f32, dst:i8, len, scale_bits)` — `kfmul.t` +
///   `kcvt.f2h` (floor) + `kclip 7`.
/// * `ln_a8(x:i8, gamma, beta, rows, cols, params)` — fused LayerNorm:
///   the row is dequantised once into the scratch row, `rsqrt` is
///   inlined, the write-back requantises (leaf).
/// * `gelu_a8(x:i8, len, deq_bits, req_bits)` — fused LUT GELU boundary.
/// * `attention_a8(Q, K, V, out, row8, params)` — the fused
///   scores→softmax→context row pipeline, **specialised at emit time**
///   for the model's `seqlen`/`dim_head` (see [`a8_attn_params`];
///   `row8` holds `KP = seqlen.next_multiple_of(4)` entries).
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct A8Kernels {
    pub matmul_a8: Label,
    pub add_sat_i8: Label,
    pub dequant8: Label,
    pub requant8: Label,
    pub ln_a8: Label,
    pub gelu_a8: Label,
    pub attention_a8: Label,
    pub copy_bytes: Label,
    pub copy_strided: Label,
}

impl A8Kernels {
    /// Emits the A8 kernel set. `seqlen` and `dim_head` specialise the
    /// fused attention kernel at emit time (its inner dot products are
    /// fully unrolled); `dim_head % 4 == 0` is required. The set is
    /// self-contained: it needs neither the soft-float library nor
    /// `MathLib` (`ln_a8`'s `rsqrt` is inlined over the packed `kf`
    /// ops), which keeps A8 images small.
    pub fn emit(asm: &mut Asm, seqlen: usize, dim_head: usize) -> A8Kernels {
        assert_eq!(dim_head % 4, 0, "attention_a8 needs dim_head % 4 == 0");
        let kp = (seqlen + 3) & !3;
        let copy_bytes = emit_copy_bytes(asm);
        let copy_strided = emit_copy_strided(asm);
        let matmul_a8 = emit_matmul_a8(asm);
        let add_sat_i8 = emit_add_sat_i8_a8(asm);
        let dequant8 = emit_dequant8(asm);
        let requant8 = emit_requant8(asm);
        let ln_a8 = emit_ln_a8(asm);
        let gelu_a8 = emit_gelu_a8(asm);
        let attention_a8 = emit_attention_a8(asm, seqlen, dim_head, kp);
        A8Kernels {
            matmul_a8,
            add_sat_i8,
            dequant8,
            requant8,
            ln_a8,
            gelu_a8,
            attention_a8,
            copy_bytes,
            copy_strided,
        }
    }
}

/// A8 GEMM over **transposed** weights, leaf:
/// `a0=A(i8, M×K), a1=Wt(i8, N×K), a2=bias(i32)|0, a3=out(i8), a4=M,
/// a5=K, a6=N, a7=shift`.
///
/// Fast path (`A % 4 == 0`, `Wt % 4 == 0`, `K % 4 == 0`, `K > 0`):
/// sixteen MACs per unrolled iteration — four `lw` activation loads,
/// four `lw` weight loads, four `kdot4.i8` accumulates — plus a 4-MAC
/// tail loop and a `ksat.i16` + `kclip 7` epilogue narrowing straight
/// to i8. Other shapes run the scalar loop over the same transposed
/// layout (wrapping i32 accumulation is associative, so results are
/// bit-identical either way).
fn emit_matmul_a8(asm: &mut Asm) -> Label {
    let entry = asm.here("k_matmul_a8");
    let slow = asm.new_label();
    let outer = asm.new_label();
    let done = asm.new_label();
    let jloop = asm.new_label();
    let jdone = asm.new_label();
    let zinit = asm.new_label();
    let k0 = asm.new_label();
    let kloop = asm.new_label();
    let ktail = asm.new_label();
    let tail4 = asm.new_label();
    let kdone = asm.new_label();

    // dispatch: fast path needs A % 4 == 0, Wt % 4 == 0, K % 4 == 0, K > 0
    asm.emit(Inst::Or {
        rd: T0,
        rs1: A0,
        rs2: A1,
    });
    asm.emit(Inst::Andi {
        rd: T0,
        rs1: T0,
        imm: 3,
    });
    asm.emit(Inst::Andi {
        rd: T1,
        rs1: A5,
        imm: 3,
    });
    asm.emit(Inst::Or {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T0,
            rs2: Zero,
            offset: 0,
        },
        slow,
    );
    asm.branch_to(
        Inst::Beq {
            rs1: A5,
            rs2: Zero,
            offset: 0,
        },
        slow,
    );

    asm.bind(outer).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A4,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.mv(T4, A1); // pw walks the whole Wt once per A row
    asm.li(T0, 0); // j
    asm.bind(jloop).expect("fresh");
    asm.branch_to(
        Inst::Bgeu {
            rs1: T0,
            rs2: A6,
            offset: 0,
        },
        jdone,
    );
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        zinit,
    );
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T0,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A2,
        rs2: T5,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T5,
        imm: 0,
    });
    asm.jump_to(k0);
    asm.bind(zinit).expect("fresh");
    asm.li(T2, 0);
    asm.bind(k0).expect("fresh");
    // main loop: 16 MACs per iteration, then a 4-MAC tail loop
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: A5,
        imm: -16,
    });
    asm.mv(T3, A0); // pa
    asm.branch_to(
        Inst::Blt {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        ktail,
    );
    asm.bind(kloop).expect("fresh");
    for blk in 0..4 {
        asm.emit(Inst::Lw {
            rd: T5,
            rs1: T3,
            imm: 4 * blk,
        });
        asm.emit(Inst::Lw {
            rd: T6,
            rs1: T4,
            imm: 4 * blk,
        });
        asm.emit(Inst::Packed {
            op: PackedOp::Kdot4I8,
            rd: T2,
            rs1: T5,
            rs2: T6,
        });
    }
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: 16,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 16,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -16,
    });
    asm.branch_to(
        Inst::Bge {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        kloop,
    );
    asm.bind(ktail).expect("fresh");
    // straight-line tail: the remainder is 0, 4, 8 or 12 — one optional
    // 8-MAC block and one optional 4-MAC block, no loop back-edges
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 16,
    });
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        kdone,
    );
    asm.emit(Inst::Addi {
        rd: T5,
        rs1: T1,
        imm: -8,
    });
    asm.branch_to(
        Inst::Blt {
            rs1: T5,
            rs2: Zero,
            offset: 0,
        },
        tail4,
    );
    for blk in 0..2 {
        asm.emit(Inst::Lw {
            rd: T5,
            rs1: T3,
            imm: 4 * blk,
        });
        asm.emit(Inst::Lw {
            rd: T6,
            rs1: T4,
            imm: 4 * blk,
        });
        asm.emit(Inst::Packed {
            op: PackedOp::Kdot4I8,
            rd: T2,
            rs1: T5,
            rs2: T6,
        });
    }
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: 8,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 8,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -8,
    });
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        kdone,
    );
    asm.bind(tail4).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T5,
        rs1: T3,
        imm: 0,
    });
    asm.emit(Inst::Lw {
        rd: T6,
        rs1: T4,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::Kdot4I8,
        rd: T2,
        rs1: T5,
        rs2: T6,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 4,
    });
    asm.bind(kdone).expect("fresh");
    // shift to the output scale, saturate to i16 then clip to i8, store
    asm.emit(Inst::Packed {
        op: PackedOp::KsatI16,
        rd: T2,
        rs1: T2,
        rs2: A7,
    });
    asm.li(T6, 7);
    asm.emit(Inst::Packed {
        op: PackedOp::Kclip,
        rd: T2,
        rs1: T2,
        rs2: T6,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A3,
        rs2: T0,
    });
    asm.emit(Inst::Sb {
        rs2: T2,
        rs1: T5,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 1,
    });
    asm.jump_to(jloop);
    asm.bind(jdone).expect("fresh");
    asm.emit(Inst::Add {
        rd: A0,
        rs1: A0,
        rs2: A5,
    });
    asm.emit(Inst::Add {
        rd: A3,
        rs1: A3,
        rs2: A6,
    });
    asm.emit(Inst::Addi {
        rd: A4,
        rs1: A4,
        imm: -1,
    });
    asm.jump_to(outer);
    asm.bind(done).expect("fresh");
    asm.ret();

    // scalar fallback over the same transposed layout (any K, any
    // alignment), identical epilogue.
    let souter = asm.new_label();
    let sdone = asm.new_label();
    let sjloop = asm.new_label();
    let sjdone = asm.new_label();
    let szinit = asm.new_label();
    let sk0 = asm.new_label();
    let skloop = asm.new_label();
    let sepi = asm.new_label();
    asm.bind(slow).expect("fresh");
    asm.bind(souter).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: A4,
            rs2: Zero,
            offset: 0,
        },
        sdone,
    );
    asm.mv(T4, A1);
    asm.li(T0, 0);
    asm.bind(sjloop).expect("fresh");
    asm.branch_to(
        Inst::Bgeu {
            rs1: T0,
            rs2: A6,
            offset: 0,
        },
        sjdone,
    );
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        szinit,
    );
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T0,
        shamt: 2,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A2,
        rs2: T5,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T5,
        imm: 0,
    });
    asm.jump_to(sk0);
    asm.bind(szinit).expect("fresh");
    asm.li(T2, 0);
    asm.bind(sk0).expect("fresh");
    asm.mv(T1, A5);
    asm.mv(T3, A0);
    asm.branch_to(
        Inst::Beq {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        sepi,
    );
    asm.bind(skloop).expect("fresh");
    asm.emit(Inst::Lb {
        rd: T5,
        rs1: T3,
        imm: 0,
    });
    asm.emit(Inst::Lb {
        rd: T6,
        rs1: T4,
        imm: 0,
    });
    asm.emit(Inst::Mul {
        rd: T5,
        rs1: T5,
        rs2: T6,
    });
    asm.emit(Inst::Add {
        rd: T2,
        rs1: T2,
        rs2: T5,
    });
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T1,
            rs2: Zero,
            offset: 0,
        },
        skloop,
    );
    asm.bind(sepi).expect("fresh");
    asm.emit(Inst::Packed {
        op: PackedOp::KsatI16,
        rd: T2,
        rs1: T2,
        rs2: A7,
    });
    asm.li(T6, 7);
    asm.emit(Inst::Packed {
        op: PackedOp::Kclip,
        rd: T2,
        rs1: T2,
        rs2: T6,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: A3,
        rs2: T0,
    });
    asm.emit(Inst::Sb {
        rs2: T2,
        rs1: T5,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 1,
    });
    asm.jump_to(sjloop);
    asm.bind(sjdone).expect("fresh");
    asm.emit(Inst::Add {
        rd: A0,
        rs1: A0,
        rs2: A5,
    });
    asm.emit(Inst::Add {
        rd: A3,
        rs1: A3,
        rs2: A6,
    });
    asm.emit(Inst::Addi {
        rd: A4,
        rs1: A4,
        imm: -1,
    });
    asm.jump_to(souter);
    asm.bind(sdone).expect("fresh");
    asm.ret();
    entry
}

/// `add_sat_i8(a0=dst, a1=src, a2=len)` — saturating byte residual add,
/// the branchy clamp collapsed into one `kclip 7`, leaf.
fn emit_add_sat_i8_a8(asm: &mut Asm) -> Label {
    let entry = asm.here("k_add_sat_i8");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.li(T2, 7);
    asm.bind(lp).expect("fresh");
    asm.emit(Inst::Lb {
        rd: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Lb {
        rd: T1,
        rs1: A1,
        imm: 0,
    });
    asm.emit(Inst::Add {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::Kclip,
        rd: T0,
        rs1: T0,
        rs2: T2,
    });
    asm.emit(Inst::Sb {
        rs2: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        lp,
    );
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// `dequant8(a0=src i8, a1=dst f32, a2=len, a3=scale_bits)` — leaf:
/// `kcvt.h2f` shift-0 (exact int→float) then one truncating `kfmul.t`
/// by an arbitrary power-of-two scale (which may be below one — the A8
/// stream exponents are signed).
fn emit_dequant8(asm: &mut Asm) -> Label {
    let entry = asm.here("k_dequant8");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.bind(lp).expect("fresh");
    asm.emit(Inst::Lb {
        rd: T2,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtH2F,
        rd: T2,
        rs1: T2,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KfmulT,
        rd: T2,
        rs1: T2,
        rs2: A3,
    });
    asm.emit(Inst::Sw {
        rs2: T2,
        rs1: A1,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        lp,
    );
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// `requant8(a0=src f32, a1=dst i8, a2=len, a3=scale_bits)` — leaf:
/// truncating `kfmul.t` by the scale, `kcvt.f2h` shift-0 (floor,
/// saturate to i16), `kclip 7` to the i8 range.
fn emit_requant8(asm: &mut Asm) -> Label {
    let entry = asm.here("k_requant8");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.branch_to(
        Inst::Beq {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.li(T5, 7);
    asm.bind(lp).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KfmulT,
        rd: T2,
        rs1: T2,
        rs2: A3,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtF2H,
        rd: T2,
        rs1: T2,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::Kclip,
        rd: T2,
        rs1: T2,
        rs2: T5,
    });
    asm.emit(Inst::Sb {
        rs2: T2,
        rs1: A1,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: A2,
        rs1: A2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: A2,
            rs2: Zero,
            offset: 0,
        },
        lp,
    );
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// `gelu_a8(a0=x i8, a1=len, a2=deq_bits, a3=req_bits)` — leaf: the
/// whole GELU boundary fused into one loop per element — dequantise
/// (`kcvt.h2f` + `kfmul.t`), the Q8.24 LUT pipeline (`ALU_TO_FIXED` →
/// `ALU_GELU` → `ALU_TO_FLOAT`), requantise (`kfmul.t` + `kcvt.f2h` +
/// `kclip 7`). No float scratch row, no calls.
fn emit_gelu_a8(asm: &mut Asm) -> Label {
    let entry = asm.here("k_gelu_a8");
    let lp = asm.new_label();
    let done = asm.new_label();
    asm.branch_to(
        Inst::Beq {
            rs1: A1,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.li(T4, 7);
    asm.bind(lp).expect("fresh");
    asm.emit(Inst::Lb {
        rd: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtH2F,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KfmulT,
        rd: T0,
        rs1: T0,
        rs2: A2,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::ToFixed,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::Gelu,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::ToFloat,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KfmulT,
        rd: T0,
        rs1: T0,
        rs2: A3,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtF2H,
        rd: T0,
        rs1: T0,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::Kclip,
        rd: T0,
        rs1: T0,
        rs2: T4,
    });
    asm.emit(Inst::Sb {
        rs2: T0,
        rs1: A0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: A1,
        rs1: A1,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: A1,
            rs2: Zero,
            offset: 0,
        },
        lp,
    );
    asm.bind(done).expect("fresh");
    asm.ret();
    entry
}

/// `ln_a8(a0=x i8, a1=gamma, a2=beta, a3=rows, a4=cols, a5=params)` —
/// fused quantised LayerNorm, **leaf**: pass 1 dequantises the row once
/// (`kcvt.h2f` + `kfmul.t`) into the float scratch row while summing,
/// passes 2–3 re-read the cached floats, the inverse standard deviation
/// is the math library's `rsqrtf` sequence inlined over `kfmul.t` /
/// `kfadd.t` (bit-identical — same magic seed and Newton steps, see
/// [`kwt_tensor::softfp::rsqrt`]), and the write-back requantises
/// straight to i8.
fn emit_ln_a8(asm: &mut Asm) -> Label {
    use PackedOp::{Kclip, KcvtF2H, KcvtH2F, KfaddT, KfmulT, KfsubT};
    let entry = asm.here("k_ln_a8");
    let saves = [S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11];
    let frame = prologue(asm, &saves);
    let row_loop = asm.new_label();
    let done = asm.new_label();
    let l1 = asm.new_label();
    let l1d = asm.new_label();
    let l2 = asm.new_label();
    let l2d = asm.new_label();
    let l3 = asm.new_label();
    let l3d = asm.new_label();

    asm.mv(S0, A0); // x row
    asm.mv(S1, A1); // gamma
    asm.mv(S2, A2); // beta
    asm.mv(S3, A3); // rows counter
    asm.mv(S4, A4); // cols
    asm.mv(S5, A5); // params
    asm.emit(Inst::Lw {
        rd: S6,
        rs1: S5,
        imm: a8_ln_params::DEQ,
    });
    // leaf: hoist every per-row constant into the argument registers
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S5,
        imm: a8_ln_params::SCRATCH,
    });
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S5,
        imm: a8_ln_params::REQ,
    });
    asm.emit(Inst::Lw {
        rd: A2,
        rs1: S5,
        imm: a8_ln_params::INV_N,
    });
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S5,
        imm: a8_ln_params::EPS,
    });
    li_f32(asm, A4, 1.5);
    li_f32(asm, A5, 0.5);
    asm.emit(Inst::Lui {
        rd: A6,
        imm: 0x8000_0000u32 as i32,
    }); // sign bit
    asm.li(A7, 0x5F37_59DFu32 as i32); // rsqrt magic seed
    asm.li(T3, 7);
    asm.bind(row_loop).expect("fresh");
    asm.branch_to(
        Inst::Beq {
            rs1: S3,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    // pass 1: cache conv(x) in the scratch row, sum → mean
    asm.li(S8, 0);
    asm.mv(S9, S0);
    asm.mv(S11, A0); // scratch ptr
    asm.mv(S10, S4);
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l1d,
    );
    asm.bind(l1).expect("fresh");
    asm.emit(Inst::Lb {
        rd: T1,
        rs1: S9,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KcvtH2F,
        rd: T1,
        rs1: T1,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T1,
        rs2: S6,
    });
    asm.emit(Inst::Sw {
        rs2: T1,
        rs1: S11,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: S8,
        rs1: T1,
        rs2: S8,
    });
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: S11,
        rs1: S11,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l1,
    );
    asm.bind(l1d).expect("fresh");
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: S7,
        rs1: S8,
        rs2: A2,
    }); // mean
        // pass 2: var = (Σ (x̂ - mean)²) * inv_n
    asm.li(S8, 0);
    asm.mv(S11, A0);
    asm.mv(S10, S4);
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l2d,
    );
    asm.bind(l2).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: S11,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfsubT,
        rd: T1,
        rs1: T1,
        rs2: S7,
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T1,
        rs2: T1,
    });
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: S8,
        rs1: T1,
        rs2: S8,
    });
    asm.emit(Inst::Addi {
        rd: S11,
        rs1: S11,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l2,
    );
    asm.bind(l2d).expect("fresh");
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T0,
        rs1: S8,
        rs2: A2,
    }); // var
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: T0,
        rs1: T0,
        rs2: A3,
    }); // + eps
        // inline rsqrt (the math library sequence, call-free):
        // xhalf = x*0.5; y = magic - (x>>1); 3 × y *= 1.5 - xhalf*y*y
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T0,
        rs2: A5,
    }); // xhalf
    asm.emit(Inst::Srli {
        rd: T2,
        rs1: T0,
        shamt: 1,
    });
    asm.emit(Inst::Sub {
        rd: T0,
        rs1: A7,
        rs2: T2,
    }); // y
    for _ in 0..3 {
        asm.emit(Inst::Packed {
            op: KfmulT,
            rd: T2,
            rs1: T0,
            rs2: T0,
        }); // y²
        asm.emit(Inst::Packed {
            op: KfmulT,
            rd: T2,
            rs1: T2,
            rs2: T1,
        }); // xhalf·y²
        asm.emit(Inst::Xor {
            rd: T2,
            rs1: T2,
            rs2: A6,
        }); // negate
        asm.emit(Inst::Packed {
            op: KfaddT,
            rd: T2,
            rs1: A4,
            rs2: T2,
        }); // 1.5 - …
        asm.emit(Inst::Packed {
            op: KfmulT,
            rd: T0,
            rs1: T2,
            rs2: T0,
        }); // y
    }
    asm.mv(S11, T0); // inv_std
                     // pass 3: x = requant(((x̂ - mean) * inv_std) * gamma + beta)
    asm.mv(S9, S0);
    asm.mv(S10, S4);
    asm.li(S8, 0); // byte offset into gamma/beta/scratch
    asm.branch_to(
        Inst::Beq {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l3d,
    );
    asm.bind(l3).expect("fresh");
    asm.emit(Inst::Add {
        rd: T0,
        rs1: A0,
        rs2: S8,
    });
    asm.emit(Inst::Lw {
        rd: T1,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfsubT,
        rd: T1,
        rs1: T1,
        rs2: S7,
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T1,
        rs2: S11,
    });
    asm.emit(Inst::Add {
        rd: T0,
        rs1: S1,
        rs2: S8,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T1,
        rs2: T2,
    });
    asm.emit(Inst::Add {
        rd: T0,
        rs1: S2,
        rs2: S8,
    });
    asm.emit(Inst::Lw {
        rd: T2,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: T1,
        rs1: T1,
        rs2: T2,
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T1,
        rs2: A1,
    });
    asm.emit(Inst::Packed {
        op: KcvtF2H,
        rd: T1,
        rs1: T1,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: Kclip,
        rd: T1,
        rs1: T1,
        rs2: T3,
    });
    asm.emit(Inst::Sb {
        rs2: T1,
        rs1: S9,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: S8,
        rs1: S8,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: S10,
            rs2: Zero,
            offset: 0,
        },
        l3,
    );
    asm.bind(l3d).expect("fresh");
    asm.emit(Inst::Add {
        rd: S0,
        rs1: S0,
        rs2: S4,
    });
    asm.emit(Inst::Addi {
        rd: S3,
        rs1: S3,
        imm: -1,
    });
    asm.jump_to(row_loop);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

/// `attention_a8(a0=Q, a1=K, a2=V, a3=out, a4=row8, a5=params)` — the
/// fused scores→softmax→context row pipeline, **specialised at emit
/// time** for one `(seqlen, dim_head)` geometry (see
/// [`a8_attn_params`]), leaf.
///
/// One call covers a whole head, and per query row *everything* is
/// inlined — there are no per-row calls at all:
///
/// 1. **scores** — `S` fully-unrolled `kdot4.i8` dot products
///    (`dh/4` packed MACs each, offset-addressed), `ksat.i16` +
///    `kclip 7` epilogues narrowing into the i8 score row;
/// 2. **softmax** — the Q8.24 LUT pipeline with the quantisation
///    boundaries *fused into its own passes*: pass 1 converts each i8
///    score straight through `kcvt.h2f` → `kfmul.t`(2^-y/√dh) →
///    `ALU_TO_FIXED` into the Q8.24 scratch row while tracking the
///    maximum; pass 2 is `ALU_EXP` + the integer sum; pass 3 multiplies
///    by `ALU_INVERT`'s reciprocal and requantises each probability in
///    place (`ALU_TO_FLOAT` → `kfmul.t` → `kcvt.f2h` → `kclip 7`) —
///    the float probability row never exists in memory;
/// 3. **context** — `dh` fully-unrolled `kdot4.i8` products of the
///    padded `Vᵀ` rows against the i8 probability row.
///
/// The arithmetic is exactly the de-fused sequence (host model:
/// `fixed_softmax` over the dequantised scores, then per-element
/// requantisation), so logits stay bit-identical to the golden model.
/// Requires 4-aligned Q/K/V/VT rows (`dh % 4 == 0`, the image builder
/// guarantees alignment); `row8` holds `KP = S.next_multiple_of(4)`
/// entries whose tail is zeroed once, so the padded context lanes
/// contribute nothing.
fn emit_attention_a8(asm: &mut Asm, s: usize, dh: usize, kp: usize) -> Label {
    use crate::regions::{BLOCK_ATTENTION, OP_MATMUL, OP_OTHER, OP_SOFTMAX};
    let entry = asm.here("k_attention_a8");
    let saves = [S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11];
    let frame = prologue(asm, &saves);
    let row = asm.new_label();
    let done = asm.new_label();

    asm.mv(S0, A0); // Q
    asm.mv(S1, A1); // K
    asm.mv(S2, A2); // V
    asm.mv(S3, A3); // out
    asm.mv(S4, A4); // row8 (KP entries)
    asm.mv(S5, A5); // params
                    // leaf: hoist the per-row constants
    asm.emit(Inst::Lw {
        rd: S6,
        rs1: S5,
        imm: a8_attn_params::ROWF,
    });
    asm.emit(Inst::Lw {
        rd: S7,
        rs1: S5,
        imm: a8_attn_params::SCORE_DEQ,
    });
    asm.emit(Inst::Lw {
        rd: S8,
        rs1: S5,
        imm: a8_attn_params::PROB_REQ,
    });
    asm.emit(Inst::Lw {
        rd: A6,
        rs1: S5,
        imm: a8_attn_params::SHIFT_SCORES,
    });
    asm.emit(Inst::Lw {
        rd: A7,
        rs1: S5,
        imm: a8_attn_params::SHIFT_CTX,
    });
    asm.li(A4, 7); // kclip range operand

    // ---- preamble: VT[j, l] = V[l, j] (i8), columns S..KP zeroed ----
    let tj = asm.new_label();
    let tk = asm.new_label();
    push_region(asm, BLOCK_ATTENTION | OP_OTHER);
    asm.emit(Inst::Lw {
        rd: A5,
        rs1: S5,
        imm: a8_attn_params::VT,
    });
    asm.li(T2, 0); // j
    asm.bind(tj).expect("fresh");
    asm.emit(Inst::Add {
        rd: T3,
        rs1: S2,
        rs2: T2,
    }); // src = V + j
    asm.li(T4, kp as i32);
    asm.emit(Inst::Mul {
        rd: T4,
        rs1: T2,
        rs2: T4,
    });
    asm.emit(Inst::Add {
        rd: T4,
        rs1: A5,
        rs2: T4,
    }); // dst = VT + j*KP
    asm.li(T5, s as i32); // l counter
    asm.bind(tk).expect("fresh");
    asm.emit(Inst::Lb {
        rd: T6,
        rs1: T3,
        imm: 0,
    });
    asm.emit(Inst::Sb {
        rs2: T6,
        rs1: T4,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T3,
        rs1: T3,
        imm: dh as i32,
    }); // next V row
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T4,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T5,
        rs1: T5,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T5,
            rs2: Zero,
            offset: 0,
        },
        tk,
    );
    for _ in s..kp {
        asm.emit(Inst::Sb {
            rs2: Zero,
            rs1: T4,
            imm: 0,
        });
        asm.emit(Inst::Addi {
            rd: T4,
            rs1: T4,
            imm: 1,
        });
    }
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: 1,
    });
    asm.li(T5, dh as i32);
    asm.branch_to(
        Inst::Bltu {
            rs1: T2,
            rs2: T5,
            offset: 0,
        },
        tj,
    );
    // zero the probability pad tail once
    for pad in s..kp {
        asm.emit(Inst::Sb {
            rs2: Zero,
            rs1: S4,
            imm: pad as i32,
        });
    }
    pop_region(asm);

    asm.li(S11, s as i32); // row counter
    asm.mv(S9, S0); // q row ptr
    asm.mv(S10, S3); // out row ptr
    asm.bind(row).expect("fresh");

    // 1. scores: row8[j] = clip(sat((q_row · k_row_j) >> shift_s))
    let sj = asm.new_label();
    push_region(asm, BLOCK_ATTENTION | OP_MATMUL);
    asm.mv(T0, S1); // k row ptr
    asm.mv(T1, S4); // score out ptr
    asm.li(T2, s as i32); // j counter
    asm.bind(sj).expect("fresh");
    asm.li(T3, 0); // acc
    emit::dot4_i8_unrolled(asm, T3, S9, T0, T4, T5, dh / 4, 0, 0);
    emit::sat_clip_i8(asm, T3, A6, A4);
    asm.emit(Inst::Sb {
        rs2: T3,
        rs1: T1,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: dh as i32,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T2,
            rs2: Zero,
            offset: 0,
        },
        sj,
    );
    pop_region(asm);

    // 2. fused Q8.24 softmax: i8 scores in, i8 probabilities out
    let p1 = asm.new_label();
    let no_upd = asm.new_label();
    let p2 = asm.new_label();
    let p3 = asm.new_label();
    push_region(asm, BLOCK_ATTENTION | OP_SOFTMAX);
    // pass 1: fixed = TO_FIXED(conv(score) * deq), track the maximum
    asm.mv(T0, S4); // score ptr
    asm.mv(T1, S6); // Q8.24 row ptr
    asm.li(T2, s as i32);
    asm.emit(Inst::Lui {
        rd: T3,
        imm: 0x8000_0000u32 as i32,
    }); // max = i32::MIN
    asm.bind(p1).expect("fresh");
    asm.emit(Inst::Lb {
        rd: T4,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtH2F,
        rd: T4,
        rs1: T4,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KfmulT,
        rd: T4,
        rs1: T4,
        rs2: S7,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::ToFixed,
        rd: T4,
        rs1: T4,
        rs2: Zero,
    });
    asm.emit(Inst::Sw {
        rs2: T4,
        rs1: T1,
        imm: 0,
    });
    asm.branch_to(
        Inst::Bge {
            rs1: T3,
            rs2: T4,
            offset: 0,
        },
        no_upd,
    );
    asm.mv(T3, T4);
    asm.bind(no_upd).expect("fresh");
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T2,
            rs2: Zero,
            offset: 0,
        },
        p1,
    );
    // pass 2: e = ALU_EXP(max - x), integer sum
    asm.mv(T1, S6);
    asm.li(T2, s as i32);
    asm.li(T5, 0); // sum
    asm.bind(p2).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T4,
        rs1: T1,
        imm: 0,
    });
    asm.emit(Inst::Sub {
        rd: T4,
        rs1: T3,
        rs2: T4,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::Exp,
        rd: T4,
        rs1: T4,
        rs2: Zero,
    });
    asm.emit(Inst::Sw {
        rs2: T4,
        rs1: T1,
        imm: 0,
    });
    asm.emit(Inst::Add {
        rd: T5,
        rs1: T5,
        rs2: T4,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T2,
            rs2: Zero,
            offset: 0,
        },
        p2,
    );
    asm.emit(Inst::Custom {
        op: CustomOp::Invert,
        rd: T5,
        rs1: T5,
        rs2: Zero,
    });
    // pass 3: p = (e * inv) Q8.24-product, requantised in place to i8
    asm.mv(T0, S4);
    asm.mv(T1, S6);
    asm.li(T2, s as i32);
    asm.bind(p3).expect("fresh");
    asm.emit(Inst::Lw {
        rd: T4,
        rs1: T1,
        imm: 0,
    });
    asm.emit(Inst::Mulhu {
        rd: T6,
        rs1: T4,
        rs2: T5,
    });
    asm.emit(Inst::Mul {
        rd: T4,
        rs1: T4,
        rs2: T5,
    });
    asm.emit(Inst::Slli {
        rd: T6,
        rs1: T6,
        shamt: 8,
    });
    asm.emit(Inst::Srli {
        rd: T4,
        rs1: T4,
        shamt: 24,
    });
    asm.emit(Inst::Or {
        rd: T4,
        rs1: T6,
        rs2: T4,
    });
    asm.emit(Inst::Custom {
        op: CustomOp::ToFloat,
        rd: T4,
        rs1: T4,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KfmulT,
        rd: T4,
        rs1: T4,
        rs2: S8,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtF2H,
        rd: T4,
        rs1: T4,
        rs2: Zero,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::Kclip,
        rd: T4,
        rs1: T4,
        rs2: A4,
    });
    asm.emit(Inst::Sb {
        rs2: T4,
        rs1: T0,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 4,
    });
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T2,
            rs2: Zero,
            offset: 0,
        },
        p3,
    );
    pop_region(asm);

    // 3. context: out[j] = clip(sat((VT_row_j · probs) >> shift_ctx))
    let cj = asm.new_label();
    push_region(asm, BLOCK_ATTENTION | OP_MATMUL);
    asm.emit(Inst::Lw {
        rd: T0,
        rs1: S5,
        imm: a8_attn_params::VT,
    });
    asm.mv(T1, S10); // out ptr
    asm.li(T2, dh as i32); // j counter
    asm.bind(cj).expect("fresh");
    asm.li(T3, 0); // acc
    emit::dot4_i8_unrolled(asm, T3, T0, S4, T4, T5, kp / 4, 0, 0);
    emit::sat_clip_i8(asm, T3, A7, A4);
    asm.emit(Inst::Sb {
        rs2: T3,
        rs1: T1,
        imm: 0,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: kp as i32,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: 1,
    });
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: T2,
            rs2: Zero,
            offset: 0,
        },
        cj,
    );
    pop_region(asm);

    // advance to the next query row
    asm.emit(Inst::Addi {
        rd: S9,
        rs1: S9,
        imm: dh as i32,
    });
    asm.emit(Inst::Addi {
        rd: S10,
        rs1: S10,
        imm: dh as i32,
    });
    asm.emit(Inst::Addi {
        rd: S11,
        rs1: S11,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: S11,
            rs2: Zero,
            offset: 0,
        },
        row,
    );
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_quant::LutSet;
    use kwt_rv32::{Machine, Platform};
    use kwt_tensor::{ops, qops, Mat};

    const IN_A: u32 = 0xA000;
    const IN_B: u32 = 0xA800;
    const OUT: u32 = 0xB000;
    const SCRATCH: u32 = 0xB800;

    #[test]
    fn matmul_f32_matches_host() {
        let a = Mat::from_fn(3, 4, |r, c| (r as f32 - 1.0) * 0.7 + c as f32 * 0.3);
        let b = Mat::from_fn(4, 2, |r, c| (c as f32 + 1.0) * 0.25 - r as f32 * 0.1);
        let bias = [0.5f32, -1.25];
        let m = run_with(
            &[
                (IN_A, f32s(a.as_slice())),
                (IN_B, f32s(b.as_slice())),
                (SCRATCH, f32s(&bias)),
            ],
            |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, SCRATCH as i32);
                asm.li(Reg::A3, OUT as i32);
                asm.li(Reg::A4, 3);
                asm.li(Reg::A5, 4);
                asm.li(Reg::A6, 2);
                asm.call(k.matmul_f32);
            },
        );
        let got = m.read_f32s(OUT, 6);
        let want = ops::linear(&a, &b, &bias).unwrap();
        for (g, w) in got.iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    /// Builds a machine with inputs pre-written, then runs.
    fn run_with(inputs: &[(u32, Vec<u8>)], setup: impl FnOnce(&mut Asm, &Kernels)) -> Machine {
        run_with_isa(KernelIsa::Rv32im, inputs, setup)
    }

    /// [`run_with`] over a chosen kernel ISA.
    fn run_with_isa(
        isa: KernelIsa,
        inputs: &[(u32, Vec<u8>)],
        setup: impl FnOnce(&mut Asm, &Kernels),
    ) -> Machine {
        let mut asm = Asm::new(0, 0x8000);
        let over = asm.new_label();
        asm.jump_to(over);
        let sf = SoftFloat::emit_with_isa(&mut asm, isa);
        let math = MathLib::emit(&mut asm, &sf);
        let kernels = Kernels::emit_with_isa(&mut asm, &sf, &math, isa);
        asm.bind(over).expect("fresh");
        asm.here("entry");
        setup(&mut asm, &kernels);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().expect("assembles");
        let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
        for (addr, bytes) in inputs {
            m.cpu.mem.write_bytes(*addr, bytes);
            m.cpu.invalidate_decode_cache(*addr, bytes.len() as u32);
        }
        m.run(500_000_000).expect("halts");
        m
    }

    /// The transposed weight layout the packed matmul expects.
    fn transpose_i8(m: &Mat<i8>) -> Vec<i8> {
        m.transpose().as_slice().to_vec()
    }

    fn f32s(v: &[f32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect()
    }
    fn i16s(v: &[i16]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }
    fn i8s(v: &[i8]) -> Vec<u8> {
        v.iter().map(|&x| x as u8).collect()
    }
    fn i32s(v: &[i32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn matmul_q_matches_host_exactly() {
        let a = Mat::from_fn(3, 5, |r, c| ((r * 5 + c) as i16 * 37) - 80);
        let w = Mat::from_fn(5, 4, |r, c| ((r * 4 + c) as i8).wrapping_mul(7));
        let bias: Vec<i32> = vec![100, -200, 300, 0];
        let shift = 4u32;
        let m = run_with(
            &[
                (IN_A, i16s(a.as_slice())),
                (IN_B, i8s(w.as_slice())),
                (SCRATCH, i32s(&bias)),
            ],
            |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, SCRATCH as i32);
                asm.li(Reg::A3, OUT as i32);
                asm.li(Reg::A4, 3);
                asm.li(Reg::A5, 5);
                asm.li(Reg::A6, 4);
                asm.li(Reg::A7, shift as i32);
                asm.call(k.matmul_q);
            },
        );
        let got = m.read_i16s(OUT, 12);
        let (want, _) = qops::matmul_i16_i8(&a, &w, Some(&bias), shift).unwrap();
        assert_eq!(got, want.as_slice());
    }

    #[test]
    fn matmul_qq_matches_host_exactly() {
        let a = Mat::from_fn(2, 6, |r, c| ((r * 6 + c) as i16 * 211) - 500);
        let b = Mat::from_fn(6, 3, |r, c| ((r * 3 + c) as i16 * 97) - 300);
        let shift = 5u32;
        let m = run_with(
            &[(IN_A, i16s(a.as_slice())), (IN_B, i16s(b.as_slice()))],
            |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, 0);
                asm.li(Reg::A3, OUT as i32);
                asm.li(Reg::A4, 2);
                asm.li(Reg::A5, 6);
                asm.li(Reg::A6, 3);
                asm.li(Reg::A7, shift as i32);
                asm.call(k.matmul_qq);
            },
        );
        let got = m.read_i16s(OUT, 6);
        let (want, _) = qops::matmul_i16_i16(&a, &b, shift).unwrap();
        assert_eq!(got, want.as_slice());
    }

    #[test]
    fn packed_matmul_q_matches_host_exactly() {
        // K = 8 exercises the kdot2/klw.b2h fast path; K = 5 the scalar
        // fallback over the transposed layout.
        for (m_rows, k_depth, n_cols) in [(3usize, 8usize, 4usize), (2, 5, 3), (4, 12, 1)] {
            let a = Mat::from_fn(m_rows, k_depth, |r, c| {
                ((r * k_depth + c) as i32 * 97 % 1701 - 850) as i16
            });
            let w = Mat::from_fn(k_depth, n_cols, |r, c| {
                ((r * n_cols + c) as i32 * 37 % 251 - 125) as i8
            });
            let bias: Vec<i32> = (0..n_cols).map(|j| j as i32 * 1000 - 500).collect();
            let shift = 6u32;
            let m = run_with_isa(
                KernelIsa::Xkwtdot,
                &[
                    (IN_A, i16s(a.as_slice())),
                    (IN_B, i8s(&transpose_i8(&w))),
                    (SCRATCH, i32s(&bias)),
                ],
                |asm, k| {
                    asm.li(Reg::A0, IN_A as i32);
                    asm.li(Reg::A1, IN_B as i32);
                    asm.li(Reg::A2, SCRATCH as i32);
                    asm.li(Reg::A3, OUT as i32);
                    asm.li(Reg::A4, m_rows as i32);
                    asm.li(Reg::A5, k_depth as i32);
                    asm.li(Reg::A6, n_cols as i32);
                    asm.li(Reg::A7, shift as i32);
                    asm.call(k.matmul_q);
                },
            );
            let got = m.read_i16s(OUT, m_rows * n_cols);
            let (want, _) = qops::matmul_i16_i8(&a, &w, Some(&bias), shift).unwrap();
            assert_eq!(got, want.as_slice(), "M={m_rows} K={k_depth} N={n_cols}");
        }
    }

    #[test]
    fn packed_matmul_qq_matches_host_exactly() {
        // N = 1 with K % 4 == 0: fast path. N = 3 and odd K: scalar
        // tail-jump. All must match the host reference bit-for-bit.
        for (m_rows, k_depth, n_cols) in [(5usize, 8usize, 1usize), (2, 6, 3), (3, 7, 1)] {
            let a = Mat::from_fn(m_rows, k_depth, |r, c| {
                ((r * k_depth + c) as i32 * 211 % 3001 - 1500) as i16
            });
            let b = Mat::from_fn(k_depth, n_cols, |r, c| {
                ((r * n_cols + c) as i32 * 131 % 2001 - 1000) as i16
            });
            let shift = 5u32;
            let m = run_with_isa(
                KernelIsa::Xkwtdot,
                &[(IN_A, i16s(a.as_slice())), (IN_B, i16s(b.as_slice()))],
                |asm, k| {
                    asm.li(Reg::A0, IN_A as i32);
                    asm.li(Reg::A1, IN_B as i32);
                    asm.li(Reg::A2, 0);
                    asm.li(Reg::A3, OUT as i32);
                    asm.li(Reg::A4, m_rows as i32);
                    asm.li(Reg::A5, k_depth as i32);
                    asm.li(Reg::A6, n_cols as i32);
                    asm.li(Reg::A7, shift as i32);
                    asm.call(k.matmul_qq);
                },
            );
            let got = m.read_i16s(OUT, m_rows * n_cols);
            let (want, _) = qops::matmul_i16_i16(&a, &b, shift).unwrap();
            assert_eq!(got, want.as_slice(), "M={m_rows} K={k_depth} N={n_cols}");
        }
    }

    #[test]
    fn packed_matmul_q_saturates_like_scalar() {
        // Large accumulators must saturate identically through ksat.i16.
        let a = Mat::from_fn(1, 4, |_, _| 32767i16);
        let w = Mat::from_fn(4, 2, |_, c| if c == 0 { 127i8 } else { -128 });
        let m = run_with_isa(
            KernelIsa::Xkwtdot,
            &[(IN_A, i16s(a.as_slice())), (IN_B, i8s(&transpose_i8(&w)))],
            |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, 0);
                asm.li(Reg::A3, OUT as i32);
                asm.li(Reg::A4, 1);
                asm.li(Reg::A5, 4);
                asm.li(Reg::A6, 2);
                asm.li(Reg::A7, 0);
                asm.call(k.matmul_q);
            },
        );
        let got = m.read_i16s(OUT, 2);
        let (want, _) = qops::matmul_i16_i8(&a, &w, None, 0).unwrap();
        assert_eq!(got, want.as_slice());
        assert_eq!(got, vec![32767, -32768]);
    }

    #[test]
    fn packed_add_sat_and_quant_round_trip_match_host() {
        // saturating residual add via ksat.i16
        let a = vec![32000i16, -32000, 7];
        let b = vec![1000i16, -1000, -10];
        let m = run_with_isa(
            KernelIsa::Xkwtdot,
            &[(IN_A, i16s(&a)), (IN_B, i16s(&b))],
            |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, 3);
                asm.call(k.add_sat_i16);
            },
        );
        assert_eq!(m.read_i16s(IN_A, 3), vec![32767, -32768, -3]);
        // kcvt-based dequant/requant: bit-exact vs the host quantiser
        let xs: Vec<i16> = vec![-3000, -5, 0, 7, 120, 30001];
        let m = run_with_isa(KernelIsa::Xkwtdot, &[(IN_A, i16s(&xs))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, OUT as i32);
            asm.li(Reg::A2, 6);
            asm.li(Reg::A3, (1.0f32 / 256.0).to_bits() as i32);
            asm.call(k.dequant);
            asm.li(Reg::A0, OUT as i32);
            asm.li(Reg::A1, SCRATCH as i32);
            asm.li(Reg::A2, 6);
            asm.li(Reg::A3, 256.0f32.to_bits() as i32);
            asm.call(k.requant);
        });
        let dequantised = m.read_f32s(OUT, 6);
        for (d, &q) in dequantised.iter().zip(&xs) {
            assert_eq!(*d, q as f32 / 256.0, "kcvt.h2f is exact");
        }
        assert_eq!(m.read_i16s(SCRATCH, 6), xs, "kcvt round trip");
        // floor semantics on fresh floats match the host quantiser
        let floats = vec![0.4f32, -0.4, 1.99, -1.99, 100.7, -3000.0];
        let m = run_with_isa(KernelIsa::Xkwtdot, &[(IN_A, f32s(&floats))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, OUT as i32);
            asm.li(Reg::A2, 6);
            asm.li(Reg::A3, 32.0f32.to_bits() as i32);
            asm.call(k.requant);
        });
        let got = m.read_i16s(OUT, 6);
        let (want, _) = qops::quantize_i16(&Mat::from_vec(1, 6, floats).unwrap(), 5);
        assert_eq!(got, want.as_slice());
    }

    #[test]
    fn packed_kernels_retire_fewer_instructions() {
        // The Xkwtdot GEMM must beat the scalar one by a wide margin on
        // a well-formed (aligned, K % 4 == 0) problem.
        let m_rows = 8usize;
        let k_depth = 16usize;
        let n_cols = 8usize;
        let a = Mat::from_fn(m_rows, k_depth, |r, c| (r + c) as i16 * 321);
        let w = Mat::from_fn(k_depth, n_cols, |r, c| ((r * 3 + c) as i8).wrapping_mul(5));
        let run = |isa: KernelIsa, wb: Vec<u8>| {
            let m = run_with_isa(isa, &[(IN_A, i16s(a.as_slice())), (IN_B, wb)], |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, 0);
                asm.li(Reg::A3, OUT as i32);
                asm.li(Reg::A4, m_rows as i32);
                asm.li(Reg::A5, k_depth as i32);
                asm.li(Reg::A6, n_cols as i32);
                asm.li(Reg::A7, 4);
                asm.call(k.matmul_q);
            });
            (
                m.read_i16s(OUT, m_rows * n_cols),
                m.cpu.cycles,
                m.cpu.instret,
            )
        };
        let (scalar_out, scalar_cycles, scalar_instret) = run(KernelIsa::Rv32im, i8s(w.as_slice()));
        let (packed_out, packed_cycles, packed_instret) =
            run(KernelIsa::Xkwtdot, i8s(&transpose_i8(&w)));
        assert_eq!(scalar_out, packed_out, "bit-identical results");
        assert!(
            packed_instret * 2 < scalar_instret,
            "packed GEMM should retire <1/2 the instructions: {packed_instret} vs {scalar_instret}"
        );
        assert!(
            packed_cycles * 2 < scalar_cycles,
            "packed GEMM should cost <1/2 the cycles: {packed_cycles} vs {scalar_cycles}"
        );
    }

    #[test]
    fn softmax_f32_matches_host() {
        let xs = vec![0.5f32, -1.0, 2.5, 0.0, 1.25, -0.75];
        let m = run_with(&[(IN_A, f32s(&xs))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, 6);
            asm.call(k.softmax_f32);
        });
        let got = m.read_f32s(IN_A, 6);
        let mut want = xs;
        ops::softmax_normalized(&mut want).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
        let sum: f32 = got.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_accel_matches_quant_golden_model() {
        let xs = vec![0.5f32, -1.0, 2.5, 0.0, 1.25, -0.75, 3.0, 0.1];
        let m = run_with(&[(IN_A, f32s(&xs))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, 8);
            asm.call(k.softmax_accel);
        });
        let got = m.read_f32s(IN_A, 8);
        let want = kwt_quant::fixed_softmax(&xs, &LutSet::new());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "bit-exact LUT softmax");
        }
    }

    #[test]
    fn gelu_kernels_match_references() {
        let xs = vec![-3.0f32, -1.0, -0.3, 0.0, 0.4, 1.2, 2.5];
        // float flavour vs exact GELU
        let m = run_with(&[(IN_A, f32s(&xs))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, 7);
            asm.call(k.gelu_f32);
        });
        for (g, &x) in m.read_f32s(IN_A, 7).iter().zip(&xs) {
            let w = kwt_tensor::math::gelu_exact(x);
            assert!((g - w).abs() < 2e-5, "gelu_f32({x}) = {g} want {w}");
        }
        // accelerated flavour vs the LUT golden model
        let m = run_with(&[(IN_A, f32s(&xs))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, 7);
            asm.call(k.gelu_accel);
        });
        let luts = LutSet::new();
        for (g, &x) in m.read_f32s(IN_A, 7).iter().zip(&xs) {
            let w = kwt_quant::fixed_gelu(x, &luts);
            assert_eq!(g.to_bits(), w.to_bits(), "gelu_accel({x})");
        }
    }

    #[test]
    fn layer_norm_matches_host() {
        let rows = 3usize;
        let cols = 5usize;
        let x = Mat::from_fn(rows, cols, |r, c| (r * cols + c) as f32 * 0.31 - 1.7);
        let gamma: Vec<f32> = (0..cols).map(|i| 0.5 + i as f32 * 0.2).collect();
        let beta: Vec<f32> = (0..cols).map(|i| -0.3 + i as f32 * 0.1).collect();
        let eps = 1e-5f32;
        let m = run_with(
            &[
                (IN_A, f32s(x.as_slice())),
                (IN_B, f32s(&gamma)),
                (SCRATCH, f32s(&beta)),
            ],
            |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, SCRATCH as i32);
                asm.li(Reg::A3, rows as i32);
                asm.li(Reg::A4, cols as i32);
                asm.li(Reg::A5, (1.0f32 / cols as f32).to_bits() as i32);
                asm.li(Reg::A6, eps.to_bits() as i32);
                asm.call(k.layer_norm_f32);
            },
        );
        let got = m.read_f32s(IN_A, rows * cols);
        let mut want = x.clone();
        ops::layer_norm_rows(&mut want, &gamma, &beta, eps).unwrap();
        for (g, w) in got.iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 2e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn quantisation_round_trip_matches_host() {
        let xs: Vec<i16> = vec![-300, -5, 0, 7, 120, 3000];
        // scale factor 32 = 2^5
        let m = run_with(&[(IN_A, i16s(&xs))], |asm, k| {
            // dequant to OUT (float), requant back to SCRATCH (i16)
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, OUT as i32);
            asm.li(Reg::A2, 6);
            asm.li(Reg::A3, (1.0f32 / 32.0).to_bits() as i32);
            asm.call(k.dequant);
            asm.li(Reg::A0, OUT as i32);
            asm.li(Reg::A1, SCRATCH as i32);
            asm.li(Reg::A2, 6);
            asm.li(Reg::A3, 32.0f32.to_bits() as i32);
            asm.call(k.requant);
        });
        // dequant must match host dequantize exactly
        let defl = m.read_f32s(OUT, 6);
        for (d, &q) in defl.iter().zip(&xs) {
            assert_eq!(*d, q as f32 / 32.0);
        }
        // round trip must reproduce the original values
        assert_eq!(m.read_i16s(SCRATCH, 6), xs);
        // floor semantics on fresh floats must match the host quantiser
        let floats = vec![0.4f32, -0.4, 1.99, -1.99, 100.7];
        let m = run_with(&[(IN_A, f32s(&floats))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, OUT as i32);
            asm.li(Reg::A2, 5);
            asm.li(Reg::A3, 32.0f32.to_bits() as i32);
            asm.call(k.requant);
        });
        let got = m.read_i16s(OUT, 5);
        let (want, _) = qops::quantize_i16(&Mat::from_vec(1, 5, floats).unwrap(), 5);
        assert_eq!(got, want.as_slice());
    }

    #[test]
    fn residual_adds_match_host() {
        // float
        let a = vec![1.0f32, -2.0, 0.5];
        let b = vec![0.25f32, 1.0, -1.5];
        let m = run_with(&[(IN_A, f32s(&a)), (IN_B, f32s(&b))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, IN_B as i32);
            asm.li(Reg::A2, 3);
            asm.call(k.add_f32);
        });
        assert_eq!(m.read_f32s(IN_A, 3), vec![1.25, -1.0, -1.0]);
        // i16 saturating
        let a = vec![32000i16, -5, 7];
        let b = vec![1000i16, 3, -10];
        let m = run_with(&[(IN_A, i16s(&a)), (IN_B, i16s(&b))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, IN_B as i32);
            asm.li(Reg::A2, 3);
            asm.call(k.add_sat_i16);
        });
        assert_eq!(m.read_i16s(IN_A, 3), vec![32767, -2, -3]);
    }

    #[test]
    fn attention_f32_matches_host_sdpa() {
        let s = 4usize;
        let dh = 3usize;
        let q = Mat::from_fn(s, dh, |r, c| (r as f32 * 0.4 - c as f32 * 0.2).sin());
        let k_mat = Mat::from_fn(s, dh, |r, c| (c as f32 * 0.5 - r as f32 * 0.3).cos());
        let v = Mat::from_fn(s, dh, |r, c| (r * dh + c) as f32 * 0.25 - 0.8);
        let scale = 1.0f32 / (dh as f32).sqrt();
        let m = run_with(
            &[
                (IN_A, f32s(q.as_slice())),
                (IN_B, f32s(k_mat.as_slice())),
                (SCRATCH, f32s(v.as_slice())),
            ],
            |asm, kr| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, SCRATCH as i32);
                asm.li(Reg::A3, OUT as i32);
                asm.li(Reg::A4, s as i32);
                asm.li(Reg::A5, dh as i32);
                asm.li(Reg::A6, 0xBC00);
                asm.li(Reg::A7, scale.to_bits() as i32);
                asm.call(kr.attention_f32);
            },
        );
        let got = m.read_f32s(OUT, s * dh);
        let want = ops::scaled_dot_product_attention(&q, &k_mat, &v).unwrap();
        for (g, w) in got.iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
        // attention regions were profiled
        let report = m.profile_report();
        assert!(report.attributed_cycles > 0);
    }

    /// [`run_with`] for the A8 kernel set (always Xkwtdot); the
    /// attention kernel is specialised for `(s, dh)`.
    fn run_with_a8_dims(
        s: usize,
        dh: usize,
        inputs: &[(u32, Vec<u8>)],
        setup: impl FnOnce(&mut Asm, &A8Kernels),
    ) -> Machine {
        let mut asm = Asm::new(0, 0x8000);
        let over = asm.new_label();
        asm.jump_to(over);
        let kernels = A8Kernels::emit(&mut asm, s, dh);
        asm.bind(over).expect("fresh");
        asm.here("entry");
        setup(&mut asm, &kernels);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().expect("assembles");
        let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
        for (addr, bytes) in inputs {
            m.cpu.mem.write_bytes(*addr, bytes);
            m.cpu.invalidate_decode_cache(*addr, bytes.len() as u32);
        }
        m.run(500_000_000).expect("halts");
        m
    }

    /// [`run_with_a8_dims`] at the KWT-Tiny geometry (the non-attention
    /// kernels do not depend on it).
    fn run_with_a8(inputs: &[(u32, Vec<u8>)], setup: impl FnOnce(&mut Asm, &A8Kernels)) -> Machine {
        run_with_a8_dims(27, 8, inputs, setup)
    }

    fn read_i8s(m: &Machine, addr: u32, len: usize) -> Vec<i8> {
        m.cpu
            .mem
            .read_bytes(addr, len)
            .iter()
            .map(|&b| b as i8)
            .collect()
    }

    #[test]
    fn matmul_a8_matches_host_oracle() {
        // K multiples of 4 take the kdot4 fast path (incl. the 16-MAC
        // unroll at K >= 16); K = 5 and 7 exercise the scalar fallback.
        for (m_rows, k_depth, n_cols) in [
            (3usize, 8usize, 4usize),
            (2, 5, 3),
            (4, 12, 1),
            (3, 20, 5),
            (1, 7, 2),
        ] {
            let a = Mat::from_fn(m_rows, k_depth, |r, c| {
                ((r * k_depth + c) as i32 * 97 % 251 - 125) as i8
            });
            let w = Mat::from_fn(k_depth, n_cols, |r, c| {
                ((r * n_cols + c) as i32 * 37 % 251 - 125) as i8
            });
            let bias: Vec<i32> = (0..n_cols).map(|j| j as i32 * 500 - 250).collect();
            let shift = 6u32;
            let m = run_with_a8(
                &[
                    (IN_A, i8s(a.as_slice())),
                    (IN_B, i8s(w.transpose().as_slice())),
                    (SCRATCH, i32s(&bias)),
                ],
                |asm, k| {
                    asm.li(Reg::A0, IN_A as i32);
                    asm.li(Reg::A1, IN_B as i32);
                    asm.li(Reg::A2, SCRATCH as i32);
                    asm.li(Reg::A3, OUT as i32);
                    asm.li(Reg::A4, m_rows as i32);
                    asm.li(Reg::A5, k_depth as i32);
                    asm.li(Reg::A6, n_cols as i32);
                    asm.li(Reg::A7, shift as i32);
                    asm.call(k.matmul_a8);
                },
            );
            let got = read_i8s(&m, OUT, m_rows * n_cols);
            let (want, _) = qops::matmul_i8_i8(&a, &w, Some(&bias), shift).unwrap();
            assert_eq!(got, want.as_slice(), "M={m_rows} K={k_depth} N={n_cols}");
        }
    }

    #[test]
    fn matmul_a8_saturates_like_oracle() {
        // Shift 0 with maximal operands drives the accumulator far past
        // the i8 range; the ksat+kclip epilogue must match the host clamp.
        let a = Mat::from_fn(1, 8, |_, c| if c % 2 == 0 { 127i8 } else { -128 });
        let w = Mat::from_fn(8, 2, |r, c| {
            if c == 0 {
                if r % 2 == 0 {
                    127i8
                } else {
                    -128
                }
            } else if r % 2 == 0 {
                -128
            } else {
                127
            }
        });
        let m = run_with_a8(
            &[
                (IN_A, i8s(a.as_slice())),
                (IN_B, i8s(w.transpose().as_slice())),
            ],
            |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, 0);
                asm.li(Reg::A3, OUT as i32);
                asm.li(Reg::A4, 1);
                asm.li(Reg::A5, 8);
                asm.li(Reg::A6, 2);
                asm.li(Reg::A7, 0);
                asm.call(k.matmul_a8);
            },
        );
        let got = read_i8s(&m, OUT, 2);
        let (want, _) = qops::matmul_i8_i8(&a, &w, None, 0).unwrap();
        assert_eq!(got, want.as_slice());
        assert_eq!(got, vec![127, -128]);
    }

    #[test]
    fn a8_add_and_quant_boundaries_match_host_mirrors() {
        use kwt_tensor::softfp;
        // saturating i8 residual add via kclip
        let a = vec![120i8, -120, 7, -1];
        let b = vec![100i8, -100, -10, 1];
        let m = run_with_a8(&[(IN_A, i8s(&a)), (IN_B, i8s(&b))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, IN_B as i32);
            asm.li(Reg::A2, 4);
            asm.call(k.add_sat_i8);
        });
        assert_eq!(read_i8s(&m, IN_A, 4), vec![127, -128, -3, 0]);
        // dequant8 with a scale below one (signed exponents), then
        // requant8 back — bit-exact vs the softfp host mirror
        let xs: Vec<i8> = vec![-128, -5, 0, 7, 100, 127];
        let deq = 0.25f32; // 2^-(-2)? no: value * 0.25 — stream exponent 2
        let req = 4.0f32;
        let m = run_with_a8(&[(IN_A, i8s(&xs))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, OUT as i32);
            asm.li(Reg::A2, 6);
            asm.li(Reg::A3, deq.to_bits() as i32);
            asm.call(k.dequant8);
            asm.li(Reg::A0, OUT as i32);
            asm.li(Reg::A1, SCRATCH as i32);
            asm.li(Reg::A2, 6);
            asm.li(Reg::A3, req.to_bits() as i32);
            asm.call(k.requant8);
        });
        let floats = m.read_f32s(OUT, 6);
        for (f, &q) in floats.iter().zip(&xs) {
            let want = f32::from_bits(softfp::mul((q as f32).to_bits(), deq.to_bits()));
            assert_eq!(f.to_bits(), want.to_bits(), "dequant8({q})");
        }
        assert_eq!(read_i8s(&m, SCRATCH, 6), xs, "round trip");
        // requant floor semantics on fresh floats
        let fresh = vec![0.4f32, -0.4, 1.99, -1.99, 100.7, -3000.0];
        let m = run_with_a8(&[(IN_A, f32s(&fresh))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, OUT as i32);
            asm.li(Reg::A2, 6);
            asm.li(Reg::A3, 8.0f32.to_bits() as i32);
            asm.call(k.requant8);
        });
        let got = read_i8s(&m, OUT, 6);
        for (g, &x) in got.iter().zip(&fresh) {
            let scaled = f32::from_bits(softfp::mul(x.to_bits(), 8.0f32.to_bits()));
            let want = (f64::from(scaled).floor() as i64).clamp(-128, 127) as i8;
            assert_eq!(*g, want, "requant8({x})");
        }
    }

    #[test]
    fn gelu_a8_matches_lut_golden_model() {
        use kwt_tensor::softfp;
        let luts = LutSet::new();
        let xs: Vec<i8> = vec![-128, -40, -8, -1, 0, 1, 9, 60, 127];
        let deq = 0.125f32;
        let req = 8.0f32;
        let m = run_with_a8(&[(IN_A, i8s(&xs))], |asm, k| {
            asm.li(Reg::A0, IN_A as i32);
            asm.li(Reg::A1, xs.len() as i32);
            asm.li(Reg::A2, deq.to_bits() as i32);
            asm.li(Reg::A3, req.to_bits() as i32);
            asm.call(k.gelu_a8);
        });
        let got = read_i8s(&m, IN_A, xs.len());
        for (g, &x) in got.iter().zip(&xs) {
            let f = f32::from_bits(softfp::mul((x as f32).to_bits(), deq.to_bits()));
            let gelu = kwt_quant::fixed_gelu(f, &luts);
            let scaled = f32::from_bits(softfp::mul(gelu.to_bits(), req.to_bits()));
            let want = (f64::from(scaled).floor() as i64).clamp(-128, 127) as i8;
            assert_eq!(*g, want, "gelu_a8({x})");
        }
    }

    #[test]
    fn ln_a8_matches_softfp_mirror() {
        use kwt_tensor::softfp;
        let rows = 3usize;
        let cols = 5usize;
        let x = Mat::from_fn(rows, cols, |r, c| ((r * cols + c) as i32 * 37 - 80) as i8);
        let gamma: Vec<f32> = (0..cols).map(|i| 0.5 + i as f32 * 0.2).collect();
        let beta: Vec<f32> = (0..cols).map(|i| -0.3 + i as f32 * 0.1).collect();
        let deq = 0.0625f32;
        let req = 16.0f32;
        let inv_n = 1.0f32 / cols as f32;
        let eps = 1e-5f32;
        let params: Vec<i32> = vec![
            deq.to_bits() as i32,
            req.to_bits() as i32,
            inv_n.to_bits() as i32,
            eps.to_bits() as i32,
            0xBC00, // float row cache
        ];
        let m = run_with_a8(
            &[
                (IN_A, i8s(x.as_slice())),
                (IN_B, f32s(&gamma)),
                (OUT, f32s(&beta)),
                (SCRATCH, i32s(&params)),
            ],
            |asm, k| {
                asm.li(Reg::A0, IN_A as i32);
                asm.li(Reg::A1, IN_B as i32);
                asm.li(Reg::A2, OUT as i32);
                asm.li(Reg::A3, rows as i32);
                asm.li(Reg::A4, cols as i32);
                asm.li(Reg::A5, SCRATCH as i32);
                asm.call(k.ln_a8);
            },
        );
        let got = read_i8s(&m, IN_A, rows * cols);
        // host mirror: the packed-LN float sequence over softfp ops
        let conv = |v: i8| softfp::mul((v as f32).to_bits(), deq.to_bits());
        let mut want = Vec::new();
        for r in 0..rows {
            let row = x.row(r);
            let mut sum = 0u32;
            for &v in row {
                sum = softfp::add(conv(v), sum);
            }
            let mean = softfp::mul(sum, inv_n.to_bits());
            let mut acc = 0u32;
            for &v in row {
                let d = softfp::sub(conv(v), mean);
                acc = softfp::add(softfp::mul(d, d), acc);
            }
            let inv_std = softfp::rsqrt(softfp::add(
                softfp::mul(acc, inv_n.to_bits()),
                eps.to_bits(),
            ));
            for (i, &v) in row.iter().enumerate() {
                let mut t = softfp::sub(conv(v), mean);
                t = softfp::mul(t, inv_std);
                t = softfp::mul(t, gamma[i].to_bits());
                t = softfp::add(t, beta[i].to_bits());
                let scaled = f32::from_bits(softfp::mul(t, req.to_bits()));
                want.push((f64::from(scaled).floor() as i64).clamp(-128, 127) as i8);
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn attention_a8_matches_host_row_pipeline() {
        use kwt_tensor::softfp;
        let luts = LutSet::new();
        let s = 5usize; // KP = 8: exercises the padded tail
        let dh = 4usize;
        let kp = (s + 3) & !3;
        let q = Mat::from_fn(s, dh, |r, c| ((r * dh + c) as i32 * 23 % 160 - 80) as i8);
        let kmat = Mat::from_fn(s, dh, |r, c| ((r * dh + c) as i32 * 41 % 160 - 80) as i8);
        let v = Mat::from_fn(s, dh, |r, c| ((r * dh + c) as i32 * 31 % 200 - 100) as i8);
        let shift_s = 3u32;
        let score_deq = (0.125f32) * (1.0 / (dh as f32).sqrt());
        let prob_req = 128.0f32;
        let shift_ctx = 7u32;
        const Q_AT: u32 = 0xA000;
        const K_AT: u32 = 0xA100;
        const V_AT: u32 = 0xA200;
        const OUT_AT: u32 = 0xA300;
        const ROW8: u32 = 0xA400;
        const ROWF: u32 = 0xA500;
        const VT: u32 = 0xA600;
        const PARAMS: u32 = 0xA700;
        let params: Vec<i32> = vec![
            shift_s as i32,
            score_deq.to_bits() as i32,
            prob_req.to_bits() as i32,
            shift_ctx as i32,
            ROWF as i32,
            VT as i32,
        ];
        let _ = kp;
        let m = run_with_a8_dims(
            s,
            dh,
            &[
                (Q_AT, i8s(q.as_slice())),
                (K_AT, i8s(kmat.as_slice())),
                (V_AT, i8s(v.as_slice())),
                (PARAMS, i32s(&params)),
            ],
            |asm, k| {
                asm.li(Reg::A0, Q_AT as i32);
                asm.li(Reg::A1, K_AT as i32);
                asm.li(Reg::A2, V_AT as i32);
                asm.li(Reg::A3, OUT_AT as i32);
                asm.li(Reg::A4, ROW8 as i32);
                asm.li(Reg::A5, PARAMS as i32);
                asm.call(k.attention_a8);
            },
        );
        let got = read_i8s(&m, OUT_AT, s * dh);
        // host mirror of the fused row pipeline
        let mut want = vec![0i8; s * dh];
        for i in 0..s {
            let mut row8 = vec![0i8; s];
            for j in 0..s {
                let mut acc: i32 = 0;
                for l in 0..dh {
                    acc = acc.wrapping_add(q[(i, l)] as i32 * kmat[(j, l)] as i32);
                }
                row8[j] = ((acc >> shift_s).clamp(-128, 127)) as i8;
            }
            let rowf: Vec<f32> = row8
                .iter()
                .map(|&sc| f32::from_bits(softfp::mul((sc as f32).to_bits(), score_deq.to_bits())))
                .collect();
            let probs = kwt_quant::fixed_softmax(&rowf, &luts);
            let p8: Vec<i8> = probs
                .iter()
                .map(|p| {
                    let scaled = f32::from_bits(softfp::mul(p.to_bits(), prob_req.to_bits()));
                    (f64::from(scaled).floor() as i64).clamp(-128, 127) as i8
                })
                .collect();
            for j in 0..dh {
                let mut acc: i32 = 0;
                for (l, &p) in p8.iter().enumerate() {
                    acc = acc.wrapping_add(v[(l, j)] as i32 * p as i32);
                }
                want[i * dh + j] = ((acc >> shift_ctx).clamp(-128, 127)) as i8;
            }
        }
        assert_eq!(got, want);
        // the fused kernel profiles its phases
        assert!(m.profile_report().attributed_cycles > 0);
    }

    fn fnv1a64_words(words: &[u32]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    #[test]
    fn a8_kernel_stream_is_pinned() {
        // FNV-1a-64 digests of the emitted A8 kernel text, recorded
        // before the attention emitter moved onto the shared
        // `kwt_rvasm::emit` helpers: the migration is a pure refactor
        // and must keep the instruction stream bit-identical. If a
        // *deliberate* kernel change lands, re-record the digests.
        for (s, dh, want) in [
            (27usize, 8usize, 0x267d_1029_534c_d685u64), // KWT-Tiny geometry
            (5, 4, 0x41b2_c9c8_ced3_0016u64),            // padded-tail geometry
        ] {
            let mut asm = Asm::new(0, 0x8000);
            let _ = A8Kernels::emit(&mut asm, s, dh);
            let p = asm.finish().expect("assembles");
            assert_eq!(
                fnv1a64_words(&p.text),
                want,
                "A8 kernel stream changed at s={s} dh={dh} (digest {:#018x})",
                fnv1a64_words(&p.text)
            );
        }
    }

    #[test]
    fn copy_bytes_works() {
        let m = run_with(&[(IN_A, vec![9u8, 8, 7, 6, 5])], |asm, k| {
            asm.li(Reg::A0, OUT as i32);
            asm.li(Reg::A1, IN_A as i32);
            asm.li(Reg::A2, 5);
            asm.call(k.copy_bytes);
        });
        assert_eq!(m.cpu.mem.read_bytes(OUT, 5), &[9, 8, 7, 6, 5]);
    }
}
