//! Transcendental float routines on top of [`crate::softfloat`] — the
//! bare-metal equivalents of the C library's `expf`, `erf` and the
//! `1/sqrt` that layer normalisation needs.
//!
//! Costs on the Ibex timing model (approximate): `expf` ≈ 1 000 cycles,
//! `erff` ≈ 2 500 cycles (it calls `expf` *and* pays a ~200-cycle
//! soft-float division), scalar GELU ≈ 3 000 cycles. These are the
//! numbers that make GELU and SoftMax dominate Figs. 3–5 and motivate the
//! paper's LUT instructions.

use crate::softfloat::SoftFloat;
use kwt_rvasm::{Asm, Inst, Label, Reg};

use Reg::{Ra, Sp, Zero, A0, A1, T0, T1, T2};

/// Entry labels of the math library.
#[derive(Debug, Clone, Copy)]
pub struct MathLib {
    /// `f32 expf(f32)` — range reduction + degree-6 Taylor Horner.
    pub expf: Label,
    /// `f32 erff(f32)` — Abramowitz & Stegun 7.1.26.
    pub erff: Label,
    /// `f32 rsqrtf(f32)` — magic-constant seed + 3 Newton iterations.
    pub rsqrtf: Label,
    /// `f32 gelu(f32)` — exact GELU via `erff` (paper eq. 7).
    pub gelu: Label,
}

/// Emits `addi sp, -frame; sw ra/s-regs` and returns the frame size.
pub(crate) fn prologue(asm: &mut Asm, saves: &[Reg]) -> i32 {
    let frame = ((saves.len() * 4).div_ceil(16) * 16) as i32;
    asm.emit(Inst::Addi {
        rd: Sp,
        rs1: Sp,
        imm: -frame,
    });
    for (i, &r) in saves.iter().enumerate() {
        asm.emit(Inst::Sw {
            rs2: r,
            rs1: Sp,
            imm: (i * 4) as i32,
        });
    }
    frame
}

/// Emits the matching restore + `ret`.
pub(crate) fn epilogue(asm: &mut Asm, saves: &[Reg], frame: i32) {
    for (i, &r) in saves.iter().enumerate() {
        asm.emit(Inst::Lw {
            rd: r,
            rs1: Sp,
            imm: (i * 4) as i32,
        });
    }
    asm.emit(Inst::Addi {
        rd: Sp,
        rs1: Sp,
        imm: frame,
    });
    asm.ret();
}

/// `li` of raw f32 bits.
pub(crate) fn li_f32(asm: &mut Asm, rd: Reg, value: f32) {
    asm.li(rd, value.to_bits() as i32);
}

/// Negates the float in `r` in place (`xor` with the sign bit).
pub(crate) fn negate_f32(asm: &mut Asm, r: Reg, scratch: Reg) {
    asm.emit(Inst::Lui {
        rd: scratch,
        imm: 0x8000_0000u32 as i32,
    });
    asm.emit(Inst::Xor {
        rd: r,
        rs1: r,
        rs2: scratch,
    });
}

impl MathLib {
    /// Emits the library, returning the entry labels.
    pub fn emit(asm: &mut Asm, sf: &SoftFloat) -> MathLib {
        let expf = emit_expf(asm, sf);
        let erff = emit_erff(asm, sf, expf);
        let rsqrtf = emit_rsqrtf(asm, sf);
        let gelu = emit_gelu(asm, sf, erff);
        MathLib {
            expf,
            erff,
            rsqrtf,
            gelu,
        }
    }
}

fn emit_expf(asm: &mut Asm, sf: &SoftFloat) -> Label {
    use Reg::{S0, S1, S2, S3};
    let entry = asm.here("m_expf");
    let saves = [Ra, S0, S1, S2, S3];
    let frame = prologue(asm, &saves);
    let ret_zero = asm.new_label();
    let ret_inf = asm.new_label();
    let done = asm.new_label();

    asm.mv(S0, A0);
    // clamp low: x < -87 -> 0
    li_f32(asm, A1, -87.0);
    asm.call(sf.lt);
    asm.branch_to(
        Inst::Bne {
            rs1: A0,
            rs2: Zero,
            offset: 0,
        },
        ret_zero,
    );
    // clamp high: 88.7 < x -> +inf
    li_f32(asm, A0, 88.7);
    asm.mv(A1, S0);
    asm.call(sf.lt);
    asm.branch_to(
        Inst::Bne {
            rs1: A0,
            rs2: Zero,
            offset: 0,
        },
        ret_inf,
    );
    // k = floor(x * log2(e) + 0.5)
    asm.mv(A0, S0);
    li_f32(asm, A1, std::f32::consts::LOG2_E);
    asm.call(sf.mul);
    li_f32(asm, A1, 0.5);
    asm.call(sf.add);
    asm.call(sf.f2i_floor);
    asm.mv(S1, A0); // k
                    // r = (x - k*ln2_hi) - k*ln2_lo  (split constant for accuracy)
    asm.call(sf.i2f); // a0 = k already
    asm.mv(S2, A0); // kf
    li_f32(asm, A1, 0.693_359_4); // ln2_hi
    asm.call(sf.mul);
    asm.mv(A1, A0);
    negate_f32(asm, A1, T0);
    asm.mv(A0, S0);
    asm.call(sf.add);
    asm.mv(S3, A0); // x - k*ln2_hi
    asm.mv(A0, S2);
    li_f32(asm, A1, -2.121_944_4e-4); // ln2_lo (ln2 - ln2_hi)
    asm.call(sf.mul);
    asm.mv(A1, A0);
    negate_f32(asm, A1, T0);
    asm.mv(A0, S3);
    asm.call(sf.add);
    asm.mv(S2, A0); // r
                    // Horner: acc = 1/720; acc = acc*r + c
    li_f32(asm, S3, 1.0 / 720.0);
    for c in [1.0 / 120.0, 1.0 / 24.0, 1.0 / 6.0, 0.5, 1.0, 1.0] {
        asm.mv(A0, S3);
        asm.mv(A1, S2);
        asm.call(sf.mul);
        li_f32(asm, A1, c);
        asm.call(sf.add);
        asm.mv(S3, A0);
    }
    // scale by 2^k via the exponent field
    asm.mv(A0, S3);
    asm.branch_to(
        Inst::Beq {
            rs1: A0,
            rs2: Zero,
            offset: 0,
        },
        done,
    );
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: A0,
        shamt: 1,
    });
    asm.emit(Inst::Srli {
        rd: T0,
        rs1: T0,
        shamt: 24,
    });
    asm.emit(Inst::Add {
        rd: T0,
        rs1: T0,
        rs2: S1,
    });
    asm.branch_to(
        Inst::Bge {
            rs1: Zero,
            rs2: T0,
            offset: 0,
        },
        ret_zero,
    );
    asm.li(T1, 255);
    asm.branch_to(
        Inst::Bge {
            rs1: T0,
            rs2: T1,
            offset: 0,
        },
        ret_inf,
    );
    asm.emit(Inst::Slli {
        rd: T2,
        rs1: A0,
        shamt: 9,
    });
    asm.emit(Inst::Srli {
        rd: T2,
        rs1: T2,
        shamt: 9,
    });
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: T0,
        shamt: 23,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: T2,
        rs2: T0,
    });
    asm.jump_to(done);
    asm.bind(ret_zero).expect("fresh label");
    asm.li(A0, 0);
    asm.jump_to(done);
    asm.bind(ret_inf).expect("fresh label");
    asm.li(A0, 0x7F80_0000u32 as i32);
    asm.bind(done).expect("fresh label");
    epilogue(asm, &saves, frame);
    entry
}

fn emit_erff(asm: &mut Asm, sf: &SoftFloat, expf: Label) -> Label {
    use Reg::{S0, S1, S2, S3};
    let entry = asm.here("m_erff");
    let saves = [Ra, S0, S1, S2, S3];
    let frame = prologue(asm, &saves);
    let ret_one = asm.new_label();
    let done = asm.new_label();

    // split sign, keep |x|
    asm.emit(Inst::Srli {
        rd: S1,
        rs1: A0,
        shamt: 31,
    });
    asm.emit(Inst::Slli {
        rd: S1,
        rs1: S1,
        shamt: 31,
    });
    asm.emit(Inst::Slli {
        rd: S0,
        rs1: A0,
        shamt: 1,
    });
    asm.emit(Inst::Srli {
        rd: S0,
        rs1: S0,
        shamt: 1,
    }); // |x|
        // |x| > 3.9 -> erf = ±1
    li_f32(asm, A0, 3.9);
    asm.mv(A1, S0);
    asm.call(sf.lt);
    asm.branch_to(
        Inst::Bne {
            rs1: A0,
            rs2: Zero,
            offset: 0,
        },
        ret_one,
    );
    // t = 1 / (1 + p|x|)
    asm.mv(A0, S0);
    li_f32(asm, A1, 0.327_591_1);
    asm.call(sf.mul);
    li_f32(asm, A1, 1.0);
    asm.call(sf.add);
    asm.mv(A1, A0);
    li_f32(asm, A0, 1.0);
    asm.call(sf.div);
    asm.mv(S2, A0); // t
                    // Horner on the A&S coefficients, then * t
    li_f32(asm, S3, 1.061_405_4);
    for c in [-1.453_152_1_f32, 1.421_413_8, -0.284_496_72, 0.254_829_6] {
        asm.mv(A0, S3);
        asm.mv(A1, S2);
        asm.call(sf.mul);
        li_f32(asm, A1, c);
        asm.call(sf.add);
        asm.mv(S3, A0);
    }
    asm.mv(A0, S3);
    asm.mv(A1, S2);
    asm.call(sf.mul);
    asm.mv(S3, A0); // y = poly(t) * t
                    // e = expf(-x^2)
    asm.mv(A0, S0);
    asm.mv(A1, S0);
    asm.call(sf.mul);
    negate_f32(asm, A0, T0);
    asm.call(expf);
    // result = 1 - y*e, with the original sign
    asm.mv(A1, S3);
    asm.call(sf.mul);
    asm.mv(A1, A0);
    negate_f32(asm, A1, T0);
    li_f32(asm, A0, 1.0);
    asm.call(sf.add);
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A0,
        rs2: S1,
    });
    asm.jump_to(done);
    asm.bind(ret_one).expect("fresh label");
    li_f32(asm, A0, 1.0);
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A0,
        rs2: S1,
    });
    asm.bind(done).expect("fresh label");
    epilogue(asm, &saves, frame);
    entry
}

fn emit_rsqrtf(asm: &mut Asm, sf: &SoftFloat) -> Label {
    use Reg::{S0, S1};
    let entry = asm.here("m_rsqrtf");
    let saves = [Ra, S0, S1];
    let frame = prologue(asm, &saves);

    asm.mv(S1, A0); // x bits
    li_f32(asm, A1, 0.5);
    asm.call(sf.mul);
    asm.mv(S0, A0); // xhalf
                    // magic seed
    asm.emit(Inst::Srli {
        rd: T0,
        rs1: S1,
        shamt: 1,
    });
    asm.li(T1, 0x5F37_59DFu32 as i32);
    asm.emit(Inst::Sub {
        rd: S1,
        rs1: T1,
        rs2: T0,
    }); // y
        // three Newton iterations: y = y * (1.5 - xhalf*y*y)
    for _ in 0..3 {
        asm.mv(A0, S1);
        asm.mv(A1, S1);
        asm.call(sf.mul); // y^2
        asm.mv(A1, S0);
        asm.call(sf.mul); // xhalf*y^2
        asm.mv(A1, A0);
        negate_f32(asm, A1, T0);
        li_f32(asm, A0, 1.5);
        asm.call(sf.add); // 1.5 - xhalf*y^2
        asm.mv(A1, S1);
        asm.call(sf.mul);
        asm.mv(S1, A0);
    }
    asm.mv(A0, S1);
    epilogue(asm, &saves, frame);
    entry
}

fn emit_gelu(asm: &mut Asm, sf: &SoftFloat, erff: Label) -> Label {
    use Reg::S0;
    let entry = asm.here("m_gelu");
    let saves = [Ra, S0];
    let frame = prologue(asm, &saves);
    asm.mv(S0, A0);
    li_f32(asm, A1, std::f32::consts::FRAC_1_SQRT_2);
    asm.call(sf.mul);
    asm.call(erff);
    li_f32(asm, A1, 1.0);
    asm.call(sf.add);
    asm.mv(A1, S0);
    asm.call(sf.mul);
    li_f32(asm, A1, 0.5);
    asm.call(sf.mul);
    epilogue(asm, &saves, frame);
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_rv32::{Machine, Platform};

    fn run_unary(which: &str, x: f32) -> (f32, u64) {
        let mut asm = Asm::new(0, 0xC000);
        let over = asm.new_label();
        asm.jump_to(over);
        let sf = SoftFloat::emit(&mut asm);
        let math = MathLib::emit(&mut asm, &sf);
        asm.bind(over).expect("fresh");
        asm.here("entry");
        asm.li(Reg::A0, x.to_bits() as i32);
        let target = match which {
            "expf" => math.expf,
            "erff" => math.erff,
            "rsqrtf" => math.rsqrtf,
            "gelu" => math.gelu,
            other => panic!("unknown {other}"),
        };
        asm.call(target);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().expect("assembles");
        let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
        let r = m.run(10_000_000).expect("halts");
        (f32::from_bits(r.exit_code), r.cycles)
    }

    #[test]
    fn expf_accuracy() {
        for i in -40..=16 {
            let x = i as f32 * 0.5;
            let (got, _) = run_unary("expf", x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 3e-6, "expf({x}) = {got}, want {want} (rel {rel})");
        }
    }

    #[test]
    fn expf_clamps() {
        assert_eq!(run_unary("expf", -200.0).0, 0.0);
        assert!(run_unary("expf", 200.0).0.is_infinite());
        let (one, _) = run_unary("expf", 0.0);
        assert!((one - 1.0).abs() < 1e-6);
    }

    #[test]
    fn erff_accuracy() {
        for i in -35..=35 {
            let x = i as f32 * 0.11;
            let (got, _) = run_unary("erff", x);
            let want = kwt_tensor::math::erf(x);
            assert!((got - want).abs() < 5e-6, "erff({x}) = {got}, want {want}");
        }
        assert_eq!(run_unary("erff", 5.0).0, 1.0);
        assert_eq!(run_unary("erff", -5.0).0, -1.0);
    }

    #[test]
    fn rsqrtf_accuracy() {
        for &x in &[1e-4f32, 0.01, 0.5, 1.0, 2.0, 9.0, 100.0, 12345.0] {
            let (got, _) = run_unary("rsqrtf", x);
            let want = 1.0 / x.sqrt();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-5, "rsqrtf({x}) = {got}, want {want} (rel {rel})");
        }
    }

    #[test]
    fn rsqrtf_matches_softfp_host_mirror() {
        // `kwt_tensor::softfp::rsqrt` is the host golden model the A8
        // LayerNorm mirror uses; pin the generated routine to it
        // bit-for-bit across magnitudes (incl. non-round values).
        for i in 0..64u32 {
            let x = f32::from_bits(0x3800_0000 + i * 0x0123_4567 % 0x0A00_0000);
            let (got, _) = run_unary("rsqrtf", x);
            let want = f32::from_bits(kwt_tensor::softfp::rsqrt(x.to_bits()));
            assert_eq!(got.to_bits(), want.to_bits(), "rsqrtf({x})");
        }
    }

    #[test]
    fn gelu_accuracy() {
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            let (got, _) = run_unary("gelu", x);
            let want = kwt_tensor::math::gelu_exact(x);
            assert!((got - want).abs() < 2e-5, "gelu({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn transcendentals_are_expensive() {
        // The motivation for ALU_GELU: hundreds-to-thousands of cycles per
        // scalar on the soft-float core.
        let (_, exp_cycles) = run_unary("expf", 1.0);
        let (_, gelu_cycles) = run_unary("gelu", 1.0);
        assert!(exp_cycles > 400, "expf too cheap: {exp_cycles}");
        assert!(gelu_cycles > 1_500, "gelu too cheap: {gelu_cycles}");
    }
}
