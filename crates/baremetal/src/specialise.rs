//! Emit-time kernel specialiser: a geometry-driven mini-compiler for
//! the A8 (fully-INT8) kernel set.
//!
//! PR 4's fused `attention_a8` emitter proved that baking one concrete
//! geometry into the instruction stream — loop bounds as immediates,
//! fully unrolled inner dot products, offset addressing instead of
//! pointer arithmetic — is worth ~1.5× on the Ibex timing model. This
//! module promotes that pattern into a small kernel generator over the
//! shared [`kwt_rvasm::emit`] helpers:
//!
//! * [`emit_gemm_a8_spec`] — a `kdot4.i8` GEMM specialised for one
//!   `(M, K, N)` geometry: the K dimension is fully (or block-)
//!   unrolled with straight-line tails, the activation row can be
//!   cached in callee-saved registers (one `lw` per four MACs instead
//!   of two), the N loop is column-blocked or fully unrolled with
//!   weight/bias/output strides folded into immediates, and every
//!   output ends in the fused `ksat.i16` + `kclip 7` requantising
//!   epilogue. Odd `K` compiles to straight-line scalar MACs; runtime
//!   misaligned bases dispatch to the generic `matmul_a8`, which stays
//!   in every image verbatim as the differential oracle and fallback.
//! * [`emit_ln_a8_spec`] — the fused LayerNorm with the column count
//!   baked in: all three passes (dequantise+sum, variance, normalise+
//!   requantise) are unrolled by a factor with offset addressing, the
//!   inline `rsqrt` unchanged. The arithmetic sequence is exactly the
//!   generic `ln_a8`'s, so results are bit-identical by construction.
//!
//! The unroll/blocking factors ([`GemmFactors`], [`LnFactors`]) are
//! **tuned, not guessed**: `paper tune-kernels` enumerates the factor
//! space per model geometry on the deterministic cycle counter, checks
//! every candidate bit-identical against the generic kernel, and
//! records the winners in `results/TUNED_KERNELS.txt` — a committed
//! artefact this module embeds ([`TunedKernels::embedded`]) and
//! [`crate::InferenceImage::build_a8`] consumes for every GEMM/LN call
//! site. `paper check-tuning` re-derives the table in CI and fails on
//! divergence (tuner determinism) or on any tuned kernel slower than
//! the generic one it replaces.

use crate::mathlib::{epilogue, li_f32, prologue};
use crate::BuildError;
use kwt_rvasm::{emit, Asm, Inst, Label, PackedOp, Reg};

use Reg::{Zero, A0, A1, A2, A3, A4, A5, A6, A7, T0, T1, T2, T3, T4, T5, T6};
use Reg::{S0, S1, S10, S11, S2, S3, S4, S5, S6, S7, S8, S9};

/// Callee-saved registers available for caching an activation row
/// (`K/4` words), in allocation order.
const GEMM_CACHE_REGS: [Reg; 8] = [S2, S3, S4, S5, S6, S7, S8, S9];

/// Instruction budget for one specialised row body — keeps generated
/// kernels a sane size (the image RAM budget is 64 kB) and every
/// emitted branch comfortably inside the B-type ±4 kB range.
const MAX_BODY_INSTS: usize = 2000;

/// One concrete GEMM geometry to specialise for. The emitted kernel
/// keeps the generic `matmul_a8` ABI (`a0=A, a1=Wt, a2=bias|0, a3=out,
/// a4=M, a5=K, a6=N, a7=shift`) so call sites are drop-in, but
/// `a4`/`a5`/`a6` are ignored on the specialised path — the caller
/// must pass exactly this geometry (the runtime values still matter
/// when a misaligned base dispatches to the generic fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GemmGeom {
    /// Rows of `A` (runtime loop, count baked as an immediate).
    pub m: usize,
    /// Depth (fully unrolled; `K % 4 == 0` takes the packed path).
    pub k: usize,
    /// Columns of the output / rows of the transposed weights.
    pub n: usize,
    /// Whether the kernel loads a bias word per output (`a2` must be a
    /// valid pointer) or starts each accumulator at zero (`a2` = 0).
    pub has_bias: bool,
}

/// Tuning factors of one specialised GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GemmFactors {
    /// Column blocking: outputs emitted straight-line per j-loop
    /// iteration. `>= n` means the whole row is straight-line code.
    pub j_unroll: usize,
    /// Depth unrolling in `kdot4.i8` blocks (4 MACs each) per k-loop
    /// iteration. `>= k/4` means the dot product is fully unrolled
    /// (always the case on the scalar odd-`K` path, which ignores
    /// this).
    pub k_unroll: usize,
    /// Cache the activation row in callee-saved registers (one weight
    /// load per 4 MACs). Requires the packed path and `k/4 <=` the
    /// cache register count; implies a fully unrolled dot.
    pub cache_a: bool,
}

/// Tuning factors of one specialised LayerNorm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LnFactors {
    /// Elements emitted straight-line per pass-loop iteration
    /// (`>= cols` unrolls each pass fully).
    pub unroll: usize,
}

impl GemmGeom {
    fn packed(&self) -> bool {
        self.k > 0 && self.k.is_multiple_of(4)
    }
}

/// How the inner dot product of one output is emitted.
#[derive(Debug, Clone, Copy)]
enum DotKind {
    /// Activation row cached in registers, weights offset-addressed.
    Cached,
    /// Both operands offset-addressed, fully unrolled.
    PackedFull,
    /// Pointer-walking k-loop of `u` packed blocks plus a straight-line
    /// block/scalar tail.
    PackedLoop(usize),
    /// Straight-line scalar byte MACs (odd `K`).
    Scalar,
}

fn dot_kind(geom: &GemmGeom, f: &GemmFactors) -> DotKind {
    if !geom.packed() {
        DotKind::Scalar
    } else if f.cache_a {
        DotKind::Cached
    } else if f.k_unroll >= geom.k / 4 {
        DotKind::PackedFull
    } else {
        DotKind::PackedLoop(f.k_unroll)
    }
}

/// Instruction count of one emitted output (bias load + dot + epilogue
/// + store).
fn output_insts(geom: &GemmGeom, f: &GemmFactors) -> usize {
    let blocks = geom.k / 4;
    let dot = match dot_kind(geom, f) {
        DotKind::Cached => 2 * blocks,
        DotKind::PackedFull => 3 * blocks,
        DotKind::PackedLoop(u) => 3 + 3 * u + 4 + 3 * (blocks % u),
        DotKind::Scalar => 4 * geom.k,
    };
    1 + dot + 2 + 1
}

/// Static instruction count of one row body (j loop + remainder +
/// row-cache loads + row advance), the quantity bounded by
/// [`MAX_BODY_INSTS`].
fn body_insts(geom: &GemmGeom, f: &GemmFactors) -> usize {
    let per_out = output_insts(geom, f);
    let cache_loads = if matches!(dot_kind(geom, f), DotKind::Cached) {
        geom.k / 4
    } else {
        0
    };
    let full_blocks = geom.n / f.j_unroll;
    let outputs = if full_blocks >= 2 {
        // blocked loop body + loop management + straight-line remainder
        f.j_unroll * per_out + 6 + (geom.n % f.j_unroll) * per_out
    } else {
        geom.n * per_out
    };
    cache_loads + outputs + 5
}

impl GemmFactors {
    /// Checks that these factors can be emitted for `geom`: cache
    /// capacity, immediate-offset ranges and the row-body instruction
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the combination is not
    /// emittable (the tuner skips such grid points).
    pub fn validate(&self, geom: &GemmGeom) -> Result<(), String> {
        if geom.m == 0 || geom.n == 0 || geom.k == 0 {
            return Err(format!("degenerate geometry {geom:?}"));
        }
        if self.j_unroll == 0 || self.k_unroll == 0 {
            return Err("zero unroll factor".into());
        }
        if self.cache_a {
            if !geom.packed() {
                return Err("cache_a needs the packed path (K % 4 == 0)".into());
            }
            if geom.k / 4 > GEMM_CACHE_REGS.len() {
                return Err(format!(
                    "cache_a needs K/4 <= {} registers, got {}",
                    GEMM_CACHE_REGS.len(),
                    geom.k / 4
                ));
            }
            if self.k_unroll < geom.k / 4 {
                return Err("cache_a implies a fully unrolled dot".into());
            }
        }
        // widest immediate the emitted code uses: the last weight byte
        // of the widest straight-line span
        let span = if geom.n / self.j_unroll >= 2 {
            self.j_unroll
        } else {
            geom.n
        };
        let max_w_off = (span - 1) * geom.k + geom.k.saturating_sub(1);
        if max_w_off > 2047 || span * geom.k > 2047 {
            return Err(format!(
                "weight offset {max_w_off} exceeds the I-type immediate range"
            ));
        }
        if 4 * (span - 1) > 2047 || span > 2047 || geom.k > 2047 || geom.n > 2047 {
            return Err("operand stride exceeds the I-type immediate range".into());
        }
        let body = body_insts(geom, self);
        if body > MAX_BODY_INSTS {
            return Err(format!(
                "row body of {body} instructions exceeds the {MAX_BODY_INSTS} budget"
            ));
        }
        Ok(())
    }

    /// Divisors of `n` in descending order — the column-blocking
    /// candidates the tuner enumerates.
    pub fn j_candidates(n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (1..=n).filter(|j| n.is_multiple_of(*j)).collect();
        v.reverse();
        v
    }
}

/// The untuned defaults for a geometry: full unrolling and row caching
/// whenever they fit, falling back to the largest column block that
/// does. Used for geometries absent from the committed tuning table
/// (the tuner itself starts from these and has, so far, always
/// confirmed them).
pub fn default_gemm_factors(geom: &GemmGeom) -> GemmFactors {
    let k_unroll = if geom.packed() { geom.k / 4 } else { geom.k }.max(1);
    for &cache_a in &[true, false] {
        for j_unroll in GemmFactors::j_candidates(geom.n) {
            let f = GemmFactors {
                j_unroll,
                k_unroll,
                cache_a,
            };
            if f.validate(geom).is_ok() {
                return f;
            }
        }
    }
    GemmFactors {
        j_unroll: 1,
        k_unroll: 1,
        cache_a: false,
    }
}

/// The untuned LayerNorm default: fully unrolled passes when the body
/// fits, else the largest divisor of `cols` that does.
pub fn default_ln_factors(cols: usize) -> LnFactors {
    for unroll in GemmFactors::j_candidates(cols.max(1)) {
        let f = LnFactors { unroll };
        if f.validate(cols).is_ok() {
            return f;
        }
    }
    LnFactors { unroll: 1 }
}

impl LnFactors {
    /// Checks the factor against the pass-body instruction budget and
    /// immediate ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the combination is not
    /// emittable.
    pub fn validate(&self, cols: usize) -> Result<(), String> {
        if cols == 0 || self.unroll == 0 {
            return Err("degenerate LayerNorm geometry".into());
        }
        let span = self.unroll.min(cols);
        if 4 * span > 2047 || cols > 2047 {
            return Err("element offset exceeds the I-type immediate range".into());
        }
        // pass 3 is the widest body: 11 instructions per element
        let body = 11 * span + 8;
        if body > MAX_BODY_INSTS {
            return Err(format!(
                "pass body of {body} instructions exceeds the {MAX_BODY_INSTS} budget"
            ));
        }
        Ok(())
    }
}

/// Emits a GEMM specialised for `geom` with factors `f`, returning its
/// entry label. ABI-compatible with the generic `matmul_a8` (which
/// `fallback` must point at): on the packed path a runtime check
/// dispatches misaligned `A`/`Wt` bases to `fallback` with all
/// arguments intact.
///
/// # Panics
///
/// Panics if `f.validate(geom)` fails — callers (the image builder and
/// the tuner) validate first.
pub fn emit_gemm_a8_spec(
    asm: &mut Asm,
    geom: &GemmGeom,
    f: &GemmFactors,
    fallback: Label,
) -> Label {
    f.validate(geom).expect("validated factors");
    let entry = asm.here(&format!("k_matmul_a8_m{}k{}n{}", geom.m, geom.k, geom.n));
    let kind = dot_kind(geom, f);

    // runtime alignment dispatch (packed path only): misaligned bases
    // take the generic kernel, which re-checks and runs its scalar loop
    if geom.packed() {
        let ok = asm.new_label();
        asm.emit(Inst::Or {
            rd: T0,
            rs1: A0,
            rs2: A1,
        });
        asm.emit(Inst::Andi {
            rd: T0,
            rs1: T0,
            imm: 3,
        });
        asm.branch_to(
            Inst::Beq {
                rs1: T0,
                rs2: Zero,
                offset: 0,
            },
            ok,
        );
        asm.jump_to(fallback);
        asm.bind(ok).expect("fresh");
    }

    let cache_words = geom.k / 4;
    let saves: Vec<Reg> = match kind {
        DotKind::Cached => GEMM_CACHE_REGS[..cache_words].to_vec(),
        DotKind::PackedLoop(_) => vec![S2, S3],
        _ => Vec::new(),
    };
    let frame = if saves.is_empty() {
        0
    } else {
        prologue(asm, &saves)
    };

    asm.li(A4, 7); // kclip range operand
    asm.li(A5, geom.m as i32); // row counter
    let row = asm.new_label();
    let exit = asm.new_label();
    asm.bind(row).expect("fresh");

    if matches!(kind, DotKind::Cached) {
        for (i, &r) in GEMM_CACHE_REGS[..cache_words].iter().enumerate() {
            asm.emit(Inst::Lw {
                rd: r,
                rs1: A0,
                imm: 4 * i as i32,
            });
        }
    }

    // one output: bias init, inner dot, fused requant epilogue, store
    let emit_output =
        |asm: &mut Asm, pw: Reg, w_off: i32, pb: Reg, b_off: i32, po: Reg, o_off: i32| {
            if geom.has_bias {
                asm.emit(Inst::Lw {
                    rd: T2,
                    rs1: pb,
                    imm: b_off,
                });
            } else {
                asm.li(T2, 0);
            }
            match kind {
                DotKind::Cached => {
                    emit::dot4_i8_cached(asm, T2, &GEMM_CACHE_REGS[..cache_words], pw, T1, w_off);
                }
                DotKind::PackedFull => {
                    emit::dot4_i8_unrolled(asm, T2, A0, pw, T0, T1, cache_words, 0, w_off);
                }
                DotKind::PackedLoop(u) => {
                    let trips = cache_words / u;
                    let tail = cache_words % u;
                    asm.mv(S2, A0);
                    if w_off == 0 {
                        asm.mv(S3, pw);
                    } else {
                        asm.emit(Inst::Addi {
                            rd: S3,
                            rs1: pw,
                            imm: w_off,
                        });
                    }
                    asm.li(A6, trips as i32);
                    let kl = asm.new_label();
                    asm.bind(kl).expect("fresh");
                    emit::dot4_i8_unrolled(asm, T2, S2, S3, T0, T1, u, 0, 0);
                    asm.emit(Inst::Addi {
                        rd: S2,
                        rs1: S2,
                        imm: 4 * u as i32,
                    });
                    asm.emit(Inst::Addi {
                        rd: S3,
                        rs1: S3,
                        imm: 4 * u as i32,
                    });
                    asm.emit(Inst::Addi {
                        rd: A6,
                        rs1: A6,
                        imm: -1,
                    });
                    asm.branch_to(
                        Inst::Bne {
                            rs1: A6,
                            rs2: Zero,
                            offset: 0,
                        },
                        kl,
                    );
                    emit::dot4_i8_unrolled(asm, T2, S2, S3, T0, T1, tail, 0, 0);
                }
                DotKind::Scalar => {
                    emit::mac_i8_scalar(asm, T2, A0, pw, T0, T1, geom.k, 0, w_off);
                }
            }
            emit::sat_clip_i8(asm, T2, A7, A4);
            asm.emit(Inst::Sb {
                rs2: T2,
                rs1: po,
                imm: o_off,
            });
        };

    let full_blocks = geom.n / f.j_unroll;
    if full_blocks >= 2 {
        // column-blocked j loop over walking pointers, then the
        // remainder straight-line from where they stopped
        asm.mv(T4, A1);
        if geom.has_bias {
            asm.mv(T5, A2);
        }
        asm.mv(T6, A3);
        asm.li(T3, full_blocks as i32);
        let jblk = asm.new_label();
        asm.bind(jblk).expect("fresh");
        for jj in 0..f.j_unroll {
            emit_output(
                asm,
                T4,
                (jj * geom.k) as i32,
                T5,
                4 * jj as i32,
                T6,
                jj as i32,
            );
        }
        asm.emit(Inst::Addi {
            rd: T4,
            rs1: T4,
            imm: (f.j_unroll * geom.k) as i32,
        });
        if geom.has_bias {
            asm.emit(Inst::Addi {
                rd: T5,
                rs1: T5,
                imm: 4 * f.j_unroll as i32,
            });
        }
        asm.emit(Inst::Addi {
            rd: T6,
            rs1: T6,
            imm: f.j_unroll as i32,
        });
        asm.emit(Inst::Addi {
            rd: T3,
            rs1: T3,
            imm: -1,
        });
        asm.branch_to(
            Inst::Bne {
                rs1: T3,
                rs2: Zero,
                offset: 0,
            },
            jblk,
        );
        for jj in 0..geom.n % f.j_unroll {
            emit_output(
                asm,
                T4,
                (jj * geom.k) as i32,
                T5,
                4 * jj as i32,
                T6,
                jj as i32,
            );
        }
    } else {
        // the whole row straight-line off the argument registers
        for j in 0..geom.n {
            emit_output(asm, A1, (j * geom.k) as i32, A2, 4 * j as i32, A3, j as i32);
        }
    }

    // advance to the next A / output row
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: geom.k as i32,
    });
    asm.emit(Inst::Addi {
        rd: A3,
        rs1: A3,
        imm: geom.n as i32,
    });
    asm.emit(Inst::Addi {
        rd: A5,
        rs1: A5,
        imm: -1,
    });
    // branch-over-jump row back-edge: the body can exceed the B-type
    // ±4 kB range, the J-type jump cannot
    asm.branch_to(
        Inst::Beq {
            rs1: A5,
            rs2: Zero,
            offset: 0,
        },
        exit,
    );
    asm.jump_to(row);
    asm.bind(exit).expect("fresh");
    if saves.is_empty() {
        asm.ret();
    } else {
        epilogue(asm, &saves, frame);
    }
    entry
}

/// Emits a fused LayerNorm specialised for `cols` with pass unrolling
/// `f.unroll`, returning its entry label. ABI-compatible with the
/// generic `ln_a8` (`a0=x, a1=gamma, a2=beta, a3=rows, a4=cols,
/// a5=params`; `a4` is ignored — the caller must pass exactly `cols`).
/// The arithmetic sequence is the generic kernel's op for op, so
/// results are bit-identical for every factor.
///
/// # Panics
///
/// Panics if `f.validate(cols)` fails.
pub fn emit_ln_a8_spec(asm: &mut Asm, cols: usize, f: &LnFactors) -> Label {
    use PackedOp::{Kclip, KcvtF2H, KcvtH2F, KfaddT, KfmulT, KfsubT};
    f.validate(cols).expect("validated factors");
    let entry = asm.here(&format!("k_ln_a8_c{cols}"));
    let saves = [S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11];
    let frame = prologue(asm, &saves);
    let row_loop = asm.new_label();
    let row_go = asm.new_label();
    let done = asm.new_label();

    asm.mv(S0, A0); // x row
    asm.mv(S1, A1); // gamma
    asm.mv(S2, A2); // beta
    asm.mv(S3, A3); // rows counter
    asm.mv(S5, A5); // params
    asm.emit(Inst::Lw {
        rd: S6,
        rs1: S5,
        imm: crate::kernels::a8_ln_params::DEQ,
    });
    // hoist every per-row constant into the argument registers (the
    // same allocation as the generic kernel)
    asm.emit(Inst::Lw {
        rd: A0,
        rs1: S5,
        imm: crate::kernels::a8_ln_params::SCRATCH,
    });
    asm.emit(Inst::Lw {
        rd: A1,
        rs1: S5,
        imm: crate::kernels::a8_ln_params::REQ,
    });
    asm.emit(Inst::Lw {
        rd: A2,
        rs1: S5,
        imm: crate::kernels::a8_ln_params::INV_N,
    });
    asm.emit(Inst::Lw {
        rd: A3,
        rs1: S5,
        imm: crate::kernels::a8_ln_params::EPS,
    });
    li_f32(asm, A4, 1.5);
    li_f32(asm, A5, 0.5);
    asm.emit(Inst::Lui {
        rd: A6,
        imm: 0x8000_0000u32 as i32,
    }); // sign bit
    asm.li(A7, 0x5F37_59DFu32 as i32); // rsqrt magic seed
    asm.li(T3, 7);

    // emits one (possibly loop-blocked) pass over the row: `body(asm,
    // i)` must address element `i` relative to the current walker
    // values; `advance` bumps the walkers by one block
    let unrolled_pass =
        |asm: &mut Asm, advance: &[(Reg, i32)], body: &mut dyn FnMut(&mut Asm, usize)| {
            let u = f.unroll.min(cols);
            if cols <= f.unroll {
                for i in 0..cols {
                    body(asm, i);
                }
                return;
            }
            asm.li(S10, (cols / u) as i32);
            let lp = asm.new_label();
            asm.bind(lp).expect("fresh");
            for i in 0..u {
                body(asm, i);
            }
            for &(r, step) in advance {
                asm.emit(Inst::Addi {
                    rd: r,
                    rs1: r,
                    imm: step,
                });
            }
            asm.emit(Inst::Addi {
                rd: S10,
                rs1: S10,
                imm: -1,
            });
            asm.branch_to(
                Inst::Bne {
                    rs1: S10,
                    rs2: Zero,
                    offset: 0,
                },
                lp,
            );
            for i in 0..cols % u {
                body(asm, i);
            }
        };

    asm.bind(row_loop).expect("fresh");
    asm.branch_to(
        Inst::Bne {
            rs1: S3,
            rs2: Zero,
            offset: 0,
        },
        row_go,
    );
    asm.jump_to(done);
    asm.bind(row_go).expect("fresh");

    // pass 1: cache conv(x) in the scratch row, sum -> mean
    asm.li(S8, 0);
    asm.mv(S9, S0);
    asm.mv(S11, A0);
    unrolled_pass(
        asm,
        &[(S9, f.unroll as i32), (S11, 4 * f.unroll as i32)],
        &mut |asm, i| {
            asm.emit(Inst::Lb {
                rd: T1,
                rs1: S9,
                imm: i as i32,
            });
            asm.emit(Inst::Packed {
                op: KcvtH2F,
                rd: T1,
                rs1: T1,
                rs2: Zero,
            });
            asm.emit(Inst::Packed {
                op: KfmulT,
                rd: T1,
                rs1: T1,
                rs2: S6,
            });
            asm.emit(Inst::Sw {
                rs2: T1,
                rs1: S11,
                imm: 4 * i as i32,
            });
            asm.emit(Inst::Packed {
                op: KfaddT,
                rd: S8,
                rs1: T1,
                rs2: S8,
            });
        },
    );
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: S7,
        rs1: S8,
        rs2: A2,
    }); // mean

    // pass 2: var = (Σ (x̂ - mean)²) * inv_n
    asm.li(S8, 0);
    asm.mv(S11, A0);
    unrolled_pass(asm, &[(S11, 4 * f.unroll as i32)], &mut |asm, i| {
        asm.emit(Inst::Lw {
            rd: T1,
            rs1: S11,
            imm: 4 * i as i32,
        });
        asm.emit(Inst::Packed {
            op: KfsubT,
            rd: T1,
            rs1: T1,
            rs2: S7,
        });
        asm.emit(Inst::Packed {
            op: KfmulT,
            rd: T1,
            rs1: T1,
            rs2: T1,
        });
        asm.emit(Inst::Packed {
            op: KfaddT,
            rd: S8,
            rs1: T1,
            rs2: S8,
        });
    });
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T0,
        rs1: S8,
        rs2: A2,
    }); // var
    asm.emit(Inst::Packed {
        op: KfaddT,
        rd: T0,
        rs1: T0,
        rs2: A3,
    }); // + eps

    // inline rsqrt (the math library sequence, call-free):
    // xhalf = x*0.5; y = magic - (x>>1); 3 × y *= 1.5 - xhalf*y*y
    asm.emit(Inst::Packed {
        op: KfmulT,
        rd: T1,
        rs1: T0,
        rs2: A5,
    }); // xhalf
    asm.emit(Inst::Srli {
        rd: T2,
        rs1: T0,
        shamt: 1,
    });
    asm.emit(Inst::Sub {
        rd: T0,
        rs1: A7,
        rs2: T2,
    }); // y
    for _ in 0..3 {
        asm.emit(Inst::Packed {
            op: KfmulT,
            rd: T2,
            rs1: T0,
            rs2: T0,
        }); // y²
        asm.emit(Inst::Packed {
            op: KfmulT,
            rd: T2,
            rs1: T2,
            rs2: T1,
        }); // xhalf·y²
        asm.emit(Inst::Xor {
            rd: T2,
            rs1: T2,
            rs2: A6,
        }); // negate
        asm.emit(Inst::Packed {
            op: KfaddT,
            rd: T2,
            rs1: A4,
            rs2: T2,
        }); // 1.5 - …
        asm.emit(Inst::Packed {
            op: KfmulT,
            rd: T0,
            rs1: T2,
            rs2: T0,
        }); // y
    }
    asm.mv(S11, T0); // inv_std

    // pass 3: x = requant(((x̂ - mean) * inv_std) * gamma + beta)
    asm.mv(S9, S0);
    asm.mv(T4, A0); // scratch walker
    asm.mv(T5, S1); // gamma walker
    asm.mv(T6, S2); // beta walker
    unrolled_pass(
        asm,
        &[
            (T4, 4 * f.unroll as i32),
            (T5, 4 * f.unroll as i32),
            (T6, 4 * f.unroll as i32),
            (S9, f.unroll as i32),
        ],
        &mut |asm, i| {
            asm.emit(Inst::Lw {
                rd: T1,
                rs1: T4,
                imm: 4 * i as i32,
            });
            asm.emit(Inst::Packed {
                op: KfsubT,
                rd: T1,
                rs1: T1,
                rs2: S7,
            });
            asm.emit(Inst::Packed {
                op: KfmulT,
                rd: T1,
                rs1: T1,
                rs2: S11,
            });
            asm.emit(Inst::Lw {
                rd: T2,
                rs1: T5,
                imm: 4 * i as i32,
            });
            asm.emit(Inst::Packed {
                op: KfmulT,
                rd: T1,
                rs1: T1,
                rs2: T2,
            });
            asm.emit(Inst::Lw {
                rd: T2,
                rs1: T6,
                imm: 4 * i as i32,
            });
            asm.emit(Inst::Packed {
                op: KfaddT,
                rd: T1,
                rs1: T1,
                rs2: T2,
            });
            asm.emit(Inst::Packed {
                op: KfmulT,
                rd: T1,
                rs1: T1,
                rs2: A1,
            });
            asm.emit(Inst::Packed {
                op: KcvtF2H,
                rd: T1,
                rs1: T1,
                rs2: Zero,
            });
            asm.emit(Inst::Packed {
                op: Kclip,
                rd: T1,
                rs1: T1,
                rs2: T3,
            });
            asm.emit(Inst::Sb {
                rs2: T1,
                rs1: S9,
                imm: i as i32,
            });
        },
    );

    asm.emit(Inst::Addi {
        rd: S0,
        rs1: S0,
        imm: cols as i32,
    });
    asm.emit(Inst::Addi {
        rd: S3,
        rs1: S3,
        imm: -1,
    });
    asm.jump_to(row_loop);
    asm.bind(done).expect("fresh");
    epilogue(asm, &saves, frame);
    entry
}

// =====================================================================
// The committed tuning artefact.
// =====================================================================

/// The tuned factor table: winners of the `paper tune-kernels` sweep,
/// committed as `results/TUNED_KERNELS.txt` and embedded into this
/// crate at compile time. The image builder looks geometries up here
/// and falls back to [`default_gemm_factors`] / [`default_ln_factors`]
/// for anything untuned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TunedKernels {
    /// Tuned GEMM factors per geometry.
    pub gemm: Vec<(GemmGeom, GemmFactors)>,
    /// Tuned LayerNorm factors per column count.
    pub ln: Vec<(usize, LnFactors)>,
}

/// The committed artefact text embedded at compile time.
pub const TUNED_KERNELS_TEXT: &str = include_str!("../../../results/TUNED_KERNELS.txt");

impl TunedKernels {
    /// The committed table shipped with the crate (what
    /// [`crate::InferenceImage::build_a8`] consumes).
    ///
    /// # Panics
    ///
    /// Panics if the committed artefact does not parse — a build-time
    /// artefact corruption, not a runtime condition.
    pub fn embedded() -> Self {
        Self::parse(TUNED_KERNELS_TEXT).expect("committed results/TUNED_KERNELS.txt parses")
    }

    /// Parses the artefact format: one `gemm`/`ln` line per tuned
    /// geometry, `#` comments, blank lines ignored.
    ///
    /// ```text
    /// gemm m=26 k=16 n=12 bias=1 | j_unroll=12 k_unroll=4 cache_a=1
    /// ln cols=12 | unroll=12
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Model`] on any malformed line.
    pub fn parse(text: &str) -> crate::Result<Self> {
        let mut table = TunedKernels::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |what: &str| {
                BuildError::Model(format!(
                    "TUNED_KERNELS line {}: {what}: `{line}`",
                    lineno + 1
                ))
            };
            let mut fields = std::collections::BTreeMap::new();
            let (kind, rest) = line.split_once(' ').ok_or_else(|| bad("missing fields"))?;
            for part in rest.split([' ', '|']) {
                if part.is_empty() {
                    continue;
                }
                let (key, val) = part.split_once('=').ok_or_else(|| bad("missing `=`"))?;
                let v: usize = val.parse().map_err(|_| bad("non-numeric value"))?;
                fields.insert(key.to_string(), v);
            }
            let get = |key: &str| fields.get(key).copied().ok_or_else(|| bad("missing key"));
            match kind {
                "gemm" => {
                    let geom = GemmGeom {
                        m: get("m")?,
                        k: get("k")?,
                        n: get("n")?,
                        has_bias: get("bias")? != 0,
                    };
                    let f = GemmFactors {
                        j_unroll: get("j_unroll")?,
                        k_unroll: get("k_unroll")?,
                        cache_a: get("cache_a")? != 0,
                    };
                    f.validate(&geom).map_err(|e| bad(&e))?;
                    table.gemm.push((geom, f));
                }
                "ln" => {
                    let cols = get("cols")?;
                    let f = LnFactors {
                        unroll: get("unroll")?,
                    };
                    f.validate(cols).map_err(|e| bad(&e))?;
                    table.ln.push((cols, f));
                }
                other => return Err(bad(&format!("unknown kind `{other}`"))),
            }
        }
        Ok(table)
    }

    /// Serialises the table to the artefact format (the tuner's
    /// writer; [`Self::parse`] round-trips it).
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# Tuned A8 kernel factors — generated by `paper tune-kernels`, consumed by\n\
             # InferenceImage::build_a8 via kwt_baremetal::specialise::TunedKernels::embedded().\n\
             # Regenerate with `cargo run --release -p kwt-bench --bin paper tune-kernels`;\n\
             # `paper check-tuning` fails CI if this file drifts from a fresh derivation.\n",
        );
        for (g, f) in &self.gemm {
            out.push_str(&format!(
                "gemm m={} k={} n={} bias={} | j_unroll={} k_unroll={} cache_a={}\n",
                g.m, g.k, g.n, g.has_bias as u8, f.j_unroll, f.k_unroll, f.cache_a as u8
            ));
        }
        for (cols, f) in &self.ln {
            out.push_str(&format!("ln cols={} | unroll={}\n", cols, f.unroll));
        }
        out
    }

    /// Factors for a GEMM geometry: the tuned entry, or the defaults.
    pub fn gemm_factors(&self, geom: &GemmGeom) -> GemmFactors {
        self.gemm
            .iter()
            .find(|(g, _)| g == geom)
            .map(|(_, f)| *f)
            .unwrap_or_else(|| default_gemm_factors(geom))
    }

    /// Factors for a LayerNorm column count: the tuned entry, or the
    /// defaults.
    pub fn ln_factors(&self, cols: usize) -> LnFactors {
        self.ln
            .iter()
            .find(|(c, _)| *c == cols)
            .map(|(_, f)| *f)
            .unwrap_or_else(|| default_ln_factors(cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::A8Kernels;
    use kwt_rv32::{Machine, Platform};
    use kwt_tensor::{qops, Mat};
    use proptest::prelude::*;

    const IN_A: u32 = 0xA000;
    const IN_B: u32 = 0xA800;
    const BIAS: u32 = 0xB000;
    const OUT: u32 = 0xB400;
    const PARAMS: u32 = 0xB800;
    const FROW: u32 = 0xBC00;

    fn i8s(v: &[i8]) -> Vec<u8> {
        v.iter().map(|&x| x as u8).collect()
    }
    fn i32s(v: &[i32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }
    fn f32s(v: &[f32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect()
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Saturation-heavy i8 stream: every 8th value is an extreme, so
    /// the `ksat`/`kclip` epilogue edges get exercised.
    fn rand_i8(state: &mut u64) -> i8 {
        let r = splitmix(state);
        match r % 8 {
            0 => {
                if r & 0x100 == 0 {
                    127
                } else {
                    -128
                }
            }
            _ => (r >> 8) as i8,
        }
    }

    /// Jumps over the generic A8 kernel set plus whatever `emit_extra`
    /// adds, loads `args` into `a0..`, calls the returned label, runs
    /// to the breakpoint.
    fn run_kernel(
        emit_extra: impl FnOnce(&mut Asm, &A8Kernels) -> Label,
        inputs: &[(u32, Vec<u8>)],
        args: &[i32],
    ) -> Machine {
        const ARGS: [Reg; 8] = [A0, A1, A2, A3, A4, A5, A6, A7];
        let mut asm = Asm::new(0, 0x8000);
        let over = asm.new_label();
        asm.jump_to(over);
        let generic = A8Kernels::emit(&mut asm, 8, 4);
        let target = emit_extra(&mut asm, &generic);
        asm.bind(over).expect("fresh");
        asm.here("entry");
        for (i, &v) in args.iter().enumerate() {
            asm.li(ARGS[i], v);
        }
        asm.call(target);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().expect("assembles");
        let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
        for (addr, bytes) in inputs {
            m.cpu.mem.write_bytes(*addr, bytes);
            m.cpu.invalidate_decode_cache(*addr, bytes.len() as u32);
        }
        m.run(500_000_000).expect("halts");
        m
    }

    fn read_i8s(m: &Machine, addr: u32, len: usize) -> Vec<i8> {
        m.cpu
            .mem
            .read_bytes(addr, len)
            .iter()
            .map(|&b| b as i8)
            .collect()
    }

    /// Runs either the generic `matmul_a8` (`factors: None`) or a
    /// specialised kernel on the same operands; `misalign` offsets the
    /// `A` base to force the runtime fallback dispatch.
    #[allow(clippy::too_many_arguments)]
    fn gemm_outputs(
        geom: &GemmGeom,
        factors: Option<&GemmFactors>,
        a: &Mat<i8>,
        w: &Mat<i8>,
        bias: Option<&[i32]>,
        shift: u32,
        misalign: u32,
    ) -> Vec<i8> {
        let a_base = IN_A + misalign;
        let mut inputs = vec![
            (a_base, i8s(a.as_slice())),
            (IN_B, i8s(w.transpose().as_slice())),
        ];
        if let Some(b) = bias {
            inputs.push((BIAS, i32s(b)));
        }
        let m = run_kernel(
            |asm, gk| match factors {
                Some(f) => emit_gemm_a8_spec(asm, geom, f, gk.matmul_a8),
                None => gk.matmul_a8,
            },
            &inputs,
            &[
                a_base as i32,
                IN_B as i32,
                if bias.is_some() { BIAS as i32 } else { 0 },
                OUT as i32,
                geom.m as i32,
                geom.k as i32,
                geom.n as i32,
                shift as i32,
            ],
        );
        read_i8s(&m, OUT, geom.m * geom.n)
    }

    fn gemm_data(geom: &GemmGeom, seed: u64) -> (Mat<i8>, Mat<i8>, Vec<i32>) {
        let mut st = seed;
        let a = Mat::from_fn(geom.m, geom.k, |_, _| rand_i8(&mut st));
        let w = Mat::from_fn(geom.k, geom.n, |_, _| rand_i8(&mut st));
        let bias: Vec<i32> = (0..geom.n)
            .map(|_| (splitmix(&mut st) % 4001) as i32 - 2000)
            .collect();
        (a, w, bias)
    }

    /// The A8 image's GEMM call sites (KWT-Tiny geometry) — the same
    /// list the tuner sweeps.
    fn model_sites() -> Vec<GemmGeom> {
        vec![
            GemmGeom {
                m: 26,
                k: 16,
                n: 12,
                has_bias: true,
            }, // patch projection
            GemmGeom {
                m: 27,
                k: 12,
                n: 24,
                has_bias: true,
            }, // qkv / mlp1
            GemmGeom {
                m: 27,
                k: 8,
                n: 12,
                has_bias: true,
            }, // attention out
            GemmGeom {
                m: 27,
                k: 24,
                n: 12,
                has_bias: true,
            }, // mlp2
            GemmGeom {
                m: 1,
                k: 12,
                n: 2,
                has_bias: true,
            }, // classifier head
        ]
    }

    /// Every valid factor combination for a geometry — the tuner's
    /// grid, reused here so the whole grid is covered differentially.
    fn factor_grid(geom: &GemmGeom) -> Vec<GemmFactors> {
        let blocks = if geom.packed() { geom.k / 4 } else { geom.k };
        let mut ks: Vec<usize> = vec![1, 2, blocks.max(1)];
        ks.dedup();
        let mut out = Vec::new();
        for j_unroll in GemmFactors::j_candidates(geom.n) {
            for &k_unroll in &ks {
                for cache_a in [false, true] {
                    let f = GemmFactors {
                        j_unroll,
                        k_unroll,
                        cache_a,
                    };
                    if f.validate(geom).is_ok() {
                        out.push(f);
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn spec_gemm_matches_generic_across_model_grid() {
        for geom in model_sites() {
            let (a, w, bias) = gemm_data(&geom, 0xA8A8 + geom.k as u64);
            let shift = 6;
            let want = gemm_outputs(&geom, None, &a, &w, Some(&bias), shift, 0);
            let (oracle, _) = qops::matmul_i8_i8(&a, &w, Some(&bias), shift).unwrap();
            assert_eq!(want, oracle.as_slice(), "generic vs oracle at {geom:?}");
            for f in factor_grid(&geom) {
                let got = gemm_outputs(&geom, Some(&f), &a, &w, Some(&bias), shift, 0);
                assert_eq!(got, want, "{geom:?} with {f:?}");
            }
        }
    }

    #[test]
    fn spec_gemm_odd_k_and_no_bias_match_generic() {
        for geom in [
            GemmGeom {
                m: 3,
                k: 7,
                n: 5,
                has_bias: false,
            },
            GemmGeom {
                m: 2,
                k: 13,
                n: 3,
                has_bias: true,
            },
            GemmGeom {
                m: 4,
                k: 1,
                n: 2,
                has_bias: false,
            },
            GemmGeom {
                m: 1,
                k: 4,
                n: 1,
                has_bias: true,
            },
        ] {
            let (a, w, bias) = gemm_data(&geom, 0x0DD + geom.k as u64);
            let bias_opt = geom.has_bias.then_some(&bias[..]);
            let shift = 4;
            let want = gemm_outputs(&geom, None, &a, &w, bias_opt, shift, 0);
            let (oracle, _) = qops::matmul_i8_i8(&a, &w, bias_opt, shift).unwrap();
            assert_eq!(want, oracle.as_slice(), "generic vs oracle at {geom:?}");
            for f in factor_grid(&geom) {
                let got = gemm_outputs(&geom, Some(&f), &a, &w, bias_opt, shift, 0);
                assert_eq!(got, want, "{geom:?} with {f:?}");
            }
        }
    }

    #[test]
    fn spec_gemm_misaligned_base_falls_back_to_generic() {
        // a packed geometry with a byte-misaligned A base must take the
        // fallback dispatch and still match the host oracle
        let geom = GemmGeom {
            m: 3,
            k: 8,
            n: 4,
            has_bias: true,
        };
        let f = default_gemm_factors(&geom);
        let (a, w, bias) = gemm_data(&geom, 0xA117);
        let (oracle, _) = qops::matmul_i8_i8(&a, &w, Some(&bias), 5).unwrap();
        for misalign in [1u32, 2, 3] {
            let got = gemm_outputs(&geom, Some(&f), &a, &w, Some(&bias), 5, misalign);
            assert_eq!(got, oracle.as_slice(), "misalign {misalign}");
        }
    }

    #[test]
    fn spec_gemm_saturation_edges_match_generic() {
        // shift 0 with extreme operands drives the accumulator far past
        // the i8 range on both sides
        let geom = GemmGeom {
            m: 2,
            k: 8,
            n: 2,
            has_bias: false,
        };
        let a = Mat::from_fn(geom.m, geom.k, |_, c| if c % 2 == 0 { 127i8 } else { -128 });
        let w = Mat::from_fn(
            geom.k,
            geom.n,
            |r, c| {
                if (r + c) % 2 == 0 {
                    127i8
                } else {
                    -128
                }
            },
        );
        let want = gemm_outputs(&geom, None, &a, &w, None, 0, 0);
        for f in factor_grid(&geom) {
            let got = gemm_outputs(&geom, Some(&f), &a, &w, None, 0, 0);
            assert_eq!(got, want, "{f:?}");
        }
    }

    /// Runs either the generic `ln_a8` (`unroll: None`) or a
    /// specialised kernel; LayerNorm is in-place on `x`.
    fn ln_outputs(
        rows: usize,
        cols: usize,
        unroll: Option<usize>,
        x: &Mat<i8>,
        gamma: &[f32],
        beta: &[f32],
    ) -> Vec<i8> {
        let params: Vec<i32> = vec![
            0.0625f32.to_bits() as i32,
            16.0f32.to_bits() as i32,
            (1.0 / cols as f32).to_bits() as i32,
            1e-5f32.to_bits() as i32,
            FROW as i32,
        ];
        let m = run_kernel(
            |asm, gk| match unroll {
                Some(u) => emit_ln_a8_spec(asm, cols, &LnFactors { unroll: u }),
                None => gk.ln_a8,
            },
            &[
                (IN_A, i8s(x.as_slice())),
                (IN_B, f32s(gamma)),
                (BIAS, f32s(beta)),
                (PARAMS, i32s(&params)),
            ],
            &[
                IN_A as i32,
                IN_B as i32,
                BIAS as i32,
                rows as i32,
                cols as i32,
                PARAMS as i32,
            ],
        );
        read_i8s(&m, IN_A, rows * cols)
    }

    #[test]
    fn spec_ln_matches_generic_for_every_unroll() {
        for cols in [5usize, 12] {
            let rows = 3usize;
            let mut st = 0x17 + cols as u64;
            let x = Mat::from_fn(rows, cols, |_, _| rand_i8(&mut st));
            let gamma: Vec<f32> = (0..cols).map(|i| 0.5 + i as f32 * 0.2).collect();
            let beta: Vec<f32> = (0..cols).map(|i| -0.3 + i as f32 * 0.1).collect();
            let want = ln_outputs(rows, cols, None, &x, &gamma, &beta);
            for unroll in 1..=cols + 2 {
                if (LnFactors { unroll }).validate(cols).is_err() {
                    continue;
                }
                let got = ln_outputs(rows, cols, Some(unroll), &x, &gamma, &beta);
                assert_eq!(got, want, "cols {cols} unroll {unroll}");
            }
        }
    }

    #[test]
    fn tuned_kernels_text_round_trips() {
        let table = TunedKernels {
            gemm: vec![
                (
                    GemmGeom {
                        m: 26,
                        k: 16,
                        n: 12,
                        has_bias: true,
                    },
                    GemmFactors {
                        j_unroll: 12,
                        k_unroll: 4,
                        cache_a: true,
                    },
                ),
                (
                    GemmGeom {
                        m: 3,
                        k: 7,
                        n: 5,
                        has_bias: false,
                    },
                    GemmFactors {
                        j_unroll: 5,
                        k_unroll: 7,
                        cache_a: false,
                    },
                ),
            ],
            ln: vec![(12, LnFactors { unroll: 12 })],
        };
        let parsed = TunedKernels::parse(&table.to_text()).expect("round trip");
        assert_eq!(parsed, table);
        assert!(TunedKernels::parse("bogus line\n").is_err());
        assert!(TunedKernels::parse("# comment\n\n")
            .expect("empty ok")
            .gemm
            .is_empty());
        // the committed artefact always parses
        let _ = TunedKernels::embedded();
    }

    #[test]
    fn factor_lookup_falls_back_to_valid_defaults() {
        let table = TunedKernels::default();
        for geom in model_sites() {
            let f = table.gemm_factors(&geom);
            f.validate(&geom).expect("defaults validate");
        }
        for cols in [1usize, 5, 12, 64, 200] {
            let f = table.ln_factors(cols);
            f.validate(cols).expect("ln defaults validate");
        }
        // odd-K and bias-free geometries too
        for geom in [
            GemmGeom {
                m: 3,
                k: 7,
                n: 5,
                has_bias: false,
            },
            GemmGeom {
                m: 27,
                k: 200,
                n: 40,
                has_bias: true,
            },
        ] {
            table
                .gemm_factors(&geom)
                .validate(&geom)
                .expect("defaults validate");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Random geometries (odd K, tiny shapes, random factors picked
        /// from the valid grid, saturation-heavy data): specialised and
        /// generic kernels agree bit for bit, and both match the oracle.
        #[test]
        fn spec_gemm_matches_generic_random(seed in any::<u32>()) {
            let mut st = seed as u64 ^ 0x5EED;
            let geom = GemmGeom {
                m: 1 + (splitmix(&mut st) % 4) as usize,
                k: 1 + (splitmix(&mut st) % 20) as usize,
                n: 1 + (splitmix(&mut st) % 8) as usize,
                has_bias: splitmix(&mut st).is_multiple_of(2),
            };
            let grid = factor_grid(&geom);
            let f = grid[(splitmix(&mut st) % grid.len() as u64) as usize];
            let (a, w, bias) = gemm_data(&geom, splitmix(&mut st));
            let bias_opt = geom.has_bias.then_some(&bias[..]);
            let shift = (splitmix(&mut st) % 8) as u32;
            let want = gemm_outputs(&geom, None, &a, &w, bias_opt, shift, 0);
            let (oracle, _) = qops::matmul_i8_i8(&a, &w, bias_opt, shift).unwrap();
            prop_assert_eq!(&want, oracle.as_slice());
            let got = gemm_outputs(&geom, Some(&f), &a, &w, bias_opt, shift, 0);
            prop_assert_eq!(got, want);
        }

        /// Random column counts and unrolls: the specialised LayerNorm
        /// is bit-identical to the generic kernel.
        #[test]
        fn spec_ln_matches_generic_random(seed in any::<u32>()) {
            let mut st = seed as u64 ^ 0x1A1A;
            let cols = 1 + (splitmix(&mut st) % 16) as usize;
            let rows = 1 + (splitmix(&mut st) % 3) as usize;
            let unroll = 1 + (splitmix(&mut st) % (cols as u64 + 2)) as usize;
            prop_assume!((LnFactors { unroll }).validate(cols).is_ok());
            let x = Mat::from_fn(rows, cols, |_, _| rand_i8(&mut st));
            let gamma: Vec<f32> = (0..cols).map(|_| (splitmix(&mut st) % 100) as f32 / 50.0 - 1.0).collect();
            let beta: Vec<f32> = (0..cols).map(|_| (splitmix(&mut st) % 100) as f32 / 100.0 - 0.5).collect();
            let want = ln_outputs(rows, cols, None, &x, &gamma, &beta);
            let got = ln_outputs(rows, cols, Some(unroll), &x, &gamma, &beta);
            prop_assert_eq!(got, want);
        }
    }
}
