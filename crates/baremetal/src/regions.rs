//! Profiler region ids used by the generated inference programs.
//!
//! Region ids combine a *block* (which part of the network) with an *op*
//! (which kernel class): `id = block | op`. Fig. 3 aggregates over ops,
//! Fig. 4 filters the attention block, Fig. 5 the MLP block.

use std::collections::BTreeMap;

/// Op class: dense matrix multiply.
pub const OP_MATMUL: u32 = 1;
/// Op class: SoftMax.
pub const OP_SOFTMAX: u32 = 2;
/// Op class: GELU.
pub const OP_GELU: u32 = 3;
/// Op class: layer normalisation (mean/variance + scale/shift).
pub const OP_LAYERNORM: u32 = 4;
/// Op class: quantise/dequantise conversions.
pub const OP_QUANT: u32 = 5;
/// Op class: residual adds, copies, embedding adds.
pub const OP_OTHER: u32 = 6;

/// Block tag: outside attention/MLP (projection, embeddings, head).
pub const BLOCK_TOP: u32 = 0x00;
/// Block tag: inside the self-attention computation (Fig. 4).
pub const BLOCK_ATTENTION: u32 = 0x10;
/// Block tag: inside the MLP computation (Fig. 5).
pub const BLOCK_MLP: u32 = 0x20;

/// All `(id, name)` pairs used by the images.
pub fn region_names() -> BTreeMap<u32, String> {
    let mut m = BTreeMap::new();
    for (block, bname) in [
        (BLOCK_TOP, "top"),
        (BLOCK_ATTENTION, "attn"),
        (BLOCK_MLP, "mlp"),
    ] {
        for (op, oname) in [
            (OP_MATMUL, "matmul"),
            (OP_SOFTMAX, "softmax"),
            (OP_GELU, "gelu"),
            (OP_LAYERNORM, "layernorm"),
            (OP_QUANT, "quant"),
            (OP_OTHER, "other"),
        ] {
            m.insert(block | op, format!("{bname}/{oname}"));
        }
    }
    m
}

/// Sums a profile report's regions by op class, returning
/// `(op name, cycles)` in descending order — the Fig. 3 view.
pub fn aggregate_by_op(regions: &[(String, u64, u64)]) -> Vec<(String, u64)> {
    let mut by_op: BTreeMap<&str, u64> = BTreeMap::new();
    for (name, cycles, _) in regions {
        let op = name.split('/').nth(1).unwrap_or(name.as_str());
        *by_op.entry(op).or_insert(0) += cycles;
    }
    let mut v: Vec<(String, u64)> = by_op.into_iter().map(|(k, c)| (k.to_string(), c)).collect();
    v.sort_by_key(|r| std::cmp::Reverse(r.1));
    v
}

/// Filters a profile report to one block prefix (`"attn"` for Fig. 4,
/// `"mlp"` for Fig. 5), returning `(op name, cycles)` descending.
pub fn filter_block(regions: &[(String, u64, u64)], block: &str) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = regions
        .iter()
        .filter(|(name, _, _)| name.starts_with(block))
        .map(|(name, cycles, _)| (name.split('/').nth(1).unwrap_or(name).to_string(), *cycles))
        .collect();
    v.sort_by_key(|r| std::cmp::Reverse(r.1));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_all_blocks_and_ops() {
        let names = region_names();
        assert_eq!(names.len(), 18);
        assert_eq!(names[&(BLOCK_ATTENTION | OP_SOFTMAX)], "attn/softmax");
        assert_eq!(names[&(BLOCK_MLP | OP_GELU)], "mlp/gelu");
        assert_eq!(names[&(BLOCK_TOP | OP_MATMUL)], "top/matmul");
    }

    #[test]
    fn aggregation_sums_across_blocks() {
        let regions = vec![
            ("attn/matmul".to_string(), 100u64, 1u64),
            ("mlp/matmul".to_string(), 50, 1),
            ("mlp/gelu".to_string(), 30, 1),
        ];
        let agg = aggregate_by_op(&regions);
        assert_eq!(agg[0], ("matmul".to_string(), 150));
        assert_eq!(agg[1], ("gelu".to_string(), 30));
    }

    #[test]
    fn block_filter_selects_prefix() {
        let regions = vec![
            ("attn/matmul".to_string(), 100u64, 1u64),
            ("attn/softmax".to_string(), 70, 1),
            ("mlp/gelu".to_string(), 30, 1),
        ];
        let attn = filter_block(&regions, "attn");
        assert_eq!(attn.len(), 2);
        assert_eq!(attn[0].0, "matmul");
        let mlp = filter_block(&regions, "mlp");
        assert_eq!(mlp.len(), 1);
    }
}
