//! The paper's two static memory banks (§V).
//!
//! Bare-metal KWT has no `malloc`; intermediate activations live in two
//! fixed arrays sized at build time — `SEQLEN x MLP_DIM` and
//! `SEQLEN x DIM_HEAD x 3` elements. This module provides the build-time
//! allocator that hands out addresses inside those banks and proves they
//! never overflow.

use crate::{BuildError, Result};

/// A build-time bump allocator over one static bank.
#[derive(Debug, Clone)]
pub struct Bank {
    name: &'static str,
    base: u32,
    size: usize,
    cursor: usize,
    high_water: usize,
}

impl Bank {
    /// Creates a bank at `base` with `size` bytes.
    pub fn new(name: &'static str, base: u32, size: usize) -> Self {
        Bank {
            name,
            base,
            size,
            cursor: 0,
            high_water: 0,
        }
    }

    /// The bank's base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Peak bytes ever allocated (reported next to the paper's sizing).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Allocates `len` bytes aligned to `align`, returning the address.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BankOverflow`] when the bank is exhausted —
    /// the build-time equivalent of the paper's "ensure the maximal
    /// intermediate result fits within one of the banks".
    pub fn alloc(&mut self, len: usize, align: usize) -> Result<u32> {
        let aligned = self.cursor.div_ceil(align) * align;
        if aligned + len > self.size {
            return Err(BuildError::BankOverflow {
                bank: self.name,
                requested: len,
                available: self.size.saturating_sub(aligned),
            });
        }
        self.cursor = aligned + len;
        self.high_water = self.high_water.max(self.cursor);
        Ok(self.base + aligned as u32)
    }

    /// Frees everything (a new pipeline stage reuses the bank, exactly
    /// like the paper's ping-pong between residual buffers).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_reset() {
        let mut b = Bank::new("bank1", 0x8000, 64);
        let a = b.alloc(16, 4).unwrap();
        assert_eq!(a, 0x8000);
        let c = b.alloc(8, 4).unwrap();
        assert_eq!(c, 0x8010);
        b.reset();
        let d = b.alloc(4, 4).unwrap();
        assert_eq!(d, 0x8000);
        assert_eq!(b.high_water(), 24);
    }

    #[test]
    fn alignment_respected() {
        let mut b = Bank::new("bank1", 0x100, 32);
        b.alloc(3, 1).unwrap();
        let a = b.alloc(4, 4).unwrap();
        assert_eq!(a % 4, 0);
    }

    #[test]
    fn overflow_detected() {
        let mut b = Bank::new("bank2", 0, 16);
        b.alloc(12, 4).unwrap();
        let err = b.alloc(8, 4).unwrap_err();
        assert!(matches!(
            err,
            BuildError::BankOverflow {
                bank: "bank2",
                requested: 8,
                ..
            }
        ));
    }
}
