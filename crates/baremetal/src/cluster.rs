//! Multi-hart device sessions: one inference image served by an N-hart
//! [`kwt_rv32::Cluster`], each hart with its own stream
//! mailbox.
//!
//! [`InferenceImage::cluster_session`] maps the (read-only) code and
//! weight banks once — the loaded [`kwt_rv32::Machine`] is the
//! single source of truth, replicated per hart, which is
//! observationally identical to shared read-only banks because no
//! generated program ever stores into text or weights — and gives every
//! hart a private copy of the scratch/activation/IO regions plus its
//! own input mailbox ([`ClusterSession::load_clip`]) and logits mailbox
//! ([`ClusterSession::read_logits`]).
//!
//! The input quantisation and logits readback go through the exact same
//! crate-internal helpers as [`DeviceSession`](crate::DeviceSession),
//! so a cluster hart's logits are bit-identical to a serial session's
//! by construction; the cluster only adds the shared-memory *timing*
//! model (bank conflicts, arbiter stalls) on top.

use crate::image::{
    fnv1a64, read_clip_logits, recover_machine, write_clip_input, Flavor, InferenceImage,
    IntegrityBank, RecoveryReport,
};
use crate::{BuildError, DeviceError, Result};
use kwt_model::KwtConfig;
use kwt_quant::{A8Config, QuantConfig};
use kwt_rv32::{BankConfig, ClassHistogram, Cluster, HartStats, Machine, RunResult};
use kwt_tensor::Mat;

/// Per-run step budget, matching the serial session's `run_machine`.
const MAX_STEPS: u64 = 2_000_000_000;

/// Outcome of one [`ClusterSession::run_loaded`] wave.
#[derive(Debug, Clone)]
pub struct ClusterWave {
    /// Per active hart: this run's cycle/instruction deltas (like
    /// [`DeviceSession::run_into`](crate::DeviceSession::run_into)), or
    /// the structured device fault that stopped that hart. One hart
    /// faulting never disturbs the others.
    pub results: Vec<std::result::Result<RunResult, DeviceError>>,
    /// Per active hart timing accounting on the shared SoC timeline.
    pub stats: Vec<HartStats>,
    /// SoC cycles from wave start until the last hart finished.
    pub soc_cycles: u64,
}

impl ClusterWave {
    /// Total stall cycles over total occupied hart-cycles — the
    /// bank-conflict tax of this wave.
    pub fn stall_fraction(&self) -> f64 {
        let stalled: u64 = self.stats.iter().map(|s| s.stall_cycles).sum();
        let occupied: u64 = self
            .stats
            .iter()
            .map(|s| s.busy_cycles + s.stall_cycles)
            .sum();
        stalled as f64 / occupied.max(1) as f64
    }

    /// Mean per-hart utilisation over the SoC timeline.
    pub fn mean_utilisation(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats
            .iter()
            .map(|s| s.busy_cycles as f64 / self.soc_cycles.max(1) as f64)
            .sum::<f64>()
            / self.stats.len() as f64
    }
}

/// A persistent N-hart inference session on one [`InferenceImage`] (see
/// [`InferenceImage::cluster_session`]).
///
/// The wave protocol: [`load_clip`](Self::load_clip) (or
/// [`load_clip_prequantized`](Self::load_clip_prequantized)) into harts
/// `0..k`, [`run_loaded(k)`](Self::run_loaded), then
/// [`read_logits`](Self::read_logits) per hart. Loading resets the
/// hart's architectural registers, so waves re-arm exactly like the
/// serial session's reset-per-run.
#[derive(Debug, Clone)]
pub struct ClusterSession {
    cluster: Cluster,
    flavor: Flavor,
    config: KwtConfig,
    qconfig: Option<QuantConfig>,
    a8config: Option<A8Config>,
    input_addr: u32,
    logits_addr: u32,
    integrity: Vec<IntegrityBank>,
    runs: u64,
}

impl InferenceImage {
    /// Opens an `n`-hart cluster session with the default bank geometry
    /// (eight word-interleaved single-cycle banks).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Trap`] if the image does not fit the
    /// platform RAM.
    pub fn cluster_session(&self, harts: usize) -> Result<ClusterSession> {
        self.cluster_session_with(harts, BankConfig::default8())
    }

    /// [`cluster_session`](Self::cluster_session) with explicit bank
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Trap`] if the image does not fit the
    /// platform RAM.
    pub fn cluster_session_with(&self, harts: usize, banks: BankConfig) -> Result<ClusterSession> {
        let mut template = Machine::load(&self.program, self.platform())?;
        for (id, name) in crate::regions::region_names() {
            template.name_region(id, &name);
        }
        Ok(ClusterSession {
            cluster: Cluster::replicate(&template, harts, banks),
            flavor: self.flavor,
            config: self.config,
            qconfig: self.qconfig,
            a8config: self.a8config,
            input_addr: self.input_addr(),
            logits_addr: self.logits_addr(),
            integrity: self.integrity_banks(),
            runs: 0,
        })
    }
}

impl ClusterSession {
    /// Number of harts in the cluster.
    pub fn num_harts(&self) -> usize {
        self.cluster.num_harts()
    }

    /// The image flavour this session runs.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }

    /// The model configuration this session runs.
    pub fn config(&self) -> &KwtConfig {
        &self.config
    }

    /// Successful inferences completed across all harts.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The bank geometry of the shared memory.
    pub fn bank_config(&self) -> BankConfig {
        self.cluster.bank_config()
    }

    /// The power-of-two input exponent of a pre-quantising front end —
    /// `Some` only for [`Flavor::A8`] images (see
    /// [`DeviceSession::input_exponent`](crate::DeviceSession::input_exponent)).
    pub fn input_exponent(&self) -> Option<i32> {
        match self.flavor {
            Flavor::A8 => Some(
                self.a8config
                    .expect("A8 flavour carries a8config")
                    .input_exponent(),
            ),
            _ => None,
        }
    }

    fn check_shape(&self, shape: (usize, usize)) -> Result<()> {
        let c = &self.config;
        if shape != (c.input_time, c.input_freq) {
            return Err(BuildError::Model(format!(
                "input shape {:?}, expected ({}, {})",
                shape, c.input_time, c.input_freq
            )));
        }
        Ok(())
    }

    /// Resets hart `hart` and writes one float clip into its private
    /// input mailbox (quantised flavour-appropriately, exactly like the
    /// serial session).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Model`] for a wrong input shape.
    ///
    /// # Panics
    ///
    /// Panics if `hart` is out of range.
    pub fn load_clip(&mut self, hart: usize, mfcc: &Mat<f32>) -> Result<()> {
        self.check_shape(mfcc.shape())?;
        let m = self.cluster.hart_mut(hart);
        m.reset_cpu();
        write_clip_input(
            m,
            self.flavor,
            self.qconfig,
            self.a8config,
            self.input_addr,
            mfcc,
        );
        Ok(())
    }

    /// Resets hart `hart` and writes a clip already quantised to the
    /// image's `i8` format at [`input_exponent`](Self::input_exponent)
    /// into its mailbox (A8 images only).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Model`] for a wrong input shape or a
    /// non-A8 image.
    ///
    /// # Panics
    ///
    /// Panics if `hart` is out of range.
    pub fn load_clip_prequantized(&mut self, hart: usize, input: &Mat<i8>) -> Result<()> {
        if self.flavor != Flavor::A8 {
            return Err(BuildError::Model(format!(
                "pre-quantised input requires an A8 image, this session runs {:?}",
                self.flavor
            )));
        }
        self.check_shape(input.shape())?;
        let input_addr = self.input_addr;
        let m = self.cluster.hart_mut(hart);
        m.reset_cpu();
        m.write_i8s(input_addr, input.as_slice());
        Ok(())
    }

    /// Runs harts `0..n_active` (each must have a clip loaded) to
    /// completion on the shared banked memory, one inference per hart.
    /// Per-hart results carry this run's cycle/instruction deltas; the
    /// wave's `soc_cycles` is the cluster-throughput denominator.
    ///
    /// # Panics
    ///
    /// Panics if `n_active` is zero or exceeds the hart count.
    pub fn run_loaded(&mut self, n_active: usize) -> ClusterWave {
        let cycles0: Vec<u64> = (0..n_active)
            .map(|h| self.cluster.hart(h).cpu.cycles)
            .collect();
        let instret0: Vec<u64> = (0..n_active)
            .map(|h| self.cluster.hart(h).cpu.instret)
            .collect();
        let run = self.cluster.run_active(n_active, MAX_STEPS);
        let results: Vec<std::result::Result<RunResult, DeviceError>> = run
            .results
            .into_iter()
            .enumerate()
            .map(|(h, r)| match r {
                Ok(rr) => {
                    self.runs += 1;
                    Ok(RunResult {
                        cycles: rr.cycles - cycles0[h],
                        instructions: rr.instructions - instret0[h],
                        exit_code: rr.exit_code,
                    })
                }
                Err(trap) => Err(DeviceError {
                    trap,
                    pc: self.cluster.hart(h).cpu.pc,
                    cycles: self.cluster.hart(h).cpu.cycles - cycles0[h],
                    image_flavor: self.flavor,
                }),
            })
            .collect();
        ClusterWave {
            results,
            stats: run.stats,
            soc_cycles: run.soc_cycles,
        }
    }

    /// Reads hart `hart`'s float logits from its private logits mailbox
    /// into `logits` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `hart` is out of range.
    pub fn read_logits(&self, hart: usize, logits: &mut Vec<f32>) {
        read_clip_logits(
            self.cluster.hart(hart),
            self.flavor,
            self.qconfig,
            self.a8config,
            &self.config,
            self.logits_addr,
            logits,
        );
    }

    /// Arms a deterministic [`FaultPlan`](kwt_rv32::FaultPlan) on one
    /// hart only — the other harts keep running fault-free.
    pub fn inject_faults(&mut self, hart: usize, plan: kwt_rv32::FaultPlan) {
        self.cluster.hart_mut(hart).set_fault_plan(plan);
    }

    /// Faults that actually fired on hart `hart`, in injection order.
    pub fn fault_log(&self, hart: usize) -> &[kwt_rv32::FaultRecord] {
        self.cluster.hart(hart).fault_log()
    }

    /// Re-arms hart `hart` after a fault — the per-hart twin of
    /// [`DeviceSession::recover`](crate::DeviceSession::recover): reset,
    /// fault disarm, LUT restore, and checksum-driven repair of the
    /// hart's static banks against the build-time digests.
    pub fn recover(&mut self, hart: usize) -> RecoveryReport {
        recover_machine(self.cluster.hart_mut(hart), &self.integrity)
    }

    /// Checksums hart `hart`'s static banks without repairing: `true`
    /// if they still match the build-time digests.
    pub fn verify_integrity(&self, hart: usize) -> bool {
        let m = self.cluster.hart(hart);
        self.integrity.iter().all(|bank| {
            fnv1a64(m.cpu.mem.read_bytes(bank.addr, bank.pristine.len())) == bank.checksum
        })
    }

    /// Arms (or disarms with `None`) a per-run cycle watchdog on every
    /// hart.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        for h in 0..self.cluster.num_harts() {
            self.cluster.hart_mut(h).set_cycle_watchdog(budget);
        }
    }

    /// Arms or disarms per-class retirement counting on one hart (idle
    /// harts never pay the counting cost).
    pub fn set_class_histogram_enabled(&mut self, hart: usize, enabled: bool) {
        self.cluster.set_class_histogram_enabled(hart, enabled);
    }

    /// Per-hart class histograms (zeroed for unarmed harts).
    pub fn class_histograms(&self) -> Vec<ClassHistogram> {
        self.cluster.class_histograms()
    }

    /// The SoC-wide class histogram: every hart's counts summed.
    pub fn summed_class_histogram(&self) -> ClassHistogram {
        self.cluster.summed_class_histogram()
    }

    /// The underlying hart, for register/memory inspection.
    pub fn hart(&self, hart: usize) -> &Machine {
        self.cluster.hart(hart)
    }
}

/// `true` if every hart of a wave completed without a device fault.
pub fn wave_all_ok(wave: &ClusterWave) -> bool {
    wave.results.iter().all(|r| r.is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_model::{KwtConfig, KwtParams};
    use kwt_quant::{A8Config, A8Kwt};
    use kwt_rv32::Trap;

    fn trained_ish() -> KwtParams {
        let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
        p.visit_mut(|s| {
            for v in s {
                *v *= 0.6;
            }
        });
        p
    }

    fn a8_image() -> InferenceImage {
        let params = trained_ish();
        let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        InferenceImage::build_a8(&a8).unwrap()
    }

    fn clip(seed: u64, c: &KwtConfig) -> Mat<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Mat::from_fn(c.input_time, c.input_freq, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as i32 - (1 << 23)) as f32 / (1 << 25) as f32
        })
    }

    #[test]
    fn cluster_logits_bit_identical_to_serial_session() {
        let image = a8_image();
        let c = image.config;
        let mut serial = image.session().unwrap();
        let mut cluster = image.cluster_session(4).unwrap();
        let clips: Vec<Mat<f32>> = (0..4).map(|i| clip(i, &c)).collect();

        let mut serial_logits = vec![Vec::new(); 4];
        let mut serial_cycles = Vec::new();
        for (i, clip) in clips.iter().enumerate() {
            let r = serial.run_into(clip, &mut serial_logits[i]).unwrap();
            serial_cycles.push(r.cycles);
        }

        for (i, clip) in clips.iter().enumerate() {
            cluster.load_clip(i, clip).unwrap();
        }
        let wave = cluster.run_loaded(4);
        assert!(wave_all_ok(&wave));
        let mut logits = Vec::new();
        for (i, serial) in serial_logits.iter().enumerate() {
            cluster.read_logits(i, &mut logits);
            assert_eq!(
                &logits, serial,
                "hart {i} logits must be bit-identical to serial"
            );
        }
        // functional cycles identical too: contention delays, never adds work
        for (i, cycles) in serial_cycles.iter().enumerate() {
            assert_eq!(wave.results[i].as_ref().unwrap().cycles, *cycles);
        }
        assert!(wave.soc_cycles >= *serial_cycles.iter().max().unwrap());
    }

    #[test]
    fn single_hart_cluster_session_cycle_identical() {
        let image = a8_image();
        let c = image.config;
        let mfcc = clip(3, &c);
        let mut serial = image.session().unwrap();
        let mut logits_serial = Vec::new();
        let serial_run = serial.run_into(&mfcc, &mut logits_serial).unwrap();

        let mut cluster = image.cluster_session(1).unwrap();
        cluster.load_clip(0, &mfcc).unwrap();
        let wave = cluster.run_loaded(1);
        let run = wave.results[0].as_ref().unwrap();
        assert_eq!(run, &serial_run);
        assert_eq!(wave.stats[0].stall_cycles, 0);
        assert_eq!(wave.soc_cycles, serial_run.cycles);
        let mut logits = Vec::new();
        cluster.read_logits(0, &mut logits);
        assert_eq!(logits, logits_serial);
    }

    #[test]
    fn fault_on_one_hart_is_isolated_and_recoverable() {
        let image = a8_image();
        let c = image.config;
        let clips: Vec<Mat<f32>> = (0..3).map(|i| clip(10 + i, &c)).collect();
        let mut cluster = image.cluster_session(3).unwrap();

        // fault-free baseline wave
        for (i, clipm) in clips.iter().enumerate() {
            cluster.load_clip(i, clipm).unwrap();
        }
        let base = cluster.run_loaded(3);
        assert!(wave_all_ok(&base));
        let mut clean = vec![Vec::new(); 3];
        for (i, c) in clean.iter_mut().enumerate() {
            cluster.read_logits(i, c);
        }

        // trap hart 1 at its entry pc; harts 0 and 2 run fault-free
        for (i, clipm) in clips.iter().enumerate() {
            cluster.load_clip(i, clipm).unwrap();
        }
        let trap = Trap::AccessOutOfBounds { addr: 0xBAD, pc: 0 };
        let pc = cluster.hart(1).cpu.pc;
        cluster.inject_faults(1, kwt_rv32::FaultPlan::new().force_trap_at_pc(pc, trap));
        let wave = cluster.run_loaded(3);
        assert!(wave.results[1].is_err(), "hart 1 must trap");
        let mut logits = Vec::new();
        for i in [0usize, 2] {
            assert!(wave.results[i].is_ok(), "hart {i} must be isolated");
            cluster.read_logits(i, &mut logits);
            assert_eq!(logits, clean[i], "hart {i} logits must be unaffected");
        }

        // recover hart 1 and prove the next wave is clean again
        let report = cluster.recover(1);
        assert_eq!(report.faults_cleared, 0); // the event fired (consumed)
        assert!(cluster.verify_integrity(1));
        for (i, clipm) in clips.iter().enumerate() {
            cluster.load_clip(i, clipm).unwrap();
        }
        let after = cluster.run_loaded(3);
        assert!(wave_all_ok(&after));
        cluster.read_logits(1, &mut logits);
        assert_eq!(logits, clean[1], "recovered hart must match fault-free");
    }

    #[test]
    fn prequantized_wave_matches_float_wave() {
        let image = a8_image();
        let c = image.config;
        let mfcc = clip(7, &c);
        let yi = image.a8config.unwrap().input_bits;
        let mut q = Mat::default();
        kwt_tensor::qops::quantize_i8_scaled_into(&mfcc, yi, &mut q);

        let mut cluster = image.cluster_session(2).unwrap();
        cluster.load_clip(0, &mfcc).unwrap();
        cluster.load_clip_prequantized(1, &q).unwrap();
        let wave = cluster.run_loaded(2);
        assert!(wave_all_ok(&wave));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        cluster.read_logits(0, &mut a);
        cluster.read_logits(1, &mut b);
        assert_eq!(a, b, "prequantized mailbox path must be bit-identical");
    }
}
