//! Complete bare-metal inference images and the host harness that runs
//! them on the simulator.
//!
//! An [`InferenceImage`] is a fully linked program (code + weights +
//! buffers) for one of three flavours:
//!
//! | Flavour                 | Paper model             | Table IX row |
//! |-------------------------|-------------------------|--------------|
//! | [`Flavor::Float`]       | KWT-Tiny (soft-float)   | 26 M cycles  |
//! | [`Flavor::Quantized`]   | KWT-Tiny-Q              | 13 M cycles  |
//! | [`Flavor::Accelerated`] | KWT-Tiny-Q (+Hardware)  | 5.5 M cycles |
//!
//! Activations live in the paper's two static banks (§V), sized
//! `SEQLEN x MLP_DIM` and `SEQLEN x DIM_HEAD x 3` elements; the builder's
//! bump allocators prove at build time that no stage overflows them.

use crate::banks::Bank;
use crate::kernels::{
    a8_attn_params, a8_ln_params, attn_params, gelu_params, ln_params, A8Kernels, KernelIsa,
    Kernels,
};
use crate::mathlib::MathLib;
use crate::regions;
use crate::softfloat::SoftFloat;
use crate::specialise::{self, GemmGeom, TunedKernels};
use crate::{BuildError, Result};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{A8Config, A8Kwt, Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_rv32::{Machine, Platform, ProfileReport, RunResult};
use kwt_rvasm::{Asm, Inst, Program, Reg, CSR_PROFILE_POP, CSR_PROFILE_PUSH};
use kwt_tensor::{qops, Mat};

/// Which inference pipeline the image implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Float weights, soft-float everything.
    Float,
    /// INT8 weights / INT16 residuals, float non-linearities.
    Quantized,
    /// Quantised pipeline + custom-instruction SoftMax/GELU.
    Accelerated,
    /// Fully-INT8 (A8W8) pipeline over `kdot4.i8`, LUT non-linearities
    /// and the fused attention row pipeline — always
    /// [`KernelIsa::Xkwtdot`].
    A8,
}

/// A built inference program plus everything needed to run it.
#[derive(Debug, Clone)]
pub struct InferenceImage {
    /// The pipeline flavour.
    pub flavor: Flavor,
    /// Which kernel ISA the image was generated for.
    pub isa: KernelIsa,
    /// The linked program (text + data).
    pub program: Program,
    /// Model architecture.
    pub config: KwtConfig,
    /// Quantisation scales (i16 quantised flavours only).
    pub qconfig: Option<QuantConfig>,
    /// A8 exponent configuration ([`Flavor::A8`] only).
    pub a8config: Option<A8Config>,
    input_addr: u32,
    logits_addr: u32,
    /// `(high_water, capacity)` for bank 1 and bank 2.
    pub bank_usage: [(usize, usize); 2],
    /// `(addr, len)` byte ranges the program writes at run time (input,
    /// activations, logits, scratch). Everything else in the image —
    /// text and weight banks — is static, and its build-time checksums
    /// anchor [`DeviceSession::recover`].
    mutable_ranges: Vec<(u32, u32)>,
    /// The simulated platform this image was linked against (RAM size /
    /// stack budget). The paper's 64 kB Ibex by default; KWT-1-scale
    /// images use [`Platform::ibex_with_ram`] (same timing model).
    platform: Platform,
}

const TEXT_BASE: u32 = 0x0;
const DATA_BASE: u32 = 0x8000;

fn push_region(asm: &mut Asm, region: u32) {
    asm.li(Reg::T0, region as i32);
    asm.emit(Inst::Csrrw {
        rd: Reg::Zero,
        rs1: Reg::T0,
        csr: CSR_PROFILE_PUSH,
    });
}

fn pop_region(asm: &mut Asm) {
    asm.emit(Inst::Csrrw {
        rd: Reg::Zero,
        rs1: Reg::Zero,
        csr: CSR_PROFILE_POP,
    });
}

/// Loads up to 8 integer arguments into `a0..a7`.
fn set_args(asm: &mut Asm, args: &[i32]) {
    const ARGS: [Reg; 8] = [
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
    ];
    assert!(args.len() <= 8, "at most 8 register arguments");
    for (reg, &v) in ARGS.iter().zip(args) {
        asm.li(*reg, v);
    }
}

impl InferenceImage {
    /// Builds the float-flavour image from trained float parameters.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Model`] for unsupported configurations
    /// (`heads != 1`), [`BuildError::BankOverflow`] if an activation does
    /// not fit the paper's banks, or [`BuildError::RamBudget`] if the
    /// image exceeds the 64 kB platform.
    pub fn build_float(params: &KwtParams) -> Result<Self> {
        Self::build_float_on(params, Platform::ibex())
    }

    /// [`Self::build_float`] linked against an explicit [`Platform`] —
    /// [`Platform::ibex_with_ram`] admits KWT-1-scale images whose
    /// weights exceed the paper's 64 kB part (the timing model is
    /// unchanged, so simulated cycles stay comparable).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::build_float`], with the RAM budget
    /// checked against `platform`.
    pub fn build_float_on(params: &KwtParams, platform: Platform) -> Result<Self> {
        let c = params.config;
        if c.heads != 1 {
            return Err(BuildError::Model(format!(
                "bare-metal images support heads = 1 (both paper configs), got {}",
                c.heads
            )));
        }
        let (s, dim, mlp, dh, f, t, classes) = (
            c.seqlen(),
            c.dim,
            c.mlp_dim,
            c.dim_head,
            c.input_freq,
            c.input_time,
            c.num_classes,
        );
        let mut asm = Asm::new(TEXT_BASE, DATA_BASE);

        // ---- data: weights ----
        let w_proj = asm.data_words_f32(params.w_proj.as_slice());
        let b_proj = asm.data_words_f32(&params.b_proj);
        let pos = asm.data_words_f32(params.pos_emb.as_slice());
        let cls = asm.data_words_f32(&params.class_token);
        let layer = &params.layers[0];
        let mut layers_data = Vec::new();
        for l in &params.layers {
            layers_data.push((
                asm.data_words_f32(l.w_qkv.as_slice()),
                asm.data_words_f32(&l.b_qkv),
                asm.data_words_f32(l.w_out.as_slice()),
                asm.data_words_f32(&l.b_out),
                asm.data_words_f32(&l.ln1_gamma),
                asm.data_words_f32(&l.ln1_beta),
                asm.data_words_f32(l.w_mlp1.as_slice()),
                asm.data_words_f32(&l.b_mlp1),
                asm.data_words_f32(l.w_mlp2.as_slice()),
                asm.data_words_f32(&l.b_mlp2),
                asm.data_words_f32(&l.ln2_gamma),
                asm.data_words_f32(&l.ln2_beta),
            ));
        }
        let _ = layer;
        let w_head = asm.data_words_f32(params.w_head.as_slice());
        let b_head = asm.data_words_f32(&params.b_head);

        // ---- data: buffers ----
        let input = asm.data_reserve(t * f * 4, 4);
        let x = asm.data_reserve(s * dim * 4, 4);
        let logits = asm.data_reserve(classes * 4, 4);
        // the paper's two banks (float element size)
        let bank1_base = asm.data_reserve(s * mlp * 4, 4);
        let bank2_base = asm.data_reserve(s * dh * 3 * 4, 4);
        let mut bank1 = Bank::new("bank1", bank1_base, s * mlp * 4);
        let mut bank2 = Bank::new("bank2", bank2_base, s * dh * 3 * 4);
        // every run-time-written region; the rest of the image is static
        let mutable_ranges = vec![
            (input, (t * f * 4) as u32),
            (x, (s * dim * 4) as u32),
            (logits, (classes * 4) as u32),
            (bank1_base, (s * mlp * 4) as u32),
            (bank2_base, (s * dh * 3 * 4) as u32),
        ];

        // ---- code ----
        let over = asm.new_label();
        asm.jump_to(over);
        let sf = SoftFloat::emit(&mut asm);
        let math = MathLib::emit(&mut asm, &sf);
        let k = Kernels::emit(&mut asm, &sf, &math);
        asm.bind(over)?;
        asm.here("entry");

        // tokens = input @ Wp + bp, written into x rows 1..
        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_MATMUL);
        set_args(
            &mut asm,
            &[
                input as i32,
                w_proj as i32,
                b_proj as i32,
                (x + dim as u32 * 4) as i32,
                t as i32,
                f as i32,
                dim as i32,
            ],
        );
        asm.call(k.matmul_f32);
        pop_region(&mut asm);
        // class token + positional embeddings
        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
        set_args(&mut asm, &[x as i32, cls as i32, (dim * 4) as i32]);
        asm.call(k.copy_bytes);
        set_args(&mut asm, &[x as i32, pos as i32, (s * dim) as i32]);
        asm.call(k.add_f32);
        pop_region(&mut asm);

        let inv_sqrt_dh = (1.0 / (dh as f32).sqrt()).to_bits() as i32;
        let inv_dim = (1.0 / dim as f32).to_bits() as i32;
        let eps = c.ln_eps.to_bits() as i32;

        for ld in &layers_data {
            let (w_qkv, b_qkv, w_out, b_out, g1, be1, w1, b1, w2, b2, g2, be2) = *ld;
            bank1.reset();
            bank2.reset();
            // qkv projection: S x 3dh into bank1
            let qkv = bank1.alloc(s * 3 * dh * 4, 4)?;
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    w_qkv as i32,
                    b_qkv as i32,
                    qkv as i32,
                    s as i32,
                    dim as i32,
                    (3 * dh) as i32,
                ],
            );
            asm.call(k.matmul_f32);
            pop_region(&mut asm);
            // split into contiguous Q, K, V (bank2 = S x dh x 3 exactly)
            let q = bank2.alloc(s * dh * 4, 4)?;
            let kk = bank2.alloc(s * dh * 4, 4)?;
            let v = bank2.alloc(s * dh * 4, 4)?;
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_OTHER);
            for (dst, off) in [(q, 0u32), (kk, dh as u32 * 4), (v, 2 * dh as u32 * 4)] {
                set_args(
                    &mut asm,
                    &[
                        dst as i32,
                        (qkv + off) as i32,
                        s as i32,
                        (3 * dh * 4) as i32,
                        (dh * 4) as i32,
                    ],
                );
                asm.call(k.copy_strided);
            }
            pop_region(&mut asm);
            // qkv buffer is dead: reuse bank1 for attention scratch
            bank1.reset();
            let sa = bank1.alloc(s * dh * 4, 4)?;
            let row = bank1.alloc(s * 4, 4)?;
            let attn_out = bank1.alloc(s * dim * 4, 4)?;
            set_args(
                &mut asm,
                &[
                    q as i32,
                    kk as i32,
                    v as i32,
                    sa as i32,
                    s as i32,
                    dh as i32,
                    row as i32,
                    inv_sqrt_dh,
                ],
            );
            asm.call(k.attention_f32);
            // output projection + residual + LN1
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    sa as i32,
                    w_out as i32,
                    b_out as i32,
                    attn_out as i32,
                    s as i32,
                    dh as i32,
                    dim as i32,
                ],
            );
            asm.call(k.matmul_f32);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
            set_args(&mut asm, &[x as i32, attn_out as i32, (s * dim) as i32]);
            asm.call(k.add_f32);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_LAYERNORM);
            set_args(
                &mut asm,
                &[
                    x as i32, g1 as i32, be1 as i32, s as i32, dim as i32, inv_dim, eps,
                ],
            );
            asm.call(k.layer_norm_f32);
            pop_region(&mut asm);
            // MLP
            bank1.reset();
            bank2.reset();
            let hidden = bank1.alloc(s * mlp * 4, 4)?;
            let mlp_out = bank2.alloc(s * dim * 4, 4)?;
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    w1 as i32,
                    b1 as i32,
                    hidden as i32,
                    s as i32,
                    dim as i32,
                    mlp as i32,
                ],
            );
            asm.call(k.matmul_f32);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_GELU);
            set_args(&mut asm, &[hidden as i32, (s * mlp) as i32]);
            asm.call(k.gelu_f32);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    hidden as i32,
                    w2 as i32,
                    b2 as i32,
                    mlp_out as i32,
                    s as i32,
                    mlp as i32,
                    dim as i32,
                ],
            );
            asm.call(k.matmul_f32);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
            set_args(&mut asm, &[x as i32, mlp_out as i32, (s * dim) as i32]);
            asm.call(k.add_f32);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_LAYERNORM);
            set_args(
                &mut asm,
                &[
                    x as i32, g2 as i32, be2 as i32, s as i32, dim as i32, inv_dim, eps,
                ],
            );
            asm.call(k.layer_norm_f32);
            pop_region(&mut asm);
        }

        // classification head on the class-token row
        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_MATMUL);
        set_args(
            &mut asm,
            &[
                x as i32,
                w_head as i32,
                b_head as i32,
                logits as i32,
                1,
                dim as i32,
                classes as i32,
            ],
        );
        asm.call(k.matmul_f32);
        pop_region(&mut asm);
        asm.li(Reg::A0, logits as i32);
        asm.emit(Inst::Ebreak);

        let program = asm.finish()?;
        check_ram(&program, &platform)?;
        Ok(InferenceImage {
            flavor: Flavor::Float,
            isa: KernelIsa::Rv32im,
            program,
            config: c,
            qconfig: None,
            a8config: None,
            input_addr: input,
            logits_addr: logits,
            bank_usage: [
                (bank1.high_water(), bank1.size()),
                (bank2.high_water(), bank2.size()),
            ],
            mutable_ranges,
            platform,
        })
    }

    /// Builds a quantised image (`Flavor::Quantized` or
    /// `Flavor::Accelerated` according to the model's
    /// [`Nonlinearity`]) over the scalar [`KernelIsa::Rv32im`] kernels.
    ///
    /// # Errors
    ///
    /// Same contract as [`InferenceImage::build_float`].
    pub fn build_quant(qm: &QuantizedKwt) -> Result<Self> {
        Self::build_quant_with_isa(qm, KernelIsa::Rv32im)
    }

    /// Builds a quantised image over the chosen kernel ISA. Under
    /// [`KernelIsa::Xkwtdot`] every INT8 weight matrix is emitted
    /// **transposed** (word-aligned, `N×K` row-major) so the packed GEMM
    /// walks contiguous memory; the generated logits are bit-identical
    /// to the scalar image's (proven by differential tests).
    ///
    /// # Errors
    ///
    /// Same contract as [`InferenceImage::build_float`].
    pub fn build_quant_with_isa(qm: &QuantizedKwt, isa: KernelIsa) -> Result<Self> {
        Self::build_quant_with_isa_on(qm, isa, Platform::ibex())
    }

    /// [`Self::build_quant_with_isa`] linked against an explicit
    /// [`Platform`] (see [`Self::build_float_on`]) — the path that fits
    /// a KWT-1-sized weight set on a roomier simulated part.
    ///
    /// # Errors
    ///
    /// Same contract as [`InferenceImage::build_float`], with the RAM
    /// budget checked against `platform`.
    pub fn build_quant_with_isa_on(
        qm: &QuantizedKwt,
        isa: KernelIsa,
        platform: Platform,
    ) -> Result<Self> {
        let c = qm.config;
        if c.heads != 1 {
            return Err(BuildError::Model(format!(
                "bare-metal images support heads = 1 (both paper configs), got {}",
                c.heads
            )));
        }
        let (s, dim, mlp, dh, f, t, classes) = (
            c.seqlen(),
            c.dim,
            c.mlp_dim,
            c.dim_head,
            c.input_freq,
            c.input_time,
            c.num_classes,
        );
        let ya = qm.qconfig.input_bits;
        let yw = qm.qconfig.weight_bits;
        let accel = qm.nonlinearity == Nonlinearity::FixedLut;
        let mut asm = Asm::new(TEXT_BASE, DATA_BASE);

        // ---- data: weights ----
        // Under Xkwtdot every i8 weight matrix is emitted transposed
        // (N×K row-major, word-aligned) so the packed GEMM loads walk
        // contiguous memory.
        let emit_w = |asm: &mut Asm, w: &kwt_tensor::Mat<i8>| -> u32 {
            match isa {
                KernelIsa::Rv32im => asm.data_bytes_i8(w.as_slice()),
                KernelIsa::Xkwtdot => {
                    asm.data_align(4);
                    asm.data_bytes_i8(w.transpose().as_slice())
                }
            }
        };
        let (wp, bp, pe, ct, wh, bh) = qm.tensors();
        let w_proj = emit_w(&mut asm, wp);
        let b_proj = asm.data_words_i32(bp);
        let pos = asm.data_halves_i16(pe.as_slice());
        let cls = asm.data_halves_i16(ct);
        let mut layers_data = Vec::new();
        for idx in 0..c.depth {
            let (w_qkv, b_qkv, w_out, b_out, g1, be1, w1, b1, w2, b2, g2, be2) =
                qm.layer_tensors(idx);
            layers_data.push((
                emit_w(&mut asm, w_qkv),
                asm.data_words_i32(b_qkv),
                emit_w(&mut asm, w_out),
                asm.data_words_i32(b_out),
                asm.data_words_f32(g1),
                asm.data_words_f32(be1),
                emit_w(&mut asm, w1),
                asm.data_words_i32(b1),
                emit_w(&mut asm, w2),
                asm.data_words_i32(b2),
                asm.data_words_f32(g2),
                asm.data_words_f32(be2),
            ));
        }
        let w_head = emit_w(&mut asm, wh);
        let b_head = asm.data_words_i32(bh);

        // parameter blocks
        let deq = (1.0f32 / (1u32 << ya) as f32).to_bits() as i32;
        let req = ((1u32 << ya) as f32).to_bits() as i32;
        let inv_sqrt_dh = (1.0 / (dh as f32).sqrt()).to_bits() as i32;
        let inv_dim = (1.0 / dim as f32).to_bits() as i32;
        let eps = c.ln_eps.to_bits() as i32;
        let nl = if accel { 1i32 } else { 0 };

        // ---- data: buffers ----
        let input = asm.data_reserve(t * f * 2, 4);
        let x = asm.data_reserve(s * dim * 2, 4);
        let logits = asm.data_reserve(classes * 2, 4);
        // shared float scratch row: max(S, mlp, dim) floats
        let scratch_len = s.max(mlp).max(dim);
        let scratch = asm.data_reserve(scratch_len * 4, 4);
        // parameter blocks (values known now; emitted as data words)
        let attn_p = asm.data_words_i32(&[
            ya as i32,
            inv_sqrt_dh,
            deq,
            req,
            0, // ROWF patched below via a second block — instead store scratch addr now
            nl,
            0,
            0,
        ]);
        // fix ROWF in place: rebuild with the known scratch address
        // (data_words_i32 already wrote zeros; overwrite through a second
        // reservation is not possible, so write the real block here)
        let _ = attn_p;
        // padded score length and (Xkwtdot only) the V-transpose scratch
        let kp = (s + 3) & !3;
        let vt = match isa {
            KernelIsa::Rv32im => 0u32,
            KernelIsa::Xkwtdot => asm.data_reserve(dh * kp * 2, 4),
        };
        let attn_params_addr = asm.data_words_i32(&[
            ya as i32,
            inv_sqrt_dh,
            deq,
            req,
            scratch as i32,
            nl,
            vt as i32,
            kp as i32,
        ]);
        debug_assert_eq!(attn_params::SIZE, 32);
        let ln_params_addr = asm.data_words_i32(&[deq, req, inv_dim, eps, scratch as i32]);
        debug_assert_eq!(ln_params::SIZE, 20);
        let gelu_params_addr = asm.data_words_i32(&[deq, req, scratch as i32, nl]);
        debug_assert_eq!(gelu_params::SIZE, 16);

        // the paper's two banks (i16 element size)
        let bank1_base = asm.data_reserve(s * mlp * 2, 4);
        let bank2_base = asm.data_reserve(s * dh * 3 * 2, 4);
        let mut bank1 = Bank::new("bank1", bank1_base, s * mlp * 2);
        let mut bank2 = Bank::new("bank2", bank2_base, s * dh * 3 * 2);
        // every run-time-written region; the rest of the image is static
        let mut mutable_ranges = vec![
            (input, (t * f * 2) as u32),
            (x, (s * dim * 2) as u32),
            (logits, (classes * 2) as u32),
            (scratch, (scratch_len * 4) as u32),
            (bank1_base, (s * mlp * 2) as u32),
            (bank2_base, (s * dh * 3 * 2) as u32),
        ];
        if isa == KernelIsa::Xkwtdot {
            mutable_ranges.push((vt, (dh * kp * 2) as u32));
        }

        // ---- code ----
        let over = asm.new_label();
        asm.jump_to(over);
        let sf = SoftFloat::emit_with_isa(&mut asm, isa);
        let math = MathLib::emit(&mut asm, &sf);
        let k = Kernels::emit_with_isa(&mut asm, &sf, &math, isa);
        asm.bind(over)?;
        asm.here("entry");

        // projection into x rows 1..
        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_MATMUL);
        set_args(
            &mut asm,
            &[
                input as i32,
                w_proj as i32,
                b_proj as i32,
                (x + dim as u32 * 2) as i32,
                t as i32,
                f as i32,
                dim as i32,
                yw as i32,
            ],
        );
        asm.call(k.matmul_q);
        pop_region(&mut asm);
        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
        set_args(&mut asm, &[x as i32, cls as i32, (dim * 2) as i32]);
        asm.call(k.copy_bytes);
        set_args(&mut asm, &[x as i32, pos as i32, (s * dim) as i32]);
        asm.call(k.add_sat_i16);
        pop_region(&mut asm);

        for ld in &layers_data {
            let (w_qkv, b_qkv, w_out, b_out, g1, be1, w1, b1, w2, b2, g2, be2) = *ld;
            bank1.reset();
            bank2.reset();
            let qkv = bank1.alloc(s * 3 * dh * 2, 4)?;
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    w_qkv as i32,
                    b_qkv as i32,
                    qkv as i32,
                    s as i32,
                    dim as i32,
                    (3 * dh) as i32,
                    yw as i32,
                ],
            );
            asm.call(k.matmul_q);
            pop_region(&mut asm);
            let q = bank2.alloc(s * dh * 2, 4)?;
            let kk = bank2.alloc(s * dh * 2, 4)?;
            let v = bank2.alloc(s * dh * 2, 4)?;
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_OTHER);
            for (dst, off) in [(q, 0u32), (kk, dh as u32 * 2), (v, 2 * dh as u32 * 2)] {
                set_args(
                    &mut asm,
                    &[
                        dst as i32,
                        (qkv + off) as i32,
                        s as i32,
                        (3 * dh * 2) as i32,
                        (dh * 2) as i32,
                    ],
                );
                asm.call(k.copy_strided);
            }
            pop_region(&mut asm);
            bank1.reset();
            let sa = bank1.alloc(s * dh * 2, 4)?;
            // padded to KP entries so the packed N==1 GEMM can walk it
            // in word-sized lanes (the tail stays zero on both ISAs)
            let row16 = bank1.alloc(kp * 2, 4)?;
            let attn_out = bank1.alloc(s * dim * 2, 4)?;
            set_args(
                &mut asm,
                &[
                    q as i32,
                    kk as i32,
                    v as i32,
                    sa as i32,
                    s as i32,
                    dh as i32,
                    row16 as i32,
                    attn_params_addr as i32,
                ],
            );
            asm.call(k.attention_q);
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    sa as i32,
                    w_out as i32,
                    b_out as i32,
                    attn_out as i32,
                    s as i32,
                    dh as i32,
                    dim as i32,
                    yw as i32,
                ],
            );
            asm.call(k.matmul_q);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
            set_args(&mut asm, &[x as i32, attn_out as i32, (s * dim) as i32]);
            asm.call(k.add_sat_i16);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_LAYERNORM);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    g1 as i32,
                    be1 as i32,
                    s as i32,
                    dim as i32,
                    ln_params_addr as i32,
                ],
            );
            asm.call(k.ln_q);
            pop_region(&mut asm);
            // MLP
            bank1.reset();
            bank2.reset();
            let hidden = bank1.alloc(s * mlp * 2, 4)?;
            let mlp_out = bank2.alloc(s * dim * 2, 4)?;
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    w1 as i32,
                    b1 as i32,
                    hidden as i32,
                    s as i32,
                    dim as i32,
                    mlp as i32,
                    yw as i32,
                ],
            );
            asm.call(k.matmul_q);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_GELU);
            set_args(
                &mut asm,
                &[hidden as i32, s as i32, mlp as i32, gelu_params_addr as i32],
            );
            asm.call(k.gelu_q);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    hidden as i32,
                    w2 as i32,
                    b2 as i32,
                    mlp_out as i32,
                    s as i32,
                    mlp as i32,
                    dim as i32,
                    yw as i32,
                ],
            );
            asm.call(k.matmul_q);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
            set_args(&mut asm, &[x as i32, mlp_out as i32, (s * dim) as i32]);
            asm.call(k.add_sat_i16);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_LAYERNORM);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    g2 as i32,
                    be2 as i32,
                    s as i32,
                    dim as i32,
                    ln_params_addr as i32,
                ],
            );
            asm.call(k.ln_q);
            pop_region(&mut asm);
        }

        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_MATMUL);
        set_args(
            &mut asm,
            &[
                x as i32,
                w_head as i32,
                b_head as i32,
                logits as i32,
                1,
                dim as i32,
                classes as i32,
                yw as i32,
            ],
        );
        asm.call(k.matmul_q);
        pop_region(&mut asm);
        asm.li(Reg::A0, logits as i32);
        asm.emit(Inst::Ebreak);

        let program = asm.finish()?;
        check_ram(&program, &platform)?;
        Ok(InferenceImage {
            flavor: if accel {
                Flavor::Accelerated
            } else {
                Flavor::Quantized
            },
            isa,
            program,
            config: c,
            qconfig: Some(qm.qconfig),
            a8config: None,
            input_addr: input,
            logits_addr: logits,
            bank_usage: [
                (bank1.high_water(), bank1.size()),
                (bank2.high_water(), bank2.size()),
            ],
            mutable_ranges,
            platform,
        })
    }

    /// Builds the fully-INT8 A8W8 image ([`Flavor::A8`], always
    /// [`KernelIsa::Xkwtdot`]): i8 activations end to end over
    /// `kdot4.i8` GEMM inner loops, the fused scores→softmax→context
    /// attention row pipeline, fused LayerNorm/GELU boundaries and LUT
    /// non-linearities. Weights are emitted transposed (`N×K`,
    /// word-aligned) like the i16 Xkwtdot image.
    ///
    /// Device logits are bit-identical to the host golden model
    /// [`A8Kwt::forward_a8_into`] (proven by differential tests).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Model`] for unsupported configurations
    /// (`heads != 1`, `dim_head % 4 != 0`), [`BuildError::BankOverflow`]
    /// or [`BuildError::RamBudget`] like the other builders.
    pub fn build_a8(qm: &A8Kwt) -> Result<Self> {
        Self::build_a8_with(qm, Some(&TunedKernels::embedded()))
    }

    /// [`Self::build_a8`] without the kernel specialiser: every GEMM and
    /// LayerNorm call site uses the generic kernels. The cycle-count
    /// comparison baseline for the tuner gate and the benches.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build_a8`].
    pub fn build_a8_generic(qm: &A8Kwt) -> Result<Self> {
        Self::build_a8_with(qm, None)
    }

    /// [`Self::build_a8`] with an explicit tuned-factor table (`None`
    /// disables specialisation entirely). For every distinct GEMM
    /// geometry and the LayerNorm width the builder emits a specialised
    /// kernel with the table's factors (validated, defaults otherwise)
    /// and points the call sites at it; the generic kernels stay in the
    /// image as the runtime misalignment fallback.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build_a8`].
    pub fn build_a8_with(qm: &A8Kwt, tuned: Option<&TunedKernels>) -> Result<Self> {
        Self::build_a8_with_on(qm, tuned, Platform::ibex())
    }

    /// [`Self::build_a8_with`] linked against an explicit [`Platform`]
    /// (see [`Self::build_float_on`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build_a8`], with the RAM budget
    /// checked against `platform`.
    pub fn build_a8_with_on(
        qm: &A8Kwt,
        tuned: Option<&TunedKernels>,
        platform: Platform,
    ) -> Result<Self> {
        let c = qm.config;
        if c.heads != 1 {
            return Err(BuildError::Model(format!(
                "bare-metal images support heads = 1 (both paper configs), got {}",
                c.heads
            )));
        }
        if !c.dim_head.is_multiple_of(4) {
            return Err(BuildError::Model(format!(
                "the A8 fused attention kernel needs dim_head % 4 == 0, got {}",
                c.dim_head
            )));
        }
        let (s, dim, mlp, dh, f, t, classes) = (
            c.seqlen(),
            c.dim,
            c.mlp_dim,
            c.dim_head,
            c.input_freq,
            c.input_time,
            c.num_classes,
        );
        let k = qm.consts;
        let mut asm = Asm::new(TEXT_BASE, DATA_BASE);

        // ---- data: weights (transposed, word-aligned) ----
        let emit_w = |asm: &mut Asm, w: &kwt_tensor::Mat<i8>| -> u32 {
            asm.data_align(4);
            asm.data_bytes_i8(w.transpose().as_slice())
        };
        let (wp, bp, pe, ct, wh, bh) = qm.tensors();
        let w_proj = emit_w(&mut asm, wp);
        let b_proj = asm.data_words_i32(bp);
        let pos = asm.data_bytes_i8(pe.as_slice());
        let cls = asm.data_bytes_i8(ct);
        let mut layers_data = Vec::new();
        for idx in 0..c.depth {
            let (w_qkv, b_qkv, w_out, b_out, g1, be1, w1, b1, w2, b2, g2, be2) =
                qm.layer_tensors(idx);
            layers_data.push((
                emit_w(&mut asm, w_qkv),
                asm.data_words_i32(b_qkv),
                emit_w(&mut asm, w_out),
                asm.data_words_i32(b_out),
                asm.data_words_f32(g1),
                asm.data_words_f32(be1),
                emit_w(&mut asm, w1),
                asm.data_words_i32(b1),
                emit_w(&mut asm, w2),
                asm.data_words_i32(b2),
                asm.data_words_f32(g2),
                asm.data_words_f32(be2),
            ));
        }
        let w_head = emit_w(&mut asm, wh);
        let b_head = asm.data_words_i32(bh);

        // ---- data: buffers and parameter blocks ----
        let input = asm.data_reserve(t * f, 4);
        let x = asm.data_reserve(s * dim, 4);
        let logits = asm.data_reserve(classes, 4);
        // shared float/Q8.24 scratch row: the fused attention pipeline
        // needs `s` words, the LayerNorm row cache `dim` words
        let rowf = asm.data_reserve(s.max(dim) * 4, 4);
        let kp = (s + 3) & !3;
        let vt = asm.data_reserve(dh * kp, 4);
        let attn_params_addr = asm.data_words_i32(&[
            k.shift_scores as i32,
            k.score_deq_bits as i32,
            k.prob_req_bits as i32,
            k.shift_ctx as i32,
            rowf as i32,
            vt as i32,
        ]);
        debug_assert_eq!(a8_attn_params::SIZE, 24);
        // LayerNorm parameter blocks: layer 0's LN1 dequantises the
        // coarse stream0 exponent, every other LN the stream exponent.
        // Both reuse the attention row scratch as their float row cache
        // (sized max(S, dim) above; the kernels never run concurrently).
        let ln_p0 = asm.data_words_i32(&[
            k.ln_deq0_bits as i32,
            k.ln_req_bits as i32,
            k.inv_n_bits as i32,
            k.eps_bits as i32,
            rowf as i32,
        ]);
        let ln_p = asm.data_words_i32(&[
            k.ln_deq_bits as i32,
            k.ln_req_bits as i32,
            k.inv_n_bits as i32,
            k.eps_bits as i32,
            rowf as i32,
        ]);
        debug_assert_eq!(a8_ln_params::SIZE, 20);

        // the paper's two banks (i8 element size)
        let bank1_base = asm.data_reserve(s * mlp, 4);
        let bank2_base = asm.data_reserve(s * dh * 3, 4);
        let mut bank1 = Bank::new("bank1", bank1_base, s * mlp);
        let mut bank2 = Bank::new("bank2", bank2_base, s * dh * 3);
        // every run-time-written region; the rest of the image is static
        let mutable_ranges = vec![
            (input, (t * f) as u32),
            (x, (s * dim) as u32),
            (logits, classes as u32),
            (rowf, (s.max(dim) * 4) as u32),
            (vt, (dh * kp) as u32),
            (bank1_base, (s * mlp) as u32),
            (bank2_base, (s * dh * 3) as u32),
        ];

        // ---- code ----
        let over = asm.new_label();
        asm.jump_to(over);
        let k8 = A8Kernels::emit(&mut asm, s, dh);
        // specialised kernels for every distinct GEMM geometry and the
        // LayerNorm width, with the generic kernels as their fallback
        let gemm_sites = [
            (t, f, dim),       // patch projection
            (s, dim, 3 * dh),  // qkv projection
            (s, dh, dim),      // attention out projection
            (s, dim, mlp),     // mlp hidden
            (s, mlp, dim),     // mlp out
            (1, dim, classes), // classifier head
        ];
        let mut spec_gemm: Vec<(GemmGeom, kwt_rvasm::Label)> = Vec::new();
        let mut spec_ln = None;
        if let Some(table) = tuned {
            for (m, kd, n) in gemm_sites {
                let geom = GemmGeom {
                    m,
                    k: kd,
                    n,
                    has_bias: true,
                };
                if spec_gemm.iter().any(|(g, _)| *g == geom) {
                    continue;
                }
                let factors = table.gemm_factors(&geom);
                if factors.validate(&geom).is_err() {
                    continue; // unemittable geometry: generic call site
                }
                let label = specialise::emit_gemm_a8_spec(&mut asm, &geom, &factors, k8.matmul_a8);
                spec_gemm.push((geom, label));
            }
            let lf = table.ln_factors(dim);
            if lf.validate(dim).is_ok() {
                spec_ln = Some(specialise::emit_ln_a8_spec(&mut asm, dim, &lf));
            }
        }
        let gemm_at = |m: usize, kd: usize, n: usize| {
            spec_gemm
                .iter()
                .find(|(g, _)| g.m == m && g.k == kd && g.n == n)
                .map_or(k8.matmul_a8, |(_, l)| *l)
        };
        let ln_at = spec_ln.unwrap_or(k8.ln_a8);
        asm.bind(over)?;
        asm.here("entry");

        // projection into x rows 1..
        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_MATMUL);
        set_args(
            &mut asm,
            &[
                input as i32,
                w_proj as i32,
                b_proj as i32,
                (x + dim as u32) as i32,
                t as i32,
                f as i32,
                dim as i32,
                k.shift_proj as i32,
            ],
        );
        asm.call(gemm_at(t, f, dim));
        pop_region(&mut asm);
        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
        set_args(&mut asm, &[x as i32, cls as i32, dim as i32]);
        asm.call(k8.copy_bytes);
        set_args(&mut asm, &[x as i32, pos as i32, (s * dim) as i32]);
        asm.call(k8.add_sat_i8);
        pop_region(&mut asm);

        for (idx, ld) in layers_data.iter().enumerate() {
            let (w_qkv, b_qkv, w_out, b_out, g1, be1, w1, b1, w2, b2, g2, be2) = *ld;
            let (shift_qkv, shift_out, ln1_params) = if idx == 0 {
                (k.shift_qkv0, k.shift_out0, ln_p0)
            } else {
                (k.shift_qkv, k.shift_out, ln_p)
            };
            bank1.reset();
            bank2.reset();
            let qkv = bank1.alloc(s * 3 * dh, 4)?;
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    w_qkv as i32,
                    b_qkv as i32,
                    qkv as i32,
                    s as i32,
                    dim as i32,
                    (3 * dh) as i32,
                    shift_qkv as i32,
                ],
            );
            asm.call(gemm_at(s, dim, 3 * dh));
            pop_region(&mut asm);
            let q = bank2.alloc(s * dh, 4)?;
            let kk = bank2.alloc(s * dh, 4)?;
            let v = bank2.alloc(s * dh, 4)?;
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_OTHER);
            for (dst, off) in [(q, 0u32), (kk, dh as u32), (v, 2 * dh as u32)] {
                set_args(
                    &mut asm,
                    &[
                        dst as i32,
                        (qkv + off) as i32,
                        s as i32,
                        (3 * dh) as i32,
                        dh as i32,
                    ],
                );
                asm.call(k8.copy_strided);
            }
            pop_region(&mut asm);
            bank1.reset();
            let sa = bank1.alloc(s * dh, 4)?;
            let row8 = bank1.alloc(kp, 4)?;
            let attn_out = bank1.alloc(s * dim, 4)?;
            set_args(
                &mut asm,
                &[
                    q as i32,
                    kk as i32,
                    v as i32,
                    sa as i32,
                    row8 as i32,
                    attn_params_addr as i32,
                ],
            );
            asm.call(k8.attention_a8);
            push_region(&mut asm, regions::BLOCK_ATTENTION | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    sa as i32,
                    w_out as i32,
                    b_out as i32,
                    attn_out as i32,
                    s as i32,
                    dh as i32,
                    dim as i32,
                    shift_out as i32,
                ],
            );
            asm.call(gemm_at(s, dh, dim));
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
            set_args(&mut asm, &[x as i32, attn_out as i32, (s * dim) as i32]);
            asm.call(k8.add_sat_i8);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_LAYERNORM);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    g1 as i32,
                    be1 as i32,
                    s as i32,
                    dim as i32,
                    ln1_params as i32,
                ],
            );
            asm.call(ln_at);
            pop_region(&mut asm);
            // MLP with the fused LUT-GELU boundary
            bank1.reset();
            bank2.reset();
            let hidden = bank1.alloc(s * mlp, 4)?;
            let mlp_out = bank2.alloc(s * dim, 4)?;
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    w1 as i32,
                    b1 as i32,
                    hidden as i32,
                    s as i32,
                    dim as i32,
                    mlp as i32,
                    k.shift_mlp1 as i32,
                ],
            );
            asm.call(gemm_at(s, dim, mlp));
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_GELU);
            set_args(
                &mut asm,
                &[
                    hidden as i32,
                    (s * mlp) as i32,
                    k.gelu_deq_bits as i32,
                    k.gelu_req_bits as i32,
                ],
            );
            asm.call(k8.gelu_a8);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_MLP | regions::OP_MATMUL);
            set_args(
                &mut asm,
                &[
                    hidden as i32,
                    w2 as i32,
                    b2 as i32,
                    mlp_out as i32,
                    s as i32,
                    mlp as i32,
                    dim as i32,
                    k.shift_mlp2 as i32,
                ],
            );
            asm.call(gemm_at(s, mlp, dim));
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_OTHER);
            set_args(&mut asm, &[x as i32, mlp_out as i32, (s * dim) as i32]);
            asm.call(k8.add_sat_i8);
            pop_region(&mut asm);
            push_region(&mut asm, regions::BLOCK_TOP | regions::OP_LAYERNORM);
            set_args(
                &mut asm,
                &[
                    x as i32,
                    g2 as i32,
                    be2 as i32,
                    s as i32,
                    dim as i32,
                    ln_p as i32,
                ],
            );
            asm.call(ln_at);
            pop_region(&mut asm);
        }

        push_region(&mut asm, regions::BLOCK_TOP | regions::OP_MATMUL);
        set_args(
            &mut asm,
            &[
                x as i32,
                w_head as i32,
                b_head as i32,
                logits as i32,
                1,
                dim as i32,
                classes as i32,
                k.shift_head as i32,
            ],
        );
        asm.call(gemm_at(1, dim, classes));
        pop_region(&mut asm);
        asm.li(Reg::A0, logits as i32);
        asm.emit(Inst::Ebreak);

        let program = asm.finish()?;
        check_ram(&program, &platform)?;
        Ok(InferenceImage {
            flavor: Flavor::A8,
            isa: KernelIsa::Xkwtdot,
            program,
            config: c,
            qconfig: None,
            a8config: Some(qm.a8),
            input_addr: input,
            logits_addr: logits,
            bank_usage: [
                (bank1.high_water(), bank1.size()),
                (bank2.high_water(), bank2.size()),
            ],
            mutable_ranges,
            platform,
        })
    }

    /// Total image footprint in bytes (the paper's "Program Size").
    pub fn program_bytes(&self) -> usize {
        self.program.total_bytes()
    }

    /// The simulated platform this image was linked against — the 64 kB
    /// Ibex for every paper flavour, a [`Platform::ibex_with_ram`]
    /// variant for KWT-1-scale builds (`*_on` constructors).
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Build-time FNV-1a-64 digest of every **static** byte of the image
    /// — code and weight banks, excluding the run-time-mutable buffers
    /// (input, activations, logits, scratch). [`DeviceSession::recover`]
    /// re-validates the loaded machine against per-bank checksums of the
    /// same byte set, so a session whose static state matches this digest
    /// is bit-identical to a fresh [`session`](Self::session).
    pub fn integrity_checksum(&self) -> u64 {
        self.integrity_banks()
            .iter()
            .fold(FNV_OFFSET, |h, bank| fnv1a64_update(h, &bank.pristine))
    }

    /// The `(addr, len)` byte ranges covered by the integrity checksum:
    /// code and weight banks, minus the run-time-mutable buffers. Fault
    /// harnesses aim bit flips here to exercise the *detectable*
    /// corruption class (a flip inside these ranges either traps or is
    /// caught by [`DeviceSession::recover`]).
    pub fn static_ranges(&self) -> Vec<(u32, u32)> {
        let p = &self.program;
        let text_span = (p.text_base, (p.text.len() * 4) as u32);
        let data_span = (p.data_base, p.data.len() as u32);
        [text_span, data_span]
            .iter()
            .flat_map(|&span| subtract_ranges(span, &self.mutable_ranges))
            .collect()
    }

    /// The static image split into checksummed ≤1 kB banks.
    pub(crate) fn integrity_banks(&self) -> Vec<IntegrityBank> {
        let mut banks = Vec::new();
        for (addr, len) in self.static_ranges() {
            let mut off = 0;
            while off < len {
                let n = (len - off).min(INTEGRITY_BANK_BYTES);
                let bytes = program_bytes_at(&self.program, addr + off, n);
                banks.push(IntegrityBank {
                    addr: addr + off,
                    checksum: fnv1a64(&bytes),
                    pristine: bytes.into(),
                });
                off += n;
            }
        }
        banks
    }

    /// Address of the input buffer (for custom harnesses).
    pub fn input_addr(&self) -> u32 {
        self.input_addr
    }

    /// Address of the logits buffer.
    pub fn logits_addr(&self) -> u32 {
        self.logits_addr
    }

    /// Runs one inference on the simulator.
    ///
    /// Convenience wrapper over a throwaway [`DeviceSession`] — loads a
    /// fresh machine, runs once, and returns float logits, the run
    /// statistics and the profiler report. Repeated callers should keep a
    /// [`session`](Self::session) alive instead: it reuses one machine
    /// (and its warm decode cache) across calls.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Model`] for a wrong input shape or
    /// [`BuildError::Trap`] if the program faults.
    pub fn run(&self, mfcc: &Mat<f32>) -> Result<(Vec<f32>, RunResult, ProfileReport)> {
        let mut session = self.session()?;
        let mut logits = Vec::new();
        let result = session.run_into(mfcc, &mut logits)?;
        let report = session.profile_report();
        Ok((logits, result, report))
    }

    /// Opens a persistent simulator session on this image: the program is
    /// loaded into a [`Machine`] **once**, and every
    /// [`DeviceSession::run`] after the first merely resets the
    /// architectural registers ([`Machine::reset_cpu`]) — weights stay in
    /// simulated RAM and the pre-decode execution cache stays warm, which
    /// is what makes repeated device-side inference fast.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Trap`] if the image does not fit the
    /// platform RAM.
    pub fn session(&self) -> Result<DeviceSession> {
        let mut machine = Machine::load(&self.program, self.platform)?;
        for (id, name) in regions::region_names() {
            machine.name_region(id, &name);
        }
        Ok(DeviceSession {
            machine,
            flavor: self.flavor,
            isa: self.isa,
            config: self.config,
            qconfig: self.qconfig,
            a8config: self.a8config,
            input_addr: self.input_addr,
            logits_addr: self.logits_addr,
            runs: 0,
            integrity: self.integrity_banks(),
        })
    }
}

/// A persistent inference session on one [`InferenceImage`] (see
/// [`InferenceImage::session`]).
///
/// Safe to reuse across inputs: the generated programs write every
/// activation buffer before reading it and never store to the weight
/// region, so a register reset is a complete re-arm — the
/// `session_is_stateless_across_inputs` test proves logits are
/// bit-identical to a freshly loaded machine, in any input order.
#[derive(Debug, Clone)]
pub struct DeviceSession {
    machine: Machine,
    flavor: Flavor,
    isa: KernelIsa,
    config: KwtConfig,
    qconfig: Option<QuantConfig>,
    a8config: Option<A8Config>,
    input_addr: u32,
    logits_addr: u32,
    runs: u64,
    integrity: Vec<IntegrityBank>,
}

impl DeviceSession {
    /// The image flavour this session runs.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }

    /// The kernel ISA of the loaded image.
    pub fn isa(&self) -> KernelIsa {
        self.isa
    }

    /// The model configuration this session runs.
    pub fn config(&self) -> &KwtConfig {
        &self.config
    }

    /// Inferences completed so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The power-of-two input exponent of a pre-quantising front end —
    /// `Some` only for [`Flavor::A8`] images, whose `i8` input tensor the
    /// host can produce directly (see
    /// [`run_prequantized_into`](Self::run_prequantized_into)).
    pub fn input_exponent(&self) -> Option<i32> {
        match self.flavor {
            Flavor::A8 => Some(
                self.a8config
                    .expect("A8 flavour carries a8config")
                    .input_exponent(),
            ),
            _ => None,
        }
    }

    /// [`run_into`](Self::run_into) over an input already quantised to
    /// the image's `i8` format at [`input_exponent`](Self::input_exponent)
    /// — the upload path for front ends that emit device-ready features
    /// (`MfccExtractor::extract_padded_a8_into`), skipping the session's
    /// own host-side quantisation pass. Feeding features quantised with
    /// the same floor-and-saturate rule is **bit-identical** to
    /// [`run_into`](Self::run_into) on the float features.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Model`] for a wrong input shape or a
    /// non-A8 image, and [`BuildError::Trap`] if the program faults.
    pub fn run_prequantized_into(
        &mut self,
        input: &Mat<i8>,
        logits: &mut Vec<f32>,
    ) -> Result<RunResult> {
        let c = self.config;
        if self.flavor != Flavor::A8 {
            return Err(BuildError::Model(format!(
                "pre-quantised input requires an A8 image, this session runs {:?}",
                self.flavor
            )));
        }
        if input.shape() != (c.input_time, c.input_freq) {
            return Err(BuildError::Model(format!(
                "input shape {:?}, expected ({}, {})",
                input.shape(),
                c.input_time,
                c.input_freq
            )));
        }
        self.machine.reset_cpu();
        self.machine.write_i8s(self.input_addr, input.as_slice());
        let cycles0 = self.machine.cpu.cycles;
        let instret0 = self.machine.cpu.instret;
        let result = self.run_machine(cycles0)?;
        self.runs += 1;
        logits.clear();
        let scale = self
            .a8config
            .expect("A8 flavour carries a8config")
            .consts(&c)
            .expect("validated at build time")
            .logit_scale;
        logits.extend(
            self.machine
                .read_i8s(self.logits_addr, c.num_classes)
                .into_iter()
                .map(|v| v as f32 * scale),
        );
        Ok(RunResult {
            cycles: result.cycles - cycles0,
            instructions: result.instructions - instret0,
            exit_code: result.exit_code,
        })
    }

    /// Runs one inference, writing float logits into `logits` (cleared
    /// first). The returned [`RunResult`] counts only **this** run's
    /// cycles and instructions, not the session totals.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Model`] for a wrong input shape or
    /// [`BuildError::Trap`] if the program faults.
    pub fn run_into(&mut self, mfcc: &Mat<f32>, logits: &mut Vec<f32>) -> Result<RunResult> {
        let c = self.config;
        if mfcc.shape() != (c.input_time, c.input_freq) {
            return Err(BuildError::Model(format!(
                "input shape {:?}, expected ({}, {})",
                mfcc.shape(),
                c.input_time,
                c.input_freq
            )));
        }
        // Unconditional: on a fresh load this equals the load state, and
        // after a trapped run it re-arms instead of resuming the fault.
        self.machine.reset_cpu();
        write_clip_input(
            &mut self.machine,
            self.flavor,
            self.qconfig,
            self.a8config,
            self.input_addr,
            mfcc,
        );
        let cycles0 = self.machine.cpu.cycles;
        let instret0 = self.machine.cpu.instret;
        let result = self.run_machine(cycles0)?;
        self.runs += 1;
        read_clip_logits(
            &self.machine,
            self.flavor,
            self.qconfig,
            self.a8config,
            &c,
            self.logits_addr,
            logits,
        );
        Ok(RunResult {
            cycles: result.cycles - cycles0,
            instructions: result.instructions - instret0,
            exit_code: result.exit_code,
        })
    }

    /// [`run_into`](Self::run_into) returning fresh vectors.
    ///
    /// # Errors
    ///
    /// Same contract as [`run_into`](Self::run_into).
    pub fn run(&mut self, mfcc: &Mat<f32>) -> Result<(Vec<f32>, RunResult)> {
        let mut logits = Vec::new();
        let result = self.run_into(mfcc, &mut logits)?;
        Ok((logits, result))
    }

    /// Runs the loaded program and promotes any trap into a structured
    /// [`DeviceError`](crate::DeviceError) with pc / cycle / flavour
    /// context.
    fn run_machine(&mut self, cycles0: u64) -> Result<RunResult> {
        self.machine.run(2_000_000_000).map_err(|trap| {
            crate::DeviceError {
                trap,
                pc: self.machine.cpu.pc,
                cycles: self.machine.cpu.cycles - cycles0,
                image_flavor: self.flavor,
            }
            .into()
        })
    }

    /// Re-arms the session after a fault and re-validates image
    /// integrity against the build-time bank checksums.
    ///
    /// Four steps, all idempotent:
    ///
    /// 1. architectural reset ([`Machine::reset_cpu`]);
    /// 2. disarm any still-pending injected faults and drop the fault
    ///    log;
    /// 3. restore the LUT ROMs if they no longer match the default set;
    /// 4. checksum every static bank (code + weights) against its
    ///    build-time digest and rewrite **only** the dirty banks from
    ///    the pristine copy, invalidating the decode cache for each.
    ///
    /// After `recover()` the session is bit-identical to a freshly
    /// loaded [`InferenceImage::session`] (proven by the A-B-A
    /// `recovered_session_is_bit_identical_to_fresh` test): mutable
    /// buffers need no scrubbing because the generated programs write
    /// every activation before reading it. The configured cycle budget
    /// (if any) is deliberately left armed — it is session policy, not
    /// fault state.
    pub fn recover(&mut self) -> RecoveryReport {
        recover_machine(&mut self.machine, &self.integrity)
    }

    /// Checksums every static bank without repairing anything: `true`
    /// if the loaded image still matches its build-time digests.
    pub fn verify_integrity(&self) -> bool {
        self.integrity.iter().all(|bank| {
            fnv1a64(
                self.machine
                    .cpu
                    .mem
                    .read_bytes(bank.addr, bank.pristine.len()),
            ) == bank.checksum
        })
    }

    /// Arms (or with `None` disarms) a per-run cycle watchdog: any
    /// single inference consuming more than `budget` simulated cycles
    /// stops with [`Trap::WatchdogExpired`](kwt_rv32::Trap), surfaced
    /// as a [`DeviceError`](crate::DeviceError).
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.machine.set_cycle_watchdog(budget);
    }

    /// The armed per-run cycle budget, if any.
    pub fn cycle_budget(&self) -> Option<u64> {
        self.machine.cycle_watchdog()
    }

    /// Arms a deterministic [`FaultPlan`](kwt_rv32::FaultPlan) for the
    /// next run(s) — the chaos-harness entry point.
    pub fn inject_faults(&mut self, plan: kwt_rv32::FaultPlan) {
        self.machine.set_fault_plan(plan);
    }

    /// Faults that actually fired, in injection order (cleared by
    /// [`recover`](Self::recover)).
    pub fn fault_log(&self) -> &[kwt_rv32::FaultRecord] {
        self.machine.fault_log()
    }

    /// Profiler report accumulated over every run of this session.
    pub fn profile_report(&self) -> ProfileReport {
        self.machine.profile_report()
    }

    /// The underlying machine, for register/memory inspection.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Arms or disarms the simulator's per-instruction-class retirement
    /// counting (off by default; see [`Machine::class_histogram`]).
    pub fn set_class_histogram_enabled(&mut self, enabled: bool) {
        self.machine.set_class_histogram_enabled(enabled);
    }
}

/// Outcome of a [`DeviceSession::recover`] pass: how much of the image
/// had to be repaired to get back to the pristine build state.
///
/// `banks_dirty > 0` means the fault was **detected** — some static
/// bank (code or weights) no longer matched its build-time checksum and
/// was rewritten from the pristine copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// Static banks scanned (all of them, every recover).
    pub banks_checked: usize,
    /// Banks whose checksum no longer matched the build and were
    /// rewritten from the pristine copy.
    pub banks_dirty: usize,
    /// Total bytes rewritten.
    pub bytes_restored: usize,
    /// Whether the LUT ROMs had been corrupted and were restored.
    pub luts_restored: bool,
    /// Pending (unfired) injected faults that were disarmed.
    pub faults_cleared: usize,
}

impl RecoveryReport {
    /// Whether the scan found any divergence from the pristine image
    /// (dirty banks or corrupted LUT ROMs).
    pub fn detected_corruption(&self) -> bool {
        self.banks_dirty > 0 || self.luts_restored
    }
}

/// Integrity-bank granularity: small enough to localise a flip, large
/// enough that a full scan of a ~50 kB image stays ~50 checksums.
const INTEGRITY_BANK_BYTES: u32 = 1024;

/// One build-time-checksummed slice of the static image (code or
/// weights), with a pristine copy shared across session clones.
#[derive(Debug, Clone)]
pub(crate) struct IntegrityBank {
    pub(crate) addr: u32,
    pub(crate) checksum: u64,
    pub(crate) pristine: std::sync::Arc<[u8]>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV_OFFSET, bytes)
}

/// Quantises (flavour-appropriately) and writes one clip into a loaded
/// machine's input mailbox — the single input path shared by
/// [`DeviceSession`] and [`crate::ClusterSession`], so the two can never
/// disagree on quantisation.
pub(crate) fn write_clip_input(
    machine: &mut Machine,
    flavor: Flavor,
    qconfig: Option<QuantConfig>,
    a8config: Option<A8Config>,
    input_addr: u32,
    mfcc: &Mat<f32>,
) {
    match flavor {
        Flavor::Float => machine.write_f32s(input_addr, mfcc.as_slice()),
        Flavor::Quantized | Flavor::Accelerated => {
            let ya = qconfig.expect("quant flavours carry qconfig").input_bits;
            let (q, _) = qops::quantize_i16(mfcc, ya);
            machine.write_i16s(input_addr, q.as_slice());
        }
        Flavor::A8 => {
            let yi = a8config.expect("A8 flavour carries a8config").input_bits;
            let mut q = Mat::default();
            qops::quantize_i8_scaled_into(mfcc, yi, &mut q);
            machine.write_i8s(input_addr, q.as_slice());
        }
    }
}

/// Reads float logits back out of a loaded machine (cleared first) —
/// the readback twin of [`write_clip_input`].
pub(crate) fn read_clip_logits(
    machine: &Machine,
    flavor: Flavor,
    qconfig: Option<QuantConfig>,
    a8config: Option<A8Config>,
    config: &KwtConfig,
    logits_addr: u32,
    logits: &mut Vec<f32>,
) {
    logits.clear();
    match flavor {
        Flavor::Float => {
            logits.extend(machine.read_f32s(logits_addr, config.num_classes));
        }
        Flavor::Quantized | Flavor::Accelerated => {
            let ya = qconfig.expect("quant flavours carry qconfig").input_bits;
            logits.extend(
                machine
                    .read_i16s(logits_addr, config.num_classes)
                    .into_iter()
                    .map(|v| v as f32 / (1u32 << ya) as f32),
            );
        }
        Flavor::A8 => {
            // the same derived constant the host golden model reads,
            // so the two readback paths can never disagree
            let scale = a8config
                .expect("A8 flavour carries a8config")
                .consts(config)
                .expect("validated at build time")
                .logit_scale;
            logits.extend(
                machine
                    .read_i8s(logits_addr, config.num_classes)
                    .into_iter()
                    .map(|v| v as f32 * scale),
            );
        }
    }
}

/// The shared recovery pass behind [`DeviceSession::recover`] and
/// [`crate::ClusterSession::recover`]: architectural reset, fault-plan
/// and log disarm, LUT restore, and checksum-driven repair of the
/// static banks (only dirty banks are rewritten).
pub(crate) fn recover_machine(
    machine: &mut Machine,
    integrity: &[IntegrityBank],
) -> RecoveryReport {
    let mut report = RecoveryReport {
        faults_cleared: machine.pending_faults().len(),
        ..RecoveryReport::default()
    };
    machine.reset_cpu();
    machine.clear_fault_plan();
    machine.clear_fault_log();
    let full = kwt_quant::LutSet::new();
    if machine.cpu.luts() != &full {
        machine.cpu.set_luts(full);
        report.luts_restored = true;
    }
    for bank in integrity {
        report.banks_checked += 1;
        let live = machine.cpu.mem.read_bytes(bank.addr, bank.pristine.len());
        if fnv1a64(live) != bank.checksum {
            machine.cpu.mem.write_bytes(bank.addr, &bank.pristine);
            machine
                .cpu
                .invalidate_decode_cache(bank.addr, bank.pristine.len() as u32);
            report.banks_dirty += 1;
            report.bytes_restored += bank.pristine.len();
        }
    }
    report
}

/// `span` minus every overlapping hole, as sorted `(addr, len)` pieces.
fn subtract_ranges(span: (u32, u32), holes: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let (base, len) = span;
    let end = base + len;
    let mut clipped: Vec<(u32, u32)> = holes
        .iter()
        .map(|&(a, l)| (a.max(base), (a + l).min(end)))
        .filter(|&(a, b)| a < b)
        .collect();
    clipped.sort_unstable();
    let mut out = Vec::new();
    let mut cur = base;
    for (a, b) in clipped {
        if a > cur {
            out.push((cur, a - cur));
        }
        cur = cur.max(b);
    }
    if cur < end {
        out.push((cur, end - cur));
    }
    out
}

/// Bytes of the linked program at `[addr, addr + len)`, straight from
/// the [`Program`] sections (text words are little-endian).
fn program_bytes_at(program: &Program, addr: u32, len: u32) -> Vec<u8> {
    let text_end = program.text_base + (program.text.len() * 4) as u32;
    (addr..addr + len)
        .map(|a| {
            if a >= program.text_base && a < text_end {
                let off = (a - program.text_base) as usize;
                (program.text[off / 4] >> ((off % 4) * 8)) as u8
            } else {
                program.data[(a - program.data_base) as usize]
            }
        })
        .collect()
}

fn check_ram(program: &Program, platform: &Platform) -> Result<()> {
    let needed =
        (program.data_base + program.data.len() as u32) as usize + platform.stack_bytes as usize;
    let available = platform.ram_size as usize;
    if needed > available {
        return Err(BuildError::RamBudget { needed, available });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_quant::QuantConfig;

    fn trained_ish() -> KwtParams {
        let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
        p.visit_mut(|s| {
            for v in s {
                *v *= 0.6;
            }
        });
        p
    }

    fn test_input(seed: u64) -> Mat<f32> {
        Mat::from_fn(26, 16, |r, c| {
            let h = seed
                .wrapping_add((r * 16 + c) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 10.0
        })
    }

    #[test]
    fn float_image_matches_host_forward() {
        let params = trained_ish();
        let image = InferenceImage::build_float(&params).unwrap();
        for seed in [1u64, 2, 3] {
            let x = test_input(seed);
            let (logits, run, _) = image.run(&x).unwrap();
            let want = kwt_model::forward(&params, &x).unwrap();
            for (g, w) in logits.iter().zip(&want) {
                assert!(
                    (g - w).abs() < 2e-3 * w.abs().max(1.0),
                    "seed {seed}: device {g} vs host {w}"
                );
            }
            assert!(run.cycles > 100_000, "suspiciously fast: {}", run.cycles);
        }
    }

    #[test]
    fn quant_image_matches_host_qmodel() {
        let params = trained_ish();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let image = InferenceImage::build_quant(&qm).unwrap();
        assert_eq!(image.flavor, Flavor::Quantized);
        let mut agree = 0;
        for seed in [10u64, 11, 12, 13, 14] {
            let x = test_input(seed);
            let (logits, _, _) = image.run(&x).unwrap();
            let host = qm.forward(&x).unwrap();
            let dev_arg = (logits[1] > logits[0]) as u32;
            let host_arg = (host[1] > host[0]) as u32;
            if dev_arg == host_arg {
                agree += 1;
            }
            // logits at the activation scale: allow a few quant steps
            for (g, w) in logits.iter().zip(&host) {
                assert!((g - w).abs() < 0.25, "seed {seed}: device {g} vs host {w}");
            }
        }
        assert!(agree >= 4, "argmax agreement {agree}/5");
    }

    #[test]
    fn accelerated_image_runs_and_is_fastest() {
        let params = trained_ish();
        let x = test_input(42);
        let float_img = InferenceImage::build_float(&params).unwrap();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let quant_img = InferenceImage::build_quant(&qm).unwrap();
        let accel_qm = qm.clone().with_nonlinearity(Nonlinearity::FixedLut);
        let accel_img = InferenceImage::build_quant(&accel_qm).unwrap();
        assert_eq!(accel_img.flavor, Flavor::Accelerated);

        let (_, rf, _) = float_img.run(&x).unwrap();
        let (_, rq, _) = quant_img.run(&x).unwrap();
        let (_, ra, _) = accel_img.run(&x).unwrap();
        // Table IX ordering: float > quant > accelerated
        assert!(
            rf.cycles > rq.cycles && rq.cycles > ra.cycles,
            "cycle ordering violated: float {} quant {} accel {}",
            rf.cycles,
            rq.cycles,
            ra.cycles
        );
        // the headline: a large end-to-end speedup
        assert!(
            rf.cycles as f64 / ra.cycles as f64 > 3.0,
            "speedup too small: {} / {}",
            rf.cycles,
            ra.cycles
        );
    }

    #[test]
    fn xkwtdot_image_bit_identical_to_scalar_and_faster() {
        // The Xkwtdot image must produce bit-identical logits to the
        // scalar-ISA image on every flavour/seed, with a large cycle
        // reduction — the paper's 13 M -> 5.5 M trajectory continued.
        let params = trained_ish();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let accel = qm.clone().with_nonlinearity(Nonlinearity::FixedLut);
        for model in [&qm, &accel] {
            let scalar = InferenceImage::build_quant(model).unwrap();
            let packed = InferenceImage::build_quant_with_isa(model, KernelIsa::Xkwtdot).unwrap();
            assert_eq!(scalar.isa, KernelIsa::Rv32im);
            assert_eq!(packed.isa, KernelIsa::Xkwtdot);
            assert_eq!(scalar.flavor, packed.flavor);
            for seed in [31u64, 32, 33] {
                let x = test_input(seed);
                let (sl, sr, _) = scalar.run(&x).unwrap();
                let (pl, pr, _) = packed.run(&x).unwrap();
                for (a, b) in sl.iter().zip(&pl) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{:?} seed {seed}: scalar {a} vs xkwtdot {b}",
                        scalar.flavor
                    );
                }
                assert!(
                    pr.cycles * 3 < sr.cycles * 2,
                    "{:?} seed {seed}: expected >=1.5x cycle cut, got {} vs {}",
                    scalar.flavor,
                    pr.cycles,
                    sr.cycles
                );
            }
        }
    }

    #[test]
    fn xkwtdot_histogram_attributes_packed_classes() {
        use kwt_rv32::InstClass;
        let params = trained_ish();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best())
            .with_nonlinearity(Nonlinearity::FixedLut);
        let image = InferenceImage::build_quant_with_isa(&qm, KernelIsa::Xkwtdot).unwrap();
        let mut session = image.session().unwrap();
        session.set_class_histogram_enabled(true);
        session.run(&test_input(9)).unwrap();
        let h = session.machine().class_histogram();
        assert!(
            h.count(InstClass::PackedDot) > 10_000,
            "kdot2 in the hot loop"
        );
        assert!(
            h.count(InstClass::PackedLoad) > 10_000,
            "klw.b2h feeds the weights"
        );
        assert!(
            h.count(InstClass::PackedCvt) > 1_000,
            "kcvt quant boundaries"
        );
        assert!(h.count(InstClass::PackedAlu) > 100, "ksat epilogues");
        assert_eq!(h.total_cycles(), session.machine().cpu.cycles);
        // the scalar image must use none of them
        let scalar = InferenceImage::build_quant(&qm).unwrap();
        let mut s2 = scalar.session().unwrap();
        s2.set_class_histogram_enabled(true);
        s2.run(&test_input(9)).unwrap();
        let hs = s2.machine().class_histogram();
        assert_eq!(hs.count(InstClass::PackedDot), 0);
        assert_eq!(hs.count(InstClass::PackedLoad), 0);
    }

    /// MFCC-shaped test inputs (large positive c0, decaying higher
    /// coefficients) matching the range the A8 exponents target.
    fn mfcc_like_input(seed: u64) -> Mat<f32> {
        Mat::from_fn(26, 16, |r, c| {
            let h = seed
                .wrapping_add((r * 16 + c) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let u = (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
            if c == 0 {
                35.0 + 50.0 * u
            } else {
                u * 16.0 / (1.0 + c as f32 * 0.4)
            }
        })
    }

    #[test]
    fn a8_image_bit_identical_to_host_golden_model() {
        // The A8 differential story: the device image must reproduce the
        // host golden model's logits bit-for-bit on every seed — the A8
        // numerics legitimately differ from the i16 path, so the oracle
        // is the host model, not another image.
        use kwt_quant::{A8Config, A8Kwt};
        let params = trained_ish();
        for a8cfg in [
            A8Config::paper_a8(),
            A8Config {
                stream_bits: 3,
                prob_bits: 6,
                logit_bits: 3,
                ..A8Config::paper_a8()
            },
        ] {
            let qm = A8Kwt::quantize(&params, a8cfg).unwrap();
            let image = InferenceImage::build_a8(&qm).unwrap();
            assert_eq!(image.flavor, Flavor::A8);
            assert_eq!(image.isa, KernelIsa::Xkwtdot);
            let mut session = image.session().unwrap();
            for seed in 0..6u64 {
                let x = mfcc_like_input(seed * 31 + 7);
                let (dev, _) = session.run(&x).unwrap();
                let (host, _) = qm.forward_a8(&x).unwrap();
                assert_eq!(dev.len(), host.len());
                for (d, h) in dev.iter().zip(&host) {
                    assert_eq!(
                        d.to_bits(),
                        h.to_bits(),
                        "{a8cfg:?} seed {seed}: device {d} vs host {h}"
                    );
                }
            }
        }
    }

    #[test]
    fn a8_prequantized_input_bit_identical_to_float_path() {
        // The engine's zero-copy upload path: quantising the float
        // features host-side (the front end's `extract_a8_into` rule)
        // and writing them via `run_prequantized_into` must reproduce
        // `run_into`'s logits and cycles exactly.
        use kwt_quant::{A8Config, A8Kwt};
        use kwt_tensor::qops;
        let params = trained_ish();
        let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        let image = InferenceImage::build_a8(&a8).unwrap();
        let mut float_session = image.session().unwrap();
        let mut q_session = image.session().unwrap();
        let y = q_session
            .input_exponent()
            .expect("A8 exposes its input exponent");
        assert_eq!(y, A8Config::paper_a8().input_bits);
        let mut q = Mat::default();
        let (mut lf, mut lq) = (Vec::new(), Vec::new());
        for seed in 0..4u64 {
            let x = mfcc_like_input(seed * 13 + 3);
            let rf = float_session.run_into(&x, &mut lf).unwrap();
            qops::quantize_i8_scaled_into(&x, y, &mut q);
            let rq = q_session.run_prequantized_into(&q, &mut lq).unwrap();
            assert_eq!(rf.cycles, rq.cycles, "seed {seed}");
            for (a, b) in lf.iter().zip(&lq) {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
            }
        }
        // non-A8 sessions reject the pre-quantised path
        let qm16 = QuantizedKwt::quantize(&params, QuantConfig::paper_best())
            .with_nonlinearity(Nonlinearity::FixedLut);
        let image16 = InferenceImage::build_quant(&qm16).unwrap();
        let mut s16 = image16.session().unwrap();
        assert_eq!(s16.input_exponent(), None);
        assert!(s16.run_prequantized_into(&q, &mut lq).is_err());
    }

    #[test]
    fn a8_image_is_fastest_variant() {
        // The whole point: kdot4 + the fused attention pipeline must
        // beat the i16 Xkwtdot image by a wide margin, and land under
        // the 0.30 M-cycle acceptance bar.
        use kwt_quant::{A8Config, A8Kwt};
        let params = trained_ish();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best())
            .with_nonlinearity(Nonlinearity::FixedLut);
        let ximage = InferenceImage::build_quant_with_isa(&qm, KernelIsa::Xkwtdot).unwrap();
        let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        let a8image = InferenceImage::build_a8(&a8).unwrap();
        let x = mfcc_like_input(42);
        let (_, rx, _) = ximage.run(&x).unwrap();
        let (_, ra, _) = a8image.run(&x).unwrap();
        assert!(
            ra.cycles * 5 < rx.cycles * 4,
            "A8 should cut ≥20% off the i16 Xkwtdot image: {} vs {}",
            ra.cycles,
            rx.cycles
        );
        assert!(
            ra.cycles < 300_000,
            "A8 image over the 0.30 M cycle budget: {}",
            ra.cycles
        );
    }

    #[test]
    fn a8_session_is_stateless_and_histogram_attributes_kdot4() {
        use kwt_quant::{A8Config, A8Kwt};
        use kwt_rv32::InstClass;
        let params = trained_ish();
        let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        let image = InferenceImage::build_a8(&a8).unwrap();
        let mut session = image.session().unwrap();
        session.set_class_histogram_enabled(true);
        let inputs = [mfcc_like_input(1), mfcc_like_input(2), mfcc_like_input(1)];
        for (i, x) in inputs.iter().enumerate() {
            let (logits, run) = session.run(x).unwrap();
            let (want, want_run, _) = image.run(x).unwrap();
            for (a, b) in logits.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits(), "input {i}");
            }
            assert_eq!(run.cycles, want_run.cycles, "input {i}");
        }
        let h = session.machine().class_histogram();
        assert!(
            h.count(InstClass::PackedDot) > 10_000,
            "kdot4 in the hot loops"
        );
        assert!(
            h.count(InstClass::PackedCvt) > 1_000,
            "kcvt quant boundaries"
        );
        assert!(
            h.count(InstClass::PackedAlu) > 1_000,
            "ksat/kclip epilogues"
        );
    }

    #[test]
    fn profiler_reports_expected_hotspots() {
        let params = trained_ish();
        let image = InferenceImage::build_float(&params).unwrap();
        let (_, run, report) = image.run(&test_input(5)).unwrap();
        // most cycles must be attributed
        assert!(report.attributed_cycles > run.cycles * 9 / 10);
        let agg = crate::regions::aggregate_by_op(&report.regions);
        assert!(!agg.is_empty());
        // in the float model, matmul/gelu/softmax should dominate
        let top: Vec<&str> = agg.iter().take(3).map(|(n, _)| n.as_str()).collect();
        assert!(
            top.contains(&"matmul"),
            "matmul missing from top-3: {agg:?}"
        );
    }

    #[test]
    fn bank_discipline_reported_and_respected() {
        let params = trained_ish();
        let image = InferenceImage::build_float(&params).unwrap();
        for (hw, size) in image.bank_usage {
            assert!(hw <= size, "bank overflow escaped the builder");
            assert!(hw > 0, "banks unused?");
        }
        // image fits the 64 kB platform with the 4 kB stack
        assert!(image.program_bytes() < 60 * 1024);
    }

    #[test]
    fn session_is_stateless_across_inputs() {
        // A persistent session re-armed with reset_cpu must match a fresh
        // machine bit-for-bit on every flavour, in any input order —
        // including re-running an input the session has already seen.
        let params = trained_ish();
        let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
        let accel = qm.clone().with_nonlinearity(Nonlinearity::FixedLut);
        let images = [
            InferenceImage::build_float(&params).unwrap(),
            InferenceImage::build_quant(&qm).unwrap(),
            InferenceImage::build_quant(&accel).unwrap(),
        ];
        let inputs = [test_input(21), test_input(22), test_input(21)];
        for image in &images {
            let mut session = image.session().unwrap();
            for (i, x) in inputs.iter().enumerate() {
                let (logits, run) = session.run(x).unwrap();
                let (want, want_run, _) = image.run(x).unwrap();
                assert_eq!(logits.len(), want.len());
                for (a, b) in logits.iter().zip(&want) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{:?} input {i}: session {a} vs fresh {b}",
                        image.flavor
                    );
                }
                // per-run cycle deltas match a cold machine's full run
                assert_eq!(run.cycles, want_run.cycles, "{:?} input {i}", image.flavor);
                assert_eq!(run.instructions, want_run.instructions);
            }
            assert_eq!(session.runs(), 3);
        }
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let params = trained_ish();
        let image = InferenceImage::build_float(&params).unwrap();
        assert!(matches!(
            image.run(&Mat::zeros(16, 26)),
            Err(BuildError::Model(_))
        ));
    }

    fn a8_image() -> InferenceImage {
        use kwt_quant::{A8Config, A8Kwt};
        let params = trained_ish();
        let qm = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        InferenceImage::build_a8(&qm).unwrap()
    }

    #[test]
    fn integrity_checksum_is_reproducible_and_initially_clean() {
        let a = a8_image();
        let b = a8_image();
        assert_eq!(a.integrity_checksum(), b.integrity_checksum());
        let session = a.session().unwrap();
        assert!(session.verify_integrity(), "fresh session must be pristine");
    }

    #[test]
    fn recovered_session_is_bit_identical_to_fresh() {
        // The A-B-A test: fresh logits (A), corrupt a weight bank and
        // observe the damage (B), recover() and re-run — logits and
        // cycles must again match the fresh machine exactly (A).
        use kwt_rv32::FaultPlan;
        let image = a8_image();
        let x = mfcc_like_input(11);
        let (want, want_run, _) = image.run(&x).unwrap();

        let mut session = image.session().unwrap();
        // Flip a bit in the static weight region (data base holds
        // w_proj, well clear of the mutable buffers).
        let victim = image.program.data_base + 8;
        session.inject_faults(FaultPlan::new().flip_mem_bit(0, victim, 5));
        let corrupted = session.run(&x);
        if let Ok((logits, _)) = &corrupted {
            // a silent flip must at least be *detectable* below; a loud
            // one already surfaced as Err — both are acceptable here
            assert_eq!(logits.len(), want.len());
        }
        assert!(!session.verify_integrity(), "flip must be detectable");
        let report = session.recover();
        assert!(report.detected_corruption());
        assert_eq!(report.banks_dirty, 1, "one 1 kB bank holds the flip");
        assert!(report.bytes_restored <= 1024);
        assert!(session.verify_integrity());

        let (logits, run) = session.run(&x).unwrap();
        for (a, b) in logits.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits(), "post-recover {a} vs fresh {b}");
        }
        assert_eq!(run.cycles, want_run.cycles);
        assert_eq!(run.instructions, want_run.instructions);
        // recover() on a clean session is a no-op scan
        let clean = session.recover();
        assert!(!clean.detected_corruption());
        assert_eq!(clean.banks_checked, report.banks_checked);
    }

    #[test]
    fn watchdog_budget_surfaces_as_device_error() {
        let image = a8_image();
        let mut session = image.session().unwrap();
        session.set_cycle_budget(Some(10_000));
        let err = session.run(&mfcc_like_input(3)).unwrap_err();
        match err {
            BuildError::Device(d) => {
                assert!(matches!(
                    d.trap,
                    kwt_rv32::Trap::WatchdogExpired { budget: 10_000, .. }
                ));
                assert_eq!(d.image_flavor, Flavor::A8);
                assert!(d.cycles > 10_000);
            }
            other => panic!("expected a device error, got {other}"),
        }
        // the budget is session policy: recover() keeps it armed
        session.recover();
        assert_eq!(session.cycle_budget(), Some(10_000));
        session.set_cycle_budget(None);
        let (logits, _) = session.run(&mfcc_like_input(3)).unwrap();
        let (want, _, _) = image.run(&mfcc_like_input(3)).unwrap();
        assert_eq!(logits, want);
    }

    #[test]
    fn truncated_luts_trap_and_recover() {
        use kwt_rv32::{FaultPlan, Trap};
        let image = a8_image();
        let x = mfcc_like_input(7);
        let (want, _, _) = image.run(&x).unwrap();
        let mut session = image.session().unwrap();
        session.inject_faults(FaultPlan::new().truncate_luts(0, 2));
        let err = session.run(&x).unwrap_err();
        match err {
            BuildError::Device(d) => {
                assert!(matches!(d.trap, Trap::LutIndexOutOfRange { .. }), "{d}");
            }
            other => panic!("expected a device error, got {other}"),
        }
        let report = session.recover();
        assert!(report.luts_restored);
        assert_eq!(report.banks_dirty, 0, "RAM was never touched");
        let (logits, _) = session.run(&x).unwrap();
        for (a, b) in logits.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
