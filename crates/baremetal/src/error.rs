use std::fmt;

/// A structured device-side fault: a [`Trap`](kwt_rv32::Trap) raised
/// while an inference ran on a [`DeviceSession`](crate::DeviceSession),
/// annotated with where and when the hart stopped and which image
/// flavour was executing.
///
/// Promoted out of the bare [`BuildError::Trap`] so callers can triage
/// (retry, [`recover`](crate::DeviceSession::recover), fail over)
/// without string matching. Marked `#[non_exhaustive]`: fields grow
/// with the fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct DeviceError {
    /// The trap that stopped the hart.
    pub trap: kwt_rv32::Trap,
    /// pc at the faulting (or watchdog-killed) instruction.
    pub pc: u32,
    /// Simulated cycles consumed by the faulted run before it stopped.
    pub cycles: u64,
    /// Which image flavour was running.
    pub image_flavor: crate::Flavor,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} image faulted after {} cycles at pc {:#010x}: {}",
            self.image_flavor, self.cycles, self.pc, self.trap
        )
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.trap)
    }
}

/// Errors raised while building or running a bare-metal image.
///
/// Marked `#[non_exhaustive]`: the run-time fault taxonomy grows (the
/// [`Device`](BuildError::Device) variant arrived after the build-time
/// ones), so downstream matches must keep a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// The assembler rejected the generated program (a bug in the
    /// generator, not in user input).
    Asm(kwt_rvasm::AsmError),
    /// A static memory bank overflowed (§V sizing violated).
    BankOverflow {
        /// Bank name.
        bank: &'static str,
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// The image (text + data + stack) exceeds the 64 kB platform RAM.
    RamBudget {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The simulator trapped while loading the image (build/load-time
    /// faults; run-time faults surface as [`BuildError::Device`]).
    Trap(kwt_rv32::Trap),
    /// A structured run-time device fault from a
    /// [`DeviceSession`](crate::DeviceSession) inference.
    Device(DeviceError),
    /// Host-side model error (shape mismatch etc.).
    Model(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Asm(e) => write!(f, "assembler error in generated code: {e}"),
            BuildError::BankOverflow {
                bank,
                requested,
                available,
            } => write!(
                f,
                "memory bank `{bank}` overflow: requested {requested} bytes, {available} left"
            ),
            BuildError::RamBudget { needed, available } => {
                write!(f, "image needs {needed} bytes but RAM holds {available}")
            }
            BuildError::Trap(t) => write!(f, "simulator trap: {t}"),
            BuildError::Device(d) => write!(f, "device fault: {d}"),
            BuildError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Asm(e) => Some(e),
            BuildError::Trap(t) => Some(t),
            BuildError::Device(d) => Some(d),
            _ => None,
        }
    }
}

impl From<kwt_rvasm::AsmError> for BuildError {
    fn from(e: kwt_rvasm::AsmError) -> Self {
        BuildError::Asm(e)
    }
}

impl From<kwt_rv32::Trap> for BuildError {
    fn from(t: kwt_rv32::Trap) -> Self {
        BuildError::Trap(t)
    }
}

impl From<DeviceError> for BuildError {
    fn from(d: DeviceError) -> Self {
        BuildError::Device(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = BuildError::BankOverflow {
            bank: "bank1",
            requested: 100,
            available: 50,
        };
        assert!(e.to_string().contains("bank1"));
        let e = BuildError::RamBudget {
            needed: 70000,
            available: 65536,
        };
        assert!(e.to_string().contains("70000"));
    }

    #[test]
    fn device_error_carries_context() {
        let d = DeviceError {
            trap: kwt_rv32::Trap::WatchdogExpired {
                budget: 1000,
                cycles: 1003,
            },
            pc: 0x44,
            cycles: 1003,
            image_flavor: crate::Flavor::A8,
        };
        let s = d.to_string();
        assert!(s.contains("A8"), "{s}");
        assert!(s.contains("0x00000044"), "{s}");
        assert!(s.contains("watchdog"), "{s}");
        let e: BuildError = d.into();
        assert!(e.to_string().contains("device fault"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
