use std::fmt;

/// Errors raised while building or running a bare-metal image.
#[derive(Debug)]
pub enum BuildError {
    /// The assembler rejected the generated program (a bug in the
    /// generator, not in user input).
    Asm(kwt_rvasm::AsmError),
    /// A static memory bank overflowed (§V sizing violated).
    BankOverflow {
        /// Bank name.
        bank: &'static str,
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// The image (text + data + stack) exceeds the 64 kB platform RAM.
    RamBudget {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The simulator trapped while running the image.
    Trap(kwt_rv32::Trap),
    /// Host-side model error (shape mismatch etc.).
    Model(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Asm(e) => write!(f, "assembler error in generated code: {e}"),
            BuildError::BankOverflow {
                bank,
                requested,
                available,
            } => write!(
                f,
                "memory bank `{bank}` overflow: requested {requested} bytes, {available} left"
            ),
            BuildError::RamBudget { needed, available } => {
                write!(f, "image needs {needed} bytes but RAM holds {available}")
            }
            BuildError::Trap(t) => write!(f, "simulator trap: {t}"),
            BuildError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Asm(e) => Some(e),
            BuildError::Trap(t) => Some(t),
            _ => None,
        }
    }
}

impl From<kwt_rvasm::AsmError> for BuildError {
    fn from(e: kwt_rvasm::AsmError) -> Self {
        BuildError::Asm(e)
    }
}

impl From<kwt_rv32::Trap> for BuildError {
    fn from(t: kwt_rv32::Trap) -> Self {
        BuildError::Trap(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = BuildError::BankOverflow {
            bank: "bank1",
            requested: 100,
            available: 50,
        };
        assert!(e.to_string().contains("bank1"));
        let e = BuildError::RamBudget {
            needed: 70000,
            available: 65536,
        };
        assert!(e.to_string().contains("70000"));
    }
}
