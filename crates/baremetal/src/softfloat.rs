//! IEEE-754 single-precision arithmetic in RV32 integer assembly.
//!
//! These routines are the generated-code analogue of GCC's `__addsf3`
//! soft-float support library, which a `-march=rv32imc` build links in on
//! the FPU-less Ibex. Semantics:
//!
//! * round-toward-zero (truncation) instead of round-to-nearest-even
//! * denormal inputs and underflowing results flush to signed zero
//! * infinities propagate; NaNs are treated like infinities
//!
//! Calling convention: arguments in `a0`/`a1`, result in `a0`; only
//! `t0`–`t6` and `a0`–`a2` are clobbered (leaf routines, no stack use).
//!
//! Each routine's entry label is exposed through [`SoftFloat`] so kernels
//! can `call` them.

use kwt_rvasm::{Asm, Inst, Label, Reg};

use Reg::{Zero, A0, A1, A2, T0, T1, T2, T3, T4, T5, T6};

/// Entry labels of the emitted soft-float library.
#[derive(Debug, Clone, Copy)]
pub struct SoftFloat {
    /// `f32 add(a0, a1)`.
    pub add: Label,
    /// `f32 sub(a0, a1)` (negates `a1`, falls into `add`).
    pub sub: Label,
    /// `f32 mul(a0, a1)`.
    pub mul: Label,
    /// `f32 div(a0, a1)` (25-step restoring division, ~200 cycles — the
    /// cost the paper's `ALU_INVERT` LUT removes).
    pub div: Label,
    /// `f32 i2f(i32 a0)`.
    pub i2f: Label,
    /// `i32 f2i_floor(f32 a0)` — floor semantics matching the host
    /// quantiser, saturating to `i32` bounds.
    pub f2i_floor: Label,
    /// `(a0 < a1) as u32` in total float order.
    pub lt: Label,
}

/// Shorthand branch emitters.
fn beq(asm: &mut Asm, rs1: Reg, rs2: Reg, l: Label) {
    asm.branch_to(
        Inst::Beq {
            rs1,
            rs2,
            offset: 0,
        },
        l,
    );
}
fn bne(asm: &mut Asm, rs1: Reg, rs2: Reg, l: Label) {
    asm.branch_to(
        Inst::Bne {
            rs1,
            rs2,
            offset: 0,
        },
        l,
    );
}
fn blt(asm: &mut Asm, rs1: Reg, rs2: Reg, l: Label) {
    asm.branch_to(
        Inst::Blt {
            rs1,
            rs2,
            offset: 0,
        },
        l,
    );
}
fn bge(asm: &mut Asm, rs1: Reg, rs2: Reg, l: Label) {
    asm.branch_to(
        Inst::Bge {
            rs1,
            rs2,
            offset: 0,
        },
        l,
    );
}
fn bltu(asm: &mut Asm, rs1: Reg, rs2: Reg, l: Label) {
    asm.branch_to(
        Inst::Bltu {
            rs1,
            rs2,
            offset: 0,
        },
        l,
    );
}
fn bgeu(asm: &mut Asm, rs1: Reg, rs2: Reg, l: Label) {
    asm.branch_to(
        Inst::Bgeu {
            rs1,
            rs2,
            offset: 0,
        },
        l,
    );
}
fn beqz(asm: &mut Asm, rs: Reg, l: Label) {
    beq(asm, rs, Zero, l);
}
fn bnez(asm: &mut Asm, rs: Reg, l: Label) {
    bne(asm, rs, Zero, l);
}
fn bltz(asm: &mut Asm, rs: Reg, l: Label) {
    blt(asm, rs, Zero, l);
}
fn bgez(asm: &mut Asm, rs: Reg, l: Label) {
    bge(asm, rs, Zero, l);
}
fn blez(asm: &mut Asm, rs: Reg, l: Label) {
    bge(asm, Zero, rs, l);
}

/// `rd = rs & 0x007F_FFFF` (mantissa mask) via shift pair.
fn mask_mantissa(asm: &mut Asm, rd: Reg, rs: Reg) {
    asm.emit(Inst::Slli {
        rd,
        rs1: rs,
        shamt: 9,
    });
    asm.emit(Inst::Srli {
        rd,
        rs1: rd,
        shamt: 9,
    });
}

/// `rd = sign bit of rs` (isolated in bit 31).
fn sign_of(asm: &mut Asm, rd: Reg, rs: Reg) {
    asm.emit(Inst::Srli {
        rd,
        rs1: rs,
        shamt: 31,
    });
    asm.emit(Inst::Slli {
        rd,
        rs1: rd,
        shamt: 31,
    });
}

impl SoftFloat {
    /// Emits the whole library into `asm`, returning the entry labels.
    pub fn emit(asm: &mut Asm) -> SoftFloat {
        let add = emit_add(asm);
        let sub = emit_sub(asm, add);
        let mul = emit_mul(asm);
        let div = emit_div(asm);
        let i2f = emit_i2f(asm);
        let f2i_floor = emit_f2i_floor(asm);
        let lt = emit_lt(asm);
        SoftFloat {
            add,
            sub,
            mul,
            div,
            i2f,
            f2i_floor,
            lt,
        }
    }

    /// Emits the library for the chosen kernel ISA. Under
    /// [`KernelIsa::Xkwtdot`](crate::kernels::KernelIsa::Xkwtdot) the
    /// `add`/`sub`/`mul` entry points are two-instruction wrappers over
    /// the `kfadd.t`/`kfsub.t`/`kfmul.t` custom-2 ops — the instructions
    /// execute `kwt_rv32::softfp`, which the differential tests in this
    /// module pin to the scalar assembly bit-for-bit — so every caller
    /// (math library, float kernels) speeds up without any change in
    /// results. `div`, the int converts and the compare keep their
    /// scalar bodies.
    pub fn emit_with_isa(asm: &mut Asm, isa: crate::kernels::KernelIsa) -> SoftFloat {
        use kwt_rvasm::PackedOp;
        let lib = Self::emit(asm);
        match isa {
            crate::kernels::KernelIsa::Rv32im => lib,
            crate::kernels::KernelIsa::Xkwtdot => {
                let add = asm.here("sf_add_kf");
                asm.emit(Inst::Packed {
                    op: PackedOp::KfaddT,
                    rd: A0,
                    rs1: A0,
                    rs2: A1,
                });
                asm.ret();
                let sub = asm.here("sf_sub_kf");
                asm.emit(Inst::Packed {
                    op: PackedOp::KfsubT,
                    rd: A0,
                    rs1: A0,
                    rs2: A1,
                });
                asm.ret();
                let mul = asm.here("sf_mul_kf");
                asm.emit(Inst::Packed {
                    op: PackedOp::KfmulT,
                    rd: A0,
                    rs1: A0,
                    rs2: A1,
                });
                asm.ret();
                SoftFloat {
                    add,
                    sub,
                    mul,
                    ..lib
                }
            }
        }
    }
}

fn emit_add(asm: &mut Asm) -> Label {
    let entry = asm.here("sf_add");
    let x_ok = asm.new_label();
    let ret_y = asm.new_label();
    let finite = asm.new_label();
    let no_swap = asm.new_label();
    let d_ok = asm.new_label();
    let subpath = asm.new_label();
    let norm = asm.new_label();
    let normloop_top = asm.new_label();
    let pack = asm.new_label();
    let zero_signed = asm.new_label();
    let plain_ret = asm.new_label();
    let make_inf = asm.new_label();

    // magnitudes (sign stripped, shifted left 1) and exponent fields
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: A0,
        shamt: 1,
    });
    asm.emit(Inst::Slli {
        rd: T1,
        rs1: A1,
        shamt: 1,
    });
    asm.emit(Inst::Srli {
        rd: T2,
        rs1: T0,
        shamt: 24,
    });
    asm.emit(Inst::Srli {
        rd: T3,
        rs1: T1,
        shamt: 24,
    });
    // x zero/denormal?
    bnez(asm, T2, x_ok);
    bnez(asm, T3, ret_y);
    asm.li(A0, 0); // both zeroish -> +0
    asm.ret();
    asm.bind(ret_y).expect("fresh label");
    asm.mv(A0, A1);
    asm.ret();
    asm.bind(x_ok).expect("fresh label");
    // y zero/denormal -> return x
    beqz(asm, T3, plain_ret);
    // inf/nan: x wins, else y
    asm.li(T6, 255);
    beq(asm, T2, T6, plain_ret);
    bne(asm, T3, T6, finite);
    asm.mv(A0, A1);
    asm.ret();
    asm.bind(finite).expect("fresh label");
    // ensure |x| >= |y|
    bgeu(asm, T0, T1, no_swap);
    asm.mv(T6, A0);
    asm.mv(A0, A1);
    asm.mv(A1, T6);
    asm.mv(T6, T2);
    asm.mv(T2, T3);
    asm.mv(T3, T6);
    asm.bind(no_swap).expect("fresh label");
    // mantissas with implicit bit, pre-shifted left 3 (guard bits)
    mask_mantissa(asm, T4, A0);
    asm.emit(Inst::Lui {
        rd: T6,
        imm: 0x0080_0000,
    });
    asm.emit(Inst::Or {
        rd: T4,
        rs1: T4,
        rs2: T6,
    });
    asm.emit(Inst::Slli {
        rd: T4,
        rs1: T4,
        shamt: 3,
    });
    mask_mantissa(asm, T5, A1);
    asm.emit(Inst::Or {
        rd: T5,
        rs1: T5,
        rs2: T6,
    });
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T5,
        shamt: 3,
    });
    // exponent difference
    asm.emit(Inst::Sub {
        rd: T0,
        rs1: T2,
        rs2: T3,
    });
    asm.li(T1, 27);
    bltu(asm, T0, T1, d_ok);
    asm.ret(); // y negligible; a0 already holds the larger operand
    asm.bind(d_ok).expect("fresh label");
    asm.emit(Inst::Srl {
        rd: T5,
        rs1: T5,
        rs2: T0,
    });
    // signs differ?
    asm.emit(Inst::Xor {
        rd: T1,
        rs1: A0,
        rs2: A1,
    });
    bltz(asm, T1, subpath);
    // same-sign addition
    asm.emit(Inst::Add {
        rd: T4,
        rs1: T4,
        rs2: T5,
    });
    asm.emit(Inst::Lui {
        rd: T1,
        imm: 0x0800_0000u32 as i32,
    }); // 1 << 27
    bltu(asm, T4, T1, norm);
    asm.emit(Inst::Srli {
        rd: T4,
        rs1: T4,
        shamt: 1,
    });
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: 1,
    });
    asm.jump_to(norm);
    // opposite-sign subtraction (|x| >= |y| so result >= 0)
    asm.bind(subpath).expect("fresh label");
    asm.emit(Inst::Sub {
        rd: T4,
        rs1: T4,
        rs2: T5,
    });
    bnez(asm, T4, normloop_top);
    asm.li(A0, 0); // exact cancellation -> +0
    asm.ret();
    asm.bind(normloop_top).expect("fresh label");
    asm.emit(Inst::Lui {
        rd: T1,
        imm: 0x0400_0000,
    }); // 1 << 26
    let nl = asm.new_label();
    asm.bind(nl).expect("fresh label");
    bgeu(asm, T4, T1, norm);
    asm.emit(Inst::Slli {
        rd: T4,
        rs1: T4,
        shamt: 1,
    });
    asm.emit(Inst::Addi {
        rd: T2,
        rs1: T2,
        imm: -1,
    });
    asm.jump_to(nl);
    // normalisation done: range-check exponent and pack
    asm.bind(norm).expect("fresh label");
    blez(asm, T2, zero_signed);
    asm.li(T1, 255);
    blt(asm, T2, T1, pack);
    asm.jump_to(make_inf);
    asm.bind(pack).expect("fresh label");
    asm.emit(Inst::Srli {
        rd: T4,
        rs1: T4,
        shamt: 3,
    });
    mask_mantissa(asm, T4, T4);
    sign_of(asm, T1, A0);
    asm.emit(Inst::Slli {
        rd: T2,
        rs1: T2,
        shamt: 23,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: T1,
        rs2: T2,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A0,
        rs2: T4,
    });
    asm.ret();
    asm.bind(zero_signed).expect("fresh label");
    sign_of(asm, A0, A0);
    asm.ret();
    asm.bind(make_inf).expect("fresh label");
    sign_of(asm, A0, A0);
    asm.emit(Inst::Lui {
        rd: T1,
        imm: 0x7F80_0000,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A0,
        rs2: T1,
    });
    asm.ret();
    asm.bind(plain_ret).expect("fresh label");
    asm.ret();
    entry
}

fn emit_sub(asm: &mut Asm, add: Label) -> Label {
    let entry = asm.here("sf_sub");
    asm.emit(Inst::Lui {
        rd: T0,
        imm: 0x8000_0000u32 as i32,
    });
    asm.emit(Inst::Xor {
        rd: A1,
        rs1: A1,
        rs2: T0,
    });
    asm.jump_to(add);
    entry
}

fn emit_mul(asm: &mut Asm) -> Label {
    let entry = asm.here("sf_mul");
    let zero = asm.new_label();
    let inf = asm.new_label();
    let lo_norm = asm.new_label();
    let range = asm.new_label();
    let pack_ok = asm.new_label();

    // result sign
    asm.emit(Inst::Xor {
        rd: A2,
        rs1: A0,
        rs2: A1,
    });
    sign_of(asm, A2, A2);
    // exponents
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: A0,
        shamt: 1,
    });
    asm.emit(Inst::Srli {
        rd: T0,
        rs1: T0,
        shamt: 24,
    });
    asm.emit(Inst::Slli {
        rd: T1,
        rs1: A1,
        shamt: 1,
    });
    asm.emit(Inst::Srli {
        rd: T1,
        rs1: T1,
        shamt: 24,
    });
    beqz(asm, T0, zero);
    beqz(asm, T1, zero);
    asm.li(T6, 255);
    beq(asm, T0, T6, inf);
    beq(asm, T1, T6, inf);
    // mantissas
    mask_mantissa(asm, T2, A0);
    asm.emit(Inst::Lui {
        rd: T3,
        imm: 0x0080_0000,
    });
    asm.emit(Inst::Or {
        rd: T2,
        rs1: T2,
        rs2: T3,
    });
    mask_mantissa(asm, T4, A1);
    asm.emit(Inst::Or {
        rd: T4,
        rs1: T4,
        rs2: T3,
    });
    // 48-bit product
    asm.emit(Inst::Mul {
        rd: T5,
        rs1: T2,
        rs2: T4,
    });
    asm.emit(Inst::Mulhu {
        rd: T6,
        rs1: T2,
        rs2: T4,
    });
    // exponent
    asm.emit(Inst::Add {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: -127,
    });
    // normalise on bit 47
    asm.emit(Inst::Lui {
        rd: T1,
        imm: 0x8000,
    }); // bit 15 of the high half
    asm.emit(Inst::And {
        rd: T1,
        rs1: T6,
        rs2: T1,
    });
    beqz(asm, T1, lo_norm);
    asm.emit(Inst::Slli {
        rd: T6,
        rs1: T6,
        shamt: 8,
    });
    asm.emit(Inst::Srli {
        rd: T5,
        rs1: T5,
        shamt: 24,
    });
    asm.emit(Inst::Or {
        rd: T5,
        rs1: T5,
        rs2: T6,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 1,
    });
    asm.jump_to(range);
    asm.bind(lo_norm).expect("fresh label");
    asm.emit(Inst::Slli {
        rd: T6,
        rs1: T6,
        shamt: 9,
    });
    asm.emit(Inst::Srli {
        rd: T5,
        rs1: T5,
        shamt: 23,
    });
    asm.emit(Inst::Or {
        rd: T5,
        rs1: T5,
        rs2: T6,
    });
    asm.bind(range).expect("fresh label");
    blez(asm, T0, zero);
    asm.li(T1, 255);
    blt(asm, T0, T1, pack_ok);
    asm.bind(inf).expect("fresh label");
    asm.emit(Inst::Lui {
        rd: T1,
        imm: 0x7F80_0000,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A2,
        rs2: T1,
    });
    asm.ret();
    asm.bind(pack_ok).expect("fresh label");
    mask_mantissa(asm, T5, T5);
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: T0,
        shamt: 23,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A2,
        rs2: T0,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A0,
        rs2: T5,
    });
    asm.ret();
    asm.bind(zero).expect("fresh label");
    asm.mv(A0, A2);
    asm.ret();
    entry
}

fn emit_div(asm: &mut Asm) -> Label {
    let entry = asm.here("sf_div");
    let zero = asm.new_label();
    let inf = asm.new_label();
    let x_nonzero = asm.new_label();
    let loop_top = asm.new_label();
    let skip = asm.new_label();
    let small = asm.new_label();
    let norm = asm.new_label();
    let pack_ok = asm.new_label();

    asm.emit(Inst::Xor {
        rd: A2,
        rs1: A0,
        rs2: A1,
    });
    sign_of(asm, A2, A2);
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: A0,
        shamt: 1,
    });
    asm.emit(Inst::Srli {
        rd: T0,
        rs1: T0,
        shamt: 24,
    });
    asm.emit(Inst::Slli {
        rd: T1,
        rs1: A1,
        shamt: 1,
    });
    asm.emit(Inst::Srli {
        rd: T1,
        rs1: T1,
        shamt: 24,
    });
    asm.li(T6, 255);
    beqz(asm, T1, inf); // divide by zero
    beqz(asm, T0, zero); // zero dividend
    beq(asm, T0, T6, inf); // inf / y
    bne(asm, T1, T6, x_nonzero);
    asm.jump_to(zero); // x / inf
    asm.bind(x_nonzero).expect("fresh label");
    // mantissas
    mask_mantissa(asm, T2, A0);
    asm.emit(Inst::Lui {
        rd: T3,
        imm: 0x0080_0000,
    });
    asm.emit(Inst::Or {
        rd: T2,
        rs1: T2,
        rs2: T3,
    });
    mask_mantissa(asm, T4, A1);
    asm.emit(Inst::Or {
        rd: T4,
        rs1: T4,
        rs2: T3,
    });
    // exponent
    asm.emit(Inst::Sub {
        rd: T0,
        rs1: T0,
        rs2: T1,
    });
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: 127,
    });
    // 25-step restoring division: R = T2, D = T4, Q = T5
    asm.li(T5, 0);
    asm.li(T1, 25);
    asm.bind(loop_top).expect("fresh label");
    asm.emit(Inst::Slli {
        rd: T5,
        rs1: T5,
        shamt: 1,
    });
    bltu(asm, T2, T4, skip);
    asm.emit(Inst::Sub {
        rd: T2,
        rs1: T2,
        rs2: T4,
    });
    asm.emit(Inst::Ori {
        rd: T5,
        rs1: T5,
        imm: 1,
    });
    asm.bind(skip).expect("fresh label");
    asm.emit(Inst::Slli {
        rd: T2,
        rs1: T2,
        shamt: 1,
    });
    asm.emit(Inst::Addi {
        rd: T1,
        rs1: T1,
        imm: -1,
    });
    bnez(asm, T1, loop_top);
    // normalise the 25-bit quotient
    asm.emit(Inst::Lui {
        rd: T1,
        imm: 0x0100_0000,
    }); // 1 << 24
    bltu(asm, T5, T1, small);
    asm.emit(Inst::Srli {
        rd: T5,
        rs1: T5,
        shamt: 1,
    });
    asm.jump_to(norm);
    asm.bind(small).expect("fresh label");
    asm.emit(Inst::Addi {
        rd: T0,
        rs1: T0,
        imm: -1,
    });
    asm.bind(norm).expect("fresh label");
    blez(asm, T0, zero);
    asm.li(T1, 255);
    blt(asm, T0, T1, pack_ok);
    asm.bind(inf).expect("fresh label");
    asm.emit(Inst::Lui {
        rd: T1,
        imm: 0x7F80_0000,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A2,
        rs2: T1,
    });
    asm.ret();
    asm.bind(pack_ok).expect("fresh label");
    mask_mantissa(asm, T5, T5);
    asm.emit(Inst::Slli {
        rd: T0,
        rs1: T0,
        shamt: 23,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A2,
        rs2: T0,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A0,
        rs2: T5,
    });
    asm.ret();
    asm.bind(zero).expect("fresh label");
    asm.mv(A0, A2);
    asm.ret();
    entry
}

fn emit_i2f(asm: &mut Asm) -> Label {
    let entry = asm.here("sf_i2f");
    let done_ret = asm.new_label();
    bnez(asm, A0, done_ret); // fallthrough trick: 0 -> 0.0
    asm.ret();
    asm.bind(done_ret).expect("fresh label");
    // sign and absolute value (INT_MIN maps to 0x8000_0000 unsigned, fine)
    asm.emit(Inst::Srai {
        rd: T0,
        rs1: A0,
        shamt: 31,
    });
    asm.emit(Inst::Xor {
        rd: A0,
        rs1: A0,
        rs2: T0,
    });
    asm.emit(Inst::Sub {
        rd: A0,
        rs1: A0,
        rs2: T0,
    });
    asm.emit(Inst::Srli {
        rd: T1,
        rs1: T0,
        shamt: 31,
    });
    asm.emit(Inst::Slli {
        rd: T1,
        rs1: T1,
        shamt: 31,
    }); // sign bit
        // count leading zeros (binary steps), n in T2
    asm.li(T2, 0);
    for (step, sh) in [(16u32, 16u32), (8, 24), (4, 28), (2, 30), (1, 31)] {
        let skip = asm.new_label();
        asm.emit(Inst::Srli {
            rd: T3,
            rs1: A0,
            shamt: sh,
        });
        bnez(asm, T3, skip);
        asm.emit(Inst::Addi {
            rd: T2,
            rs1: T2,
            imm: step as i32,
        });
        asm.emit(Inst::Slli {
            rd: A0,
            rs1: A0,
            shamt: step,
        });
        asm.bind(skip).expect("fresh label");
    }
    // msb now at bit 31; exponent = 158 - n
    asm.li(T3, 158);
    asm.emit(Inst::Sub {
        rd: T3,
        rs1: T3,
        rs2: T2,
    });
    asm.emit(Inst::Srli {
        rd: A0,
        rs1: A0,
        shamt: 8,
    });
    mask_mantissa(asm, A0, A0);
    asm.emit(Inst::Slli {
        rd: T3,
        rs1: T3,
        shamt: 23,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A0,
        rs2: T3,
    });
    asm.emit(Inst::Or {
        rd: A0,
        rs1: A0,
        rs2: T1,
    });
    asm.ret();
    entry
}

fn emit_f2i_floor(asm: &mut Asm) -> Label {
    let entry = asm.here("sf_f2i_floor");
    let big = asm.new_label();
    let zero_out = asm.new_label();
    let in_range = asm.new_label();
    let sat_max = asm.new_label();
    let right = asm.new_label();
    let apply_sign = asm.new_label();
    let positive = asm.new_label();
    let no_adjust = asm.new_label();

    asm.emit(Inst::Slli {
        rd: T0,
        rs1: A0,
        shamt: 1,
    });
    asm.emit(Inst::Srli {
        rd: T1,
        rs1: T0,
        shamt: 24,
    }); // exponent
    asm.li(T2, 127);
    bgeu(asm, T1, T2, big);
    // |x| < 1: floor is 0, or -1 for negative non-zero
    beqz(asm, T0, zero_out);
    bgez(asm, A0, zero_out);
    asm.li(A0, -1);
    asm.ret();
    asm.bind(zero_out).expect("fresh label");
    asm.li(A0, 0);
    asm.ret();
    asm.bind(big).expect("fresh label");
    asm.emit(Inst::Sub {
        rd: T1,
        rs1: T1,
        rs2: T2,
    }); // e = exp - 127
    asm.li(T2, 31);
    blt(asm, T1, T2, in_range);
    // saturate
    bgez(asm, A0, sat_max);
    asm.emit(Inst::Lui {
        rd: A0,
        imm: 0x8000_0000u32 as i32,
    }); // i32::MIN
    asm.ret();
    asm.bind(sat_max).expect("fresh label");
    asm.emit(Inst::Lui {
        rd: A0,
        imm: 0x8000_0000u32 as i32,
    });
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: -1,
    }); // i32::MAX
    asm.ret();
    asm.bind(in_range).expect("fresh label");
    // mantissa with implicit bit
    mask_mantissa(asm, T2, A0);
    asm.emit(Inst::Lui {
        rd: T3,
        imm: 0x0080_0000,
    });
    asm.emit(Inst::Or {
        rd: T2,
        rs1: T2,
        rs2: T3,
    });
    asm.emit(Inst::Addi {
        rd: T4,
        rs1: T1,
        imm: -23,
    }); // shift = e - 23
    bltz(asm, T4, right);
    asm.emit(Inst::Sll {
        rd: T2,
        rs1: T2,
        rs2: T4,
    });
    asm.li(T5, 0); // no fractional bits
    asm.jump_to(apply_sign);
    asm.bind(right).expect("fresh label");
    asm.emit(Inst::Sub {
        rd: T4,
        rs1: Zero,
        rs2: T4,
    }); // rs = 23 - e
    asm.li(T5, 1);
    asm.emit(Inst::Sll {
        rd: T5,
        rs1: T5,
        rs2: T4,
    });
    asm.emit(Inst::Addi {
        rd: T5,
        rs1: T5,
        imm: -1,
    });
    asm.emit(Inst::And {
        rd: T5,
        rs1: T2,
        rs2: T5,
    }); // fraction
    asm.emit(Inst::Srl {
        rd: T2,
        rs1: T2,
        rs2: T4,
    });
    asm.bind(apply_sign).expect("fresh label");
    bgez(asm, A0, positive);
    asm.emit(Inst::Sub {
        rd: A0,
        rs1: Zero,
        rs2: T2,
    });
    beqz(asm, T5, no_adjust);
    asm.emit(Inst::Addi {
        rd: A0,
        rs1: A0,
        imm: -1,
    }); // floor adjustment
    asm.bind(no_adjust).expect("fresh label");
    asm.ret();
    asm.bind(positive).expect("fresh label");
    asm.mv(A0, T2);
    asm.ret();
    entry
}

fn emit_lt(asm: &mut Asm) -> Label {
    let entry = asm.here("sf_lt");
    // map IEEE bit patterns to a monotone unsigned order:
    //   m(x) = x >= 0 ? x | 0x8000_0000 : !x
    asm.emit(Inst::Srai {
        rd: T0,
        rs1: A0,
        shamt: 31,
    });
    asm.emit(Inst::Lui {
        rd: T2,
        imm: 0x8000_0000u32 as i32,
    });
    asm.emit(Inst::Or {
        rd: T0,
        rs1: T0,
        rs2: T2,
    });
    asm.emit(Inst::Xor {
        rd: T0,
        rs1: A0,
        rs2: T0,
    });
    asm.emit(Inst::Srai {
        rd: T1,
        rs1: A1,
        shamt: 31,
    });
    asm.emit(Inst::Or {
        rd: T1,
        rs1: T1,
        rs2: T2,
    });
    asm.emit(Inst::Xor {
        rd: T1,
        rs1: A1,
        rs2: T1,
    });
    asm.emit(Inst::Sltu {
        rd: A0,
        rs1: T0,
        rs2: T1,
    });
    asm.ret();
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_rv32::{Machine, Platform};

    /// Runs `routine(a, b)` on the simulator, returning `a0`.
    fn run_binop(which: &str, a: u32, b: u32) -> u32 {
        let mut asm = Asm::new(0, 0xC000);
        let entry_jump = asm.new_label();
        asm.jump_to(entry_jump); // skip over the library
        let lib = SoftFloat::emit(&mut asm);
        asm.bind(entry_jump).expect("fresh");
        asm.here("entry");
        asm.li(Reg::A0, a as i32);
        asm.li(Reg::A1, b as i32);
        let target = match which {
            "add" => lib.add,
            "sub" => lib.sub,
            "mul" => lib.mul,
            "div" => lib.div,
            "i2f" => lib.i2f,
            "f2i" => lib.f2i_floor,
            "lt" => lib.lt,
            other => panic!("unknown routine {other}"),
        };
        asm.call(target);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().expect("assembly");
        let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
        let r = m.run(1_000_000).expect("halts");
        r.exit_code
    }

    fn fop(which: &str, a: f32, b: f32) -> f32 {
        f32::from_bits(run_binop(which, a.to_bits(), b.to_bits()))
    }

    /// ULP distance between two finite floats of the same sign region.
    fn ulp_distance(a: f32, b: f32) -> u64 {
        let to_ord = |x: f32| -> i64 {
            let bits = x.to_bits() as i64;
            if bits & (1 << 31) != 0 {
                (1i64 << 31) - bits.min(1 << 31) - (bits - (1 << 31))
            } else {
                bits
            }
        };
        // simpler monotone map
        let m = |x: f32| -> i64 {
            let b = x.to_bits();
            if b & 0x8000_0000 != 0 {
                -((b & 0x7FFF_FFFF) as i64)
            } else {
                b as i64
            }
        };
        let _ = to_ord;
        (m(a) - m(b)).unsigned_abs()
    }

    #[allow(clippy::approx_constant)] // arbitrary bit patterns, not math constants
    const CASES: &[f32] = &[
        0.0,
        1.0,
        -1.0,
        0.5,
        -0.5,
        2.0,
        3.1415926,
        -2.7182817,
        100.25,
        -417.75,
        1e-3,
        -1e-3,
        1e10,
        -1e10,
        1.1754944e-38,
        16777216.0,
        0.33333334,
        -0.1,
        7.0,
        -7.5,
        123456.78,
    ];

    #[test]
    fn add_matches_host_within_2_ulp() {
        for &a in CASES {
            for &b in CASES {
                let got = fop("add", a, b);
                let want = a + b;
                assert!(
                    ulp_distance(got, want) <= 2,
                    "{a} + {b}: got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn sub_matches_host_within_2_ulp() {
        for &a in CASES {
            for &b in CASES {
                let got = fop("sub", a, b);
                let want = a - b;
                assert!(
                    ulp_distance(got, want) <= 2,
                    "{a} - {b}: got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn mul_matches_host_within_1_ulp() {
        for &a in CASES {
            for &b in CASES {
                let got = fop("mul", a, b);
                let want = a * b;
                if want.is_infinite() {
                    assert!(got.is_infinite() && got.signum() == want.signum());
                } else if want != 0.0 && want.abs() < f32::MIN_POSITIVE {
                    assert_eq!(got, 0.0f32.copysign(want), "flush {a}*{b}");
                } else {
                    assert!(
                        ulp_distance(got, want) <= 1,
                        "{a} * {b}: got {got} want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn div_matches_host_within_1_ulp() {
        for &a in CASES {
            for &b in CASES {
                if b == 0.0 {
                    continue;
                }
                let got = fop("div", a, b);
                let want = a / b;
                if want.is_infinite() {
                    assert!(got.is_infinite());
                } else if want != 0.0 && want.abs() < f32::MIN_POSITIVE {
                    assert_eq!(got, 0.0f32.copysign(want));
                } else {
                    assert!(
                        ulp_distance(got, want) <= 1,
                        "{a} / {b}: got {got} want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn div_by_zero_gives_signed_infinity() {
        assert_eq!(fop("div", 3.0, 0.0), f32::INFINITY);
        assert_eq!(fop("div", -3.0, 0.0), f32::NEG_INFINITY);
    }

    #[test]
    fn i2f_exact_for_small_integers() {
        for i in [-100_000i32, -513, -1, 0, 1, 2, 7, 255, 65536, 8_388_607] {
            let got = f32::from_bits(run_binop("i2f", i as u32, 0));
            assert_eq!(got, i as f32, "i2f({i})");
        }
    }

    #[test]
    fn i2f_truncates_large_integers() {
        for i in [16_777_217i32, 2_000_000_001, i32::MAX, i32::MIN] {
            let got = f32::from_bits(run_binop("i2f", i as u32, 0));
            let want = i as f32;
            assert!(
                ulp_distance(got, want) <= 1,
                "i2f({i}): got {got} want {want}"
            );
        }
    }

    #[test]
    fn f2i_floor_matches_host_floor() {
        for &x in &[
            0.0f32,
            0.9,
            1.0,
            1.5,
            2.999,
            -0.1,
            -0.9,
            -1.0,
            -1.5,
            -2.001,
            100.75,
            -100.75,
            32767.9,
            -32768.5,
            8_388_608.0,
            1e9,
        ] {
            let got = run_binop("f2i", x.to_bits(), 0) as i32;
            let want = x.floor() as i64;
            let want = want.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
            assert_eq!(got, want, "f2i_floor({x})");
        }
    }

    #[test]
    fn f2i_floor_saturates() {
        assert_eq!(run_binop("f2i", 1e20f32.to_bits(), 0) as i32, i32::MAX);
        assert_eq!(run_binop("f2i", (-1e20f32).to_bits(), 0) as i32, i32::MIN);
    }

    mod softfp_model {
        //! The Xkwtdot `kfadd.t`/`kfsub.t`/`kfmul.t` instructions
        //! execute `kwt_rv32::softfp`; these properties pin the
        //! generated assembly to that model **bit-for-bit**, which is
        //! what makes packed float kernels interchangeable with
        //! call-based scalar kernels.
        use super::*;
        use proptest::prelude::*;

        /// Bit patterns that stress every branch: random, plus the
        /// special-value corners.
        fn float_bits() -> impl Strategy<Value = u32> {
            prop_oneof![
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                prop_oneof![
                    Just(0u32),        // +0
                    Just(0x8000_0000), // -0
                    Just(0x7F80_0000), // +inf
                    Just(0xFF80_0000), // -inf
                    Just(0x7FC0_0000), // NaN
                    Just(0x0000_0001), // denormal
                    Just(0x807F_FFFF), // -denormal
                    Just(0x0080_0000), // smallest normal
                    Just(0x7F7F_FFFF), // largest finite
                ],
                // same-exponent patterns hit cancellation paths often
                (0u32..256).prop_map(|e| (e << 23) | 0x12_3456),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn add_matches_softfp_model(a in float_bits(), b in float_bits()) {
                prop_assert_eq!(run_binop("add", a, b), kwt_rv32::softfp::add(a, b));
            }

            #[test]
            fn sub_matches_softfp_model(a in float_bits(), b in float_bits()) {
                prop_assert_eq!(run_binop("sub", a, b), kwt_rv32::softfp::sub(a, b));
            }

            #[test]
            fn mul_matches_softfp_model(a in float_bits(), b in float_bits()) {
                prop_assert_eq!(run_binop("mul", a, b), kwt_rv32::softfp::mul(a, b));
            }
        }
    }

    #[test]
    fn lt_total_order() {
        let pairs = [
            (1.0f32, 2.0f32, 1u32),
            (2.0, 1.0, 0),
            (-1.0, 1.0, 1),
            (-2.0, -1.0, 1),
            (-1.0, -2.0, 0),
            (0.0, 1.0, 1),
            (-1.0, 0.0, 1),
            (3.5, 3.5, 0),
        ];
        for (a, b, want) in pairs {
            assert_eq!(
                run_binop("lt", a.to_bits(), b.to_bits()),
                want,
                "lt({a}, {b})"
            );
        }
    }

    #[test]
    fn denormals_flush_to_zero() {
        let denorm = f32::from_bits(0x0000_0001);
        assert_eq!(fop("add", denorm, denorm), 0.0);
        assert_eq!(fop("mul", denorm, 1.0), 0.0);
    }

    #[test]
    fn soft_div_is_expensive() {
        // The whole point of ALU_INVERT: soft-float division costs
        // hundreds of cycles. Measure one call.
        let mut asm = Asm::new(0, 0xC000);
        let over = asm.new_label();
        asm.jump_to(over);
        let lib = SoftFloat::emit(&mut asm);
        asm.bind(over).expect("fresh");
        asm.here("entry");
        asm.li(Reg::A0, 1.0f32.to_bits() as i32);
        asm.li(Reg::A1, 3.0f32.to_bits() as i32);
        asm.call(lib.div);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        let r = m.run(10_000).unwrap();
        assert!(
            r.cycles > 150,
            "soft div suspiciously cheap: {} cycles",
            r.cycles
        );
        let got = f32::from_bits(r.exit_code);
        assert!((got - 1.0 / 3.0).abs() < 1e-7, "1/3 = {got}");
    }
}
