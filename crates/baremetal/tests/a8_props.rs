//! Property tests: the A8 `kdot4.i8` device kernels vs the scalar i8
//! host oracle ([`kwt_tensor::qops::matmul_i8_i8`]) across adversarial
//! geometries — non-multiple-of-4 depths (scalar fallback), misaligned
//! operand bases, and saturation boundaries.
//!
//! One machine is assembled once with a dispatcher that reads its call
//! arguments from a parameter block in RAM; each proptest case rewrites
//! the block and operand buffers and re-arms the CPU, so hundreds of
//! cases run in milliseconds.

use kwt_baremetal::kernels::A8Kernels;
use kwt_rv32::{Machine, Platform};
use kwt_rvasm::{Asm, Inst, Reg};
use kwt_tensor::{qops, Mat};
use proptest::prelude::*;

const PARAMS: u32 = 0xA000; // 8 words: a, w, bias, out, m, k, n, shift
const A_BUF: u32 = 0xA400;
const W_BUF: u32 = 0xA800;
const BIAS_BUF: u32 = 0xAC00;
const OUT_BUF: u32 = 0xB000;

/// Builds the dispatcher machine: loads `a0..a7` from the parameter
/// block, calls `matmul_a8`, halts.
fn build_machine() -> Machine {
    let mut asm = Asm::new(0, 0x8000);
    let over = asm.new_label();
    asm.jump_to(over);
    let k = A8Kernels::emit(&mut asm, 27, 8);
    asm.bind(over).expect("fresh");
    asm.here("entry");
    const ARGS: [Reg; 8] = [
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
    ];
    for (i, reg) in ARGS.iter().enumerate() {
        asm.li(Reg::T0, PARAMS as i32);
        asm.emit(Inst::Lw {
            rd: *reg,
            rs1: Reg::T0,
            imm: (i * 4) as i32,
        });
    }
    asm.call(k.matmul_a8);
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    Machine::load(&p, Platform::ibex()).expect("fits")
}

fn write_i8s(m: &mut Machine, addr: u32, v: &[i8]) {
    m.write_i8s(addr, v);
}

#[derive(Debug, Clone)]
struct Case {
    m: usize,
    k: usize,
    n: usize,
    shift: u32,
    a_off: u32,
    w_off: u32,
    with_bias: bool,
    a: Vec<i8>,
    w: Vec<i8>,
    bias: Vec<i32>,
}

const MAX_M: usize = 5;
const MAX_K: usize = 21;
const MAX_N: usize = 6;

fn case_strategy() -> impl Strategy<Value = Case> {
    // The offline proptest shim has no `prop_flat_map`, so operand
    // buffers are drawn at their maximum size and truncated to the
    // drawn geometry; `with_bias` is folded into the shift draw.
    (
        (1usize..=MAX_M, 1usize..=MAX_K, 1usize..=MAX_N),
        (0u32..18, 0u32..16),
        (
            proptest::collection::vec(any::<i8>(), MAX_M * MAX_K),
            proptest::collection::vec(any::<i8>(), MAX_K * MAX_N),
            proptest::collection::vec(-60_000i32..60_000, MAX_N),
        ),
    )
        .prop_map(|((m, k, n), (shift2, offs), (a, w, bias))| Case {
            m,
            k,
            n,
            shift: shift2 / 2,
            a_off: offs % 4,
            w_off: offs / 4,
            with_bias: shift2 % 2 == 0,
            a: a[..m * k].to_vec(),
            w: w[..k * n].to_vec(),
            bias: bias[..n].to_vec(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Device `matmul_a8` == host oracle for every geometry: aligned
    /// K % 4 == 0 shapes take the packed `kdot4.i8` path, everything
    /// else (odd K, misaligned A/Wt bases) the scalar fallback — and
    /// full-range i8 operands with small shifts drive the `ksat`/`kclip`
    /// epilogue through its saturation boundaries.
    #[test]
    fn matmul_a8_matches_scalar_oracle(case in case_strategy()) {
        // one machine per test-thread invocation is plenty fast, but
        // reuse across the whole run via thread_local
        thread_local! {
            static MACHINE: std::cell::RefCell<Machine> =
                std::cell::RefCell::new(build_machine());
        }
        let a_mat = Mat::from_vec(case.m, case.k, case.a.clone()).unwrap();
        let w_mat = Mat::from_vec(case.k, case.n, case.w.clone()).unwrap();
        let bias = case.with_bias.then_some(case.bias.as_slice());
        let (want, _) = qops::matmul_i8_i8(&a_mat, &w_mat, bias, case.shift).unwrap();

        let got = MACHINE.with(|mc| {
            let m = &mut mc.borrow_mut();
            m.reset_cpu();
            let a_addr = A_BUF + case.a_off;
            let w_addr = W_BUF + case.w_off;
            write_i8s(m, a_addr, &case.a);
            // transposed N×K weight layout, like the image builder emits
            write_i8s(m, w_addr, w_mat.transpose().as_slice());
            m.write_i32s(BIAS_BUF, &case.bias);
            m.write_i32s(PARAMS, &[
                a_addr as i32,
                w_addr as i32,
                if case.with_bias { BIAS_BUF as i32 } else { 0 },
                OUT_BUF as i32,
                case.m as i32,
                case.k as i32,
                case.n as i32,
                case.shift as i32,
            ]);
            m.run(50_000_000).expect("halts");
            m.read_i8s(OUT_BUF, case.m * case.n)
        });
        prop_assert_eq!(got, want.as_slice().to_vec());
    }
}
