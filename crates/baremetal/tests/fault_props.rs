//! Property tests for the fault-injection / recovery contract on the
//! cheapest device image (A8, ~285 k cycles per inference):
//!
//! - **no silent persistent corruption**: a single bit flip anywhere in
//!   the static image (code or weight banks) either traps with a typed
//!   [`BuildError::Device`], or — if the run completes — any logit
//!   deviation is detectable by [`DeviceSession::recover`]; and after
//!   recovery the session reproduces the clean logits bit-for-bit.
//! - **fault hooks are free**: arming an empty fault plan and a generous
//!   cycle watchdog leaves logits *and* cycle counts bit-identical to a
//!   machine with no hooks at all.
//!
//! [`DeviceSession::recover`]: kwt_baremetal::DeviceSession::recover

use kwt_baremetal::{BuildError, InferenceImage};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{A8Config, A8Kwt};
use kwt_rv32::FaultPlan;
use kwt_tensor::Mat;
use proptest::prelude::*;
use std::sync::OnceLock;

fn mfcc_like_input(seed: u64) -> Mat<f32> {
    Mat::from_fn(26, 16, |r, c| {
        let h = seed
            .wrapping_add((r * 16 + c) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let u = (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
        if c == 0 {
            35.0 + 50.0 * u
        } else {
            u * 16.0 / (1.0 + c as f32 * 0.4)
        }
    })
}

struct Fixture {
    image: InferenceImage,
    input: Mat<f32>,
    golden: Vec<f32>,
    instructions: u64,
    ranges: Vec<(u32, u32)>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
        p.visit_mut(|s| {
            for v in s {
                *v *= 0.6;
            }
        });
        let qm = A8Kwt::quantize(&p, A8Config::paper_a8()).unwrap();
        let image = InferenceImage::build_a8(&qm).unwrap();
        let input = mfcc_like_input(11);
        let (golden, run, _) = image.run(&input).unwrap();
        let ranges = image.static_ranges();
        assert!(!ranges.is_empty());
        Fixture {
            image,
            input,
            golden,
            instructions: run.instructions,
            ranges,
        }
    })
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn static_bit_flips_are_detected_or_trap(
        range_sel in any::<u64>(),
        off_sel in any::<u64>(),
        bit in 0u8..8,
        step_frac in 0.0f64..1.0,
    ) {
        let fix = fixture();
        let (lo, len) = fix.ranges[(range_sel % fix.ranges.len() as u64) as usize];
        let addr = lo + (off_sel % len as u64) as u32;
        let step = (step_frac * fix.instructions as f64) as u64;

        let mut session = fix.image.session().unwrap();
        session.inject_faults(FaultPlan::new().flip_mem_bit(step, addr, bit));
        match session.run(&fix.input) {
            Err(e) => {
                // loud arm: the error must be the structured device form
                prop_assert!(
                    matches!(e, BuildError::Device(_)),
                    "fault surfaced untyped: {e}"
                );
            }
            Ok((logits, _)) => {
                // quiet arm: a changed answer must not be silent — the
                // integrity scan has to see the flipped static byte
                if !bits_eq(&logits, &fix.golden) {
                    prop_assert!(
                        !session.verify_integrity(),
                        "flip at {addr:#x} bit {bit} (step {step}) changed the \
                         logits but left the integrity scan clean"
                    );
                }
            }
        }
        let report = session.recover();
        // the flip fired before the run ended, so unless the program
        // itself overwrote the bit... it cannot: the flip targets the
        // static region, which recover() checksums in full
        if report.detected_corruption() {
            prop_assert!(report.banks_dirty >= 1 || report.luts_restored);
        }
        // A-B-A: the recovered session reproduces the clean run exactly
        let (again, _) = session.run(&fix.input).unwrap();
        prop_assert!(
            bits_eq(&again, &fix.golden),
            "post-recovery logits differ from the clean run"
        );
    }
}

#[test]
fn armed_but_empty_fault_hooks_are_bit_and_cycle_free() {
    let fix = fixture();
    for seed in [3u64, 29, 101] {
        let input = mfcc_like_input(seed);
        // no hooks at all
        let mut plain = fix.image.session().unwrap();
        let (want, want_run) = plain.run(&input).unwrap();
        // empty plan + generous watchdog: the monitored loop must be
        // architecturally invisible
        let mut hooked = fix.image.session().unwrap();
        hooked.inject_faults(FaultPlan::new());
        hooked.set_cycle_budget(Some(1_000_000_000));
        let (got, got_run) = hooked.run(&input).unwrap();
        assert!(bits_eq(&got, &want), "seed {seed}: logits diverge");
        assert_eq!(
            got_run.cycles, want_run.cycles,
            "seed {seed}: cycles diverge"
        );
        assert_eq!(
            got_run.instructions, want_run.instructions,
            "seed {seed}: instruction counts diverge"
        );
    }
}

#[test]
fn recovery_after_every_trap_kind_restores_bit_identity() {
    use kwt_rv32::Trap;
    let fix = fixture();
    let mut session = fix.image.session().unwrap();
    let plans = [
        FaultPlan::new().force_trap_at_step(
            fix.instructions / 3,
            Trap::IllegalInstruction { pc: 0, word: 0 },
        ),
        FaultPlan::new().truncate_luts(0, 1),
        FaultPlan::new().flip_mem_bit(0, fix.image.program.data_base + 4, 7),
    ];
    for (i, plan) in plans.into_iter().enumerate() {
        session.inject_faults(plan);
        let _ = session.run(&fix.input); // typed error or survivable run
        session.recover();
        let (again, _) = session.run(&fix.input).unwrap();
        assert!(
            bits_eq(&again, &fix.golden),
            "plan {i}: post-recovery logits differ from the clean run"
        );
    }
    // one watchdog kill on the same session, budget cleared afterwards
    session.set_cycle_budget(Some(1_000));
    assert!(
        session.run(&fix.input).is_err(),
        "1k budget must kill the run"
    );
    session.set_cycle_budget(None);
    session.recover();
    let (again, _) = session.run(&fix.input).unwrap();
    assert!(
        bits_eq(&again, &fix.golden),
        "post-watchdog recovery differs"
    );
}
