//! Model parameters: layout, initialisation, flattening and checkpoints.

use crate::{KwtConfig, ModelError, Result};
use kwt_tensor::{Mat, PackedMat};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Parameters of one transformer block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerParams {
    /// Fused QKV projection, `dim x (3 * heads * dim_head)`.
    pub w_qkv: Mat<f32>,
    /// QKV bias, length `3 * heads * dim_head`.
    pub b_qkv: Vec<f32>,
    /// Attention output projection, `(heads * dim_head) x dim`.
    pub w_out: Mat<f32>,
    /// Output projection bias, length `dim`.
    pub b_out: Vec<f32>,
    /// Post-attention layer-norm scale, length `dim`.
    pub ln1_gamma: Vec<f32>,
    /// Post-attention layer-norm shift, length `dim`.
    pub ln1_beta: Vec<f32>,
    /// First MLP weight, `dim x mlp_dim`.
    pub w_mlp1: Mat<f32>,
    /// First MLP bias, length `mlp_dim`.
    pub b_mlp1: Vec<f32>,
    /// Second MLP weight, `mlp_dim x dim`.
    pub w_mlp2: Mat<f32>,
    /// Second MLP bias, length `dim`.
    pub b_mlp2: Vec<f32>,
    /// Post-MLP layer-norm scale, length `dim`.
    pub ln2_gamma: Vec<f32>,
    /// Post-MLP layer-norm shift, length `dim`.
    pub ln2_beta: Vec<f32>,
}

/// All parameters of a KWT model, together with its configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KwtParams {
    /// The hyper-parameters these tensors were shaped for.
    pub config: KwtConfig,
    /// Patch projection, `input_freq x dim`.
    pub w_proj: Mat<f32>,
    /// Patch projection bias, length `dim`.
    pub b_proj: Vec<f32>,
    /// Learned positional embeddings, `seqlen x dim`.
    pub pos_emb: Mat<f32>,
    /// Learned class token, length `dim`.
    pub class_token: Vec<f32>,
    /// Transformer blocks, length `depth`.
    pub layers: Vec<LayerParams>,
    /// Classification head weight, `dim x num_classes`.
    pub w_head: Mat<f32>,
    /// Classification head bias, length `num_classes`.
    pub b_head: Vec<f32>,
}

/// Panel-packed weights of one transformer block (see
/// [`KwtParams::pack_weights`]).
#[derive(Debug, Clone)]
pub struct PackedLayerWeights {
    /// Packed fused QKV projection.
    pub w_qkv: PackedMat<f32>,
    /// Packed attention output projection.
    pub w_out: PackedMat<f32>,
    /// Packed first MLP weight.
    pub w_mlp1: PackedMat<f32>,
    /// Packed second MLP weight.
    pub w_mlp2: PackedMat<f32>,
}

/// All weight matrices of a model, panel-packed once at load time for the
/// blocked GEMM microkernels (biases, layer-norm parameters and embeddings
/// stay in [`KwtParams`]).
#[derive(Debug, Clone)]
pub struct PackedKwtWeights {
    /// Packed patch projection.
    pub w_proj: PackedMat<f32>,
    /// Per-block packed weights, length `depth`.
    pub layers: Vec<PackedLayerWeights>,
    /// Packed classification head.
    pub w_head: PackedMat<f32>,
}

fn xavier(rng: &mut ChaCha8Rng, rows: usize, cols: usize) -> Mat<f32> {
    let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

impl KwtParams {
    /// Creates a model with Xavier-uniform weights, zero biases, unit
    /// layer-norm scales and small random positional embeddings / class
    /// token, from a deterministic seed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if the configuration fails
    /// [`KwtConfig::validate`].
    pub fn init(config: KwtConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inner = config.heads * config.dim_head;
        let layers = (0..config.depth)
            .map(|_| LayerParams {
                w_qkv: xavier(&mut rng, config.dim, 3 * inner),
                b_qkv: vec![0.0; 3 * inner],
                w_out: xavier(&mut rng, inner, config.dim),
                b_out: vec![0.0; config.dim],
                ln1_gamma: vec![1.0; config.dim],
                ln1_beta: vec![0.0; config.dim],
                w_mlp1: xavier(&mut rng, config.dim, config.mlp_dim),
                b_mlp1: vec![0.0; config.mlp_dim],
                w_mlp2: xavier(&mut rng, config.mlp_dim, config.dim),
                b_mlp2: vec![0.0; config.dim],
                ln2_gamma: vec![1.0; config.dim],
                ln2_beta: vec![0.0; config.dim],
            })
            .collect();
        Ok(KwtParams {
            w_proj: xavier(&mut rng, config.input_freq, config.dim),
            b_proj: vec![0.0; config.dim],
            pos_emb: Mat::from_fn(config.seqlen(), config.dim, |_, _| {
                rng.gen_range(-0.02..=0.02)
            }),
            class_token: (0..config.dim)
                .map(|_| rng.gen_range(-0.02..=0.02))
                .collect(),
            layers,
            w_head: xavier(&mut rng, config.dim, config.num_classes),
            b_head: vec![0.0; config.num_classes],
            config,
        })
    }

    /// Creates an all-zero parameter set of the same shapes — the gradient
    /// accumulator used by the trainer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for invalid configurations.
    pub fn zeros(config: KwtConfig) -> Result<Self> {
        config.validate()?;
        let inner = config.heads * config.dim_head;
        let layers = (0..config.depth)
            .map(|_| LayerParams {
                w_qkv: Mat::zeros(config.dim, 3 * inner),
                b_qkv: vec![0.0; 3 * inner],
                w_out: Mat::zeros(inner, config.dim),
                b_out: vec![0.0; config.dim],
                ln1_gamma: vec![0.0; config.dim],
                ln1_beta: vec![0.0; config.dim],
                w_mlp1: Mat::zeros(config.dim, config.mlp_dim),
                b_mlp1: vec![0.0; config.mlp_dim],
                w_mlp2: Mat::zeros(config.mlp_dim, config.dim),
                b_mlp2: vec![0.0; config.dim],
                ln2_gamma: vec![0.0; config.dim],
                ln2_beta: vec![0.0; config.dim],
            })
            .collect();
        Ok(KwtParams {
            w_proj: Mat::zeros(config.input_freq, config.dim),
            b_proj: vec![0.0; config.dim],
            pos_emb: Mat::zeros(config.seqlen(), config.dim),
            class_token: vec![0.0; config.dim],
            layers,
            w_head: Mat::zeros(config.dim, config.num_classes),
            b_head: vec![0.0; config.num_classes],
            config,
        })
    }

    /// Visits every parameter slice in a fixed canonical order.
    ///
    /// The order is the contract for [`KwtParams::flatten`] /
    /// [`KwtParams::assign_from_flat`]: projection, positional embeddings,
    /// class token, then per layer (qkv, out, ln1, mlp, ln2), then head.
    pub fn visit(&self, mut f: impl FnMut(&[f32])) {
        f(self.w_proj.as_slice());
        f(&self.b_proj);
        f(self.pos_emb.as_slice());
        f(&self.class_token);
        for l in &self.layers {
            f(l.w_qkv.as_slice());
            f(&l.b_qkv);
            f(l.w_out.as_slice());
            f(&l.b_out);
            f(&l.ln1_gamma);
            f(&l.ln1_beta);
            f(l.w_mlp1.as_slice());
            f(&l.b_mlp1);
            f(l.w_mlp2.as_slice());
            f(&l.b_mlp2);
            f(&l.ln2_gamma);
            f(&l.ln2_beta);
        }
        f(self.w_head.as_slice());
        f(&self.b_head);
    }

    /// Mutable counterpart of [`KwtParams::visit`], same canonical order.
    pub fn visit_mut(&mut self, mut f: impl FnMut(&mut [f32])) {
        f(self.w_proj.as_mut_slice());
        f(&mut self.b_proj);
        f(self.pos_emb.as_mut_slice());
        f(&mut self.class_token);
        for l in &mut self.layers {
            f(l.w_qkv.as_mut_slice());
            f(&mut l.b_qkv);
            f(l.w_out.as_mut_slice());
            f(&mut l.b_out);
            f(&mut l.ln1_gamma);
            f(&mut l.ln1_beta);
            f(l.w_mlp1.as_mut_slice());
            f(&mut l.b_mlp1);
            f(l.w_mlp2.as_mut_slice());
            f(&mut l.b_mlp2);
            f(&mut l.ln2_gamma);
            f(&mut l.ln2_beta);
        }
        f(self.w_head.as_mut_slice());
        f(&mut self.b_head);
    }

    /// Counts parameters by walking the tensors (must equal
    /// [`KwtConfig::param_count`]).
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit(|s| n += s.len());
        n
    }

    /// Flattens all parameters into one vector (canonical order).
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.visit(|s| out.extend_from_slice(s));
        out
    }

    /// Overwrites all parameters from a flat vector (canonical order).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.param_count()`.
    pub fn assign_from_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter vector length mismatch"
        );
        let mut off = 0;
        self.visit_mut(|s| {
            s.copy_from_slice(&flat[off..off + s.len()]);
            off += s.len();
        });
    }

    /// Largest absolute weight value — used to sanity-check quantisation
    /// scale choices.
    pub fn max_abs_weight(&self) -> f32 {
        let mut m = 0.0f32;
        self.visit(|s| {
            for &v in s {
                m = m.max(v.abs());
            }
        });
        m
    }

    /// Packs every weight matrix into the panel-packed layout of
    /// [`kwt_tensor::packed`] for the blocked GEMM microkernels.
    ///
    /// Packing is done **once per loaded model** (amortised over every
    /// subsequent [`crate::forward_with`] call); the float tensors in
    /// `self` remain the source of truth for training, checkpointing and
    /// quantisation.
    pub fn pack_weights(&self) -> PackedKwtWeights {
        PackedKwtWeights {
            w_proj: PackedMat::pack(&self.w_proj),
            layers: self
                .layers
                .iter()
                .map(|l| PackedLayerWeights {
                    w_qkv: PackedMat::pack(&l.w_qkv),
                    w_out: PackedMat::pack(&l.w_out),
                    w_mlp1: PackedMat::pack(&l.w_mlp1),
                    w_mlp2: PackedMat::pack(&l.w_mlp2),
                })
                .collect(),
            w_head: PackedMat::pack(&self.w_head),
        }
    }

    /// Saves the parameters as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] / [`ModelError::Serde`] on failure.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<()> {
        let json = serde_json::to_string(self).map_err(|e| ModelError::Serde(e.to_string()))?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads parameters saved by [`KwtParams::save_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] / [`ModelError::Serde`] on failure.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| ModelError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_matches_config_param_count() {
        for config in [KwtConfig::kwt_tiny(), KwtConfig::kwt1()] {
            let p = KwtParams::init(config, 1).unwrap();
            assert_eq!(p.param_count(), config.param_count());
        }
    }

    #[test]
    fn init_is_deterministic() {
        let a = KwtParams::init(KwtConfig::kwt_tiny(), 7).unwrap();
        let b = KwtParams::init(KwtConfig::kwt_tiny(), 7).unwrap();
        assert_eq!(a, b);
        let c = KwtParams::init(KwtConfig::kwt_tiny(), 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn init_rejects_invalid_config() {
        let mut c = KwtConfig::kwt_tiny();
        c.depth = 0;
        assert!(KwtParams::init(c, 0).is_err());
        assert!(KwtParams::zeros(c).is_err());
    }

    #[test]
    fn layer_norm_scales_start_at_one() {
        let p = KwtParams::init(KwtConfig::kwt_tiny(), 0).unwrap();
        assert!(p.layers[0].ln1_gamma.iter().all(|&g| g == 1.0));
        assert!(p.layers[0].ln2_gamma.iter().all(|&g| g == 1.0));
        assert!(p.layers[0].ln1_beta.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn flatten_round_trip() {
        let p = KwtParams::init(KwtConfig::kwt_tiny(), 3).unwrap();
        let flat = p.flatten();
        assert_eq!(flat.len(), 1646);
        let mut q = KwtParams::zeros(KwtConfig::kwt_tiny()).unwrap();
        q.assign_from_flat(&flat);
        assert_eq!(q, p);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assign_wrong_length_panics() {
        let mut p = KwtParams::zeros(KwtConfig::kwt_tiny()).unwrap();
        p.assign_from_flat(&[0.0; 10]);
    }

    #[test]
    fn visit_and_visit_mut_agree_on_order() {
        let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 5).unwrap();
        let mut lens_a = Vec::new();
        p.visit(|s| lens_a.push(s.len()));
        let mut lens_b = Vec::new();
        p.visit_mut(|s| lens_b.push(s.len()));
        assert_eq!(lens_a, lens_b);
    }

    #[test]
    fn max_abs_weight_positive_after_init() {
        let p = KwtParams::init(KwtConfig::kwt_tiny(), 0).unwrap();
        let m = p.max_abs_weight();
        assert!(m > 0.0 && m <= 1.1, "xavier weights in range, got {m}");
    }

    #[test]
    fn json_checkpoint_round_trip() {
        let p = KwtParams::init(KwtConfig::kwt_tiny(), 11).unwrap();
        let dir = std::env::temp_dir().join("kwt_model_test_ckpt.json");
        p.save_json(&dir).unwrap();
        let q = KwtParams::load_json(&dir).unwrap();
        assert_eq!(p, q);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn zeros_is_all_zero() {
        let z = KwtParams::zeros(KwtConfig::kwt_tiny()).unwrap();
        z.visit(|s| assert!(s.iter().all(|&v| v == 0.0)));
    }
}
