//! Model hyper-parameters — the attributes of the paper's Table III.

use crate::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a KWT model (paper Table III).
///
/// | Paper attribute  | Field                              |
/// |------------------|------------------------------------|
/// | `INPUT_DIM`      | `input_freq` x `input_time` (F, T) |
/// | `PATCH DIM`      | implied: `[input_freq, 1]`         |
/// | `DIM`            | `dim`                              |
/// | `DEPTH`          | `depth`                            |
/// | `HEADS`          | `heads`                            |
/// | `MLP_DIM`        | `mlp_dim`                          |
/// | `DIM_HEAD`       | `dim_head`                         |
/// | `SEQLEN`         | derived: `input_time + 1`          |
/// | `OUTPUT CLASSES` | `num_classes`                      |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KwtConfig {
    /// Number of MFCC coefficients per frame (`F` of `INPUT_DIM [F, T]`).
    pub input_freq: usize,
    /// Number of time frames (`T` of `INPUT_DIM [F, T]`).
    pub input_time: usize,
    /// Embedding width (`DIM`, the layer-norm vector size).
    pub dim: usize,
    /// Number of transformer blocks in series (`DEPTH`).
    pub depth: usize,
    /// Parallel attention heads (`HEADS`).
    pub heads: usize,
    /// Hidden width of the MLP block (`MLP_DIM`).
    pub mlp_dim: usize,
    /// Width of each attention head (`DIM_HEAD`).
    pub dim_head: usize,
    /// Output classes (`OUTPUT CLASSES`).
    pub num_classes: usize,
    /// Layer-norm epsilon (not in the paper's table; Torch-KWT uses 1e-5).
    pub ln_eps: f32,
}

impl KwtConfig {
    /// The KWT-1 preset (Tables I and III): `[40, 98]` input, 12 layers,
    /// dim 64, 35 classes — ~607 k parameters.
    pub fn kwt1() -> Self {
        KwtConfig {
            input_freq: 40,
            input_time: 98,
            dim: 64,
            depth: 12,
            heads: 1,
            mlp_dim: 256,
            dim_head: 64,
            num_classes: 35,
            ln_eps: 1e-5,
        }
    }

    /// The KWT-Tiny preset (Table III): `[16, 26]` input, 1 layer, dim 12,
    /// 2 classes — exactly 1 646 parameters (Table IV).
    pub fn kwt_tiny() -> Self {
        KwtConfig {
            input_freq: 16,
            input_time: 26,
            dim: 12,
            depth: 1,
            heads: 1,
            mlp_dim: 24,
            dim_head: 8,
            num_classes: 2,
            ln_eps: 1e-5,
        }
    }

    /// Attention-scores sequence length (`SEQLEN = T + 1`, the class token
    /// included): 99 for KWT-1, 27 for KWT-Tiny.
    pub fn seqlen(&self) -> usize {
        self.input_time + 1
    }

    /// Patch dimensions, `[F, 1]` — one token per time frame.
    pub fn patch_dim(&self) -> (usize, usize) {
        (self.input_freq, 1)
    }

    /// Validates field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero-sized fields.
    pub fn validate(&self) -> Result<()> {
        macro_rules! nz {
            ($f:ident) => {
                if self.$f == 0 {
                    return Err(ModelError::InvalidConfig {
                        field: stringify!($f),
                        why: "must be positive".into(),
                    });
                }
            };
        }
        nz!(input_freq);
        nz!(input_time);
        nz!(dim);
        nz!(depth);
        nz!(heads);
        nz!(mlp_dim);
        nz!(dim_head);
        nz!(num_classes);
        // NaN must fail too, so compare via partial_cmp rather than `>=`.
        if self.ln_eps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) && self.ln_eps != 0.0
        {
            return Err(ModelError::InvalidConfig {
                field: "ln_eps",
                why: format!("must be non-negative, got {}", self.ln_eps),
            });
        }
        Ok(())
    }

    /// Parameters per transformer layer.
    fn layer_params(&self) -> usize {
        let inner = self.heads * self.dim_head;
        let qkv = self.dim * 3 * inner + 3 * inner;
        let out = inner * self.dim + self.dim;
        let lns = 4 * self.dim;
        let mlp = self.dim * self.mlp_dim + self.mlp_dim + self.mlp_dim * self.dim + self.dim;
        qkv + out + lns + mlp
    }

    /// Total trainable parameter count.
    ///
    /// For [`KwtConfig::kwt_tiny`] this is exactly the paper's 1 646
    /// (Table IV); for [`KwtConfig::kwt1`] it is 611 107 vs the paper's
    /// quoted 607 k (−0.7 %, bias bookkeeping).
    pub fn param_count(&self) -> usize {
        let proj = self.input_freq * self.dim + self.dim;
        let pos = self.seqlen() * self.dim;
        let cls = self.dim;
        let head = self.dim * self.num_classes + self.num_classes;
        proj + pos + cls + self.depth * self.layer_params() + head
    }

    /// Model size in bytes with 32-bit float weights (Table IV
    /// "Memory use (Floating Point)" / Table IX "Model Size").
    pub fn memory_bytes_f32(&self) -> usize {
        self.param_count() * 4
    }

    /// Model size in bytes with INT8 weights (Table IX, KWT-Tiny-Q row).
    pub fn memory_bytes_i8(&self) -> usize {
        self.param_count()
    }
}

impl Default for KwtConfig {
    fn default() -> Self {
        KwtConfig::kwt_tiny()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kwt_tiny_param_count_matches_paper_exactly() {
        // Table IV: 1646 parameters.
        assert_eq!(KwtConfig::kwt_tiny().param_count(), 1646);
    }

    #[test]
    fn kwt_tiny_memory_matches_paper() {
        // Table IV / IX: 6.584 kB float, 1.646 kB int8.
        let c = KwtConfig::kwt_tiny();
        assert_eq!(c.memory_bytes_f32(), 6584);
        assert_eq!(c.memory_bytes_i8(), 1646);
    }

    #[test]
    fn kwt1_param_count_near_paper() {
        // Table I quotes 607k; exact bias bookkeeping gives 611,107.
        let n = KwtConfig::kwt1().param_count();
        assert_eq!(n, 611_107);
        let rel = (n as f64 - 607_000.0).abs() / 607_000.0;
        assert!(rel < 0.01, "param count {n} deviates {rel:.3} from 607k");
    }

    #[test]
    fn parameter_reduction_is_369x() {
        // Paper headline: "369 times smaller".
        let ratio =
            KwtConfig::kwt1().param_count() as f64 / KwtConfig::kwt_tiny().param_count() as f64;
        assert!((ratio - 369.0).abs() < 3.0, "reduction ratio {ratio}");
    }

    #[test]
    fn seqlen_matches_table3() {
        assert_eq!(KwtConfig::kwt1().seqlen(), 99);
        assert_eq!(KwtConfig::kwt_tiny().seqlen(), 27);
    }

    #[test]
    fn patch_dims_match_table3() {
        assert_eq!(KwtConfig::kwt1().patch_dim(), (40, 1));
        assert_eq!(KwtConfig::kwt_tiny().patch_dim(), (16, 1));
    }

    #[test]
    fn validation_rejects_zeroes() {
        let mut c = KwtConfig::kwt_tiny();
        assert!(c.validate().is_ok());
        c.dim = 0;
        assert!(c.validate().is_err());
        let mut c = KwtConfig::kwt_tiny();
        c.ln_eps = f32::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_tiny() {
        assert_eq!(KwtConfig::default(), KwtConfig::kwt_tiny());
    }

    #[test]
    fn serde_round_trip() {
        let c = KwtConfig::kwt1();
        let json = serde_json::to_string(&c).unwrap();
        let back: KwtConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
