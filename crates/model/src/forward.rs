//! The float inference pass (paper Fig. 1).
//!
//! Three entry points share one implementation ([`forward_into`]):
//!
//! * [`forward`] — convenience path: packs the weight matrices on the fly
//!   (cheap relative to the matmuls) and runs the blocked kernels.
//! * [`forward_with`] — amortised path: takes
//!   [`PackedKwtWeights`](crate::PackedKwtWeights) produced once by
//!   [`KwtParams::pack_weights`] at model-load time, so repeated inference
//!   never re-packs.
//! * [`forward_into`] — the steady-state hot path: additionally threads a
//!   reusable [`Scratch`] arena holding every intermediate activation and
//!   writes the logits into a caller buffer, so repeated inference
//!   performs **no heap allocation** (the engine crate asserts this with
//!   an allocation-counting test).
//!
//! All three produce bit-identical logits: the wrappers only differ in
//! who owns the packed weights and the activation arena.

use crate::{KwtConfig, KwtParams, ModelError, PackedKwtWeights, Result};
use kwt_tensor::{ops, Mat};

/// Reusable activation arena for [`forward_into`]: every intermediate of
/// one inference pass, sized for one model configuration.
///
/// Buffers are resized in place by the `_into` kernels, so a scratch built
/// for one config can even be reused across configs — it simply regrows on
/// the first pass. A fresh scratch and a heavily reused one produce
/// bit-identical logits (the buffers carry no state between calls; every
/// element is overwritten before it is read).
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    tokens: Mat<f32>,
    x: Mat<f32>,
    qkv: Mat<f32>,
    scores: Mat<f32>,
    sa: Mat<f32>,
    attn: Mat<f32>,
    hidden: Mat<f32>,
    mlp: Mat<f32>,
    cls: Mat<f32>,
    logits: Mat<f32>,
}

impl Scratch {
    /// Pre-allocates every buffer for `config`, so even the first
    /// [`forward_into`] call allocates nothing.
    pub fn new(config: &KwtConfig) -> Self {
        let (s, t) = (config.seqlen(), config.input_time);
        let inner = config.heads * config.dim_head;
        Scratch {
            tokens: Mat::zeros(t, config.dim),
            x: Mat::zeros(s, config.dim),
            qkv: Mat::zeros(s, 3 * inner),
            scores: Mat::zeros(s, s),
            sa: Mat::zeros(s, inner),
            attn: Mat::zeros(s, config.dim),
            hidden: Mat::zeros(s, config.mlp_dim),
            mlp: Mat::zeros(s, config.dim),
            cls: Mat::zeros(1, config.dim),
            logits: Mat::zeros(1, config.num_classes),
        }
    }
}

/// Runs one inference pass, returning the raw class logits.
///
/// Pipeline (paper Fig. 1, post-norm):
///
/// 1. project each time-frame patch: `tokens = X W0 + b0`
/// 2. prepend the class token, add positional embeddings
/// 3. per block: `x = LN1(x + W_out · SA(QKV(x)))`, then
///    `x = LN2(x + MLP(x))` with a GELU inside the MLP (eq. 6)
/// 4. logits = class-token row × head matrix (eq. 8)
///
/// Packs the weights on the fly; use [`forward_with`] to amortise packing
/// across calls.
///
/// # Errors
///
/// Returns [`ModelError::InputShape`] if `mfcc` is not
/// `input_time x input_freq`, or a propagated kernel error if the
/// parameter tensors are inconsistent.
pub fn forward(params: &KwtParams, mfcc: &Mat<f32>) -> Result<Vec<f32>> {
    let packed = params.pack_weights();
    forward_with(params, &packed, mfcc)
}

/// [`forward`] over weights packed once by [`KwtParams::pack_weights`] —
/// the amortised fast path for repeated inference.
///
/// # Errors
///
/// Same contract as [`forward`]; additionally propagates a shape error if
/// `packed` was produced from differently-shaped parameters.
pub fn forward_with(
    params: &KwtParams,
    packed: &PackedKwtWeights,
    mfcc: &Mat<f32>,
) -> Result<Vec<f32>> {
    let mut logits = Vec::new();
    forward_into(params, packed, mfcc, &mut Scratch::default(), &mut logits)?;
    Ok(logits)
}

/// The single implementation behind [`forward`] and [`forward_with`]: runs
/// one inference pass over pre-packed weights, keeping every intermediate
/// activation in the caller's [`Scratch`] arena and writing the logits
/// into `logits_out` (cleared first; capacity is reused).
///
/// Steady-state calls perform no heap allocation: all buffers are resized
/// in place within their existing capacity.
///
/// # Errors
///
/// Same contract as [`forward_with`].
pub fn forward_into(
    params: &KwtParams,
    packed: &PackedKwtWeights,
    mfcc: &Mat<f32>,
    scratch: &mut Scratch,
    logits_out: &mut Vec<f32>,
) -> Result<()> {
    let c = &params.config;
    if mfcc.shape() != (c.input_time, c.input_freq) {
        return Err(ModelError::InputShape {
            expected: (c.input_time, c.input_freq),
            got: mfcc.shape(),
        });
    }
    if packed.layers.len() != params.layers.len() {
        return Err(ModelError::InvalidConfig {
            field: "packed_weights",
            why: format!(
                "packed weights hold {} layers but the parameters have {} — \
                 re-pack with KwtParams::pack_weights after changing the model",
                packed.layers.len(),
                params.layers.len()
            ),
        });
    }

    // 1. Patch projection: T x F -> T x dim.
    ops::linear_packed_into(mfcc, &packed.w_proj, &params.b_proj, &mut scratch.tokens)?;

    // 2. Class token + positional embeddings: S x dim, S = T + 1.
    scratch.x.resize(c.seqlen(), c.dim);
    scratch.x.row_mut(0).copy_from_slice(&params.class_token);
    for t in 0..scratch.tokens.rows() {
        let row = scratch.tokens.row(t);
        scratch.x.row_mut(t + 1).copy_from_slice(row);
    }
    ops::add_assign(&mut scratch.x, &params.pos_emb)?;

    // 3. Transformer blocks (post-norm).
    for (layer, pl) in params.layers.iter().zip(&packed.layers) {
        // Self-attention branch.
        ops::linear_packed_into(&scratch.x, &pl.w_qkv, &layer.b_qkv, &mut scratch.qkv)?;
        ops::multi_head_attention_into(
            &scratch.qkv,
            c.heads,
            c.dim_head,
            &mut scratch.scores,
            &mut scratch.sa,
        )?;
        ops::linear_packed_into(&scratch.sa, &pl.w_out, &layer.b_out, &mut scratch.attn)?;
        ops::add_assign(&mut scratch.x, &scratch.attn)?;
        ops::layer_norm_rows(&mut scratch.x, &layer.ln1_gamma, &layer.ln1_beta, c.ln_eps)?;

        // MLP branch (eq. 6): GELU(x W1 + b1) W2 + b2.
        ops::linear_packed_into(&scratch.x, &pl.w_mlp1, &layer.b_mlp1, &mut scratch.hidden)?;
        ops::gelu(scratch.hidden.as_mut_slice());
        ops::linear_packed_into(&scratch.hidden, &pl.w_mlp2, &layer.b_mlp2, &mut scratch.mlp)?;
        ops::add_assign(&mut scratch.x, &scratch.mlp)?;
        ops::layer_norm_rows(&mut scratch.x, &layer.ln2_gamma, &layer.ln2_beta, c.ln_eps)?;
    }

    // 4. Classification head on the class token.
    scratch.cls.resize(1, c.dim);
    scratch.cls.row_mut(0).copy_from_slice(scratch.x.row(0));
    ops::linear_packed_into(
        &scratch.cls,
        &packed.w_head,
        &params.b_head,
        &mut scratch.logits,
    )?;
    logits_out.clear();
    logits_out.extend_from_slice(scratch.logits.as_slice());
    Ok(())
}

/// Softmax over logits — the class probability vector.
///
/// # Errors
///
/// Returns [`ModelError::InvalidLogits`] if `logits` is empty or contains
/// a non-finite value (either would silently softmax to NaN
/// probabilities).
pub fn softmax_probs(logits: &[f32]) -> Result<Vec<f32>> {
    let mut p = Vec::new();
    softmax_probs_into(logits, &mut p)?;
    Ok(p)
}

/// [`softmax_probs`] into a caller-provided vector (cleared first;
/// capacity is reused, so steady-state calls allocate nothing).
///
/// # Errors
///
/// Same contract as [`softmax_probs`].
pub fn softmax_probs_into(logits: &[f32], out: &mut Vec<f32>) -> Result<()> {
    if logits.is_empty() {
        return Err(ModelError::InvalidLogits {
            why: "empty logit vector".into(),
        });
    }
    if let Some(i) = logits.iter().position(|v| !v.is_finite()) {
        return Err(ModelError::InvalidLogits {
            why: format!("logit {i} is {} (not finite)", logits[i]),
        });
    }
    out.clear();
    out.extend_from_slice(logits);
    ops::softmax_normalized(out)?;
    Ok(())
}

/// Runs [`forward`] and returns the arg-max class index.
///
/// # Errors
///
/// Propagates [`forward`] errors.
pub fn predict(params: &KwtParams, mfcc: &Mat<f32>) -> Result<usize> {
    let logits = forward(params, mfcc)?;
    Ok(argmax(&logits))
}

/// [`predict`] over pre-packed weights — the amortised counterpart, used
/// by batch evaluation.
///
/// # Errors
///
/// Propagates [`forward_with`] errors.
pub fn predict_with(
    params: &KwtParams,
    packed: &PackedKwtWeights,
    mfcc: &Mat<f32>,
) -> Result<usize> {
    let logits = forward_with(params, packed, mfcc)?;
    Ok(argmax(&logits))
}

fn argmax(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
        .map(|(i, _)| i)
        .expect("num_classes > 0 enforced by config validation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KwtConfig;

    fn tiny() -> KwtParams {
        KwtParams::init(KwtConfig::kwt_tiny(), 42).unwrap()
    }

    fn tiny_input(seed: u64) -> Mat<f32> {
        Mat::from_fn(26, 16, |r, c| {
            let h = seed
                .wrapping_mul(31)
                .wrapping_add((r * 16 + c) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn forward_produces_finite_logits() {
        let p = tiny();
        let logits = forward(&p, &tiny_input(0)).unwrap();
        assert_eq!(logits.len(), 2);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn forward_with_prepacked_weights_matches_forward() {
        let p = tiny();
        let packed = p.pack_weights();
        for s in 0..4 {
            let x = tiny_input(s);
            assert_eq!(
                forward(&p, &x).unwrap(),
                forward_with(&p, &packed, &x).unwrap()
            );
        }
    }

    #[test]
    fn forward_with_rejects_mismatched_depth() {
        let p = tiny();
        let mut packed = p.pack_weights();
        packed.layers.pop();
        assert!(forward_with(&p, &packed, &tiny_input(0)).is_err());
    }

    #[test]
    fn forward_is_deterministic() {
        let p = tiny();
        assert_eq!(
            forward(&p, &tiny_input(1)).unwrap(),
            forward(&p, &tiny_input(1)).unwrap()
        );
    }

    #[test]
    fn forward_depends_on_input() {
        let p = tiny();
        assert_ne!(
            forward(&p, &tiny_input(1)).unwrap(),
            forward(&p, &tiny_input(2)).unwrap()
        );
    }

    #[test]
    fn forward_rejects_wrong_shape() {
        let p = tiny();
        let bad = Mat::zeros(16, 26); // transposed
        assert!(matches!(
            forward(&p, &bad),
            Err(ModelError::InputShape { .. })
        ));
    }

    #[test]
    fn kwt1_forward_shapes_work() {
        let p = KwtParams::init(KwtConfig::kwt1(), 0).unwrap();
        let x = Mat::zeros(98, 40);
        let logits = forward(&p, &x).unwrap();
        assert_eq!(logits.len(), 35);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn softmax_probs_is_distribution() {
        let probs = softmax_probs(&[1.0, -2.0, 0.5]).unwrap();
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(probs.len(), 3);
    }

    #[test]
    fn softmax_probs_rejects_empty_and_non_finite() {
        assert!(matches!(
            softmax_probs(&[]),
            Err(ModelError::InvalidLogits { .. })
        ));
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = softmax_probs(&[0.5, bad, -1.0]).unwrap_err();
            assert!(
                matches!(err, ModelError::InvalidLogits { .. }),
                "{bad} accepted"
            );
            assert!(err.to_string().contains("logit 1"), "{err}");
        }
        // the checked path never hands NaN probabilities back
        let probs = softmax_probs(&[1e30, -1e30]).unwrap();
        assert!(probs.iter().all(|p| p.is_finite()));
    }

    /// The pre-refactor `forward_with` body, reconstructed from the same
    /// public kernels it used to call — the oracle proving the scratch
    /// path is bit-identical to the old allocating path.
    fn forward_old_path(params: &KwtParams, mfcc: &Mat<f32>) -> Vec<f32> {
        let c = &params.config;
        let packed = params.pack_weights();
        let tokens = ops::linear_packed(mfcc, &packed.w_proj, &params.b_proj).unwrap();
        let cls_row = Mat::from_vec(1, c.dim, params.class_token.clone()).unwrap();
        let mut x = cls_row.vstack(&tokens).unwrap();
        ops::add_assign(&mut x, &params.pos_emb).unwrap();
        for (layer, pl) in params.layers.iter().zip(&packed.layers) {
            let qkv = ops::linear_packed(&x, &pl.w_qkv, &layer.b_qkv).unwrap();
            let (q, k, v) = ops::split_into_qkv(&qkv, c.heads, c.dim_head).unwrap();
            let mut sa: Option<Mat<f32>> = None;
            for h in 0..c.heads {
                let head = ops::scaled_dot_product_attention(&q[h], &k[h], &v[h]).unwrap();
                sa = Some(match sa {
                    None => head,
                    Some(acc) => acc.hstack(&head).unwrap(),
                });
            }
            let attn_out = ops::linear_packed(&sa.unwrap(), &pl.w_out, &layer.b_out).unwrap();
            ops::add_assign(&mut x, &attn_out).unwrap();
            ops::layer_norm_rows(&mut x, &layer.ln1_gamma, &layer.ln1_beta, c.ln_eps).unwrap();
            let mut hidden = ops::linear_packed(&x, &pl.w_mlp1, &layer.b_mlp1).unwrap();
            ops::gelu(hidden.as_mut_slice());
            let mlp_out = ops::linear_packed(&hidden, &pl.w_mlp2, &layer.b_mlp2).unwrap();
            ops::add_assign(&mut x, &mlp_out).unwrap();
            ops::layer_norm_rows(&mut x, &layer.ln2_gamma, &layer.ln2_beta, c.ln_eps).unwrap();
        }
        let cls = Mat::from_vec(1, c.dim, x.row(0).to_vec()).unwrap();
        ops::linear_packed(&cls, &packed.w_head, &params.b_head)
            .unwrap()
            .into_vec()
    }

    #[test]
    fn scratch_forward_bit_identical_to_old_path() {
        for (config, t, f) in [(KwtConfig::kwt_tiny(), 26, 16), (KwtConfig::kwt1(), 98, 40)] {
            let p = KwtParams::init(config, 9).unwrap();
            for s in 0..3 {
                let x = Mat::from_fn(t, f, |r, c| {
                    let h = (s * 7919 + r * f + c) as u64;
                    ((h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f32 / (1u64 << 24) as f32)
                        - 0.5
                });
                let new = forward(&p, &x).unwrap();
                let old = forward_old_path(&p, &x);
                assert_eq!(new.len(), old.len());
                for (a, b) in new.iter().zip(&old) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seed {s}");
                }
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let p = tiny();
        let packed = p.pack_weights();
        let mut reused = Scratch::new(&p.config);
        let mut logits_reused = Vec::new();
        for s in 0..8 {
            let x = tiny_input(s);
            forward_into(&p, &packed, &x, &mut reused, &mut logits_reused).unwrap();
            let mut fresh = Scratch::new(&p.config);
            let mut logits_fresh = Vec::new();
            forward_into(&p, &packed, &x, &mut fresh, &mut logits_fresh).unwrap();
            assert_eq!(logits_reused, logits_fresh, "seed {s}");
        }
    }

    #[test]
    fn predict_returns_argmax() {
        let p = tiny();
        let x = tiny_input(3);
        let logits = forward(&p, &x).unwrap();
        let want = if logits[0] >= logits[1] { 0 } else { 1 };
        assert_eq!(predict(&p, &x).unwrap(), want);
    }

    #[test]
    fn positional_embeddings_matter() {
        // Zeroing the positional embeddings must change the logits of a
        // non-trivial input (sanity check that they are applied).
        let p = tiny();
        let mut q = p.clone();
        q.pos_emb = Mat::zeros(27, 12);
        assert_ne!(
            forward(&p, &tiny_input(5)).unwrap(),
            forward(&q, &tiny_input(5)).unwrap()
        );
    }

    #[test]
    fn class_token_row_is_used_for_logits() {
        // Change only the head bias: logits shift by exactly that amount.
        let p = tiny();
        let mut q = p.clone();
        q.b_head = vec![1.0, -1.0];
        let a = forward(&p, &tiny_input(6)).unwrap();
        let b = forward(&q, &tiny_input(6)).unwrap();
        assert!((b[0] - a[0] - 1.0).abs() < 1e-6);
        assert!((b[1] - a[1] + 1.0).abs() < 1e-6);
    }
}
