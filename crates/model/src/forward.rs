//! The float inference pass (paper Fig. 1).
//!
//! Two entry points share one implementation:
//!
//! * [`forward`] — convenience path: packs the weight matrices on the fly
//!   (cheap relative to the matmuls) and runs the blocked kernels.
//! * [`forward_with`] — amortised hot path: takes
//!   [`PackedKwtWeights`](crate::PackedKwtWeights) produced once by
//!   [`KwtParams::pack_weights`] at model-load time, so repeated inference
//!   never re-packs.

use crate::{KwtParams, ModelError, PackedKwtWeights, Result};
use kwt_tensor::{ops, Mat};

/// Runs one inference pass, returning the raw class logits.
///
/// Pipeline (paper Fig. 1, post-norm):
///
/// 1. project each time-frame patch: `tokens = X W0 + b0`
/// 2. prepend the class token, add positional embeddings
/// 3. per block: `x = LN1(x + W_out · SA(QKV(x)))`, then
///    `x = LN2(x + MLP(x))` with a GELU inside the MLP (eq. 6)
/// 4. logits = class-token row × head matrix (eq. 8)
///
/// Packs the weights on the fly; use [`forward_with`] to amortise packing
/// across calls.
///
/// # Errors
///
/// Returns [`ModelError::InputShape`] if `mfcc` is not
/// `input_time x input_freq`, or a propagated kernel error if the
/// parameter tensors are inconsistent.
pub fn forward(params: &KwtParams, mfcc: &Mat<f32>) -> Result<Vec<f32>> {
    let packed = params.pack_weights();
    forward_with(params, &packed, mfcc)
}

/// [`forward`] over weights packed once by [`KwtParams::pack_weights`] —
/// the amortised fast path for repeated inference.
///
/// # Errors
///
/// Same contract as [`forward`]; additionally propagates a shape error if
/// `packed` was produced from differently-shaped parameters.
pub fn forward_with(
    params: &KwtParams,
    packed: &PackedKwtWeights,
    mfcc: &Mat<f32>,
) -> Result<Vec<f32>> {
    let c = &params.config;
    if mfcc.shape() != (c.input_time, c.input_freq) {
        return Err(ModelError::InputShape {
            expected: (c.input_time, c.input_freq),
            got: mfcc.shape(),
        });
    }
    if packed.layers.len() != params.layers.len() {
        return Err(ModelError::InvalidConfig {
            field: "packed_weights",
            why: format!(
                "packed weights hold {} layers but the parameters have {} — \
                 re-pack with KwtParams::pack_weights after changing the model",
                packed.layers.len(),
                params.layers.len()
            ),
        });
    }

    // 1. Patch projection: T x F -> T x dim.
    let tokens = ops::linear_packed(mfcc, &packed.w_proj, &params.b_proj)?;

    // 2. Class token + positional embeddings: S x dim, S = T + 1.
    let cls_row = Mat::from_vec(1, c.dim, params.class_token.clone())
        .expect("class token length enforced by construction");
    let mut x = cls_row.vstack(&tokens)?;
    ops::add_assign(&mut x, &params.pos_emb)?;

    // 3. Transformer blocks (post-norm).
    for (layer, pl) in params.layers.iter().zip(&packed.layers) {
        // Self-attention branch.
        let qkv = ops::linear_packed(&x, &pl.w_qkv, &layer.b_qkv)?;
        let sa = ops::multi_head_attention(&qkv, c.heads, c.dim_head)?;
        let attn_out = ops::linear_packed(&sa, &pl.w_out, &layer.b_out)?;
        ops::add_assign(&mut x, &attn_out)?;
        ops::layer_norm_rows(&mut x, &layer.ln1_gamma, &layer.ln1_beta, c.ln_eps)?;

        // MLP branch (eq. 6): GELU(x W1 + b1) W2 + b2.
        let mut hidden = ops::linear_packed(&x, &pl.w_mlp1, &layer.b_mlp1)?;
        ops::gelu(hidden.as_mut_slice());
        let mlp_out = ops::linear_packed(&hidden, &pl.w_mlp2, &layer.b_mlp2)?;
        ops::add_assign(&mut x, &mlp_out)?;
        ops::layer_norm_rows(&mut x, &layer.ln2_gamma, &layer.ln2_beta, c.ln_eps)?;
    }

    // 4. Classification head on the class token.
    let cls = Mat::from_vec(1, c.dim, x.row(0).to_vec()).expect("row has dim elements");
    let logits = ops::linear_packed(&cls, &packed.w_head, &params.b_head)?;
    Ok(logits.into_vec())
}

/// Softmax over logits — the class probability vector.
///
/// # Errors
///
/// Returns a kernel error only for an empty logit vector.
pub fn softmax_probs(logits: &[f32]) -> Result<Vec<f32>> {
    let mut p = logits.to_vec();
    ops::softmax_normalized(&mut p)?;
    Ok(p)
}

/// Runs [`forward`] and returns the arg-max class index.
///
/// # Errors
///
/// Propagates [`forward`] errors.
pub fn predict(params: &KwtParams, mfcc: &Mat<f32>) -> Result<usize> {
    let logits = forward(params, mfcc)?;
    Ok(argmax(&logits))
}

/// [`predict`] over pre-packed weights — the amortised counterpart, used
/// by batch evaluation.
///
/// # Errors
///
/// Propagates [`forward_with`] errors.
pub fn predict_with(
    params: &KwtParams,
    packed: &PackedKwtWeights,
    mfcc: &Mat<f32>,
) -> Result<usize> {
    let logits = forward_with(params, packed, mfcc)?;
    Ok(argmax(&logits))
}

fn argmax(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
        .map(|(i, _)| i)
        .expect("num_classes > 0 enforced by config validation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KwtConfig;

    fn tiny() -> KwtParams {
        KwtParams::init(KwtConfig::kwt_tiny(), 42).unwrap()
    }

    fn tiny_input(seed: u64) -> Mat<f32> {
        Mat::from_fn(26, 16, |r, c| {
            let h = seed
                .wrapping_mul(31)
                .wrapping_add((r * 16 + c) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn forward_produces_finite_logits() {
        let p = tiny();
        let logits = forward(&p, &tiny_input(0)).unwrap();
        assert_eq!(logits.len(), 2);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn forward_with_prepacked_weights_matches_forward() {
        let p = tiny();
        let packed = p.pack_weights();
        for s in 0..4 {
            let x = tiny_input(s);
            assert_eq!(
                forward(&p, &x).unwrap(),
                forward_with(&p, &packed, &x).unwrap()
            );
        }
    }

    #[test]
    fn forward_with_rejects_mismatched_depth() {
        let p = tiny();
        let mut packed = p.pack_weights();
        packed.layers.pop();
        assert!(forward_with(&p, &packed, &tiny_input(0)).is_err());
    }

    #[test]
    fn forward_is_deterministic() {
        let p = tiny();
        assert_eq!(
            forward(&p, &tiny_input(1)).unwrap(),
            forward(&p, &tiny_input(1)).unwrap()
        );
    }

    #[test]
    fn forward_depends_on_input() {
        let p = tiny();
        assert_ne!(
            forward(&p, &tiny_input(1)).unwrap(),
            forward(&p, &tiny_input(2)).unwrap()
        );
    }

    #[test]
    fn forward_rejects_wrong_shape() {
        let p = tiny();
        let bad = Mat::zeros(16, 26); // transposed
        assert!(matches!(
            forward(&p, &bad),
            Err(ModelError::InputShape { .. })
        ));
    }

    #[test]
    fn kwt1_forward_shapes_work() {
        let p = KwtParams::init(KwtConfig::kwt1(), 0).unwrap();
        let x = Mat::zeros(98, 40);
        let logits = forward(&p, &x).unwrap();
        assert_eq!(logits.len(), 35);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn softmax_probs_is_distribution() {
        let probs = softmax_probs(&[1.0, -2.0, 0.5]).unwrap();
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(probs.len(), 3);
    }

    #[test]
    fn predict_returns_argmax() {
        let p = tiny();
        let x = tiny_input(3);
        let logits = forward(&p, &x).unwrap();
        let want = if logits[0] >= logits[1] { 0 } else { 1 };
        assert_eq!(predict(&p, &x).unwrap(), want);
    }

    #[test]
    fn positional_embeddings_matter() {
        // Zeroing the positional embeddings must change the logits of a
        // non-trivial input (sanity check that they are applied).
        let p = tiny();
        let mut q = p.clone();
        q.pos_emb = Mat::zeros(27, 12);
        assert_ne!(
            forward(&p, &tiny_input(5)).unwrap(),
            forward(&q, &tiny_input(5)).unwrap()
        );
    }

    #[test]
    fn class_token_row_is_used_for_logits() {
        // Change only the head bias: logits shift by exactly that amount.
        let p = tiny();
        let mut q = p.clone();
        q.b_head = vec![1.0, -1.0];
        let a = forward(&p, &tiny_input(6)).unwrap();
        let b = forward(&q, &tiny_input(6)).unwrap();
        assert!((b[0] - a[0] - 1.0).abs() < 1e-6);
        assert!((b[1] - a[1] + 1.0).abs() < 1e-6);
    }
}
