use std::fmt;

/// Error type for model construction, loading and inference.
#[derive(Debug)]
pub enum ModelError {
    /// A configuration field is inconsistent or out of range.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// Why it is invalid.
        why: String,
    },
    /// The input spectrogram does not match the configured `[F, T]`.
    InputShape {
        /// Expected `(T, F)`.
        expected: (usize, usize),
        /// Received `(rows, cols)`.
        got: (usize, usize),
    },
    /// A logit vector handed to `softmax_probs` was empty or contained a
    /// non-finite value — softmaxing it would silently produce NaN
    /// probabilities.
    InvalidLogits {
        /// What was wrong with the vector.
        why: String,
    },
    /// A tensor kernel reported a shape error (indicates corrupted
    /// parameters).
    Tensor(kwt_tensor::TensorError),
    /// Checkpoint (de)serialisation failure.
    Serde(String),
    /// Filesystem failure while reading or writing a checkpoint.
    Io(std::io::Error),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig { field, why } => {
                write!(f, "invalid model config field `{field}`: {why}")
            }
            ModelError::InputShape { expected, got } => write!(
                f,
                "input spectrogram shape {}x{} does not match configured {}x{} (T x F)",
                got.0, got.1, expected.0, expected.1
            ),
            ModelError::InvalidLogits { why } => {
                write!(f, "invalid logits for softmax: {why}")
            }
            ModelError::Tensor(e) => write!(f, "tensor kernel error: {e}"),
            ModelError::Serde(e) => write!(f, "checkpoint serialisation error: {e}"),
            ModelError::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kwt_tensor::TensorError> for ModelError {
    fn from(e: kwt_tensor::TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ModelError::InputShape {
            expected: (26, 16),
            got: (98, 40),
        };
        assert!(e.to_string().contains("98x40"));
        let e = ModelError::InvalidConfig {
            field: "dim",
            why: "zero".into(),
        };
        assert!(e.to_string().contains("dim"));
    }

    #[test]
    fn tensor_error_converts() {
        let te = kwt_tensor::TensorError::Empty { op: "softmax" };
        let me: ModelError = te.into();
        assert!(matches!(me, ModelError::Tensor(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
