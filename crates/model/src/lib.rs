//! # kwt-model
//!
//! The Keyword Transformer (KWT) architecture — the paper's core model —
//! parameterised by every attribute of Table III, with float inference
//! built on the [`kwt_tensor`] kernels.
//!
//! KWT is a post-norm, encoder-only Vision-Transformer variant: the MFCC
//! spectrogram `X ∈ R^{T x F}` is tokenised one time-frame per patch
//! (`PATCH_DIM = [F, 1]`), linearly projected to `dim`, prepended with a
//! class token, offset by learned positional embeddings, passed through
//! `depth` transformer blocks, and classified from the class token.
//!
//! Two presets reproduce the paper's models:
//!
//! * [`KwtConfig::kwt1`] — 35 classes, ~607 k parameters (Table I)
//! * [`KwtConfig::kwt_tiny`] — 2 classes, **exactly 1 646 parameters**
//!   (Table IV) — the 369x shrink that is the paper's headline
//!
//! # Example
//!
//! ```
//! use kwt_model::{KwtConfig, KwtParams};
//! use kwt_tensor::Mat;
//!
//! # fn main() -> Result<(), kwt_model::ModelError> {
//! let config = KwtConfig::kwt_tiny();
//! assert_eq!(config.param_count(), 1646);
//!
//! let params = KwtParams::init(config, 42)?;
//! let mfcc = Mat::zeros(26, 16); // T x F
//! let logits = kwt_model::forward(&params, &mfcc)?;
//! assert_eq!(logits.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod forward;
mod params;

pub use config::KwtConfig;
pub use error::ModelError;
pub use forward::{
    forward, forward_into, forward_with, predict, predict_with, softmax_probs, softmax_probs_into,
    Scratch,
};
pub use params::{KwtParams, LayerParams, PackedKwtWeights, PackedLayerWeights};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
