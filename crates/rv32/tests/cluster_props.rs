//! Cluster property tests: the timing layer must never change what a
//! hart computes.
//!
//! * A **single-hart cluster** is bit- and cycle-identical to a plain
//!   [`Machine::run`] over random programs — the arbiter runs, the data
//!   trace is armed, and none of it may be architecturally visible.
//! * An **N-hart cluster** is deterministic: two runs of the same
//!   seeded workload produce identical per-hart results, cycle counts
//!   and stall accounting.

use kwt_rv32::{BankConfig, Cluster, Machine, Platform};
use kwt_rvasm::{Asm, Inst, Program, Reg};
use proptest::prelude::*;

/// Register pool random programs read and write (no sp/ra/zero, so the
/// harness registers stay intact).
const POOL: [Reg; 8] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
];

/// One random instruction: an opcode selector plus register/immediate
/// picks. Loads and stores target the `0x9000..0x9400` scratch window
/// (always mapped, never code), so every generated program is safe and
/// every generated program halts (straight-line, `ebreak`-terminated).
#[derive(Debug, Clone)]
struct RandInst {
    op: u8,
    rd: usize,
    rs1: usize,
    rs2: usize,
    imm: i16,
}

fn rand_inst() -> impl Strategy<Value = RandInst> {
    (0u8..10, 0usize..8, 0usize..8, 0usize..8, any::<i16>()).prop_map(|(op, rd, rs1, rs2, imm)| {
        RandInst {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    })
}

/// Assembles a straight-line program from the random instruction list.
/// `T5` holds the scratch base so memory ops need no extra setup.
fn assemble(insts: &[RandInst]) -> Program {
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::T5, 0x9000);
    for ri in insts {
        let rd = POOL[ri.rd];
        let rs1 = POOL[ri.rs1];
        let rs2 = POOL[ri.rs2];
        // word-aligned offset within the scratch window
        let off = ri.imm as i32 & 0x3FC;
        match ri.op {
            0 => asm.emit(Inst::Addi {
                rd,
                rs1,
                imm: ri.imm as i32,
            }),
            1 => asm.emit(Inst::Add { rd, rs1, rs2 }),
            2 => asm.emit(Inst::Sub { rd, rs1, rs2 }),
            3 => asm.emit(Inst::Xor { rd, rs1, rs2 }),
            4 => asm.emit(Inst::Mul { rd, rs1, rs2 }),
            5 => asm.emit(Inst::Div { rd, rs1, rs2 }),
            6 => asm.emit(Inst::Sw {
                rs2: rs1,
                rs1: Reg::T5,
                imm: off,
            }),
            7 => asm.emit(Inst::Lw {
                rd,
                rs1: Reg::T5,
                imm: off,
            }),
            8 => asm.emit(Inst::Sb {
                rs2: rs1,
                rs1: Reg::T5,
                imm: off,
            }),
            _ => asm.emit(Inst::Lbu {
                rd,
                rs1: Reg::T5,
                imm: off,
            }),
        }
    }
    asm.emit(Inst::Ebreak);
    asm.finish().expect("straight-line program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole acceptance: single-hart cluster ≡ legacy `Machine`,
    /// bit for bit (registers, memory-visible results) and cycle for
    /// cycle, over random programs.
    #[test]
    fn single_hart_cluster_matches_machine(insts in proptest::collection::vec(rand_inst(), 1..60)) {
        let p = assemble(&insts);
        let mut solo = Machine::load(&p, Platform::ibex()).expect("fits");
        let baseline = solo.run(10_000).expect("halts");

        let template = Machine::load(&p, Platform::ibex()).expect("fits");
        let mut cluster = Cluster::replicate(&template, 1, BankConfig::default8());
        let run = cluster.run_all(10_000);

        prop_assert_eq!(run.results[0], Ok(baseline));
        prop_assert_eq!(run.soc_cycles, baseline.cycles);
        prop_assert_eq!(run.stats[0].stall_cycles, 0);
        prop_assert_eq!(&cluster.hart(0).cpu.regs, &solo.cpu.regs);
    }

    /// N-hart determinism: the same seeded workload scheduled twice
    /// produces identical per-hart results, cycle counts and stall
    /// accounting.
    #[test]
    fn n_hart_schedule_is_deterministic(
        insts in proptest::collection::vec(rand_inst(), 1..40),
        n in 2usize..5,
    ) {
        let p = assemble(&insts);
        let template = Machine::load(&p, Platform::ibex()).expect("fits");
        let mut first = Cluster::replicate(&template, n, BankConfig::default8());
        let mut second = Cluster::replicate(&template, n, BankConfig::default8());
        let ra = first.run_all(10_000);
        let rb = second.run_all(10_000);
        prop_assert_eq!(ra.results, rb.results);
        prop_assert_eq!(ra.stats, rb.stats);
        prop_assert_eq!(ra.soc_cycles, rb.soc_cycles);
    }

    /// Contention only ever delays: each hart of an N-hart cluster
    /// retires exactly its solo stream (same result, same per-hart
    /// cycles), and the SoC finish time is at least the slowest solo
    /// run.
    #[test]
    fn contention_never_changes_function(insts in proptest::collection::vec(rand_inst(), 1..40)) {
        let p = assemble(&insts);
        let mut solo = Machine::load(&p, Platform::ibex()).expect("fits");
        let baseline = solo.run(10_000).expect("halts");
        let template = Machine::load(&p, Platform::ibex()).expect("fits");
        let mut cluster = Cluster::replicate(&template, 4, BankConfig::default8());
        let run = cluster.run_all(10_000);
        for h in 0..4 {
            prop_assert_eq!(run.results[h], Ok(baseline));
        }
        prop_assert!(run.soc_cycles >= baseline.cycles);
    }
}
