//! Differential property tests: every RV32IM arithmetic instruction
//! executed on the simulator must match the host's reference semantics
//! on random operands.

use kwt_rv32::{Machine, Platform};
use kwt_rvasm::{Asm, Inst, Reg};
use proptest::prelude::*;

/// Runs `op(t0, t1)` on the simulator and returns `a0`.
fn run_rr(build: impl Fn(Reg, Reg, Reg) -> Inst, a: u32, b: u32) -> u32 {
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::T0, a as i32);
    asm.li(Reg::T1, b as i32);
    asm.emit(build(Reg::A0, Reg::T0, Reg::T1));
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
    m.run(100).expect("halts").exit_code
}

macro_rules! rr {
    ($name:ident) => {
        |rd, rs1, rs2| Inst::$name { rd, rs1, rs2 }
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_sub_match_wrapping(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_rr(rr!(Add), a, b), a.wrapping_add(b));
        prop_assert_eq!(run_rr(rr!(Sub), a, b), a.wrapping_sub(b));
    }

    #[test]
    fn logic_ops_match(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_rr(rr!(Xor), a, b), a ^ b);
        prop_assert_eq!(run_rr(rr!(Or), a, b), a | b);
        prop_assert_eq!(run_rr(rr!(And), a, b), a & b);
    }

    #[test]
    fn shifts_use_low_five_bits(a in any::<u32>(), b in any::<u32>()) {
        let sh = b & 31;
        prop_assert_eq!(run_rr(rr!(Sll), a, b), a << sh);
        prop_assert_eq!(run_rr(rr!(Srl), a, b), a >> sh);
        prop_assert_eq!(run_rr(rr!(Sra), a, b), ((a as i32) >> sh) as u32);
    }

    #[test]
    fn compares_match(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_rr(rr!(Slt), a, b), ((a as i32) < (b as i32)) as u32);
        prop_assert_eq!(run_rr(rr!(Sltu), a, b), (a < b) as u32);
    }

    #[test]
    fn multiplies_match(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_rr(rr!(Mul), a, b), a.wrapping_mul(b));
        let mulh = ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32;
        prop_assert_eq!(run_rr(rr!(Mulh), a, b), mulh);
        let mulhu = ((a as u64 * b as u64) >> 32) as u32;
        prop_assert_eq!(run_rr(rr!(Mulhu), a, b), mulhu);
        let mulhsu = (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32;
        prop_assert_eq!(run_rr(rr!(Mulhsu), a, b), mulhsu);
    }

    #[test]
    fn divisions_match_riscv_spec(a in any::<u32>(), b in any::<u32>()) {
        let (ai, bi) = (a as i32, b as i32);
        let div = if bi == 0 { -1 } else if ai == i32::MIN && bi == -1 { i32::MIN } else { ai.wrapping_div(bi) };
        let rem = if bi == 0 { ai } else if ai == i32::MIN && bi == -1 { 0 } else { ai.wrapping_rem(bi) };
        prop_assert_eq!(run_rr(rr!(Div), a, b), div as u32);
        prop_assert_eq!(run_rr(rr!(Rem), a, b), rem as u32);
        let divu = if b == 0 { u32::MAX } else { a / b };
        let remu = if b == 0 { a } else { a % b };
        prop_assert_eq!(run_rr(rr!(Divu), a, b), divu);
        prop_assert_eq!(run_rr(rr!(Remu), a, b), remu);
    }

    #[test]
    fn load_store_round_trip_any_value(v in any::<u32>(), off in 0u32..64) {
        let addr = 0x9000 + off * 4;
        let mut asm = Asm::new(0, 0x8000);
        asm.here("entry");
        asm.li(Reg::T0, addr as i32);
        asm.li(Reg::T1, v as i32);
        asm.emit(Inst::Sw { rs2: Reg::T1, rs1: Reg::T0, imm: 0 });
        asm.emit(Inst::Lw { rd: Reg::A0, rs1: Reg::T0, imm: 0 });
        asm.emit(Inst::Ebreak);
        let p = asm.finish().expect("assembles");
        let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
        prop_assert_eq!(m.run(100).expect("halts").exit_code, v);
    }

    #[test]
    fn immediates_match(a in any::<u32>(), imm in -2048i32..=2047) {
        let run_imm = |build: &dyn Fn(Reg, Reg, i32) -> Inst| -> u32 {
            let mut asm = Asm::new(0, 0x8000);
            asm.here("entry");
            asm.li(Reg::T0, a as i32);
            asm.emit(build(Reg::A0, Reg::T0, imm));
            asm.emit(Inst::Ebreak);
            let p = asm.finish().expect("assembles");
            Machine::load(&p, Platform::ibex())
                .expect("fits")
                .run(100)
                .expect("halts")
                .exit_code
        };
        prop_assert_eq!(
            run_imm(&|rd, rs1, imm| Inst::Addi { rd, rs1, imm }),
            a.wrapping_add(imm as u32)
        );
        prop_assert_eq!(
            run_imm(&|rd, rs1, imm| Inst::Xori { rd, rs1, imm }),
            a ^ (imm as u32)
        );
        prop_assert_eq!(
            run_imm(&|rd, rs1, imm| Inst::Andi { rd, rs1, imm }),
            a & (imm as u32)
        );
    }
}
