//! Differential property tests: every RV32IM arithmetic instruction
//! executed on the simulator must match the host's reference semantics
//! on random operands, and the pre-decode execution cache must be
//! architecturally invisible — including under self-modifying code.

use kwt_rv32::{Machine, Platform};
use kwt_rvasm::{Asm, Inst, PackedOp, Reg};
use proptest::prelude::*;

/// Builds a program whose first instruction (`site`, at text base 0) is
/// executed, then overwritten through `patch`, then executed again:
///
/// ```text
/// site:  addi a0, a0, 1        # patched between the two calls
///        ret
/// entry: li   a0, 0
///        jal  ra, site         # first call: caches `site`
///        <patch stores>        # overwrite site's instruction word
///        jal  ra, site         # second call: must see the new code
///        ebreak
/// ```
fn self_modifying_program(patch: impl FnOnce(&mut Asm)) -> kwt_rvasm::Program {
    let mut asm = Asm::new(0, 0x8000);
    let site = asm.new_label();
    asm.bind(site).unwrap();
    asm.emit(Inst::Addi {
        rd: Reg::A0,
        rs1: Reg::A0,
        imm: 1,
    });
    asm.ret();
    asm.here("entry");
    asm.li(Reg::A0, 0);
    asm.jal_to(Reg::Ra, site);
    patch(&mut asm);
    asm.jal_to(Reg::Ra, site);
    asm.emit(Inst::Ebreak);
    asm.finish().expect("assembles")
}

/// Runs a program twice — decode cache enabled and disabled — and checks
/// the architectural outcomes are identical before returning them.
fn run_both_ways(p: &kwt_rvasm::Program) -> kwt_rv32::RunResult {
    let mut cached = Machine::load(p, Platform::ibex()).expect("fits");
    let r_cached = cached.run(10_000).expect("halts");
    let mut uncached = Machine::load(p, Platform::ibex()).expect("fits");
    uncached.cpu.set_decode_cache_enabled(false);
    let r_uncached = uncached.run(10_000).expect("halts");
    assert_eq!(r_cached, r_uncached, "decode cache changed architecture");
    assert!(cached.cpu.decode_cache_stats().hits > 0, "cache never hit");
    assert_eq!(uncached.cpu.decode_cache_stats().hits, 0);
    r_cached
}

#[test]
fn smc_full_word_store_invalidates_cached_instruction() {
    // Overwrite `addi a0, a0, 1` (at address 0) with `addi a0, a0, 5`.
    let new_word = Inst::Addi {
        rd: Reg::A0,
        rs1: Reg::A0,
        imm: 5,
    }
    .encode();
    let p = self_modifying_program(|asm| {
        asm.li(Reg::T0, 0); // site address
        asm.li(Reg::T1, new_word as i32);
        asm.emit(Inst::Sw {
            rs2: Reg::T1,
            rs1: Reg::T0,
            imm: 0,
        });
    });
    let r = run_both_ways(&p);
    // First call adds 1, patched second call adds 5.
    assert_eq!(r.exit_code, 6, "stale decode cache after sw into code");
}

#[test]
fn smc_halfword_store_into_instruction_tail_invalidates() {
    // The imm[11:0] field of `addi` lives in the instruction's upper
    // halfword: storing at site+2 must invalidate the entry cached for the
    // instruction *starting* at site (the addr-2 overlap case).
    let new_word = Inst::Addi {
        rd: Reg::A0,
        rs1: Reg::A0,
        imm: 9,
    }
    .encode();
    let p = self_modifying_program(|asm| {
        asm.li(Reg::T0, 2); // upper halfword of the site instruction
        asm.li(Reg::T1, (new_word >> 16) as i32);
        asm.emit(Inst::Sh {
            rs2: Reg::T1,
            rs1: Reg::T0,
            imm: 0,
        });
    });
    let r = run_both_ways(&p);
    assert_eq!(r.exit_code, 10, "stale decode cache after sh into code");
}

#[test]
fn smc_byte_store_invalidates() {
    // Flip only the top imm byte: imm 1 -> imm 0x101 (byte 3 = 0x10).
    let new_word = Inst::Addi {
        rd: Reg::A0,
        rs1: Reg::A0,
        imm: 0x101,
    }
    .encode();
    let p = self_modifying_program(|asm| {
        asm.li(Reg::T0, 3);
        asm.li(Reg::T1, (new_word >> 24) as i32);
        asm.emit(Inst::Sb {
            rs2: Reg::T1,
            rs1: Reg::T0,
            imm: 0,
        });
    });
    let r = run_both_ways(&p);
    assert_eq!(
        r.exit_code,
        1 + 0x101,
        "stale decode cache after sb into code"
    );
}

#[test]
fn smc_store_next_to_code_leaves_cache_valid() {
    // Stores that do not overlap the 8-byte site block (addi at 0, ret at
    // 4) must leave its cached entries intact and not disturb execution:
    // one store immediately after the block (byte 8 — the adjacent
    // boundary), one far away. Overwriting byte 8 is safe: the `li`
    // there has already retired and is never re-executed.
    for addr in [8i32, 0x4000] {
        let nop = Inst::Addi {
            rd: Reg::Zero,
            rs1: Reg::Zero,
            imm: 0,
        }
        .encode();
        let p = self_modifying_program(|asm| {
            asm.li(Reg::T0, addr);
            asm.li(Reg::T1, nop as i32);
            asm.emit(Inst::Sw {
                rs2: Reg::T1,
                rs1: Reg::T0,
                imm: 0,
            });
        });
        let r = run_both_ways(&p);
        assert_eq!(r.exit_code, 2, "store at {addr:#x} disturbed the site");
    }
}

#[test]
fn host_typed_writes_invalidate_code() {
    // Patch the site through the Machine's typed writer between runs of
    // the same loaded Machine: the second run must see the new code.
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.emit(Inst::Addi {
        rd: Reg::A0,
        rs1: Reg::Zero,
        imm: 7,
    });
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
    assert_eq!(m.run(100).expect("halts").exit_code, 7);
    // Overwrite with `addi a0, zero, 42` via write_i16s (host side).
    let w = Inst::Addi {
        rd: Reg::A0,
        rs1: Reg::Zero,
        imm: 42,
    }
    .encode();
    m.write_i16s(0, &[(w & 0xFFFF) as i16, (w >> 16) as i16]);
    m.cpu.pc = 0;
    assert_eq!(
        m.run(100).expect("halts").exit_code,
        42,
        "stale cache after host write"
    );
}

#[test]
fn decode_cache_does_not_change_cycle_accounting() {
    // Mixed-class loop (alu, mul, div, load, store, branches): cycles and
    // instret must be bit-identical with the cache on and off.
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::T0, 50);
    asm.li(Reg::A0, 0);
    let top = asm.new_label();
    asm.bind(top).unwrap();
    asm.emit(Inst::Mul {
        rd: Reg::A1,
        rs1: Reg::T0,
        rs2: Reg::T0,
    });
    asm.emit(Inst::Div {
        rd: Reg::A2,
        rs1: Reg::A1,
        rs2: Reg::T0,
    });
    asm.emit(Inst::Sw {
        rs2: Reg::A2,
        rs1: Reg::Sp,
        imm: -8,
    });
    asm.emit(Inst::Lw {
        rd: Reg::A3,
        rs1: Reg::Sp,
        imm: -8,
    });
    asm.emit(Inst::Add {
        rd: Reg::A0,
        rs1: Reg::A0,
        rs2: Reg::A3,
    });
    asm.emit(Inst::Addi {
        rd: Reg::T0,
        rs1: Reg::T0,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: Reg::T0,
            rs2: Reg::Zero,
            offset: 0,
        },
        top,
    );
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    let r = run_both_ways(&p);
    assert_eq!(r.exit_code, (1..=50u32).sum::<u32>());
}

#[test]
fn smc_store_over_packed_instruction_invalidates() {
    // The site executes `kdot2.i16 a0, t2, t3` (t2/t3 zero -> a0 += 0);
    // patching it to `addi a0, a0, 5` must be observed by the cache.
    let mut asm = Asm::new(0, 0x8000);
    let site = asm.new_label();
    asm.bind(site).unwrap();
    asm.emit(Inst::Packed {
        op: PackedOp::Kdot2I16,
        rd: Reg::A0,
        rs1: Reg::T2,
        rs2: Reg::T3,
    });
    asm.ret();
    asm.here("entry");
    asm.li(Reg::A0, 1);
    asm.jal_to(Reg::Ra, site); // caches the kdot2 (a0 unchanged)
    let new_word = Inst::Addi {
        rd: Reg::A0,
        rs1: Reg::A0,
        imm: 5,
    }
    .encode();
    asm.li(Reg::T0, 0);
    asm.li(Reg::T1, new_word as i32);
    asm.emit(Inst::Sw {
        rs2: Reg::T1,
        rs1: Reg::T0,
        imm: 0,
    });
    asm.jal_to(Reg::Ra, site); // must see the addi now
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    let r = run_both_ways(&p);
    assert_eq!(r.exit_code, 6, "stale decode cache over a custom-2 op");
}

#[test]
fn smc_store_into_packed_load_invalidates() {
    // Patch a `klw.b2h` (memory-form custom-2) into a plain `addi`.
    let mut asm = Asm::new(0, 0x8000);
    let site = asm.new_label();
    asm.bind(site).unwrap();
    asm.emit(Inst::KlwB2h {
        rd: Reg::A0,
        rs1: Reg::Sp,
        imm: -2,
    });
    asm.ret();
    asm.here("entry");
    asm.jal_to(Reg::Ra, site);
    let new_word = Inst::Addi {
        rd: Reg::A0,
        rs1: Reg::Zero,
        imm: 77,
    }
    .encode();
    asm.li(Reg::T0, 0);
    asm.li(Reg::T1, new_word as i32);
    asm.emit(Inst::Sw {
        rs2: Reg::T1,
        rs1: Reg::T0,
        imm: 0,
    });
    asm.jal_to(Reg::Ra, site);
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    let r = run_both_ways(&p);
    assert_eq!(r.exit_code, 77);
}

#[test]
fn packed_cycle_accounting_identical_with_cache_on_and_off() {
    // A loop mixing every custom-2 op: cycles/instret must not depend on
    // the decode cache.
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::T0, 20);
    asm.li(Reg::A0, 0);
    asm.li(Reg::T3, 0x00020003);
    asm.li(Reg::T4, 0x00050007u32 as i32);
    let top = asm.new_label();
    asm.bind(top).unwrap();
    asm.emit(Inst::Packed {
        op: PackedOp::Kdot2I16,
        rd: Reg::A0,
        rs1: Reg::T3,
        rs2: Reg::T4,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::Kdot4I8,
        rd: Reg::A0,
        rs1: Reg::T3,
        rs2: Reg::T4,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KsatI16,
        rd: Reg::A1,
        rs1: Reg::A0,
        rs2: Reg::Zero,
    });
    asm.li(Reg::T5, 15);
    asm.emit(Inst::Packed {
        op: PackedOp::Kclip,
        rd: Reg::A2,
        rs1: Reg::A0,
        rs2: Reg::T5,
    });
    asm.emit(Inst::KlwB2h {
        rd: Reg::A3,
        rs1: Reg::Sp,
        imm: -4,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtH2F,
        rd: Reg::A4,
        rs1: Reg::A1,
        rs2: Reg::T5,
    });
    asm.emit(Inst::Packed {
        op: PackedOp::KcvtF2H,
        rd: Reg::A5,
        rs1: Reg::A4,
        rs2: Reg::T5,
    });
    asm.emit(Inst::Addi {
        rd: Reg::T0,
        rs1: Reg::T0,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: Reg::T0,
            rs2: Reg::Zero,
            offset: 0,
        },
        top,
    );
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    let r = run_both_ways(&p);
    // 20 iterations of kdot2 (2+3) then kdot4 over the updated acc...
    // the exact value is asserted equal across cache modes by
    // run_both_ways; sanity-check it is non-trivial.
    assert!(r.cycles > 100);
}

/// Runs `op(t0, t1)` on the simulator and returns `a0`.
fn run_rr(build: impl Fn(Reg, Reg, Reg) -> Inst, a: u32, b: u32) -> u32 {
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::T0, a as i32);
    asm.li(Reg::T1, b as i32);
    asm.emit(build(Reg::A0, Reg::T0, Reg::T1));
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
    m.run(100).expect("halts").exit_code
}

macro_rules! rr {
    ($name:ident) => {
        |rd, rs1, rs2| Inst::$name { rd, rs1, rs2 }
    };
}

/// Runs a packed op with a pre-loaded accumulator and returns `a0`.
fn run_packed(op: PackedOp, acc: u32, a: u32, b: u32) -> u32 {
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::A0, acc as i32);
    asm.li(Reg::T0, a as i32);
    asm.li(Reg::T1, b as i32);
    asm.emit(Inst::Packed {
        op,
        rd: Reg::A0,
        rs1: Reg::T0,
        rs2: Reg::T1,
    });
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("assembles");
    let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
    m.run(100).expect("halts").exit_code
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_sub_match_wrapping(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_rr(rr!(Add), a, b), a.wrapping_add(b));
        prop_assert_eq!(run_rr(rr!(Sub), a, b), a.wrapping_sub(b));
    }

    #[test]
    fn logic_ops_match(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_rr(rr!(Xor), a, b), a ^ b);
        prop_assert_eq!(run_rr(rr!(Or), a, b), a | b);
        prop_assert_eq!(run_rr(rr!(And), a, b), a & b);
    }

    #[test]
    fn shifts_use_low_five_bits(a in any::<u32>(), b in any::<u32>()) {
        let sh = b & 31;
        prop_assert_eq!(run_rr(rr!(Sll), a, b), a << sh);
        prop_assert_eq!(run_rr(rr!(Srl), a, b), a >> sh);
        prop_assert_eq!(run_rr(rr!(Sra), a, b), ((a as i32) >> sh) as u32);
    }

    #[test]
    fn compares_match(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_rr(rr!(Slt), a, b), ((a as i32) < (b as i32)) as u32);
        prop_assert_eq!(run_rr(rr!(Sltu), a, b), (a < b) as u32);
    }

    #[test]
    fn multiplies_match(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_rr(rr!(Mul), a, b), a.wrapping_mul(b));
        let mulh = ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32;
        prop_assert_eq!(run_rr(rr!(Mulh), a, b), mulh);
        let mulhu = ((a as u64 * b as u64) >> 32) as u32;
        prop_assert_eq!(run_rr(rr!(Mulhu), a, b), mulhu);
        let mulhsu = (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32;
        prop_assert_eq!(run_rr(rr!(Mulhsu), a, b), mulhsu);
    }

    #[test]
    fn divisions_match_riscv_spec(a in any::<u32>(), b in any::<u32>()) {
        let (ai, bi) = (a as i32, b as i32);
        let div = if bi == 0 { -1 } else if ai == i32::MIN && bi == -1 { i32::MIN } else { ai.wrapping_div(bi) };
        let rem = if bi == 0 { ai } else if ai == i32::MIN && bi == -1 { 0 } else { ai.wrapping_rem(bi) };
        prop_assert_eq!(run_rr(rr!(Div), a, b), div as u32);
        prop_assert_eq!(run_rr(rr!(Rem), a, b), rem as u32);
        let divu = a.checked_div(b).unwrap_or(u32::MAX);
        let remu = if b == 0 { a } else { a % b };
        prop_assert_eq!(run_rr(rr!(Divu), a, b), divu);
        prop_assert_eq!(run_rr(rr!(Remu), a, b), remu);
    }

    #[test]
    fn kdot4_i8_matches_host_reference(acc in any::<u32>(), a in any::<u32>(), b in any::<u32>()) {
        let mut want = acc;
        for lane in 0..4 {
            let x = (a >> (8 * lane)) as i8 as i32;
            let y = (b >> (8 * lane)) as i8 as i32;
            want = want.wrapping_add(x.wrapping_mul(y) as u32);
        }
        prop_assert_eq!(run_packed(PackedOp::Kdot4I8, acc, a, b), want);
    }

    #[test]
    fn kdot2_i16_matches_scalar_mac_order(acc in any::<u32>(), a in any::<u32>(), b in any::<u32>()) {
        // The packed op must equal the scalar chain acc + p0 + p1 in
        // wrapping arithmetic (lane order irrelevant by associativity).
        let p0 = (a as i16 as i32).wrapping_mul(b as i16 as i32);
        let p1 = ((a >> 16) as i16 as i32).wrapping_mul((b >> 16) as i16 as i32);
        let want = acc.wrapping_add(p0 as u32).wrapping_add(p1 as u32);
        prop_assert_eq!(run_packed(PackedOp::Kdot2I16, acc, a, b), want);
    }

    #[test]
    fn ksat_matches_shift_then_clamp(a in any::<u32>(), sh in 0u32..32) {
        let want = ((a as i32) >> sh).clamp(-32768, 32767) as u32;
        prop_assert_eq!(run_packed(PackedOp::KsatI16, 0, a, sh), want);
    }

    #[test]
    fn kclip_matches_reference(a in any::<u32>(), n in 0u32..32) {
        let lo = -(1i64 << n);
        let hi = (1i64 << n) - 1;
        let want = (a as i32 as i64).clamp(lo, hi) as i32 as u32;
        prop_assert_eq!(run_packed(PackedOp::Kclip, 0, a, n), want);
    }

    #[test]
    fn kcvt_h2f_is_exact_for_all_i16(h in any::<i16>(), s in 0u32..16) {
        let got = run_packed(PackedOp::KcvtH2F, 0, h as u16 as u32, s);
        let want = (h as f32 / (1u64 << s) as f32).to_bits();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kcvt_f2h_matches_floor_saturate(x in -1.0e5f32..1.0e5, s in 0u32..16) {
        let got = run_packed(PackedOp::KcvtF2H, 0, x.to_bits(), s);
        let want = ((x as f64) * (1u64 << s) as f64)
            .floor()
            .clamp(-32768.0, 32767.0) as i32 as u32;
        prop_assert_eq!(got, want, "x = {}, s = {}", x, s);
    }

    #[test]
    fn load_store_round_trip_any_value(v in any::<u32>(), off in 0u32..64) {
        let addr = 0x9000 + off * 4;
        let mut asm = Asm::new(0, 0x8000);
        asm.here("entry");
        asm.li(Reg::T0, addr as i32);
        asm.li(Reg::T1, v as i32);
        asm.emit(Inst::Sw { rs2: Reg::T1, rs1: Reg::T0, imm: 0 });
        asm.emit(Inst::Lw { rd: Reg::A0, rs1: Reg::T0, imm: 0 });
        asm.emit(Inst::Ebreak);
        let p = asm.finish().expect("assembles");
        let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
        prop_assert_eq!(m.run(100).expect("halts").exit_code, v);
    }

    #[test]
    fn immediates_match(a in any::<u32>(), imm in -2048i32..=2047) {
        let run_imm = |build: &dyn Fn(Reg, Reg, i32) -> Inst| -> u32 {
            let mut asm = Asm::new(0, 0x8000);
            asm.here("entry");
            asm.li(Reg::T0, a as i32);
            asm.emit(build(Reg::A0, Reg::T0, imm));
            asm.emit(Inst::Ebreak);
            let p = asm.finish().expect("assembles");
            Machine::load(&p, Platform::ibex())
                .expect("fits")
                .run(100)
                .expect("halts")
                .exit_code
        };
        prop_assert_eq!(
            run_imm(&|rd, rs1, imm| Inst::Addi { rd, rs1, imm }),
            a.wrapping_add(imm as u32)
        );
        prop_assert_eq!(
            run_imm(&|rd, rs1, imm| Inst::Xori { rd, rs1, imm }),
            a ^ (imm as u32)
        );
        prop_assert_eq!(
            run_imm(&|rd, rs1, imm| Inst::Andi { rd, rs1, imm }),
            a & (imm as u32)
        );
    }
}
