//! Quick wall-clock comparison of stepping with the decode cache on/off.
use kwt_rv32::{Machine, Platform};
use kwt_rvasm::{Asm, Inst, Reg};
use std::time::Instant;

fn program() -> kwt_rvasm::Program {
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::T0, 20_000);
    asm.li(Reg::A0, 0);
    let top = asm.new_label();
    asm.bind(top).unwrap();
    for _ in 0..4 {
        asm.emit(Inst::Addi {
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 3,
        });
        asm.emit(Inst::Xor {
            rd: Reg::A1,
            rs1: Reg::A0,
            rs2: Reg::T0,
        });
        asm.emit(Inst::Mul {
            rd: Reg::A2,
            rs1: Reg::A1,
            rs2: Reg::A0,
        });
        asm.emit(Inst::Sw {
            rs2: Reg::A2,
            rs1: Reg::Sp,
            imm: -16,
        });
        asm.emit(Inst::Lw {
            rd: Reg::A3,
            rs1: Reg::Sp,
            imm: -16,
        });
    }
    asm.emit(Inst::Addi {
        rd: Reg::T0,
        rs1: Reg::T0,
        imm: -1,
    });
    asm.branch_to(
        Inst::Bne {
            rs1: Reg::T0,
            rs2: Reg::Zero,
            offset: 0,
        },
        top,
    );
    asm.emit(Inst::Ebreak);
    asm.finish().unwrap()
}

fn main() {
    let p = program();
    let mut results = Vec::new();
    for enabled in [false, true] {
        let mut best = f64::INFINITY;
        let mut instructions = 0;
        for _ in 0..5 {
            let mut m = Machine::load(&p, Platform::ibex()).unwrap();
            m.cpu.set_decode_cache_enabled(enabled);
            let t0 = Instant::now();
            let r = m.run(100_000_000).unwrap();
            let dt = t0.elapsed().as_secs_f64();
            instructions = r.instructions;
            if dt < best {
                best = dt;
            }
        }
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        m.cpu.set_decode_cache_enabled(enabled);
        m.run(100_000_000).unwrap();
        println!(
            "cache={enabled}: {:.2} Msteps/s ({instructions} instr, stats {:?})",
            instructions as f64 / best / 1e6,
            m.cpu.decode_cache_stats()
        );
        results.push(instructions as f64 / best);
    }
    println!("speedup: {:.2}x", results[1] / results[0]);
}
