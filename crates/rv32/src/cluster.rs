//! N-hart cluster: shared bank-interleaved memory behind a round-robin
//! arbiter, with a deterministic contention-cycle model.
//!
//! # Functional / timing split
//!
//! The cluster deliberately separates **what executes** from **when it
//! executes**:
//!
//! * The *functional* layer is N ordinary [`Machine`]s. Each hart
//!   retires exactly the instruction stream it would retire alone —
//!   same architectural state, same per-hart cycle counter, same traps.
//!   Code and weights are read-only and scratch/IO regions are per-hart
//!   private, so replicating the image per hart is semantically
//!   identical to mapping shared read-only banks: no hart can observe
//!   another hart's writes in either formulation.
//! * The *timing* layer is an event-driven scheduler that replays the
//!   per-hart instruction streams onto a shared SoC timeline. Every
//!   data access is routed to a memory bank (word-interleaved:
//!   `bank = (addr >> 2) mod banks`); each bank has a busy-until
//!   counter, and an access arriving while its bank is busy **stalls
//!   the issuing hart** until the bank frees up. Ready-time ties are
//!   broken by a rotating round-robin priority, so the schedule is
//!   deterministic — two runs of the same workload produce identical
//!   per-hart cycle and stall counts.
//!
//! Because the timing layer only ever *delays* a hart (it never reorders
//! or rewrites its stream), a single-hart cluster is provably bit- and
//! cycle-identical to a plain [`Machine::run`]: with
//! `service_cycles = 1` (the default) a bank frees up after one cycle,
//! and every instruction costs at least one cycle, so a lone hart can
//! never catch its own bank busy — zero stalls, and the SoC timeline
//! collapses onto the hart's own cycle counter. The
//! `tests/cluster_props.rs` proptests assert this over random programs.
//!
//! The per-hart instruction streams are mutually independent (private
//! scratch, read-only shared banks), so the functional replay needs no
//! cross-hart ordering — contention changes *when* an access happens,
//! never *what* it reads.

use crate::cpu::StepOutcome;
use crate::machine::{Machine, RunResult};
use crate::profile::ClassHistogram;
use crate::trap::Trap;
use kwt_rvasm::Reg;

/// Geometry and service time of the shared banked memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    /// Number of interleaved banks (must be a power of two).
    pub banks: usize,
    /// Cycles a bank stays busy after accepting an access. The default
    /// of 1 models single-cycle SRAM banks and guarantees a lone hart
    /// never stalls against itself (every instruction costs ≥ 1 cycle).
    pub service_cycles: u64,
}

impl BankConfig {
    /// Eight word-interleaved single-cycle banks — the default SoC.
    pub fn default8() -> Self {
        BankConfig {
            banks: 8,
            service_cycles: 1,
        }
    }

    /// The bank serving `addr` (word-interleaved).
    pub fn bank_of(&self, addr: u32) -> usize {
        ((addr >> 2) as usize) & (self.banks - 1)
    }
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig::default8()
    }
}

/// Per-hart accounting for one cluster run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HartStats {
    /// Cycles the hart spent executing instructions (its own cycle
    /// counter's delta over the run — identical to what the hart would
    /// charge running alone).
    pub busy_cycles: u64,
    /// Cycles the hart lost waiting for a busy bank.
    pub stall_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Data accesses routed through the arbiter.
    pub accesses: u64,
    /// Accesses that found their bank busy (each contributes ≥ 1 cycle
    /// to `stall_cycles`).
    pub conflicts: u64,
}

impl HartStats {
    /// Fraction of `soc_cycles` this hart spent executing (not stalled,
    /// not idle-after-halt).
    pub fn utilisation(&self, soc_cycles: u64) -> f64 {
        self.busy_cycles as f64 / soc_cycles.max(1) as f64
    }
}

/// Outcome of one [`Cluster::run_active`] call.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Per active hart: the same [`RunResult`] / [`Trap`] a solo
    /// [`Machine::run`] would produce (cycle counters included).
    pub results: Vec<Result<RunResult, Trap>>,
    /// Per active hart accounting on the shared timeline.
    pub stats: Vec<HartStats>,
    /// SoC cycles from run start until the last active hart finished —
    /// the denominator for cluster throughput (clips per SoC-cycle).
    pub soc_cycles: u64,
}

impl ClusterRun {
    /// Total stall cycles across harts divided by total occupied
    /// (busy + stalled) hart-cycles — the bank-conflict tax.
    pub fn stall_fraction(&self) -> f64 {
        let stalled: u64 = self.stats.iter().map(|s| s.stall_cycles).sum();
        let occupied: u64 = self
            .stats
            .iter()
            .map(|s| s.busy_cycles + s.stall_cycles)
            .sum();
        stalled as f64 / occupied.max(1) as f64
    }

    /// Mean per-hart utilisation over the SoC timeline.
    pub fn mean_utilisation(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats
            .iter()
            .map(|s| s.utilisation(self.soc_cycles))
            .sum::<f64>()
            / self.stats.len() as f64
    }
}

/// N harts sharing a banked memory behind a round-robin arbiter.
///
/// Construction arms each hart's data-access trace (the probe the
/// arbiter uses to route accesses to banks); everything else about the
/// harts — fault plans, watchdogs, histograms, typed memory IO — is
/// reachable through [`Cluster::hart_mut`] and behaves exactly as on a
/// solo [`Machine`].
#[derive(Debug, Clone)]
pub struct Cluster {
    harts: Vec<Machine>,
    cfg: BankConfig,
}

impl Cluster {
    /// Builds a cluster over `harts` with the given bank geometry.
    ///
    /// # Panics
    ///
    /// Panics if `harts` is empty or `cfg.banks` is not a power of two.
    pub fn new(harts: Vec<Machine>, cfg: BankConfig) -> Self {
        assert!(!harts.is_empty(), "a cluster needs at least one hart");
        assert!(
            cfg.banks.is_power_of_two(),
            "bank count must be a power of two, got {}",
            cfg.banks
        );
        let mut cluster = Cluster { harts, cfg };
        for hart in &mut cluster.harts {
            hart.cpu.set_data_trace_enabled(true);
        }
        cluster
    }

    /// Replicates `template` into an `n`-hart cluster. The shared code
    /// and weight banks are mapped once (read-only, so per-hart copies
    /// are observationally identical); each hart's scratch, stack and IO
    /// regions are its own.
    pub fn replicate(template: &Machine, n: usize, cfg: BankConfig) -> Self {
        assert!(n >= 1, "a cluster needs at least one hart");
        let harts = std::iter::repeat_with(|| template.clone())
            .take(n)
            .collect();
        Cluster::new(harts, cfg)
    }

    /// Number of harts.
    pub fn num_harts(&self) -> usize {
        self.harts.len()
    }

    /// The bank geometry.
    pub fn bank_config(&self) -> BankConfig {
        self.cfg
    }

    /// Immutable access to hart `h`.
    pub fn hart(&self, h: usize) -> &Machine {
        &self.harts[h]
    }

    /// Mutable access to hart `h` (input mailboxes, fault plans,
    /// watchdogs, histogram arming).
    pub fn hart_mut(&mut self, h: usize) -> &mut Machine {
        &mut self.harts[h]
    }

    /// Arms or disarms per-class retirement counting on one hart only —
    /// idle harts never pay the counting cost.
    pub fn set_class_histogram_enabled(&mut self, hart: usize, enabled: bool) {
        self.harts[hart].set_class_histogram_enabled(enabled);
    }

    /// Per-hart class histograms (zeroed for harts that never armed
    /// counting).
    pub fn class_histograms(&self) -> Vec<ClassHistogram> {
        self.harts.iter().map(|h| h.class_histogram()).collect()
    }

    /// The SoC-wide class histogram: every hart's counts summed.
    pub fn summed_class_histogram(&self) -> ClassHistogram {
        let mut sum = ClassHistogram::new();
        for h in &self.harts {
            sum.merge(&h.class_histogram());
        }
        sum
    }

    /// Runs every hart to completion.
    pub fn run_all(&mut self, max_steps: u64) -> ClusterRun {
        self.run_active(self.harts.len(), max_steps)
    }

    /// Runs harts `0..n_active` to completion on the shared timeline
    /// (idle harts are not scheduled and pay nothing). Each hart stops
    /// at its own halt, trap, or `max_steps` retired-instruction budget
    /// ([`Trap::OutOfFuel`]); one hart trapping never stops the others.
    ///
    /// # Panics
    ///
    /// Panics if `n_active` is zero or exceeds the hart count.
    pub fn run_active(&mut self, n_active: usize, max_steps: u64) -> ClusterRun {
        assert!(
            (1..=self.harts.len()).contains(&n_active),
            "n_active {} out of range 1..={}",
            n_active,
            self.harts.len()
        );
        let n = n_active;
        // Per-hart SoC time at which the next instruction may issue.
        let mut hart_ready = vec![0u64; n];
        // Per-bank SoC time at which the bank is free again.
        let mut bank_ready = vec![0u64; self.cfg.banks];
        let mut steps = vec![0u64; n];
        let mut stats = vec![HartStats::default(); n];
        let mut results: Vec<Option<Result<RunResult, Trap>>> = vec![None; n];
        // Cycle counters at run start: watchdog base and busy-cycle base.
        let cycles0: Vec<u64> = (0..n).map(|h| self.harts[h].cpu.cycles).collect();
        let instret0: Vec<u64> = (0..n).map(|h| self.harts[h].cpu.instret).collect();
        let mut live = n;
        // Rotating round-robin priority for ready-time ties.
        let mut rr_next = 0usize;

        while live > 0 {
            // Grant the hart with the earliest ready time; break ties in
            // round-robin order starting from the hart after the last
            // grantee.
            let mut chosen = usize::MAX;
            let mut best = u64::MAX;
            for off in 0..n {
                let h = (rr_next + off) % n;
                if results[h].is_none() && hart_ready[h] < best {
                    best = hart_ready[h];
                    chosen = h;
                }
            }
            let h = chosen;
            rr_next = (h + 1) % n;

            if steps[h] >= max_steps {
                results[h] = Some(Err(Trap::OutOfFuel {
                    executed: self.harts[h].cpu.instret,
                }));
                live -= 1;
                continue;
            }
            let before = self.harts[h].cpu.cycles;
            let outcome = self.harts[h].step_monitored(steps[h], cycles0[h]);
            steps[h] += 1;
            let cost = self.harts[h].cpu.cycles - before;

            // Route the instruction's data access (if any) through the
            // bank arbiter; the losing side of a conflict stalls.
            match self.harts[h].cpu.take_data_access() {
                Some(addr) => {
                    let bank = self.cfg.bank_of(addr);
                    let want = hart_ready[h];
                    let grant = want.max(bank_ready[bank]);
                    let stall = grant - want;
                    bank_ready[bank] = grant + self.cfg.service_cycles;
                    hart_ready[h] = grant + cost;
                    stats[h].accesses += 1;
                    if stall > 0 {
                        stats[h].conflicts += 1;
                        stats[h].stall_cycles += stall;
                    }
                }
                None => hart_ready[h] += cost,
            }

            match outcome {
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Halted) => {
                    results[h] = Some(Ok(RunResult {
                        cycles: self.harts[h].cpu.cycles,
                        instructions: self.harts[h].cpu.instret,
                        exit_code: self.harts[h].cpu.reg(Reg::A0),
                    }));
                    live -= 1;
                }
                Err(trap) => {
                    results[h] = Some(Err(trap));
                    live -= 1;
                }
            }
        }

        for h in 0..n {
            stats[h].busy_cycles = self.harts[h].cpu.cycles - cycles0[h];
            stats[h].instructions = self.harts[h].cpu.instret - instret0[h];
        }
        let soc_cycles = hart_ready.iter().copied().max().unwrap_or(0);
        ClusterRun {
            results: results
                .into_iter()
                .map(|r| r.expect("hart finished"))
                .collect(),
            stats,
            soc_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Platform, Trap};
    use kwt_rvasm::{Asm, Inst, Program, Reg};

    fn program(build: impl FnOnce(&mut Asm)) -> Program {
        let mut asm = Asm::new(0, 0x8000);
        asm.here("entry");
        build(&mut asm);
        asm.emit(Inst::Ebreak);
        asm.finish().unwrap()
    }

    /// A store/load loop hammering one word — every iteration hits the
    /// same bank, so co-scheduled copies contend maximally.
    fn hammer_program(iters: i32) -> Program {
        program(|a| {
            a.li(Reg::T0, iters);
            a.li(Reg::T1, 0x9000);
            let top = a.new_label();
            a.bind(top).unwrap();
            a.emit(Inst::Sw {
                rs2: Reg::T0,
                rs1: Reg::T1,
                imm: 0,
            });
            a.emit(Inst::Lw {
                rd: Reg::A0,
                rs1: Reg::T1,
                imm: 0,
            });
            a.emit(Inst::Addi {
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: -1,
            });
            a.branch_to(
                Inst::Bne {
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: 0,
                },
                top,
            );
        })
    }

    #[test]
    fn single_hart_cluster_is_bit_and_cycle_identical() {
        let p = hammer_program(25);
        let mut solo = Machine::load(&p, Platform::ibex()).unwrap();
        let baseline = solo.run(10_000).unwrap();
        let template = Machine::load(&p, Platform::ibex()).unwrap();
        let mut cluster = Cluster::replicate(&template, 1, BankConfig::default8());
        let run = cluster.run_all(10_000);
        assert_eq!(run.results[0], Ok(baseline));
        assert_eq!(run.stats[0].stall_cycles, 0, "a lone hart never stalls");
        assert_eq!(run.soc_cycles, baseline.cycles);
        assert_eq!(
            cluster.hart(0).cpu.regs,
            solo.cpu.regs,
            "architectural state must match"
        );
    }

    #[test]
    fn same_bank_hammering_accounts_conflicts() {
        let template = Machine::load(&hammer_program(50), Platform::ibex()).unwrap();
        let mut cluster = Cluster::replicate(&template, 4, BankConfig::default8());
        let run = cluster.run_all(100_000);
        for (h, r) in run.results.iter().enumerate() {
            let r = r.as_ref().unwrap();
            // the last iteration loads t0 = 1 into a0 before decrementing
            assert_eq!(r.exit_code, 1, "hart {h}");
        }
        let conflicts: u64 = run.stats.iter().map(|s| s.conflicts).sum();
        assert!(conflicts > 0, "same-word hammering must contend");
        assert!(run.stall_fraction() > 0.0);
        assert!(
            run.soc_cycles > run.results[0].as_ref().unwrap().cycles,
            "contention must push completion past a solo run"
        );
    }

    #[test]
    fn scheduling_is_deterministic() {
        let template = Machine::load(&hammer_program(40), Platform::ibex()).unwrap();
        let mut a = Cluster::replicate(&template, 4, BankConfig::default8());
        let mut b = Cluster::replicate(&template, 4, BankConfig::default8());
        let ra = a.run_all(100_000);
        let rb = b.run_all(100_000);
        assert_eq!(ra.results, rb.results);
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(ra.soc_cycles, rb.soc_cycles);
    }

    #[test]
    fn trap_on_one_hart_leaves_the_others_running() {
        let good = hammer_program(30);
        let template = Machine::load(&good, Platform::ibex()).unwrap();
        let mut cluster = Cluster::replicate(&template, 3, BankConfig::default8());
        // Hart 1 gets a forced trap at its entry pc.
        let trap = Trap::AccessOutOfBounds { addr: 0xBAD, pc: 0 };
        let pc = cluster.hart(1).cpu.pc;
        cluster
            .hart_mut(1)
            .set_fault_plan(crate::FaultPlan::new().force_trap_at_pc(pc, trap));
        let run = cluster.run_all(100_000);
        assert_eq!(run.results[1], Err(trap));
        assert!(run.results[0].is_ok(), "hart 0 must finish");
        assert!(run.results[2].is_ok(), "hart 2 must finish");
    }

    #[test]
    fn out_of_fuel_is_per_hart() {
        let template = Machine::load(&hammer_program(1000), Platform::ibex()).unwrap();
        let mut cluster = Cluster::replicate(&template, 2, BankConfig::default8());
        let run = cluster.run_all(50);
        for r in &run.results {
            assert!(matches!(r, Err(Trap::OutOfFuel { .. })));
        }
    }

    #[test]
    fn run_active_schedules_only_the_prefix() {
        let template = Machine::load(&hammer_program(10), Platform::ibex()).unwrap();
        let mut cluster = Cluster::replicate(&template, 4, BankConfig::default8());
        let run = cluster.run_active(2, 100_000);
        assert_eq!(run.results.len(), 2);
        assert_eq!(cluster.hart(3).cpu.instret, 0, "idle hart never stepped");
    }

    #[test]
    fn histograms_are_per_hart_and_summable() {
        let template = Machine::load(&hammer_program(10), Platform::ibex()).unwrap();
        let mut cluster = Cluster::replicate(&template, 2, BankConfig::default8());
        cluster.set_class_histogram_enabled(0, true);
        let _ = cluster.run_all(100_000);
        let per_hart = cluster.class_histograms();
        assert!(per_hart[0].total_count() > 0, "armed hart counts");
        assert_eq!(per_hart[1].total_count(), 0, "idle-armed hart stays free");
        let summed = cluster.summed_class_histogram();
        assert_eq!(summed.total_count(), per_hart[0].total_count());
    }

    #[test]
    fn bank_mapping_is_word_interleaved() {
        let cfg = BankConfig::default8();
        assert_eq!(cfg.bank_of(0x0), 0);
        assert_eq!(cfg.bank_of(0x4), 1);
        assert_eq!(cfg.bank_of(0x1C), 7);
        assert_eq!(cfg.bank_of(0x20), 0);
        // byte accesses within a word hit the same bank
        assert_eq!(cfg.bank_of(0x21), 0);
        assert_eq!(cfg.bank_of(0x23), 0);
    }
}
