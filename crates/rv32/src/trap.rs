//! Trap conditions raised by the simulated core.

use std::fmt;

/// A fault that stops simulation (the bare-metal target has no trap
/// handlers; any trap is a bug in the generated program or its inputs).
///
/// Marked `#[non_exhaustive]`: the fault taxonomy grows (watchdog
/// expiry and injected faults arrived after the base ISA traps), so
/// downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// The word at `pc` did not decode to a supported instruction.
    IllegalInstruction {
        /// Faulting pc.
        pc: u32,
        /// The fetched word.
        word: u32,
    },
    /// Instruction fetch outside RAM.
    FetchOutOfBounds {
        /// Faulting pc.
        pc: u32,
    },
    /// Data access outside RAM.
    AccessOutOfBounds {
        /// Faulting data address.
        addr: u32,
        /// pc of the access instruction.
        pc: u32,
    },
    /// Misaligned halfword/word data access.
    MisalignedAccess {
        /// Faulting data address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
        /// pc of the access instruction.
        pc: u32,
    },
    /// `ecall` executed (no syscall layer on this bare-metal platform).
    EnvironmentCall {
        /// pc of the `ecall`.
        pc: u32,
    },
    /// A custom-1 LUT instruction computed an index past the end of its
    /// (truncated) ROM table. Impossible with full-size tables — the
    /// index arithmetic clamps into the nominal range — but truncated
    /// ROMs from threshold/size experiments make it reachable, and the
    /// simulator must trap rather than panic the host process.
    LutIndexOutOfRange {
        /// pc of the LUT instruction.
        pc: u32,
        /// The clamped index that missed the table.
        index: u32,
        /// Entries actually resident in the table.
        table_len: u32,
    },
    /// The step budget given to [`crate::Machine::run`] was exhausted.
    OutOfFuel {
        /// Instructions retired before stopping.
        executed: u64,
    },
    /// The per-call cycle watchdog ([`crate::Machine::set_cycle_watchdog`])
    /// fired: the run consumed more simulated cycles than its budget.
    /// Unlike [`Trap::OutOfFuel`] (a host-side step limit) this models a
    /// deployed watchdog timer bounding a wedged or runaway image.
    WatchdogExpired {
        /// The armed cycle budget.
        budget: u64,
        /// Cycles actually consumed when the watchdog fired.
        cycles: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            Trap::FetchOutOfBounds { pc } => {
                write!(f, "instruction fetch out of bounds at {pc:#010x}")
            }
            Trap::AccessOutOfBounds { addr, pc } => {
                write!(
                    f,
                    "data access out of bounds at {addr:#010x} (pc {pc:#010x})"
                )
            }
            Trap::MisalignedAccess { addr, size, pc } => write!(
                f,
                "misaligned {size}-byte access at {addr:#010x} (pc {pc:#010x})"
            ),
            Trap::EnvironmentCall { pc } => write!(f, "ecall at pc {pc:#010x}"),
            Trap::LutIndexOutOfRange {
                pc,
                index,
                table_len,
            } => write!(
                f,
                "LUT index {index} out of range ({table_len} entries) at pc {pc:#010x}"
            ),
            Trap::OutOfFuel { executed } => {
                write!(f, "step budget exhausted after {executed} instructions")
            }
            Trap::WatchdogExpired { budget, cycles } => {
                write!(
                    f,
                    "cycle watchdog expired: {cycles} cycles consumed against a budget of {budget}"
                )
            }
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let t = Trap::IllegalInstruction { pc: 4, word: 0 };
        assert!(t.to_string().contains("0x00000004"));
        let t = Trap::MisalignedAccess {
            addr: 3,
            size: 4,
            pc: 0,
        };
        assert!(t.to_string().contains("4-byte"));
    }
}
