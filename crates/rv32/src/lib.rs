//! # kwt-rv32
//!
//! An RV32IMC instruction-set simulator modelling the paper's platform: a
//! lowRISC-Ibex-class core (Table II: 64 kB RAM, 50 MHz, **no FPU**) with
//! a per-instruction-class cycle model, the paper's `custom-1` extension
//! (Table VII) wired to the Q8.24 lookup tables of [`kwt_quant`], and the
//! **Xkwtdot** `custom-2` packed-MAC extension that vectorises the
//! quantised GEMM inner loops.
//!
//! The simulator is the measurement instrument for the paper's headline
//! result — inference clock cycles dropping from 26 M (float) through
//! 13 M (quantised) to 5.5 M (quantised + custom instructions) — so its
//! cycle accounting is explicit and configurable ([`TimingModel`]), a
//! region [`Profiler`] (driven by CSR writes from generated code)
//! reproduces the per-operation breakdowns of Figs. 3–5, and a
//! [`ClassHistogram`] attributes cycles to instruction classes so ISA
//! experiments (scalar vs Xkwtdot images) can be compared paper-style.
//!
//! # Execution model
//!
//! [`Cpu::step`] fetches through the pre-decode execution cache
//! (`icache` module) — every parcel is decoded at most once, and the
//! cached slot carries the decoded instruction, its length, its
//! [`InstClass`] and its base cycle cost — then dispatches to one of the
//! core's **functional units** ([`FuncUnit`]): ALU, multiply/divide,
//! load/store, branch/jump, system/CSR, the custom-1 LUT unit, and the
//! custom-2 packed-SIMD unit. Store-driven invalidation keeps
//! self-modifying code correct; the cache changes wall-clock simulation
//! speed only — cycle counts, traps and architectural state are
//! identical with it on or off ([`Cpu::set_decode_cache_enabled`]).
//!
//! # Custom-instruction encoding map
//!
//! | opcode | funct3 | form | mnemonic | unit | semantics |
//! |--------|--------|------|----------|------|-----------|
//! | `0101011` (custom-1) | `000` | R | `alu.exp`     | LUT   | Q8.24 `e^−x` via LUT1 |
//! | `0101011` | `001` | R | `alu.invert`  | LUT   | Q8.24 `1/x` via LUT2 |
//! | `0101011` | `011` | R | `alu.gelu`    | LUT   | Q8.24 `GELU(x)` via LUT3 |
//! | `0101011` | `100` | R | `alu.tofixed` | LUT   | f32 → Q8.24 |
//! | `0101011` | `101` | R | `alu.tofloat` | LUT   | Q8.24 → f32 |
//! | `1011011` (custom-2) | `000` | R | `kdot4.i8`  | SIMD | `rd += Σ₀³ i8(rs1.b)·i8(rs2.b)` |
//! | `1011011` | `001` | R | `kdot2.i16` | SIMD | `rd += Σ₀¹ i16(rs1.h)·i16(rs2.h)` |
//! | `1011011` | `010` | R | `ksat.i16`  | SIMD | `rd = sat16(rs1 >>ₐ (rs2&31))` |
//! | `1011011` | `011` | R | `kclip`     | SIMD | `rd = clamp(rs1, −2ⁿ, 2ⁿ−1)`, `n = rs2&31` |
//! | `1011011` | `100` | I | `klw.b2h`   | SIMD | load halfword, widen both bytes to i16 lanes |
//! | `1011011` | `101` | R | `kcvt.h2f`  | SIMD | `rd = f32(i16(rs1.h0)) · 2^−(rs2&31)` |
//! | `1011011` | `110` | R | `kcvt.f2h`  | SIMD | `rd = sat16(⌊f32(rs1) · 2^(rs2&31)⌋)` |
//! | `1011011` | `111` | R | `kfadd.t` / `kfsub.t` / `kfmul.t` | SIMD | funct7-selected truncating f32 ops, bit-identical to the bare-metal soft-float library ([`softfp`]) |
//!
//! All R-type custom ops require `funct7 = 0` (the funct3 = 111 float
//! slot uses funct7 = 0/1/2 as its sub-op selector). LUT lookups whose index
//! overruns a (deliberately truncated) table raise the typed
//! [`Trap::LutIndexOutOfRange`] instead of panicking the host process.
//!
//! ## A8 (fully-INT8) usage
//!
//! The A8W8 images drive `kdot4.i8` with two plain `lw`-fetched i8
//! operand words (activations *and* transposed weights — `klw.b2h` is an
//! i16-pipeline instruction) and narrow accumulators to i8 through
//! `ksat.i16` + `kclip 7`. Their quantisation boundaries compose
//! `kcvt.h2f`/`kcvt.f2h` at shift 0 with a truncating `kfmul.t` by an
//! arbitrary power-of-two scale, so stream exponents may be negative;
//! because `kfadd.t`/`kfsub.t`/`kfmul.t` execute [`softfp`] exactly and
//! the LUT unit executes `kwt_quant`'s fixed-point golden models, a
//! host-side A8 model (`kwt_quant::A8Kwt`) reproduces device logits
//! bit-for-bit.
//!
//! # Cluster simulation: the functional / timing split
//!
//! The [`cluster`] module scales the single hart to an N-hart SoC —
//! shared bank-interleaved memory behind a round-robin arbiter — by
//! keeping two concerns strictly apart:
//!
//! * **Functional model**: each hart is a plain [`Machine`] retiring
//!   exactly the stream it would retire alone. Shared code/weight banks
//!   are read-only and scratch/IO is per-hart private, so hart streams
//!   are independent by construction.
//! * **Timing model**: an event-driven scheduler replays those streams
//!   on one SoC timeline, routing every data access (captured by the
//!   opt-in [`Cpu::take_data_access`] probe) to a word-interleaved bank
//!   with a busy-until counter; conflicting accesses stall the losing
//!   hart, ties resolve round-robin, and the whole schedule is
//!   deterministic.
//!
//! Timing never feeds back into function — contention changes *when* an
//! access happens, never *what* it reads — which is what makes a
//! single-hart cluster provably bit- and cycle-identical to
//! [`Machine::run`] (asserted over random programs in
//! `tests/cluster_props.rs`).
//!
//! # Fault model and watchdog
//!
//! The trap taxonomy ([`Trap`], `#[non_exhaustive]`) covers decode
//! faults (`IllegalInstruction`), memory faults (`FetchOutOfBounds`,
//! `AccessOutOfBounds`, `MisalignedAccess`), environment calls, LUT
//! table overruns, the host-side step limit (`OutOfFuel`) and the
//! deployment-style cycle watchdog (`WatchdogExpired`). A [`Machine`]
//! can arm a per-`run`-call cycle budget
//! ([`Machine::set_cycle_watchdog`]) so a wedged or runaway image stops
//! with a typed trap instead of spinning, and a deterministic
//! [`FaultPlan`] ([`fault`] module) injects bit flips, forced traps and
//! LUT corruption at exact architectural points — seeded, replayable,
//! and free on the fault-free path (the plain `run` loop is untouched
//! when neither is armed, and simulated cycle counts are identical
//! either way).
//!
//! # Example
//!
//! ```
//! use kwt_rv32::{Machine, Platform};
//! use kwt_rvasm::{Asm, Inst, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Asm::new(0x0, 0x8000);
//! asm.li(Reg::A0, 21);
//! asm.emit(Inst::Add { rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A0 });
//! asm.emit(Inst::Ebreak);
//! let program = asm.finish()?;
//!
//! let mut machine = Machine::load(&program, Platform::ibex())?;
//! let result = machine.run(1_000)?;
//! assert_eq!(result.exit_code, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod cpu;
pub mod fault;
mod icache;
mod machine;
mod mem;
mod profile;
pub mod softfp;
mod trap;

pub use cluster::{BankConfig, Cluster, ClusterRun, HartStats};
pub use cpu::{Cpu, FuncUnit, StepOutcome};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultRecord, FaultTrigger};
pub use icache::DecodeCacheStats;
pub use machine::{Machine, RunResult, TraceEntry};
pub use mem::Memory;
pub use profile::{ClassHistogram, InstClass, ProfileReport, Profiler, NUM_INST_CLASSES};
pub use trap::Trap;

use serde::{Deserialize, Serialize};

/// Static platform description (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    /// RAM base address.
    pub ram_base: u32,
    /// RAM size in bytes.
    pub ram_size: u32,
    /// Core clock in Hz (used to convert cycles to wall time / power).
    pub clock_hz: u64,
    /// Reserved stack bytes at the top of RAM (§V: 4 kB for KWT-Tiny).
    pub stack_bytes: u32,
}

impl Platform {
    /// The paper's Ibex instance: 64 kB RAM at 0x0, 50 MHz, 4 kB stack.
    pub fn ibex() -> Self {
        Platform {
            ram_base: 0x0000_0000,
            ram_size: 64 * 1024,
            clock_hz: 50_000_000,
            stack_bytes: 4 * 1024,
        }
    }

    /// A roomier variant for host-side experiments that exceed 64 kB
    /// (e.g. profiling KWT-1-scale workloads). Same timing model.
    pub fn ibex_with_ram(ram_size: u32) -> Self {
        Platform {
            ram_size,
            ..Platform::ibex()
        }
    }

    /// First address past RAM.
    pub fn ram_end(&self) -> u32 {
        self.ram_base + self.ram_size
    }

    /// Initial stack pointer (16-byte aligned top of RAM).
    pub fn initial_sp(&self) -> u32 {
        self.ram_end() & !0xF
    }

    /// Converts a cycle count to seconds at the platform clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::ibex()
    }
}

/// Per-instruction-class cycle costs.
///
/// Defaults follow the lowRISC Ibex documentation for the 2-stage,
/// "fast multiplier" configuration: single-cycle ALU ops, 3-cycle
/// multiplies, 37-cycle divides, 2-cycle loads/stores (1 + memory), 3
/// cycles for taken branches and jumps (pipeline flush), 1 cycle for
/// not-taken branches. The custom LUT instructions are modelled at 2
/// cycles (register read, ROM lookup, writeback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Simple ALU / CSR instructions.
    pub alu: u64,
    /// `mul`, `mulh`, `mulhsu`, `mulhu`.
    pub mul: u64,
    /// `div`, `divu`, `rem`, `remu`.
    pub div: u64,
    /// Loads.
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// Taken conditional branches.
    pub branch_taken: u64,
    /// Not-taken conditional branches.
    pub branch_not_taken: u64,
    /// `jal` / `jalr`.
    pub jump: u64,
    /// The five `custom-1` operations.
    pub custom: u64,
    /// Xkwtdot packed dot-products (`kdot4.i8`, `kdot2.i16`): two-lane /
    /// four-lane MAC array with a single accumulate writeback.
    pub kdot: u64,
    /// Xkwtdot packed saturate/clip (`ksat.i16`, `kclip`): plain ALU
    /// datapath with a comparator tree.
    pub ksat: u64,
    /// Xkwtdot quantisation converts (`kcvt.h2f`, `kcvt.f2h`): shares
    /// the custom-1 float-convert datapath.
    pub kcvt: u64,
    /// Xkwtdot packed widening load (`klw.b2h`): a halfword load plus a
    /// free byte-lane sign-extender on the fill path.
    pub kload: u64,
    /// Xkwtdot truncating scalar-float ops (`kfadd.t`, `kfsub.t`,
    /// `kfmul.t`): a small iterative FPU datapath, modelled like the
    /// fast multiplier.
    pub kfloat: u64,
}

impl TimingModel {
    /// The Ibex-class default described above.
    pub fn ibex() -> Self {
        TimingModel {
            alu: 1,
            mul: 3,
            div: 37,
            load: 2,
            store: 2,
            branch_taken: 3,
            branch_not_taken: 1,
            jump: 3,
            custom: 2,
            kdot: 2,
            ksat: 1,
            kcvt: 2,
            kload: 2,
            kfloat: 3,
        }
    }

    /// An idealised single-cycle machine — useful to separate
    /// instruction-count effects from stall effects in ablations.
    pub fn single_cycle() -> Self {
        TimingModel {
            alu: 1,
            mul: 1,
            div: 1,
            load: 1,
            store: 1,
            branch_taken: 1,
            branch_not_taken: 1,
            jump: 1,
            custom: 1,
            kdot: 1,
            ksat: 1,
            kcvt: 1,
            kload: 1,
            kfloat: 1,
        }
    }

    /// Base cycle cost of an instruction class (branches are charged
    /// not-taken here; the taken upgrade happens at execution).
    pub fn class_cost(&self, class: InstClass) -> u64 {
        match class {
            InstClass::Alu => self.alu,
            InstClass::Mul => self.mul,
            InstClass::Div => self.div,
            InstClass::Load => self.load,
            InstClass::Store => self.store,
            InstClass::Branch => self.branch_not_taken,
            InstClass::Jump => self.jump,
            InstClass::System => self.alu,
            InstClass::Lut => self.custom,
            InstClass::PackedDot => self.kdot,
            InstClass::PackedAlu => self.ksat,
            InstClass::PackedLoad => self.kload,
            InstClass::PackedCvt => self.kcvt,
            InstClass::PackedFloat => self.kfloat,
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::ibex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_matches_table2() {
        let p = Platform::ibex();
        assert_eq!(p.ram_size, 65_536);
        assert_eq!(p.clock_hz, 50_000_000);
        assert_eq!(p.ram_end(), 0x1_0000);
        assert_eq!(p.initial_sp() % 16, 0);
    }

    #[test]
    fn cycle_conversion() {
        let p = Platform::ibex();
        assert!((p.cycles_to_seconds(50_000_000) - 1.0).abs() < 1e-12);
        // 5.5M cycles at 50 MHz = 110 ms per inference (paper's fastest).
        assert!((p.cycles_to_seconds(5_500_000) - 0.11).abs() < 1e-12);
    }

    #[test]
    fn timing_models() {
        let t = TimingModel::ibex();
        assert_eq!(t.div, 37);
        assert!(t.mul > t.alu);
        let s = TimingModel::single_cycle();
        assert_eq!(s.div, 1);
    }
}
