//! Pre-decode execution cache: decode each instruction parcel once,
//! dispatch on the cached decoded form ever after.
//!
//! # Design
//!
//! The interpreter previously re-decoded every instruction word on every
//! [`crate::Cpu::step`] — a 16-bit fetch (with bounds and alignment
//! checks), a compressed-vs-full discrimination, and a full bit-field
//! decode, all per retired instruction. For loop-heavy inference kernels
//! the same few hundred words are decoded millions of times.
//!
//! [`DecodeCache`] is a dense side-table with one slot per RAM
//! **halfword** (the C extension allows 2-byte-aligned pcs), keyed by
//! `(pc - ram_base) / 2`. A slot holds the decoded [`Inst`] plus its
//! encoded length. `Cpu::step` consults the table first; on a miss it
//! performs the old fetch/decode and fills the slot. Traps (illegal
//! instructions, fetch faults) are never cached — the slow path re-raises
//! them with identical semantics.
//!
//! # Invalidation
//!
//! The cache must observe self-modifying code. Every architectural store
//! (`sb`/`sh`/`sw`) and every host-side write routed through
//! [`crate::Machine`]'s typed writers invalidates the slots whose
//! instruction could overlap the written bytes: an instruction starting at
//! byte `b` spans at most `[b, b + 4)`, so a write to `[addr, addr+size)`
//! clears slots for start bytes in `[addr - 2, addr + size)`. That is at
//! most `size / 2 + 2` slots — a handful of stores per store instruction,
//! cheap next to the store itself. Stores outside RAM trap before
//! reaching the cache, and slots outside the table are ignored.
//!
//! Direct writes to `cpu.mem` (the public field) bypass this bookkeeping;
//! host code that mutates memory that way must pair the write with
//! [`crate::Cpu::invalidate_decode_cache`] (or
//! [`crate::Cpu::flush_decode_cache`]) if the region could ever be
//! executed. The `Machine` typed writers do this automatically.

use crate::profile::InstClass;
use kwt_rvasm::Inst;

/// Running hit/miss/invalidation counters for the decode cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Steps served from the cache.
    pub hits: u64,
    /// Steps that decoded from memory (and filled the cache).
    pub misses: u64,
    /// Slots cleared by store-driven invalidation.
    pub invalidated: u64,
}

/// Dense pc-indexed table of pre-decoded instructions (see module docs).
#[derive(Debug, Clone)]
pub(crate) struct DecodeCache {
    base: u32,
    enabled: bool,
    /// Grown lazily (powers of two up to `max_slots`) toward the highest
    /// executed pc, so a `Cpu` over a large RAM whose code sits near the
    /// base only pays for the table it uses — `Machine::load` stays cheap.
    /// A slot holds `(inst, len, class, cost)` — everything `Cpu::step`
    /// needs to charge cycles, update the class histogram and dispatch to
    /// the right functional unit without re-deriving anything.
    entries: Vec<Option<(Inst, u8, InstClass, u32)>>,
    max_slots: usize,
    stats: DecodeCacheStats,
}

impl DecodeCache {
    /// Creates an empty cache covering `size` bytes of RAM at `base`.
    pub(crate) fn new(base: u32, size: u32) -> Self {
        DecodeCache {
            base,
            enabled: true,
            entries: Vec::new(),
            max_slots: (size / 2) as usize,
            stats: DecodeCacheStats::default(),
        }
    }

    /// Looks up the decoded instruction starting at `pc`, returning the
    /// instruction, its encoded length, its cycle class and its
    /// pre-computed base cycle cost (the not-taken cost for branches; the
    /// taken upgrade is applied by the executing arm exactly as on the
    /// slow path).
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32) -> Option<(Inst, u32, InstClass, u64)> {
        if !self.enabled || pc & 1 != 0 {
            return None;
        }
        let idx = (pc.wrapping_sub(self.base) >> 1) as usize;
        match self.entries.get(idx) {
            Some(&Some((inst, len, class, cost))) => {
                self.stats.hits += 1;
                Some((inst, len as u32, class, cost as u64))
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records the decoded instruction starting at `pc` with its cycle
    /// class and base cost (valid for the lifetime of the cache — a `Cpu`
    /// never changes timing model in place). Instructions whose cost
    /// exceeds the `u32` slot (only possible with an absurd custom
    /// [`crate::TimingModel`]) are simply never cached, so cycle
    /// accounting stays exact either way.
    #[inline]
    pub(crate) fn fill(&mut self, pc: u32, inst: Inst, len: u32, class: InstClass, cost: u64) {
        if !self.enabled || pc & 1 != 0 || cost > u32::MAX as u64 {
            return;
        }
        let idx = (pc.wrapping_sub(self.base) >> 1) as usize;
        if idx >= self.entries.len() && idx < self.max_slots {
            let new_len = (idx + 1).next_power_of_two().min(self.max_slots);
            self.entries.resize(new_len, None);
        }
        if let Some(slot) = self.entries.get_mut(idx) {
            *slot = Some((inst, len as u8, class, cost as u32));
        }
    }

    /// Clears every slot whose instruction could overlap the byte range
    /// `[addr, addr + size)`.
    #[inline]
    pub(crate) fn invalidate(&mut self, addr: u32, size: u32) {
        if self.entries.is_empty() {
            return;
        }
        let base = self.base as i64;
        // Instructions are at most 4 bytes, so start bytes down to
        // `addr - 2` (the previous halfword) can cover the written range.
        let lo = ((addr as i64 - 2 - base).max(0) >> 1) as usize;
        let hi_byte = addr as i64 + size as i64 - 1 - base;
        if hi_byte < 0 || lo >= self.entries.len() {
            return;
        }
        let hi = ((hi_byte >> 1) as usize).min(self.entries.len() - 1);
        for slot in &mut self.entries[lo..=hi] {
            if slot.take().is_some() {
                self.stats.invalidated += 1;
            }
        }
    }

    /// Drops every cached entry.
    pub(crate) fn flush(&mut self) {
        for slot in &mut self.entries {
            *slot = None;
        }
    }

    /// Enables or disables the cache (disabling flushes it, so re-enabling
    /// starts cold).
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.flush();
        }
        self.enabled = enabled;
    }

    /// Whether lookups are served.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> DecodeCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_rvasm::Reg;

    fn nop() -> Inst {
        Inst::Addi {
            rd: Reg::Zero,
            rs1: Reg::Zero,
            imm: 0,
        }
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut c = DecodeCache::new(0x1000, 0x100);
        assert_eq!(c.lookup(0x1000), None);
        c.fill(0x1000, nop(), 4, InstClass::Alu, 1);
        assert_eq!(c.lookup(0x1000), Some((nop(), 4, InstClass::Alu, 1)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn odd_and_out_of_range_pcs_miss() {
        let mut c = DecodeCache::new(0x1000, 0x100);
        c.fill(0x1001, nop(), 2, InstClass::Alu, 1); // ignored
        assert_eq!(c.lookup(0x1001), None);
        assert_eq!(c.lookup(0x0FFE), None); // below base
        assert_eq!(c.lookup(0x2000), None); // beyond
    }

    #[test]
    fn invalidate_covers_prior_halfword() {
        let mut c = DecodeCache::new(0, 0x100);
        // 4-byte instruction at 0x10 covers bytes 0x10..0x14.
        c.fill(0x10, nop(), 4, InstClass::Alu, 1);
        // A byte store at 0x12 lands inside it.
        c.invalidate(0x12, 1);
        assert_eq!(c.lookup(0x10), None);
        assert_eq!(c.stats().invalidated, 1);
    }

    #[test]
    fn invalidate_is_range_clamped() {
        let mut c = DecodeCache::new(0x1000, 0x10);
        c.fill(0x1000, nop(), 4, InstClass::Alu, 1);
        c.invalidate(0x0000, 4); // far below: no panic, no effect
        c.invalidate(0xFFFF_FFF0, 4); // far above: no panic
        assert_eq!(c.lookup(0x1000), Some((nop(), 4, InstClass::Alu, 1)));
        c.invalidate(0x0FFE, 4); // straddles the base: clears slot 0
        assert_eq!(c.lookup(0x1000), None);
    }

    #[test]
    fn disabling_flushes() {
        let mut c = DecodeCache::new(0, 0x100);
        c.fill(0, nop(), 4, InstClass::Alu, 1);
        c.set_enabled(false);
        assert!(!c.enabled());
        assert_eq!(c.lookup(0), None);
        c.set_enabled(true);
        assert_eq!(c.lookup(0), None); // cold again
    }
}
