//! The simulated RAM.

use crate::Trap;

/// Flat little-endian RAM with bounds and alignment checking.
#[derive(Debug, Clone)]
pub struct Memory {
    base: u32,
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocates zeroed RAM.
    pub fn new(base: u32, size: u32) -> Self {
        Memory {
            base,
            bytes: vec![0; size as usize],
        }
    }

    /// RAM base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// RAM size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn offset(&self, addr: u32, size: u32, pc: u32) -> Result<usize, Trap> {
        let end = addr.wrapping_add(size);
        if addr < self.base || end > self.base + self.size() || end < addr {
            return Err(Trap::AccessOutOfBounds { addr, pc });
        }
        if size > 1 && !addr.is_multiple_of(size) {
            return Err(Trap::MisalignedAccess { addr, size, pc });
        }
        Ok((addr - self.base) as usize)
    }

    /// Loads a byte.
    pub fn load8(&self, addr: u32, pc: u32) -> Result<u8, Trap> {
        let o = self.offset(addr, 1, pc)?;
        Ok(self.bytes[o])
    }

    /// Loads a little-endian halfword (2-byte aligned).
    pub fn load16(&self, addr: u32, pc: u32) -> Result<u16, Trap> {
        let o = self.offset(addr, 2, pc)?;
        Ok(u16::from_le_bytes([self.bytes[o], self.bytes[o + 1]]))
    }

    /// Loads a little-endian word (4-byte aligned).
    pub fn load32(&self, addr: u32, pc: u32) -> Result<u32, Trap> {
        let o = self.offset(addr, 4, pc)?;
        Ok(u32::from_le_bytes([
            self.bytes[o],
            self.bytes[o + 1],
            self.bytes[o + 2],
            self.bytes[o + 3],
        ]))
    }

    /// Fetches an instruction parcel (16-bit aligned — the C extension
    /// allows pc to be 2-byte aligned).
    pub fn fetch16(&self, pc: u32) -> Result<u16, Trap> {
        if pc < self.base || pc + 2 > self.base + self.size() || !pc.is_multiple_of(2) {
            return Err(Trap::FetchOutOfBounds { pc });
        }
        let o = (pc - self.base) as usize;
        Ok(u16::from_le_bytes([self.bytes[o], self.bytes[o + 1]]))
    }

    /// Stores a byte.
    pub fn store8(&mut self, addr: u32, value: u8, pc: u32) -> Result<(), Trap> {
        let o = self.offset(addr, 1, pc)?;
        self.bytes[o] = value;
        Ok(())
    }

    /// Stores a halfword.
    pub fn store16(&mut self, addr: u32, value: u16, pc: u32) -> Result<(), Trap> {
        let o = self.offset(addr, 2, pc)?;
        self.bytes[o..o + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Stores a word.
    pub fn store32(&mut self, addr: u32, value: u32, pc: u32) -> Result<(), Trap> {
        let o = self.offset(addr, 4, pc)?;
        self.bytes[o..o + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Host-side bulk write (program loading, test inputs).
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside RAM.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        let o = (addr - self.base) as usize;
        self.bytes[o..o + data.len()].copy_from_slice(data);
    }

    /// Host-side bulk read (results, buffers).
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside RAM.
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        let o = (addr - self.base) as usize;
        &self.bytes[o..o + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let mut m = Memory::new(0, 0x100);
        m.store32(0x10, 0xDEAD_BEEF, 0).unwrap();
        assert_eq!(m.load32(0x10, 0).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.load16(0x10, 0).unwrap(), 0xBEEF); // little endian
        assert_eq!(m.load8(0x13, 0).unwrap(), 0xDE);
        m.store16(0x20, 0x1234, 0).unwrap();
        m.store8(0x22, 0x56, 0).unwrap();
        assert_eq!(m.load32(0x20, 0).unwrap(), 0x0056_1234);
    }

    #[test]
    fn bounds_checked() {
        let mut m = Memory::new(0x1000, 0x100);
        assert!(matches!(
            m.load32(0x0FFF, 7),
            Err(Trap::AccessOutOfBounds {
                addr: 0x0FFF,
                pc: 7
            })
        ));
        assert!(m.load32(0x10FD, 0).is_err()); // crosses the end
        assert!(m.store8(0x1100, 0, 0).is_err());
        // wrap-around address
        assert!(m.load32(u32::MAX - 1, 0).is_err());
    }

    #[test]
    fn alignment_checked() {
        let m = Memory::new(0, 0x100);
        assert!(matches!(
            m.load32(2, 0),
            Err(Trap::MisalignedAccess { size: 4, .. })
        ));
        assert!(matches!(
            m.load16(1, 0),
            Err(Trap::MisalignedAccess { size: 2, .. })
        ));
        assert!(m.load8(3, 0).is_ok());
    }

    #[test]
    fn fetch_rules() {
        let m = Memory::new(0, 0x100);
        assert!(m.fetch16(0x10).is_ok());
        assert!(m.fetch16(0x11).is_err()); // odd pc
        assert!(m.fetch16(0x100).is_err()); // past end
    }

    #[test]
    fn bulk_io() {
        let mut m = Memory::new(0x8000, 0x100);
        m.write_bytes(0x8010, &[1, 2, 3]);
        assert_eq!(m.read_bytes(0x8010, 3), &[1, 2, 3]);
    }
}
