//! Cycle-attribution profiler driven by CSR writes from generated code.
//!
//! Generated kernels bracket themselves with
//! `csrrw x0, 0x7C0, <region-id>` (push) and `csrrw x0, 0x7C1, x0`
//! (pop). The profiler attributes *self* cycles: while a child region is
//! open, the parent's clock is paused — so totals over all regions plus
//! unattributed time equal the whole run, which is what the paper's
//! pie-chart figures (Figs. 3–5) show.

use std::collections::BTreeMap;

/// Accumulates per-region self-cycles.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// Stack of `(region, cycles_at_entry_or_resume, accumulated)`.
    stack: Vec<(u32, u64, u64)>,
    totals: BTreeMap<u32, u64>,
    /// Number of push events per region (call counts).
    calls: BTreeMap<u32, u64>,
}

impl Profiler {
    /// Fresh, empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Region push (CSR 0x7C0 write) at absolute cycle `now`.
    pub fn push(&mut self, region: u32, now: u64) {
        // Pause the parent.
        if let Some(top) = self.stack.last_mut() {
            top.2 += now - top.1;
        }
        self.stack.push((region, now, 0));
        *self.calls.entry(region).or_insert(0) += 1;
    }

    /// Region pop (CSR 0x7C1 write) at absolute cycle `now`.
    ///
    /// Unbalanced pops are ignored (defensive: generated code is tested to
    /// balance them).
    pub fn pop(&mut self, now: u64) {
        if let Some((region, since, acc)) = self.stack.pop() {
            let self_cycles = acc + (now - since);
            *self.totals.entry(region).or_insert(0) += self_cycles;
            // Resume the parent clock.
            if let Some(top) = self.stack.last_mut() {
                top.1 = now;
            }
        }
    }

    /// Finalises at end-of-run cycle `now`, closing any open regions.
    pub fn finish(&mut self, now: u64) {
        while !self.stack.is_empty() {
            self.pop(now);
        }
    }

    /// Produces the report, mapping region ids to names via `names`
    /// (unknown ids are labelled `region-N`).
    pub fn report(&self, total_cycles: u64, names: &BTreeMap<u32, String>) -> ProfileReport {
        let mut regions: Vec<(String, u64, u64)> = self
            .totals
            .iter()
            .map(|(&id, &cycles)| {
                let name = names
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| format!("region-{id}"));
                (name, cycles, self.calls.get(&id).copied().unwrap_or(0))
            })
            .collect();
        regions.sort_by(|a, b| b.1.cmp(&a.1));
        let attributed: u64 = self.totals.values().sum();
        ProfileReport {
            regions,
            attributed_cycles: attributed,
            total_cycles,
        }
    }
}

/// A finished profile: per-region self-cycles, sorted descending.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// `(name, self_cycles, calls)` per region, largest first.
    pub regions: Vec<(String, u64, u64)>,
    /// Sum of all attributed cycles.
    pub attributed_cycles: u64,
    /// Total cycles of the run (attributed + untracked).
    pub total_cycles: u64,
}

impl ProfileReport {
    /// Percentage of total cycles for a region by name.
    pub fn percent(&self, name: &str) -> Option<f64> {
        self.regions
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, c, _)| 100.0 * *c as f64 / self.total_cycles.max(1) as f64)
    }

    /// Formats the report as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from("region                     cycles      calls   share\n");
        for (name, cycles, calls) in &self.regions {
            out.push_str(&format!(
                "{name:<22} {cycles:>12} {calls:>10}   {:5.1}%\n",
                100.0 * *cycles as f64 / self.total_cycles.max(1) as f64
            ));
        }
        let other = self.total_cycles.saturating_sub(self.attributed_cycles);
        out.push_str(&format!(
            "{:<22} {other:>12} {:>10}   {:5.1}%\n",
            "(untracked)",
            "-",
            100.0 * other as f64 / self.total_cycles.max(1) as f64
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> BTreeMap<u32, String> {
        [(1, "matmul".to_string()), (2, "softmax".to_string())]
            .into_iter()
            .collect()
    }

    #[test]
    fn flat_regions_accumulate() {
        let mut p = Profiler::new();
        p.push(1, 0);
        p.pop(100);
        p.push(2, 100);
        p.pop(150);
        p.push(1, 150);
        p.pop(250);
        let r = p.report(250, &names());
        assert_eq!(r.regions[0], ("matmul".to_string(), 200, 2));
        assert_eq!(r.regions[1], ("softmax".to_string(), 50, 1));
        assert_eq!(r.attributed_cycles, 250);
        assert!((r.percent("matmul").unwrap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn nesting_attributes_self_time() {
        let mut p = Profiler::new();
        p.push(1, 0); // matmul
        p.push(2, 30); // softmax inside matmul
        p.pop(70); // softmax self = 40
        p.pop(100); // matmul self = 30 + 30 = 60
        let r = p.report(100, &names());
        let matmul = r.regions.iter().find(|(n, _, _)| n == "matmul").unwrap();
        let softmax = r.regions.iter().find(|(n, _, _)| n == "softmax").unwrap();
        assert_eq!(matmul.1, 60);
        assert_eq!(softmax.1, 40);
        assert_eq!(r.attributed_cycles, 100);
    }

    #[test]
    fn finish_closes_open_regions() {
        let mut p = Profiler::new();
        p.push(1, 0);
        p.push(2, 10);
        p.finish(50);
        let r = p.report(50, &names());
        assert_eq!(r.attributed_cycles, 50);
    }

    #[test]
    fn unbalanced_pop_is_ignored() {
        let mut p = Profiler::new();
        p.pop(10); // no-op
        let r = p.report(10, &names());
        assert!(r.regions.is_empty());
    }

    #[test]
    fn unknown_region_named_generically() {
        let mut p = Profiler::new();
        p.push(99, 0);
        p.pop(5);
        let r = p.report(5, &names());
        assert_eq!(r.regions[0].0, "region-99");
    }

    #[test]
    fn table_formatting_mentions_untracked() {
        let mut p = Profiler::new();
        p.push(1, 0);
        p.pop(40);
        let r = p.report(100, &names());
        let t = r.to_table();
        assert!(t.contains("matmul"));
        assert!(t.contains("untracked"));
    }
}
