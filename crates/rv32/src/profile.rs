//! Cycle-attribution profiler driven by CSR writes from generated code,
//! plus the per-instruction-class cycle histogram kept by the core.
//!
//! Generated kernels bracket themselves with
//! `csrrw x0, 0x7C0, <region-id>` (push) and `csrrw x0, 0x7C1, x0`
//! (pop). The profiler attributes *self* cycles: while a child region is
//! open, the parent's clock is paused — so totals over all regions plus
//! unattributed time equal the whole run, which is what the paper's
//! pie-chart figures (Figs. 3–5) show.
//!
//! Orthogonally, [`ClassHistogram`] counts retired instructions and
//! cycles per [`InstClass`] — the cycle-model class every instruction
//! belongs to. It answers "where do the cycles go *by instruction
//! kind*" (loads vs multiplies vs packed MACs), which is how the Xkwtdot
//! speedup is attributed in `paper bench-engine`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cycle-model instruction classes (one per [`crate::TimingModel`]
/// cost knob; branches fold taken/not-taken into one class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum InstClass {
    /// Simple ALU / CSR / system instructions.
    Alu = 0,
    /// `mul`, `mulh`, `mulhsu`, `mulhu`.
    Mul,
    /// `div`, `divu`, `rem`, `remu`.
    Div,
    /// Scalar loads.
    Load,
    /// Scalar stores.
    Store,
    /// Conditional branches (taken or not).
    Branch,
    /// `jal` / `jalr`.
    Jump,
    /// `ecall`/`ebreak`/Zicsr (charged at the ALU cost).
    System,
    /// custom-1 LUT ops (`alu.exp` … `alu.tofloat`).
    Lut,
    /// custom-2 packed dot-products (`kdot4.i8`, `kdot2.i16`).
    PackedDot,
    /// custom-2 packed saturate/clip (`ksat.i16`, `kclip`).
    PackedAlu,
    /// custom-2 packed widening load (`klw.b2h`).
    PackedLoad,
    /// custom-2 quantisation converts (`kcvt.h2f`, `kcvt.f2h`).
    PackedCvt,
    /// custom-2 truncating float ops (`kfadd.t`, `kfsub.t`, `kfmul.t`).
    PackedFloat,
}

/// Number of [`InstClass`] variants.
pub const NUM_INST_CLASSES: usize = 14;

impl InstClass {
    /// All classes in discriminant order.
    pub const ALL: [InstClass; NUM_INST_CLASSES] = [
        InstClass::Alu,
        InstClass::Mul,
        InstClass::Div,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Jump,
        InstClass::System,
        InstClass::Lut,
        InstClass::PackedDot,
        InstClass::PackedAlu,
        InstClass::PackedLoad,
        InstClass::PackedCvt,
        InstClass::PackedFloat,
    ];

    /// Stable lowercase name (used in benchmark artefacts).
    pub fn name(self) -> &'static str {
        match self {
            InstClass::Alu => "alu",
            InstClass::Mul => "mul",
            InstClass::Div => "div",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Jump => "jump",
            InstClass::System => "system",
            InstClass::Lut => "lut",
            InstClass::PackedDot => "packed_dot",
            InstClass::PackedAlu => "packed_alu",
            InstClass::PackedLoad => "packed_load",
            InstClass::PackedCvt => "packed_cvt",
            InstClass::PackedFloat => "packed_float",
        }
    }
}

/// Retired-instruction and cycle counters per [`InstClass`].
///
/// The core keeps only the per-class instruction counts in its hot loop
/// (one array increment per step); the cycle attribution is derived on
/// demand from the counts, the [`crate::TimingModel`] and the
/// taken-branch upgrade total — exact because every instruction of a
/// class is charged the same base cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassHistogram {
    counts: [u64; NUM_INST_CLASSES],
    cycles: [u64; NUM_INST_CLASSES],
}

impl ClassHistogram {
    /// Fresh, zeroed histogram.
    pub fn new() -> Self {
        ClassHistogram::default()
    }

    /// Builds the full histogram from raw per-class retirement counts,
    /// the cycle model that charged them, and the accumulated
    /// taken-branch upgrade cycles.
    pub(crate) fn from_counts(
        counts: &[u64; NUM_INST_CLASSES],
        extra_branch_cycles: u64,
        timing: &crate::TimingModel,
    ) -> Self {
        let mut h = ClassHistogram {
            counts: *counts,
            cycles: [0; NUM_INST_CLASSES],
        };
        for class in InstClass::ALL {
            h.cycles[class as usize] = counts[class as usize] * timing.class_cost(class);
        }
        h.cycles[InstClass::Branch as usize] += extra_branch_cycles;
        h
    }

    /// Adds `other`'s counts and cycles into `self` — the cluster-level
    /// aggregation: summing every armed hart's histogram gives the
    /// SoC-wide class breakdown without ever arming idle harts.
    pub fn merge(&mut self, other: &ClassHistogram) {
        for i in 0..NUM_INST_CLASSES {
            self.counts[i] += other.counts[i];
            self.cycles[i] += other.cycles[i];
        }
    }

    /// Instructions retired in `class`.
    pub fn count(&self, class: InstClass) -> u64 {
        self.counts[class as usize]
    }

    /// Cycles consumed by `class`.
    pub fn cycles(&self, class: InstClass) -> u64 {
        self.cycles[class as usize]
    }

    /// Total retired instructions across all classes.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total cycles across all classes.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// `(class, count, cycles)` rows for every class with activity,
    /// sorted by descending cycles.
    pub fn rows(&self) -> Vec<(InstClass, u64, u64)> {
        let mut rows: Vec<_> = InstClass::ALL
            .iter()
            .filter(|&&c| self.counts[c as usize] > 0)
            .map(|&c| (c, self.counts[c as usize], self.cycles[c as usize]))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.2));
        rows
    }

    /// Formats the histogram as an aligned text table (paper-style
    /// cycles-per-class breakdown).
    pub fn to_table(&self) -> String {
        let total = self.total_cycles().max(1);
        let mut out = String::from("class            instructions        cycles   share\n");
        for (class, count, cycles) in self.rows() {
            out.push_str(&format!(
                "{:<14} {count:>14} {cycles:>13}   {:5.1}%\n",
                class.name(),
                100.0 * cycles as f64 / total as f64
            ));
        }
        out
    }
}

/// Accumulates per-region self-cycles.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// Stack of `(region, cycles_at_entry_or_resume, accumulated)`.
    stack: Vec<(u32, u64, u64)>,
    totals: BTreeMap<u32, u64>,
    /// Number of push events per region (call counts).
    calls: BTreeMap<u32, u64>,
}

impl Profiler {
    /// Fresh, empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Region push (CSR 0x7C0 write) at absolute cycle `now`.
    pub fn push(&mut self, region: u32, now: u64) {
        // Pause the parent.
        if let Some(top) = self.stack.last_mut() {
            top.2 += now - top.1;
        }
        self.stack.push((region, now, 0));
        *self.calls.entry(region).or_insert(0) += 1;
    }

    /// Region pop (CSR 0x7C1 write) at absolute cycle `now`.
    ///
    /// Unbalanced pops are ignored (defensive: generated code is tested to
    /// balance them).
    pub fn pop(&mut self, now: u64) {
        if let Some((region, since, acc)) = self.stack.pop() {
            let self_cycles = acc + (now - since);
            *self.totals.entry(region).or_insert(0) += self_cycles;
            // Resume the parent clock.
            if let Some(top) = self.stack.last_mut() {
                top.1 = now;
            }
        }
    }

    /// Finalises at end-of-run cycle `now`, closing any open regions.
    pub fn finish(&mut self, now: u64) {
        while !self.stack.is_empty() {
            self.pop(now);
        }
    }

    /// Produces the report, mapping region ids to names via `names`
    /// (unknown ids are labelled `region-N`).
    pub fn report(&self, total_cycles: u64, names: &BTreeMap<u32, String>) -> ProfileReport {
        let mut regions: Vec<(String, u64, u64)> = self
            .totals
            .iter()
            .map(|(&id, &cycles)| {
                let name = names
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| format!("region-{id}"));
                (name, cycles, self.calls.get(&id).copied().unwrap_or(0))
            })
            .collect();
        regions.sort_by_key(|r| std::cmp::Reverse(r.1));
        let attributed: u64 = self.totals.values().sum();
        ProfileReport {
            regions,
            attributed_cycles: attributed,
            total_cycles,
        }
    }
}

/// A finished profile: per-region self-cycles, sorted descending.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// `(name, self_cycles, calls)` per region, largest first.
    pub regions: Vec<(String, u64, u64)>,
    /// Sum of all attributed cycles.
    pub attributed_cycles: u64,
    /// Total cycles of the run (attributed + untracked).
    pub total_cycles: u64,
}

impl ProfileReport {
    /// Percentage of total cycles for a region by name.
    pub fn percent(&self, name: &str) -> Option<f64> {
        self.regions
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, c, _)| 100.0 * *c as f64 / self.total_cycles.max(1) as f64)
    }

    /// Formats the report as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from("region                     cycles      calls   share\n");
        for (name, cycles, calls) in &self.regions {
            out.push_str(&format!(
                "{name:<22} {cycles:>12} {calls:>10}   {:5.1}%\n",
                100.0 * *cycles as f64 / self.total_cycles.max(1) as f64
            ));
        }
        let other = self.total_cycles.saturating_sub(self.attributed_cycles);
        out.push_str(&format!(
            "{:<22} {other:>12} {:>10}   {:5.1}%\n",
            "(untracked)",
            "-",
            100.0 * other as f64 / self.total_cycles.max(1) as f64
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> BTreeMap<u32, String> {
        [(1, "matmul".to_string()), (2, "softmax".to_string())]
            .into_iter()
            .collect()
    }

    #[test]
    fn flat_regions_accumulate() {
        let mut p = Profiler::new();
        p.push(1, 0);
        p.pop(100);
        p.push(2, 100);
        p.pop(150);
        p.push(1, 150);
        p.pop(250);
        let r = p.report(250, &names());
        assert_eq!(r.regions[0], ("matmul".to_string(), 200, 2));
        assert_eq!(r.regions[1], ("softmax".to_string(), 50, 1));
        assert_eq!(r.attributed_cycles, 250);
        assert!((r.percent("matmul").unwrap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn nesting_attributes_self_time() {
        let mut p = Profiler::new();
        p.push(1, 0); // matmul
        p.push(2, 30); // softmax inside matmul
        p.pop(70); // softmax self = 40
        p.pop(100); // matmul self = 30 + 30 = 60
        let r = p.report(100, &names());
        let matmul = r.regions.iter().find(|(n, _, _)| n == "matmul").unwrap();
        let softmax = r.regions.iter().find(|(n, _, _)| n == "softmax").unwrap();
        assert_eq!(matmul.1, 60);
        assert_eq!(softmax.1, 40);
        assert_eq!(r.attributed_cycles, 100);
    }

    #[test]
    fn finish_closes_open_regions() {
        let mut p = Profiler::new();
        p.push(1, 0);
        p.push(2, 10);
        p.finish(50);
        let r = p.report(50, &names());
        assert_eq!(r.attributed_cycles, 50);
    }

    #[test]
    fn unbalanced_pop_is_ignored() {
        let mut p = Profiler::new();
        p.pop(10); // no-op
        let r = p.report(10, &names());
        assert!(r.regions.is_empty());
    }

    #[test]
    fn unknown_region_named_generically() {
        let mut p = Profiler::new();
        p.push(99, 0);
        p.pop(5);
        let r = p.report(5, &names());
        assert_eq!(r.regions[0].0, "region-99");
    }

    #[test]
    fn table_formatting_mentions_untracked() {
        let mut p = Profiler::new();
        p.push(1, 0);
        p.pop(40);
        let r = p.report(100, &names());
        let t = r.to_table();
        assert!(t.contains("matmul"));
        assert!(t.contains("untracked"));
    }
}
