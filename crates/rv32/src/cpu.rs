//! Fetch/decode/execute core with cycle accounting.
//!
//! Instruction dispatch runs through the pre-decode cache of
//! [`crate::icache`]: each parcel is fetched and decoded at most once,
//! subsequent steps at the same pc dispatch directly on the cached
//! [`Inst`]. Architectural stores invalidate overlapping cache slots, so
//! self-modifying code behaves exactly as on the uncached interpreter
//! (covered by `tests/differential.rs`).

use crate::icache::{DecodeCache, DecodeCacheStats};
use crate::mem::Memory;
use crate::profile::Profiler;
use crate::trap::Trap;
use crate::TimingModel;
use kwt_quant::{LutSet, Q8_24};
use kwt_rvasm::{expand_compressed, CustomOp, Inst, Reg};
use std::collections::BTreeMap;

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Continue executing.
    Continue,
    /// `ebreak` retired — the program is done.
    Halted,
}

/// The simulated RV32IMC hart.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Integer register file (`x0` is hardwired to zero on write).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// RAM.
    pub mem: Memory,
    /// Cycle counter (driven by the [`TimingModel`]).
    pub cycles: u64,
    /// Retired instruction counter.
    pub instret: u64,
    /// Region profiler fed by CSR 0x7C0/0x7C1 writes.
    pub profiler: Profiler,
    timing: TimingModel,
    luts: LutSet,
    csrs: BTreeMap<u32, u32>,
    icache: DecodeCache,
}

impl Cpu {
    /// Creates a hart over `mem` with the given timing and LUT ROMs.
    pub fn new(mem: Memory, timing: TimingModel, luts: LutSet) -> Self {
        let icache = DecodeCache::new(mem.base(), mem.size());
        Cpu {
            regs: [0; 32],
            pc: 0,
            mem,
            cycles: 0,
            instret: 0,
            profiler: Profiler::new(),
            timing,
            luts,
            csrs: BTreeMap::new(),
            icache,
        }
    }

    /// Enables or disables the pre-decode cache (default: enabled).
    /// Disabling flushes it, so re-enabling starts cold. Used by the
    /// benchmark suite for cache-on/off comparisons.
    pub fn set_decode_cache_enabled(&mut self, enabled: bool) {
        self.icache.set_enabled(enabled);
    }

    /// Whether the pre-decode cache is serving lookups.
    pub fn decode_cache_enabled(&self) -> bool {
        self.icache.enabled()
    }

    /// Drops every cached decoded instruction. Call after mutating
    /// executed code regions directly through [`Cpu::mem`] (host writes
    /// through [`crate::Machine`]'s typed writers invalidate
    /// automatically).
    pub fn flush_decode_cache(&mut self) {
        self.icache.flush();
    }

    /// Invalidates cached decoded instructions overlapping
    /// `[addr, addr + len)` — the host-side counterpart of the
    /// invalidation architectural stores perform automatically.
    pub fn invalidate_decode_cache(&mut self, addr: u32, len: u32) {
        self.icache.invalidate(addr, len);
    }

    /// Hit/miss/invalidation counters of the pre-decode cache.
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.icache.stats()
    }

    /// Base cycle cost of `inst` under timing model `t` (branches are
    /// charged not-taken here; the taken upgrade happens at execution).
    /// Computed once per cached instruction.
    fn inst_cost(t: &TimingModel, inst: &Inst) -> u64 {
        use Inst::*;
        match inst {
            Lui { .. } | Auipc { .. } | Addi { .. } | Slti { .. } | Sltiu { .. }
            | Xori { .. } | Ori { .. } | Andi { .. } | Slli { .. } | Srli { .. }
            | Srai { .. } | Add { .. } | Sub { .. } | Sll { .. } | Slt { .. }
            | Sltu { .. } | Xor { .. } | Srl { .. } | Sra { .. } | Or { .. } | And { .. }
            | Csrrw { .. } | Csrrs { .. } | Csrrc { .. } | Ecall | Ebreak => t.alu,
            Mul { .. } | Mulh { .. } | Mulhsu { .. } | Mulhu { .. } => t.mul,
            Div { .. } | Divu { .. } | Rem { .. } | Remu { .. } => t.div,
            Lb { .. } | Lh { .. } | Lw { .. } | Lbu { .. } | Lhu { .. } => t.load,
            Sb { .. } | Sh { .. } | Sw { .. } => t.store,
            Jal { .. } | Jalr { .. } => t.jump,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. }
            | Bgeu { .. } => t.branch_not_taken, // upgraded at execution if taken
            Custom { .. } => t.custom,
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    /// Writes a register (`x0` writes are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::Zero {
            self.regs[r.num() as usize] = value;
        }
    }

    /// The LUT ROMs backing the custom instructions.
    pub fn luts(&self) -> &LutSet {
        &self.luts
    }

    /// Replaces the LUT ROMs (threshold experiments).
    pub fn set_luts(&mut self, luts: LutSet) {
        self.luts = luts;
    }

    fn csr_read(&self, csr: u32) -> u32 {
        match csr {
            0xB00 => self.cycles as u32,        // mcycle
            0xB80 => (self.cycles >> 32) as u32, // mcycleh
            0xB02 => self.instret as u32,       // minstret
            0xB82 => (self.instret >> 32) as u32,
            _ => self.csrs.get(&csr).copied().unwrap_or(0),
        }
    }

    fn csr_write(&mut self, csr: u32, value: u32) {
        match csr {
            kwt_rvasm::CSR_PROFILE_PUSH => self.profiler.push(value, self.cycles),
            kwt_rvasm::CSR_PROFILE_POP => self.profiler.pop(self.cycles),
            _ => {
                self.csrs.insert(csr, value);
            }
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on any fault; the hart state is left at the
    /// faulting instruction for post-mortem inspection.
    pub fn step(&mut self) -> Result<StepOutcome, Trap> {
        let pc = self.pc;
        let (inst, len, cost) = match self.icache.lookup(pc) {
            Some(hit) => hit,
            None => {
                let lo = self.mem.fetch16(pc)?;
                let (inst, len) = if lo & 0b11 == 0b11 {
                    let hi = self.mem.fetch16(pc.wrapping_add(2))?;
                    let word = lo as u32 | ((hi as u32) << 16);
                    (
                        Inst::decode(word).ok_or(Trap::IllegalInstruction { pc, word })?,
                        4,
                    )
                } else {
                    (
                        expand_compressed(lo).ok_or(Trap::IllegalInstruction {
                            pc,
                            word: lo as u32,
                        })?,
                        2,
                    )
                };
                let cost = Self::inst_cost(&self.timing, &inst);
                self.icache.fill(pc, inst, len, cost);
                (inst, len, cost)
            }
        };

        let mut next_pc = pc.wrapping_add(len);
        let t = self.timing;
        use Inst::*;
        self.cycles += cost;

        macro_rules! taken {
            () => {{
                self.cycles += t.branch_taken - t.branch_not_taken;
            }};
        }

        match inst {
            Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(len));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Jalr { rd, rs1, imm } => {
                let target = self.reg(rs1).wrapping_add(imm as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(len));
                next_pc = target;
            }
            Beq { rs1, rs2, offset } => {
                if self.reg(rs1) == self.reg(rs2) {
                    taken!();
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bne { rs1, rs2, offset } => {
                if self.reg(rs1) != self.reg(rs2) {
                    taken!();
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Blt { rs1, rs2, offset } => {
                if (self.reg(rs1) as i32) < (self.reg(rs2) as i32) {
                    taken!();
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bge { rs1, rs2, offset } => {
                if (self.reg(rs1) as i32) >= (self.reg(rs2) as i32) {
                    taken!();
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bltu { rs1, rs2, offset } => {
                if self.reg(rs1) < self.reg(rs2) {
                    taken!();
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bgeu { rs1, rs2, offset } => {
                if self.reg(rs1) >= self.reg(rs2) {
                    taken!();
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Lb { rd, rs1, imm } => {
                let v = self.mem.load8(self.reg(rs1).wrapping_add(imm as u32), pc)?;
                self.set_reg(rd, v as i8 as i32 as u32);
            }
            Lh { rd, rs1, imm } => {
                let v = self.mem.load16(self.reg(rs1).wrapping_add(imm as u32), pc)?;
                self.set_reg(rd, v as i16 as i32 as u32);
            }
            Lw { rd, rs1, imm } => {
                let v = self.mem.load32(self.reg(rs1).wrapping_add(imm as u32), pc)?;
                self.set_reg(rd, v);
            }
            Lbu { rd, rs1, imm } => {
                let v = self.mem.load8(self.reg(rs1).wrapping_add(imm as u32), pc)?;
                self.set_reg(rd, v as u32);
            }
            Lhu { rd, rs1, imm } => {
                let v = self.mem.load16(self.reg(rs1).wrapping_add(imm as u32), pc)?;
                self.set_reg(rd, v as u32);
            }
            Sb { rs2, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                self.mem.store8(addr, self.reg(rs2) as u8, pc)?;
                self.icache.invalidate(addr, 1);
            }
            Sh { rs2, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                self.mem.store16(addr, self.reg(rs2) as u16, pc)?;
                self.icache.invalidate(addr, 2);
            }
            Sw { rs2, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                self.mem.store32(addr, self.reg(rs2), pc)?;
                self.icache.invalidate(addr, 4);
            }
            Addi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1).wrapping_add(imm as u32)),
            Slti { rd, rs1, imm } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < imm) as u32)
            }
            Sltiu { rd, rs1, imm } => self.set_reg(rd, (self.reg(rs1) < imm as u32) as u32),
            Xori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Ori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Andi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Slli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) << (shamt & 31)),
            Srli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) >> (shamt & 31)),
            Srai { rd, rs1, shamt } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (shamt & 31)) as u32)
            }
            Add { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_add(self.reg(rs2))),
            Sub { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_sub(self.reg(rs2))),
            Sll { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) << (self.reg(rs2) & 31)),
            Slt { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32)
            }
            Sltu { rd, rs1, rs2 } => self.set_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32),
            Xor { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Srl { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 31)),
            Sra { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (self.reg(rs2) & 31)) as u32)
            }
            Or { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) | self.reg(rs2)),
            And { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) & self.reg(rs2)),
            Mul { rd, rs1, rs2 } => self.set_reg(
                rd,
                (self.reg(rs1) as i32).wrapping_mul(self.reg(rs2) as i32) as u32,
            ),
            Mulh { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as i32 as i64);
                self.set_reg(rd, (p >> 32) as u32);
            }
            Mulhsu { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as u64 as i64);
                self.set_reg(rd, (p >> 32) as u32);
            }
            Mulhu { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as u64) * (self.reg(rs2) as u64);
                self.set_reg(rd, (p >> 32) as u32);
            }
            Div { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let q = if b == 0 {
                    -1
                } else if a == i32::MIN && b == -1 {
                    i32::MIN
                } else {
                    a.wrapping_div(b)
                };
                self.set_reg(rd, q as u32);
            }
            Divu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let q = if b == 0 { u32::MAX } else { self.reg(rs1) / b };
                self.set_reg(rd, q);
            }
            Rem { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let r = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a.wrapping_rem(b)
                };
                self.set_reg(rd, r as u32);
            }
            Remu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let r = if b == 0 { self.reg(rs1) } else { self.reg(rs1) % b };
                self.set_reg(rd, r);
            }
            Ecall => return Err(Trap::EnvironmentCall { pc }),
            Ebreak => {
                self.instret += 1;
                return Ok(StepOutcome::Halted);
            }
            Csrrw { rd, rs1, csr } => {
                let old = self.csr_read(csr);
                self.csr_write(csr, self.reg(rs1));
                self.set_reg(rd, old);
            }
            Csrrs { rd, rs1, csr } => {
                let old = self.csr_read(csr);
                if rs1 != Reg::Zero {
                    self.csr_write(csr, old | self.reg(rs1));
                }
                self.set_reg(rd, old);
            }
            Csrrc { rd, rs1, csr } => {
                let old = self.csr_read(csr);
                if rs1 != Reg::Zero {
                    self.csr_write(csr, old & !self.reg(rs1));
                }
                self.set_reg(rd, old);
            }
            Custom { op, rd, rs1, rs2: _ } => {
                let x = self.reg(rs1);
                let y = match op {
                    CustomOp::Exp => self.luts.alu_exp(Q8_24::from_bits(x as i32)).to_bits() as u32,
                    CustomOp::Invert => {
                        self.luts.alu_invert(Q8_24::from_bits(x as i32)).to_bits() as u32
                    }
                    CustomOp::Gelu => {
                        self.luts.alu_gelu(Q8_24::from_bits(x as i32)).to_bits() as u32
                    }
                    CustomOp::ToFixed => Q8_24::from_f32(f32::from_bits(x)).to_bits() as u32,
                    CustomOp::ToFloat => Q8_24::from_bits(x as i32).to_f32().to_bits(),
                };
                self.set_reg(rd, y);
            }
        }

        self.pc = next_pc;
        self.instret += 1;
        Ok(StepOutcome::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;
    use kwt_rvasm::Asm;

    /// Assembles, runs to `ebreak`, returns the CPU for inspection.
    fn run(build: impl FnOnce(&mut Asm)) -> Cpu {
        let mut asm = Asm::new(0, 0x8000);
        build(&mut asm);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        let platform = Platform::ibex();
        let mut mem = Memory::new(platform.ram_base, platform.ram_size);
        let text: Vec<u8> = p.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        mem.write_bytes(p.text_base, &text);
        mem.write_bytes(p.data_base, &p.data);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        cpu.pc = p.text_base;
        cpu.set_reg(Reg::Sp, platform.initial_sp());
        for _ in 0..100_000 {
            match cpu.step().unwrap() {
                StepOutcome::Continue => {}
                StepOutcome::Halted => return cpu,
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run(|a| {
            a.li(Reg::T0, 100);
            a.li(Reg::T1, -30);
            a.emit(Inst::Add { rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
            a.emit(Inst::Sub { rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T1 });
            a.emit(Inst::Xor { rd: Reg::A2, rs1: Reg::T0, rs2: Reg::T1 });
        });
        assert_eq!(cpu.reg(Reg::A0), 70);
        assert_eq!(cpu.reg(Reg::A1), 130);
        assert_eq!(cpu.reg(Reg::A2), (100i32 ^ -30) as u32);
    }

    #[test]
    fn x0_is_hardwired() {
        let cpu = run(|a| {
            a.li(Reg::T0, 5);
            a.emit(Inst::Add { rd: Reg::Zero, rs1: Reg::T0, rs2: Reg::T0 });
            a.emit(Inst::Add { rd: Reg::A0, rs1: Reg::Zero, rs2: Reg::Zero });
        });
        assert_eq!(cpu.reg(Reg::A0), 0);
    }

    #[test]
    fn shifts_and_compares() {
        let cpu = run(|a| {
            a.li(Reg::T0, -8);
            a.emit(Inst::Srai { rd: Reg::A0, rs1: Reg::T0, shamt: 1 }); // -4
            a.emit(Inst::Srli { rd: Reg::A1, rs1: Reg::T0, shamt: 28 }); // 0xF
            a.emit(Inst::Slti { rd: Reg::A2, rs1: Reg::T0, imm: 0 }); // 1
            a.emit(Inst::Sltiu { rd: Reg::A3, rs1: Reg::T0, imm: 0 }); // 0 (big unsigned)
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -4);
        assert_eq!(cpu.reg(Reg::A1), 0xF);
        assert_eq!(cpu.reg(Reg::A2), 1);
        assert_eq!(cpu.reg(Reg::A3), 0);
    }

    #[test]
    fn memory_sign_extension() {
        let cpu = run(|a| {
            a.li(Reg::T0, 0x8000);
            a.li(Reg::T1, -1);
            a.emit(Inst::Sb { rs2: Reg::T1, rs1: Reg::T0, imm: 0 });
            a.emit(Inst::Lb { rd: Reg::A0, rs1: Reg::T0, imm: 0 });
            a.emit(Inst::Lbu { rd: Reg::A1, rs1: Reg::T0, imm: 0 });
            a.li(Reg::T2, -2);
            a.emit(Inst::Sh { rs2: Reg::T2, rs1: Reg::T0, imm: 2 });
            a.emit(Inst::Lh { rd: Reg::A2, rs1: Reg::T0, imm: 2 });
            a.emit(Inst::Lhu { rd: Reg::A3, rs1: Reg::T0, imm: 2 });
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -1);
        assert_eq!(cpu.reg(Reg::A1), 0xFF);
        assert_eq!(cpu.reg(Reg::A2) as i32, -2);
        assert_eq!(cpu.reg(Reg::A3), 0xFFFE);
    }

    #[test]
    fn branch_loop_sums() {
        // sum 1..=10 with a bne loop
        let cpu = run(|a| {
            a.li(Reg::T0, 10);
            a.li(Reg::A0, 0);
            let top = a.new_label();
            a.bind(top).unwrap();
            a.emit(Inst::Add { rd: Reg::A0, rs1: Reg::A0, rs2: Reg::T0 });
            a.emit(Inst::Addi { rd: Reg::T0, rs1: Reg::T0, imm: -1 });
            a.branch_to(
                Inst::Bne { rs1: Reg::T0, rs2: Reg::Zero, offset: 0 },
                top,
            );
        });
        assert_eq!(cpu.reg(Reg::A0), 55);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        let cpu = run(|a| {
            let f = a.new_label();
            let after = a.new_label();
            a.jal_to(Reg::Ra, f);
            a.bind(after).unwrap();
            a.emit(Inst::Addi { rd: Reg::A1, rs1: Reg::A0, imm: 1 });
            let skip = a.new_label();
            a.jump_to(skip);
            a.bind(f).unwrap();
            a.li(Reg::A0, 9);
            a.ret();
            a.bind(skip).unwrap();
        });
        assert_eq!(cpu.reg(Reg::A0), 9);
        assert_eq!(cpu.reg(Reg::A1), 10);
    }

    #[test]
    fn m_extension_division_edge_cases() {
        let cpu = run(|a| {
            a.li(Reg::T0, 7);
            a.li(Reg::T1, 0);
            a.emit(Inst::Div { rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 }); // -1
            a.emit(Inst::Rem { rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T1 }); // 7
            a.li(Reg::T2, i32::MIN);
            a.li(Reg::T3, -1);
            a.emit(Inst::Div { rd: Reg::A2, rs1: Reg::T2, rs2: Reg::T3 }); // MIN
            a.emit(Inst::Rem { rd: Reg::A3, rs1: Reg::T2, rs2: Reg::T3 }); // 0
            a.emit(Inst::Divu { rd: Reg::A4, rs1: Reg::T0, rs2: Reg::T1 }); // MAX
            a.emit(Inst::Remu { rd: Reg::A5, rs1: Reg::T0, rs2: Reg::T1 }); // 7
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -1);
        assert_eq!(cpu.reg(Reg::A1), 7);
        assert_eq!(cpu.reg(Reg::A2), i32::MIN as u32);
        assert_eq!(cpu.reg(Reg::A3), 0);
        assert_eq!(cpu.reg(Reg::A4), u32::MAX);
        assert_eq!(cpu.reg(Reg::A5), 7);
    }

    #[test]
    fn mul_high_variants() {
        let cpu = run(|a| {
            a.li(Reg::T0, -2);
            a.li(Reg::T1, 3);
            a.emit(Inst::Mul { rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 }); // -6
            a.emit(Inst::Mulh { rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T1 }); // -1 (sign)
            a.emit(Inst::Mulhu { rd: Reg::A2, rs1: Reg::T0, rs2: Reg::T1 }); // (2^32-2)*3 >> 32 = 2
            a.emit(Inst::Mulhsu { rd: Reg::A3, rs1: Reg::T0, rs2: Reg::T1 }); // -2*3 >> 32 = -1
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -6);
        assert_eq!(cpu.reg(Reg::A1) as i32, -1);
        assert_eq!(cpu.reg(Reg::A2), 2);
        assert_eq!(cpu.reg(Reg::A3) as i32, -1);
    }

    #[test]
    fn custom_ops_match_quant_golden_models() {
        let luts = LutSet::new();
        for x in [-1.5f32, 0.0, 0.3, 1.0, 2.5, 7.9] {
            let cpu = run(|a| {
                a.li(Reg::T0, x.to_bits() as i32);
                a.emit(Inst::Custom {
                    op: CustomOp::ToFixed,
                    rd: Reg::A0,
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                });
                a.emit(Inst::Custom {
                    op: CustomOp::Exp,
                    rd: Reg::A1,
                    rs1: Reg::A0,
                    rs2: Reg::Zero,
                });
                a.emit(Inst::Custom {
                    op: CustomOp::Invert,
                    rd: Reg::A2,
                    rs1: Reg::A0,
                    rs2: Reg::Zero,
                });
                a.emit(Inst::Custom {
                    op: CustomOp::Gelu,
                    rd: Reg::A3,
                    rs1: Reg::A0,
                    rs2: Reg::Zero,
                });
                a.emit(Inst::Custom {
                    op: CustomOp::ToFloat,
                    rd: Reg::A4,
                    rs1: Reg::A0,
                    rs2: Reg::Zero,
                });
            });
            let q = Q8_24::from_f32(x);
            assert_eq!(cpu.reg(Reg::A0) as i32, q.to_bits(), "tofixed {x}");
            assert_eq!(cpu.reg(Reg::A1) as i32, luts.alu_exp(q).to_bits(), "exp {x}");
            assert_eq!(
                cpu.reg(Reg::A2) as i32,
                luts.alu_invert(q).to_bits(),
                "invert {x}"
            );
            assert_eq!(cpu.reg(Reg::A3) as i32, luts.alu_gelu(q).to_bits(), "gelu {x}");
            assert_eq!(
                f32::from_bits(cpu.reg(Reg::A4)),
                q.to_f32(),
                "tofloat {x}"
            );
        }
    }

    #[test]
    fn cycle_accounting_follows_model() {
        // addi (1) + addi (1) + mul (3) + lw (2) + sw (2) + ebreak (1)
        let cpu = run(|a| {
            a.li(Reg::T0, 3); // addi
            a.li(Reg::T1, 4); // addi
            a.emit(Inst::Mul { rd: Reg::T2, rs1: Reg::T0, rs2: Reg::T1 });
            a.li(Reg::T3, 0x8000); // addi
            a.emit(Inst::Sw { rs2: Reg::T2, rs1: Reg::T3, imm: 0 });
            a.emit(Inst::Lw { rd: Reg::A0, rs1: Reg::T3, imm: 0 });
        });
        assert_eq!(cpu.reg(Reg::A0), 12);
        // 3 addi + mul + sw + lw + ebreak = 3*1 + 3 + 2 + 2 + 1 = 11
        assert_eq!(cpu.cycles, 11);
        assert_eq!(cpu.instret, 7);
    }

    #[test]
    fn taken_branches_cost_more() {
        let not_taken = run(|a| {
            a.li(Reg::T0, 1);
            let l = a.new_label();
            a.branch_to(
                Inst::Beq { rs1: Reg::T0, rs2: Reg::Zero, offset: 0 },
                l,
            );
            a.bind(l).unwrap();
        })
        .cycles;
        let taken = run(|a| {
            a.li(Reg::T0, 0);
            let l = a.new_label();
            a.branch_to(
                Inst::Beq { rs1: Reg::T0, rs2: Reg::Zero, offset: 0 },
                l,
            );
            a.bind(l).unwrap();
        })
        .cycles;
        assert_eq!(taken - not_taken, 2); // 3 vs 1
    }

    #[test]
    fn mcycle_csr_is_readable() {
        let cpu = run(|a| {
            a.emit(Inst::Csrrs { rd: Reg::A0, rs1: Reg::Zero, csr: 0xB00 });
            a.nop();
            a.nop();
            a.emit(Inst::Csrrs { rd: Reg::A1, rs1: Reg::Zero, csr: 0xB00 });
        });
        let before = cpu.reg(Reg::A0);
        let after = cpu.reg(Reg::A1);
        assert_eq!(after - before, 3); // 2 nops + second csrrs itself
    }

    #[test]
    fn profiler_csr_integration() {
        let mut cpu = run(|a| {
            a.li(Reg::T0, 1);
            a.emit(Inst::Csrrw { rd: Reg::Zero, rs1: Reg::T0, csr: 0x7C0 });
            a.nop();
            a.nop();
            a.emit(Inst::Csrrw { rd: Reg::Zero, rs1: Reg::Zero, csr: 0x7C1 });
        });
        cpu.profiler.finish(cpu.cycles);
        let names = [(1u32, "work".to_string())].into_iter().collect();
        let report = cpu.profiler.report(cpu.cycles, &names);
        assert_eq!(report.regions.len(), 1);
        assert_eq!(report.regions[0].0, "work");
        // two nops + the pop csr write = 3 cycles inside the region
        assert_eq!(report.regions[0].1, 3);
    }

    #[test]
    fn ecall_traps() {
        let mut asm = Asm::new(0, 0x8000);
        asm.emit(Inst::Ecall);
        let p = asm.finish().unwrap();
        let mut mem = Memory::new(0, 0x1000);
        let text: Vec<u8> = p.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        mem.write_bytes(0, &text);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        assert!(matches!(cpu.step(), Err(Trap::EnvironmentCall { pc: 0 })));
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = Memory::new(0, 0x1000);
        mem.write_bytes(0, &0xFFFF_FFFFu32.to_le_bytes());
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        assert!(matches!(cpu.step(), Err(Trap::IllegalInstruction { .. })));
    }

    #[test]
    fn compressed_instructions_execute() {
        // c.li a0, 3 (0x450d); c.addi a0, 1 (0x0505); c.ebreak (0x9002)
        let mut mem = Memory::new(0, 0x1000);
        mem.write_bytes(0, &[0x0D, 0x45, 0x05, 0x05, 0x02, 0x90]);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        assert_eq!(cpu.step().unwrap(), StepOutcome::Continue);
        assert_eq!(cpu.pc, 2); // compressed: +2
        assert_eq!(cpu.step().unwrap(), StepOutcome::Continue);
        assert_eq!(cpu.reg(Reg::A0), 4);
        assert_eq!(cpu.step().unwrap(), StepOutcome::Halted);
    }
}
