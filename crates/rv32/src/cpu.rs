//! Fetch/decode/execute core with cycle accounting, organised as a set
//! of **functional units**.
//!
//! Instruction dispatch runs through the pre-decode cache of
//! [`crate::icache`]: each parcel is fetched and decoded at most once,
//! and the cached slot carries the decoded [`Inst`], its length, its
//! [`InstClass`] and its base cycle cost. [`Cpu::step`] charges the
//! cycles, records the class histogram, and routes the instruction to
//! one of the core's units ([`FuncUnit`]):
//!
//! * **ALU** — integer arithmetic, logic, shifts, compares, `lui`/`auipc`
//! * **mul/div** — the M extension
//! * **load/store** — scalar memory accesses (with decode-cache
//!   invalidation on stores)
//! * **branch** — conditional branches and jumps (taken-branch upgrade)
//! * **system** — `ecall`/`ebreak`/Zicsr
//! * **LUT** — the paper's custom-1 Q8.24 ops backed by [`LutSet`] ROMs
//! * **packed SIMD** — the Xkwtdot custom-2 extension (`kdot4.i8`,
//!   `kdot2.i16`, `ksat.i16`, `kclip`, `klw.b2h`, `kcvt.h2f`,
//!   `kcvt.f2h`)
//!
//! Architectural stores invalidate overlapping cache slots, so
//! self-modifying code behaves exactly as on the uncached interpreter
//! (covered by `tests/differential.rs`).

use crate::icache::{DecodeCache, DecodeCacheStats};
use crate::mem::Memory;
use crate::profile::{ClassHistogram, InstClass, Profiler, NUM_INST_CLASSES};
use crate::trap::Trap;
use crate::TimingModel;
use kwt_quant::{LutSet, Q8_24};
use kwt_rvasm::{expand_compressed, CustomOp, Inst, PackedOp, Reg};
use std::collections::BTreeMap;

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Continue executing.
    Continue,
    /// `ebreak` retired — the program is done.
    Halted,
}

/// The functional unit that executes an instruction — the dispatch axis
/// of [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncUnit {
    /// Integer ALU (arithmetic, logic, shifts, compares, `lui`/`auipc`).
    Alu,
    /// Multiplier / divider (the M extension).
    MulDiv,
    /// Scalar load/store unit.
    LoadStore,
    /// Branch/jump unit.
    Branch,
    /// System unit (`ecall`/`ebreak`/Zicsr).
    System,
    /// custom-1 LUT unit (Q8.24 ROM lookups and float converts).
    Lut,
    /// custom-2 packed-SIMD unit (Xkwtdot).
    Simd,
}

impl InstClass {
    /// The functional unit responsible for this cycle class.
    pub fn unit(self) -> FuncUnit {
        match self {
            InstClass::Alu => FuncUnit::Alu,
            InstClass::Mul | InstClass::Div => FuncUnit::MulDiv,
            InstClass::Load | InstClass::Store => FuncUnit::LoadStore,
            InstClass::Branch | InstClass::Jump => FuncUnit::Branch,
            InstClass::System => FuncUnit::System,
            InstClass::Lut => FuncUnit::Lut,
            InstClass::PackedDot
            | InstClass::PackedAlu
            | InstClass::PackedLoad
            | InstClass::PackedCvt
            | InstClass::PackedFloat => FuncUnit::Simd,
        }
    }
}

/// Maps an instruction to its cycle class (and thereby its functional
/// unit). Computed once per cached instruction.
pub(crate) fn classify(inst: &Inst) -> InstClass {
    use Inst::*;
    match inst {
        Lui { .. }
        | Auipc { .. }
        | Addi { .. }
        | Slti { .. }
        | Sltiu { .. }
        | Xori { .. }
        | Ori { .. }
        | Andi { .. }
        | Slli { .. }
        | Srli { .. }
        | Srai { .. }
        | Add { .. }
        | Sub { .. }
        | Sll { .. }
        | Slt { .. }
        | Sltu { .. }
        | Xor { .. }
        | Srl { .. }
        | Sra { .. }
        | Or { .. }
        | And { .. } => InstClass::Alu,
        Mul { .. } | Mulh { .. } | Mulhsu { .. } | Mulhu { .. } => InstClass::Mul,
        Div { .. } | Divu { .. } | Rem { .. } | Remu { .. } => InstClass::Div,
        Lb { .. } | Lh { .. } | Lw { .. } | Lbu { .. } | Lhu { .. } => InstClass::Load,
        Sb { .. } | Sh { .. } | Sw { .. } => InstClass::Store,
        Jal { .. } | Jalr { .. } => InstClass::Jump,
        Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
            InstClass::Branch
        }
        Ecall | Ebreak | Csrrw { .. } | Csrrs { .. } | Csrrc { .. } => InstClass::System,
        Custom { .. } => InstClass::Lut,
        Packed { op, .. } => match op {
            PackedOp::Kdot4I8 | PackedOp::Kdot2I16 => InstClass::PackedDot,
            PackedOp::KsatI16 | PackedOp::Kclip => InstClass::PackedAlu,
            PackedOp::KcvtH2F | PackedOp::KcvtF2H => InstClass::PackedCvt,
            PackedOp::KfaddT | PackedOp::KfsubT | PackedOp::KfmulT => InstClass::PackedFloat,
        },
        KlwB2h { .. } => InstClass::PackedLoad,
    }
}

/// The simulated RV32IMC hart.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Integer register file (`x0` is hardwired to zero on write).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// RAM.
    pub mem: Memory,
    /// Cycle counter (driven by the [`TimingModel`]).
    pub cycles: u64,
    /// Retired instruction counter.
    pub instret: u64,
    /// Region profiler fed by CSR 0x7C0/0x7C1 writes.
    pub profiler: Profiler,
    timing: TimingModel,
    luts: LutSet,
    csrs: BTreeMap<u32, u32>,
    icache: DecodeCache,
    hist_enabled: bool,
    class_counts: [u64; NUM_INST_CLASSES],
    extra_branch_cycles: u64,
    daccess_enabled: bool,
    last_daccess: Option<u32>,
}

impl Cpu {
    /// Creates a hart over `mem` with the given timing and LUT ROMs.
    pub fn new(mem: Memory, timing: TimingModel, luts: LutSet) -> Self {
        let icache = DecodeCache::new(mem.base(), mem.size());
        Cpu {
            regs: [0; 32],
            pc: 0,
            mem,
            cycles: 0,
            instret: 0,
            profiler: Profiler::new(),
            timing,
            luts,
            csrs: BTreeMap::new(),
            icache,
            hist_enabled: false,
            class_counts: [0; NUM_INST_CLASSES],
            extra_branch_cycles: 0,
            daccess_enabled: false,
            last_daccess: None,
        }
    }

    /// Enables or disables the pre-decode cache (default: enabled).
    /// Disabling flushes it, so re-enabling starts cold. Used by the
    /// benchmark suite for cache-on/off comparisons.
    pub fn set_decode_cache_enabled(&mut self, enabled: bool) {
        self.icache.set_enabled(enabled);
    }

    /// Whether the pre-decode cache is serving lookups.
    pub fn decode_cache_enabled(&self) -> bool {
        self.icache.enabled()
    }

    /// Drops every cached decoded instruction. Call after mutating
    /// executed code regions directly through [`Cpu::mem`] (host writes
    /// through [`crate::Machine`]'s typed writers invalidate
    /// automatically).
    pub fn flush_decode_cache(&mut self) {
        self.icache.flush();
    }

    /// Invalidates cached decoded instructions overlapping
    /// `[addr, addr + len)` — the host-side counterpart of the
    /// invalidation architectural stores perform automatically.
    pub fn invalidate_decode_cache(&mut self, addr: u32, len: u32) {
        self.icache.invalidate(addr, len);
    }

    /// Hit/miss/invalidation counters of the pre-decode cache.
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.icache.stats()
    }

    /// The per-instruction-class cycle histogram accumulated while
    /// [enabled](Cpu::set_class_histogram_enabled).
    pub fn class_histogram(&self) -> ClassHistogram {
        ClassHistogram::from_counts(&self.class_counts, self.extra_branch_cycles, &self.timing)
    }

    /// Turns per-class retirement counting on or off (default **off**:
    /// like a hardware performance counter it is armed on demand — the
    /// data-dependent counter update costs ~20 % host throughput, so the
    /// plain execution path does not pay for it).
    pub fn set_class_histogram_enabled(&mut self, enabled: bool) {
        self.hist_enabled = enabled;
    }

    /// Whether per-class retirement counting is armed.
    pub fn class_histogram_enabled(&self) -> bool {
        self.hist_enabled
    }

    /// Clears the class histogram (the cycle/instret counters are
    /// untouched, so per-phase deltas are best taken by snapshotting).
    pub fn reset_class_histogram(&mut self) {
        self.class_counts = [0; NUM_INST_CLASSES];
        self.extra_branch_cycles = 0;
    }

    /// Turns the data-access trace on or off (default **off**). While
    /// armed, every load/store records the effective address it touched,
    /// readable (and cleared) through [`Cpu::take_data_access`]. Like
    /// the class histogram this is an opt-in probe: the plain execution
    /// path pays only one predictable branch for it. The cluster
    /// arbiter ([`crate::cluster`]) arms it to route accesses to banks.
    pub fn set_data_trace_enabled(&mut self, enabled: bool) {
        self.daccess_enabled = enabled;
        self.last_daccess = None;
    }

    /// Whether the data-access trace is armed.
    pub fn data_trace_enabled(&self) -> bool {
        self.daccess_enabled
    }

    /// The effective address of the most recent traced data access, if
    /// the last stepped instruction performed one. Clears the record, so
    /// each access is observed at most once. RV32 instructions make at
    /// most one data access each, so a single slot is lossless.
    pub fn take_data_access(&mut self) -> Option<u32> {
        self.last_daccess.take()
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    /// Writes a register (`x0` writes are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::Zero {
            self.regs[r.num() as usize] = value;
        }
    }

    /// The LUT ROMs backing the custom instructions.
    pub fn luts(&self) -> &LutSet {
        &self.luts
    }

    /// Replaces the LUT ROMs (threshold experiments).
    pub fn set_luts(&mut self, luts: LutSet) {
        self.luts = luts;
    }

    fn csr_read(&self, csr: u32) -> u32 {
        match csr {
            0xB00 => self.cycles as u32,         // mcycle
            0xB80 => (self.cycles >> 32) as u32, // mcycleh
            0xB02 => self.instret as u32,        // minstret
            0xB82 => (self.instret >> 32) as u32,
            _ => self.csrs.get(&csr).copied().unwrap_or(0),
        }
    }

    fn csr_write(&mut self, csr: u32, value: u32) {
        match csr {
            kwt_rvasm::CSR_PROFILE_PUSH => self.profiler.push(value, self.cycles),
            kwt_rvasm::CSR_PROFILE_POP => self.profiler.pop(self.cycles),
            _ => {
                self.csrs.insert(csr, value);
            }
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on any fault; the hart state is left at the
    /// faulting instruction for post-mortem inspection.
    pub fn step(&mut self) -> Result<StepOutcome, Trap> {
        let pc = self.pc;
        let (inst, len, class, cost) = match self.icache.lookup(pc) {
            Some(hit) => hit,
            None => {
                let lo = self.mem.fetch16(pc)?;
                let (inst, len) = if lo & 0b11 == 0b11 {
                    let hi = self.mem.fetch16(pc.wrapping_add(2))?;
                    let word = lo as u32 | ((hi as u32) << 16);
                    (
                        Inst::decode(word).ok_or(Trap::IllegalInstruction { pc, word })?,
                        4,
                    )
                } else {
                    (
                        expand_compressed(lo).ok_or(Trap::IllegalInstruction {
                            pc,
                            word: lo as u32,
                        })?,
                        2,
                    )
                };
                let class = classify(&inst);
                let cost = self.timing.class_cost(class);
                self.icache.fill(pc, inst, len, class, cost);
                (inst, len, class, cost)
            }
        };

        let mut next_pc = pc.wrapping_add(len);
        self.cycles += cost;

        match class.unit() {
            FuncUnit::Alu => self.exec_alu(inst, pc),
            FuncUnit::MulDiv => self.exec_muldiv(inst),
            FuncUnit::LoadStore => self.exec_load_store(inst, pc)?,
            FuncUnit::Branch => self.exec_branch_jump(inst, pc, len, &mut next_pc),
            FuncUnit::System => match self.exec_system(inst, pc)? {
                StepOutcome::Halted => {
                    self.instret += 1;
                    if self.hist_enabled {
                        self.class_counts[class as usize] += 1;
                    }
                    return Ok(StepOutcome::Halted);
                }
                StepOutcome::Continue => {}
            },
            FuncUnit::Lut => self.exec_lut(inst, pc)?,
            FuncUnit::Simd => self.exec_simd(inst, pc)?,
        }

        self.pc = next_pc;
        self.instret += 1;
        // counted at retirement, so histogram counts track instret even
        // across trapped runs (the faulting instruction's cycles stay
        // charged to `cycles` but are not attributed to a class)
        if self.hist_enabled {
            self.class_counts[class as usize] += 1;
        }
        Ok(StepOutcome::Continue)
    }

    /// Integer ALU unit: arithmetic, logic, shifts, compares, `lui`,
    /// `auipc`.
    #[inline(always)]
    fn exec_alu(&mut self, inst: Inst, pc: u32) {
        use Inst::*;
        match inst {
            Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Addi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1).wrapping_add(imm as u32)),
            Slti { rd, rs1, imm } => self.set_reg(rd, ((self.reg(rs1) as i32) < imm) as u32),
            Sltiu { rd, rs1, imm } => self.set_reg(rd, (self.reg(rs1) < imm as u32) as u32),
            Xori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Ori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Andi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Slli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) << (shamt & 31)),
            Srli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) >> (shamt & 31)),
            Srai { rd, rs1, shamt } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (shamt & 31)) as u32)
            }
            Add { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_add(self.reg(rs2))),
            Sub { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_sub(self.reg(rs2))),
            Sll { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) << (self.reg(rs2) & 31)),
            Slt { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32)
            }
            Sltu { rd, rs1, rs2 } => self.set_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32),
            Xor { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Srl { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 31)),
            Sra { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (self.reg(rs2) & 31)) as u32)
            }
            Or { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) | self.reg(rs2)),
            And { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) & self.reg(rs2)),
            other => unreachable!("{other:?} routed to the ALU unit"),
        }
    }

    /// Multiply/divide unit (the M extension).
    #[inline(always)]
    fn exec_muldiv(&mut self, inst: Inst) {
        use Inst::*;
        match inst {
            Mul { rd, rs1, rs2 } => self.set_reg(
                rd,
                (self.reg(rs1) as i32).wrapping_mul(self.reg(rs2) as i32) as u32,
            ),
            Mulh { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as i32 as i64);
                self.set_reg(rd, (p >> 32) as u32);
            }
            Mulhsu { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as u64 as i64);
                self.set_reg(rd, (p >> 32) as u32);
            }
            Mulhu { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as u64) * (self.reg(rs2) as u64);
                self.set_reg(rd, (p >> 32) as u32);
            }
            Div { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let q = if b == 0 {
                    -1
                } else if a == i32::MIN && b == -1 {
                    i32::MIN
                } else {
                    a.wrapping_div(b)
                };
                self.set_reg(rd, q as u32);
            }
            Divu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let q = self.reg(rs1).checked_div(b).unwrap_or(u32::MAX);
                self.set_reg(rd, q);
            }
            Rem { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let r = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a.wrapping_rem(b)
                };
                self.set_reg(rd, r as u32);
            }
            Remu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let r = if b == 0 {
                    self.reg(rs1)
                } else {
                    self.reg(rs1) % b
                };
                self.set_reg(rd, r);
            }
            other => unreachable!("{other:?} routed to the mul/div unit"),
        }
    }

    /// Scalar load/store unit. Stores invalidate overlapping decode-cache
    /// slots so self-modifying code stays architecturally exact.
    #[inline(always)]
    fn exec_load_store(&mut self, inst: Inst, pc: u32) -> Result<(), Trap> {
        use Inst::*;
        let addr = match inst {
            Lb { rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let v = self.mem.load8(addr, pc)?;
                self.set_reg(rd, v as i8 as i32 as u32);
                addr
            }
            Lh { rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let v = self.mem.load16(addr, pc)?;
                self.set_reg(rd, v as i16 as i32 as u32);
                addr
            }
            Lw { rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let v = self.mem.load32(addr, pc)?;
                self.set_reg(rd, v);
                addr
            }
            Lbu { rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let v = self.mem.load8(addr, pc)?;
                self.set_reg(rd, v as u32);
                addr
            }
            Lhu { rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let v = self.mem.load16(addr, pc)?;
                self.set_reg(rd, v as u32);
                addr
            }
            Sb { rs2, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                self.mem.store8(addr, self.reg(rs2) as u8, pc)?;
                self.icache.invalidate(addr, 1);
                addr
            }
            Sh { rs2, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                self.mem.store16(addr, self.reg(rs2) as u16, pc)?;
                self.icache.invalidate(addr, 2);
                addr
            }
            Sw { rs2, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                self.mem.store32(addr, self.reg(rs2), pc)?;
                self.icache.invalidate(addr, 4);
                addr
            }
            other => unreachable!("{other:?} routed to the load/store unit"),
        };
        if self.daccess_enabled {
            self.last_daccess = Some(addr);
        }
        Ok(())
    }

    /// Branch/jump unit. Taken branches upgrade the charged cycles from
    /// the cached not-taken cost.
    #[inline(always)]
    fn exec_branch_jump(&mut self, inst: Inst, pc: u32, len: u32, next_pc: &mut u32) {
        use Inst::*;
        let t = self.timing;
        macro_rules! branch {
            ($cond:expr, $offset:expr) => {
                if $cond {
                    let upgrade = t.branch_taken - t.branch_not_taken;
                    self.cycles += upgrade;
                    if self.hist_enabled {
                        self.extra_branch_cycles += upgrade;
                    }
                    *next_pc = pc.wrapping_add($offset as u32);
                }
            };
        }
        match inst {
            Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(len));
                *next_pc = pc.wrapping_add(offset as u32);
            }
            Jalr { rd, rs1, imm } => {
                let target = self.reg(rs1).wrapping_add(imm as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(len));
                *next_pc = target;
            }
            Beq { rs1, rs2, offset } => branch!(self.reg(rs1) == self.reg(rs2), offset),
            Bne { rs1, rs2, offset } => branch!(self.reg(rs1) != self.reg(rs2), offset),
            Blt { rs1, rs2, offset } => {
                branch!((self.reg(rs1) as i32) < (self.reg(rs2) as i32), offset)
            }
            Bge { rs1, rs2, offset } => {
                branch!((self.reg(rs1) as i32) >= (self.reg(rs2) as i32), offset)
            }
            Bltu { rs1, rs2, offset } => branch!(self.reg(rs1) < self.reg(rs2), offset),
            Bgeu { rs1, rs2, offset } => branch!(self.reg(rs1) >= self.reg(rs2), offset),
            other => unreachable!("{other:?} routed to the branch unit"),
        }
    }

    /// System unit: environment calls, breakpoints, Zicsr.
    #[inline(always)]
    fn exec_system(&mut self, inst: Inst, pc: u32) -> Result<StepOutcome, Trap> {
        use Inst::*;
        match inst {
            Ecall => return Err(Trap::EnvironmentCall { pc }),
            Ebreak => return Ok(StepOutcome::Halted),
            Csrrw { rd, rs1, csr } => {
                let old = self.csr_read(csr);
                self.csr_write(csr, self.reg(rs1));
                self.set_reg(rd, old);
            }
            Csrrs { rd, rs1, csr } => {
                let old = self.csr_read(csr);
                if rs1 != Reg::Zero {
                    self.csr_write(csr, old | self.reg(rs1));
                }
                self.set_reg(rd, old);
            }
            Csrrc { rd, rs1, csr } => {
                let old = self.csr_read(csr);
                if rs1 != Reg::Zero {
                    self.csr_write(csr, old & !self.reg(rs1));
                }
                self.set_reg(rd, old);
            }
            other => unreachable!("{other:?} routed to the system unit"),
        }
        Ok(StepOutcome::Continue)
    }

    /// custom-1 LUT unit. Out-of-range indices on (truncated) tables
    /// raise [`Trap::LutIndexOutOfRange`] instead of panicking the host.
    #[inline(always)]
    fn exec_lut(&mut self, inst: Inst, pc: u32) -> Result<(), Trap> {
        let Inst::Custom {
            op,
            rd,
            rs1,
            rs2: _,
        } = inst
        else {
            unreachable!("{inst:?} routed to the LUT unit")
        };
        let x = self.reg(rs1);
        let lut = |r: Result<Q8_24, usize>, table_len: usize| {
            r.map(|q| q.to_bits() as u32)
                .map_err(|index| Trap::LutIndexOutOfRange {
                    pc,
                    index: index as u32,
                    table_len: table_len as u32,
                })
        };
        let y = match op {
            CustomOp::Exp => lut(
                self.luts.try_alu_exp(Q8_24::from_bits(x as i32)),
                self.luts.exp_len(),
            )?,
            CustomOp::Invert => lut(
                self.luts.try_alu_invert(Q8_24::from_bits(x as i32)),
                self.luts.inv_len(),
            )?,
            CustomOp::Gelu => lut(
                self.luts.try_alu_gelu(Q8_24::from_bits(x as i32)),
                self.luts.gelu.len(),
            )?,
            CustomOp::ToFixed => Q8_24::from_f32(f32::from_bits(x)).to_bits() as u32,
            CustomOp::ToFloat => Q8_24::from_bits(x as i32).to_f32().to_bits(),
        };
        self.set_reg(rd, y);
        Ok(())
    }

    /// custom-2 packed-SIMD unit (Xkwtdot).
    #[inline(always)]
    fn exec_simd(&mut self, inst: Inst, pc: u32) -> Result<(), Trap> {
        match inst {
            Inst::Packed { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let v = match op {
                    PackedOp::Kdot4I8 => {
                        let mut acc = self.reg(rd);
                        for lane in 0..4 {
                            let x = (a >> (8 * lane)) as i8 as i32;
                            let y = (b >> (8 * lane)) as i8 as i32;
                            acc = acc.wrapping_add(x.wrapping_mul(y) as u32);
                        }
                        acc
                    }
                    PackedOp::Kdot2I16 => {
                        let mut acc = self.reg(rd);
                        for lane in 0..2 {
                            let x = (a >> (16 * lane)) as i16 as i32;
                            let y = (b >> (16 * lane)) as i16 as i32;
                            acc = acc.wrapping_add(x.wrapping_mul(y) as u32);
                        }
                        acc
                    }
                    PackedOp::KsatI16 => {
                        let shifted = (a as i32) >> (b & 31);
                        shifted.clamp(-32768, 32767) as u32
                    }
                    PackedOp::Kclip => {
                        let n = b & 31;
                        let lo = -(1i64 << n);
                        let hi = (1i64 << n) - 1;
                        (a as i32 as i64).clamp(lo, hi) as i32 as u32
                    }
                    PackedOp::KcvtH2F => {
                        // f32(i16) is exact; scaling by 2^-s is exact, so
                        // this matches the scalar sf_i2f + sf_mul chain
                        // bit-for-bit on every i16 input.
                        let h = a as u16 as i16;
                        let scale = f32::from_bits((127 - (b & 31)) << 23);
                        (h as f32 * scale).to_bits()
                    }
                    PackedOp::KcvtF2H => kcvt_f2h(a, b & 31),
                    PackedOp::KfaddT => crate::softfp::add(a, b),
                    PackedOp::KfsubT => crate::softfp::sub(a, b),
                    PackedOp::KfmulT => crate::softfp::mul(a, b),
                };
                self.set_reg(rd, v);
            }
            Inst::KlwB2h { rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let h = self.mem.load16(addr, pc)?;
                let lo = (h as u8 as i8 as i32 as u32) & 0xFFFF;
                let hi = ((h >> 8) as u8 as i8 as i32 as u32) << 16;
                self.set_reg(rd, hi | lo);
                if self.daccess_enabled {
                    self.last_daccess = Some(addr);
                }
            }
            other => unreachable!("{other:?} routed to the packed-SIMD unit"),
        }
        Ok(())
    }
}

/// `kcvt.f2h`: `sat16(⌊f32(bits) · 2^shift⌋)`.
///
/// The floor/saturate follows the bare-metal soft-float `f2i_floor`
/// exactly (zero for |x| < 1 positive, −1 for negative fractions,
/// sign-directed saturation for huge values and NaN), then clamps to the
/// i16 range — so the packed requant kernel is bit-identical to the
/// scalar `sf_mul` + `sf_f2i_floor` + clamp sequence on every float the
/// pipeline can produce.
fn kcvt_f2h(bits: u32, shift: u32) -> u32 {
    let scale = f32::from_bits((127 + shift) << 23);
    let prod = f32::from_bits(bits) * scale;
    let wide: i32 = if prod.is_nan() {
        if prod.to_bits() >> 31 == 0 {
            i32::MAX
        } else {
            i32::MIN
        }
    } else {
        let fl = f64::from(prod).floor();
        if fl >= i32::MAX as f64 + 1.0 {
            i32::MAX
        } else if fl < i32::MIN as f64 {
            i32::MIN
        } else {
            fl as i32
        }
    };
    wide.clamp(-32768, 32767) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;
    use kwt_rvasm::Asm;

    /// Assembles, runs to `ebreak`, returns the CPU for inspection.
    fn run(build: impl FnOnce(&mut Asm)) -> Cpu {
        let mut asm = Asm::new(0, 0x8000);
        build(&mut asm);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        let platform = Platform::ibex();
        let mut mem = Memory::new(platform.ram_base, platform.ram_size);
        let text: Vec<u8> = p.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        mem.write_bytes(p.text_base, &text);
        mem.write_bytes(p.data_base, &p.data);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        cpu.set_class_histogram_enabled(true);
        cpu.pc = p.text_base;
        cpu.set_reg(Reg::Sp, platform.initial_sp());
        for _ in 0..100_000 {
            match cpu.step().unwrap() {
                StepOutcome::Continue => {}
                StepOutcome::Halted => return cpu,
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run(|a| {
            a.li(Reg::T0, 100);
            a.li(Reg::T1, -30);
            a.emit(Inst::Add {
                rd: Reg::A0,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
            a.emit(Inst::Sub {
                rd: Reg::A1,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
            a.emit(Inst::Xor {
                rd: Reg::A2,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
        });
        assert_eq!(cpu.reg(Reg::A0), 70);
        assert_eq!(cpu.reg(Reg::A1), 130);
        assert_eq!(cpu.reg(Reg::A2), (100i32 ^ -30) as u32);
    }

    #[test]
    fn x0_is_hardwired() {
        let cpu = run(|a| {
            a.li(Reg::T0, 5);
            a.emit(Inst::Add {
                rd: Reg::Zero,
                rs1: Reg::T0,
                rs2: Reg::T0,
            });
            a.emit(Inst::Add {
                rd: Reg::A0,
                rs1: Reg::Zero,
                rs2: Reg::Zero,
            });
        });
        assert_eq!(cpu.reg(Reg::A0), 0);
    }

    #[test]
    fn shifts_and_compares() {
        let cpu = run(|a| {
            a.li(Reg::T0, -8);
            a.emit(Inst::Srai {
                rd: Reg::A0,
                rs1: Reg::T0,
                shamt: 1,
            }); // -4
            a.emit(Inst::Srli {
                rd: Reg::A1,
                rs1: Reg::T0,
                shamt: 28,
            }); // 0xF
            a.emit(Inst::Slti {
                rd: Reg::A2,
                rs1: Reg::T0,
                imm: 0,
            }); // 1
            a.emit(Inst::Sltiu {
                rd: Reg::A3,
                rs1: Reg::T0,
                imm: 0,
            }); // 0 (big unsigned)
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -4);
        assert_eq!(cpu.reg(Reg::A1), 0xF);
        assert_eq!(cpu.reg(Reg::A2), 1);
        assert_eq!(cpu.reg(Reg::A3), 0);
    }

    #[test]
    fn memory_sign_extension() {
        let cpu = run(|a| {
            a.li(Reg::T0, 0x8000);
            a.li(Reg::T1, -1);
            a.emit(Inst::Sb {
                rs2: Reg::T1,
                rs1: Reg::T0,
                imm: 0,
            });
            a.emit(Inst::Lb {
                rd: Reg::A0,
                rs1: Reg::T0,
                imm: 0,
            });
            a.emit(Inst::Lbu {
                rd: Reg::A1,
                rs1: Reg::T0,
                imm: 0,
            });
            a.li(Reg::T2, -2);
            a.emit(Inst::Sh {
                rs2: Reg::T2,
                rs1: Reg::T0,
                imm: 2,
            });
            a.emit(Inst::Lh {
                rd: Reg::A2,
                rs1: Reg::T0,
                imm: 2,
            });
            a.emit(Inst::Lhu {
                rd: Reg::A3,
                rs1: Reg::T0,
                imm: 2,
            });
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -1);
        assert_eq!(cpu.reg(Reg::A1), 0xFF);
        assert_eq!(cpu.reg(Reg::A2) as i32, -2);
        assert_eq!(cpu.reg(Reg::A3), 0xFFFE);
    }

    #[test]
    fn branch_loop_sums() {
        // sum 1..=10 with a bne loop
        let cpu = run(|a| {
            a.li(Reg::T0, 10);
            a.li(Reg::A0, 0);
            let top = a.new_label();
            a.bind(top).unwrap();
            a.emit(Inst::Add {
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::T0,
            });
            a.emit(Inst::Addi {
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: -1,
            });
            a.branch_to(
                Inst::Bne {
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: 0,
                },
                top,
            );
        });
        assert_eq!(cpu.reg(Reg::A0), 55);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        let cpu = run(|a| {
            let f = a.new_label();
            let after = a.new_label();
            a.jal_to(Reg::Ra, f);
            a.bind(after).unwrap();
            a.emit(Inst::Addi {
                rd: Reg::A1,
                rs1: Reg::A0,
                imm: 1,
            });
            let skip = a.new_label();
            a.jump_to(skip);
            a.bind(f).unwrap();
            a.li(Reg::A0, 9);
            a.ret();
            a.bind(skip).unwrap();
        });
        assert_eq!(cpu.reg(Reg::A0), 9);
        assert_eq!(cpu.reg(Reg::A1), 10);
    }

    #[test]
    fn m_extension_division_edge_cases() {
        let cpu = run(|a| {
            a.li(Reg::T0, 7);
            a.li(Reg::T1, 0);
            a.emit(Inst::Div {
                rd: Reg::A0,
                rs1: Reg::T0,
                rs2: Reg::T1,
            }); // -1
            a.emit(Inst::Rem {
                rd: Reg::A1,
                rs1: Reg::T0,
                rs2: Reg::T1,
            }); // 7
            a.li(Reg::T2, i32::MIN);
            a.li(Reg::T3, -1);
            a.emit(Inst::Div {
                rd: Reg::A2,
                rs1: Reg::T2,
                rs2: Reg::T3,
            }); // MIN
            a.emit(Inst::Rem {
                rd: Reg::A3,
                rs1: Reg::T2,
                rs2: Reg::T3,
            }); // 0
            a.emit(Inst::Divu {
                rd: Reg::A4,
                rs1: Reg::T0,
                rs2: Reg::T1,
            }); // MAX
            a.emit(Inst::Remu {
                rd: Reg::A5,
                rs1: Reg::T0,
                rs2: Reg::T1,
            }); // 7
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -1);
        assert_eq!(cpu.reg(Reg::A1), 7);
        assert_eq!(cpu.reg(Reg::A2), i32::MIN as u32);
        assert_eq!(cpu.reg(Reg::A3), 0);
        assert_eq!(cpu.reg(Reg::A4), u32::MAX);
        assert_eq!(cpu.reg(Reg::A5), 7);
    }

    #[test]
    fn mul_high_variants() {
        let cpu = run(|a| {
            a.li(Reg::T0, -2);
            a.li(Reg::T1, 3);
            a.emit(Inst::Mul {
                rd: Reg::A0,
                rs1: Reg::T0,
                rs2: Reg::T1,
            }); // -6
            a.emit(Inst::Mulh {
                rd: Reg::A1,
                rs1: Reg::T0,
                rs2: Reg::T1,
            }); // -1 (sign)
            a.emit(Inst::Mulhu {
                rd: Reg::A2,
                rs1: Reg::T0,
                rs2: Reg::T1,
            }); // (2^32-2)*3 >> 32 = 2
            a.emit(Inst::Mulhsu {
                rd: Reg::A3,
                rs1: Reg::T0,
                rs2: Reg::T1,
            }); // -2*3 >> 32 = -1
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -6);
        assert_eq!(cpu.reg(Reg::A1) as i32, -1);
        assert_eq!(cpu.reg(Reg::A2), 2);
        assert_eq!(cpu.reg(Reg::A3) as i32, -1);
    }

    #[test]
    fn custom_ops_match_quant_golden_models() {
        let luts = LutSet::new();
        for x in [-1.5f32, 0.0, 0.3, 1.0, 2.5, 7.9] {
            let cpu = run(|a| {
                a.li(Reg::T0, x.to_bits() as i32);
                a.emit(Inst::Custom {
                    op: CustomOp::ToFixed,
                    rd: Reg::A0,
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                });
                a.emit(Inst::Custom {
                    op: CustomOp::Exp,
                    rd: Reg::A1,
                    rs1: Reg::A0,
                    rs2: Reg::Zero,
                });
                a.emit(Inst::Custom {
                    op: CustomOp::Invert,
                    rd: Reg::A2,
                    rs1: Reg::A0,
                    rs2: Reg::Zero,
                });
                a.emit(Inst::Custom {
                    op: CustomOp::Gelu,
                    rd: Reg::A3,
                    rs1: Reg::A0,
                    rs2: Reg::Zero,
                });
                a.emit(Inst::Custom {
                    op: CustomOp::ToFloat,
                    rd: Reg::A4,
                    rs1: Reg::A0,
                    rs2: Reg::Zero,
                });
            });
            let q = Q8_24::from_f32(x);
            assert_eq!(cpu.reg(Reg::A0) as i32, q.to_bits(), "tofixed {x}");
            assert_eq!(
                cpu.reg(Reg::A1) as i32,
                luts.alu_exp(q).to_bits(),
                "exp {x}"
            );
            assert_eq!(
                cpu.reg(Reg::A2) as i32,
                luts.alu_invert(q).to_bits(),
                "invert {x}"
            );
            assert_eq!(
                cpu.reg(Reg::A3) as i32,
                luts.alu_gelu(q).to_bits(),
                "gelu {x}"
            );
            assert_eq!(f32::from_bits(cpu.reg(Reg::A4)), q.to_f32(), "tofloat {x}");
        }
    }

    #[test]
    fn truncated_lut_raises_typed_trap_instead_of_panicking() {
        // A LUT ROM truncated to 16 exp entries: index 16+ must trap.
        let full = LutSet::new();
        let short = LutSet::from_words(
            &full.exp_words()[..16],
            &full.inv_words(),
            full.gelu.clone(),
        );
        let mut asm = Asm::new(0, 0x8000);
        asm.here("entry");
        // z = 2.0 in Q8.24 -> exp index 64, past the 16-entry table.
        asm.li(Reg::T0, Q8_24::from_f32(2.0).to_bits());
        asm.emit(Inst::Custom {
            op: CustomOp::Exp,
            rd: Reg::A0,
            rs1: Reg::T0,
            rs2: Reg::Zero,
        });
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        let mut mem = Memory::new(0, 0x10000);
        let text: Vec<u8> = p.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        mem.write_bytes(0, &text);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), short);
        let mut result = Ok(StepOutcome::Continue);
        for _ in 0..10 {
            result = cpu.step();
            if result.is_err() || result == Ok(StepOutcome::Halted) {
                break;
            }
        }
        match result {
            Err(Trap::LutIndexOutOfRange {
                index, table_len, ..
            }) => {
                assert_eq!(index, 64);
                assert_eq!(table_len, 16);
            }
            other => panic!("expected LutIndexOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn kdot4_i8_accumulates_all_lanes() {
        // lanes a = [10, -3, 100, -128], b = [2, 5, -1, 1]
        let a_word = u32::from_le_bytes([10i8 as u8, (-3i8) as u8, 100, (-128i8) as u8]);
        let b_word = u32::from_le_bytes([2, 5, (-1i8) as u8, 1]);
        let want = 7_i32 + 10 * 2 + (-3) * 5 + -100 + (-128);
        let cpu = run(|a| {
            a.li(Reg::A0, 7); // pre-loaded accumulator
            a.li(Reg::T0, a_word as i32);
            a.li(Reg::T1, b_word as i32);
            a.emit(Inst::Packed {
                op: PackedOp::Kdot4I8,
                rd: Reg::A0,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, want);
    }

    #[test]
    fn kdot2_i16_matches_scalar_mac_chain() {
        // lanes a = [-300, 1200], b = [7, -40]
        let a_word = (((-300i16 as u16) as u32) | ((1200i16 as u16 as u32) << 16)) as i32;
        let b_word = (((7i16 as u16) as u32) | ((-40i16 as u16 as u32) << 16)) as i32;
        let want = 5 + (-300) * 7 + 1200 * (-40);
        let cpu = run(|a| {
            a.li(Reg::A0, 5);
            a.li(Reg::T0, a_word);
            a.li(Reg::T1, b_word);
            a.emit(Inst::Packed {
                op: PackedOp::Kdot2I16,
                rd: Reg::A0,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, want);
    }

    #[test]
    fn ksat_and_kclip_saturate() {
        let cpu = run(|a| {
            a.li(Reg::T0, 1 << 22);
            a.li(Reg::T1, 4);
            a.emit(Inst::Packed {
                op: PackedOp::KsatI16,
                rd: Reg::A0, // (1<<22) >> 4 = 1<<18 -> 32767
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
            a.li(Reg::T2, -123456);
            a.emit(Inst::Packed {
                op: PackedOp::KsatI16,
                rd: Reg::A1, // -123456 >> 4 = -7716, in range
                rs1: Reg::T2,
                rs2: Reg::T1,
            });
            a.emit(Inst::Packed {
                op: PackedOp::KsatI16,
                rd: Reg::A2, // shift 0: pure clamp -> -32768
                rs1: Reg::T2,
                rs2: Reg::Zero,
            });
            a.li(Reg::T3, 7);
            a.li(Reg::T4, 300);
            a.emit(Inst::Packed {
                op: PackedOp::Kclip,
                rd: Reg::A3, // clamp(300, -128, 127) = 127
                rs1: Reg::T4,
                rs2: Reg::T3,
            });
            a.li(Reg::T5, -300);
            a.emit(Inst::Packed {
                op: PackedOp::Kclip,
                rd: Reg::A4, // clamp(-300, -128, 127) = -128
                rs1: Reg::T5,
                rs2: Reg::T3,
            });
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, 32767);
        assert_eq!(cpu.reg(Reg::A1) as i32, -7716);
        assert_eq!(cpu.reg(Reg::A2) as i32, -32768);
        assert_eq!(cpu.reg(Reg::A3) as i32, 127);
        assert_eq!(cpu.reg(Reg::A4) as i32, -128);
    }

    #[test]
    fn kcvt_round_trips_quant_boundary() {
        // h2f: -1234 / 2^8 exactly; f2h: floor(x * 2^8) saturated.
        let cpu = run(|a| {
            a.li(Reg::T0, -1234);
            a.li(Reg::T1, 8);
            a.emit(Inst::Packed {
                op: PackedOp::KcvtH2F,
                rd: Reg::A0,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
            a.emit(Inst::Packed {
                op: PackedOp::KcvtF2H,
                rd: Reg::A1,
                rs1: Reg::A0,
                rs2: Reg::T1,
            });
            // saturation: 1e6 * 2^8 >> i16 range
            a.li(Reg::T2, 1_000_000.0f32.to_bits() as i32);
            a.emit(Inst::Packed {
                op: PackedOp::KcvtF2H,
                rd: Reg::A2,
                rs1: Reg::T2,
                rs2: Reg::T1,
            });
        });
        assert_eq!(
            f32::from_bits(cpu.reg(Reg::A0)),
            -1234.0 / 256.0,
            "h2f exact"
        );
        assert_eq!(cpu.reg(Reg::A1) as i32, -1234, "round trip");
        assert_eq!(cpu.reg(Reg::A2) as i32, 32767, "saturated");
    }

    #[test]
    fn klw_b2h_widens_bytes_to_lanes() {
        let cpu = run(|a| {
            a.li(Reg::T0, 0x8000);
            // store bytes [-5, 100] at 0x8000
            a.li(Reg::T1, (-5i8) as u8 as i32);
            a.emit(Inst::Sb {
                rs2: Reg::T1,
                rs1: Reg::T0,
                imm: 0,
            });
            a.li(Reg::T1, 100);
            a.emit(Inst::Sb {
                rs2: Reg::T1,
                rs1: Reg::T0,
                imm: 1,
            });
            a.emit(Inst::KlwB2h {
                rd: Reg::A0,
                rs1: Reg::T0,
                imm: 0,
            });
        });
        let v = cpu.reg(Reg::A0);
        assert_eq!((v & 0xFFFF) as u16 as i16, -5);
        assert_eq!((v >> 16) as u16 as i16, 100);
    }

    #[test]
    fn klw_b2h_traps_out_of_bounds() {
        let mut asm = Asm::new(0, 0x8000);
        asm.here("entry");
        asm.li(Reg::T0, 0x0100_0000);
        asm.emit(Inst::KlwB2h {
            rd: Reg::A0,
            rs1: Reg::T0,
            imm: 0,
        });
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        let mut mem = Memory::new(0, 0x10000);
        let text: Vec<u8> = p.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        mem.write_bytes(0, &text);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        let mut last = Ok(StepOutcome::Continue);
        for _ in 0..10 {
            last = cpu.step();
            if last.is_err() || last == Ok(StepOutcome::Halted) {
                break;
            }
        }
        assert!(matches!(last, Err(Trap::AccessOutOfBounds { .. })));
    }

    #[test]
    fn cycle_accounting_follows_model() {
        // addi (1) + addi (1) + mul (3) + lw (2) + sw (2) + ebreak (1)
        let cpu = run(|a| {
            a.li(Reg::T0, 3); // addi
            a.li(Reg::T1, 4); // addi
            a.emit(Inst::Mul {
                rd: Reg::T2,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
            a.li(Reg::T3, 0x8000); // addi
            a.emit(Inst::Sw {
                rs2: Reg::T2,
                rs1: Reg::T3,
                imm: 0,
            });
            a.emit(Inst::Lw {
                rd: Reg::A0,
                rs1: Reg::T3,
                imm: 0,
            });
        });
        assert_eq!(cpu.reg(Reg::A0), 12);
        // 3 addi + mul + sw + lw + ebreak = 3*1 + 3 + 2 + 2 + 1 = 11
        assert_eq!(cpu.cycles, 11);
        assert_eq!(cpu.instret, 7);
    }

    #[test]
    fn packed_ops_follow_timing_model() {
        let t = TimingModel::ibex();
        let cpu = run(|a| {
            a.emit(Inst::Packed {
                op: PackedOp::Kdot2I16,
                rd: Reg::A0,
                rs1: Reg::Zero,
                rs2: Reg::Zero,
            });
            a.emit(Inst::Packed {
                op: PackedOp::KsatI16,
                rd: Reg::A1,
                rs1: Reg::Zero,
                rs2: Reg::Zero,
            });
        });
        // kdot + ksat + ebreak
        assert_eq!(cpu.cycles, t.kdot + t.ksat + t.alu);
        let h = cpu.class_histogram();
        assert_eq!(h.count(InstClass::PackedDot), 1);
        assert_eq!(h.cycles(InstClass::PackedDot), t.kdot);
        assert_eq!(h.count(InstClass::PackedAlu), 1);
    }

    #[test]
    fn class_histogram_totals_match_counters() {
        let cpu = run(|a| {
            a.li(Reg::T0, 9);
            let top = a.new_label();
            a.bind(top).unwrap();
            a.emit(Inst::Mul {
                rd: Reg::A1,
                rs1: Reg::T0,
                rs2: Reg::T0,
            });
            a.emit(Inst::Sw {
                rs2: Reg::A1,
                rs1: Reg::Sp,
                imm: -4,
            });
            a.emit(Inst::Lw {
                rd: Reg::A2,
                rs1: Reg::Sp,
                imm: -4,
            });
            a.emit(Inst::Addi {
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: -1,
            });
            a.branch_to(
                Inst::Bne {
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: 0,
                },
                top,
            );
        });
        let h = cpu.class_histogram();
        assert_eq!(h.total_cycles(), cpu.cycles, "histogram covers every cycle");
        assert_eq!(
            h.total_count(),
            cpu.instret,
            "histogram covers every instruction"
        );
        assert_eq!(h.count(InstClass::Mul), 9);
        assert_eq!(h.count(InstClass::Load), 9);
        assert_eq!(h.count(InstClass::Store), 9);
        // 8 taken + 1 not-taken branch
        assert_eq!(h.count(InstClass::Branch), 9);
        let t = TimingModel::ibex();
        assert_eq!(
            h.cycles(InstClass::Branch),
            8 * t.branch_taken + t.branch_not_taken
        );
        assert!(h.to_table().contains("mul"));
    }

    #[test]
    fn taken_branches_cost_more() {
        let not_taken = run(|a| {
            a.li(Reg::T0, 1);
            let l = a.new_label();
            a.branch_to(
                Inst::Beq {
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: 0,
                },
                l,
            );
            a.bind(l).unwrap();
        })
        .cycles;
        let taken = run(|a| {
            a.li(Reg::T0, 0);
            let l = a.new_label();
            a.branch_to(
                Inst::Beq {
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: 0,
                },
                l,
            );
            a.bind(l).unwrap();
        })
        .cycles;
        assert_eq!(taken - not_taken, 2); // 3 vs 1
    }

    #[test]
    fn mcycle_csr_is_readable() {
        let cpu = run(|a| {
            a.emit(Inst::Csrrs {
                rd: Reg::A0,
                rs1: Reg::Zero,
                csr: 0xB00,
            });
            a.nop();
            a.nop();
            a.emit(Inst::Csrrs {
                rd: Reg::A1,
                rs1: Reg::Zero,
                csr: 0xB00,
            });
        });
        let before = cpu.reg(Reg::A0);
        let after = cpu.reg(Reg::A1);
        assert_eq!(after - before, 3); // 2 nops + second csrrs itself
    }

    #[test]
    fn profiler_csr_integration() {
        let mut cpu = run(|a| {
            a.li(Reg::T0, 1);
            a.emit(Inst::Csrrw {
                rd: Reg::Zero,
                rs1: Reg::T0,
                csr: 0x7C0,
            });
            a.nop();
            a.nop();
            a.emit(Inst::Csrrw {
                rd: Reg::Zero,
                rs1: Reg::Zero,
                csr: 0x7C1,
            });
        });
        cpu.profiler.finish(cpu.cycles);
        let names = [(1u32, "work".to_string())].into_iter().collect();
        let report = cpu.profiler.report(cpu.cycles, &names);
        assert_eq!(report.regions.len(), 1);
        assert_eq!(report.regions[0].0, "work");
        // two nops + the pop csr write = 3 cycles inside the region
        assert_eq!(report.regions[0].1, 3);
    }

    #[test]
    fn ecall_traps() {
        let mut asm = Asm::new(0, 0x8000);
        asm.emit(Inst::Ecall);
        let p = asm.finish().unwrap();
        let mut mem = Memory::new(0, 0x1000);
        let text: Vec<u8> = p.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        mem.write_bytes(0, &text);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        assert!(matches!(cpu.step(), Err(Trap::EnvironmentCall { pc: 0 })));
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = Memory::new(0, 0x1000);
        mem.write_bytes(0, &0xFFFF_FFFFu32.to_le_bytes());
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        assert!(matches!(cpu.step(), Err(Trap::IllegalInstruction { .. })));
    }

    #[test]
    fn compressed_instructions_execute() {
        // c.li a0, 3 (0x450d); c.addi a0, 1 (0x0505); c.ebreak (0x9002)
        let mut mem = Memory::new(0, 0x1000);
        mem.write_bytes(0, &[0x0D, 0x45, 0x05, 0x05, 0x02, 0x90]);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        assert_eq!(cpu.step().unwrap(), StepOutcome::Continue);
        assert_eq!(cpu.pc, 2); // compressed: +2
        assert_eq!(cpu.step().unwrap(), StepOutcome::Continue);
        assert_eq!(cpu.reg(Reg::A0), 4);
        assert_eq!(cpu.step().unwrap(), StepOutcome::Halted);
    }
}
