//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a small, ordered set of [`FaultEvent`]s the
//! [`Machine`](crate::Machine) applies while running: flip a bit in RAM
//! or in a register when a given step is reached, force a chosen
//! [`Trap`] when the pc hits an address, or corrupt the LUT ROMs so the
//! custom-1 unit starts raising [`Trap::LutIndexOutOfRange`]. Every
//! trigger is keyed to architectural state (step index within the
//! current `run` call, or pc) — never to wall-clock time — so a failing
//! run replays bit-identically from the same plan, and seeded plans
//! ([`FaultPlan::seeded_mem_flip`] and friends) replay from a single
//! `u64`.
//!
//! Fault hooks cost nothing when unused: a
//! [`Machine::run`](crate::Machine::run) with no plan and no watchdog
//! takes the same
//! tight loop as before this module existed, and *simulated* cycle
//! counts are unaffected either way (injection changes architectural
//! state, not the timing model).

use crate::Trap;

/// What a single fault does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// XOR bit `bit` (0–7) of the RAM byte at `addr`. Flips landing in
    /// executed code are visible immediately (the decode cache is
    /// invalidated for that line).
    MemBitFlip {
        /// Absolute byte address.
        addr: u32,
        /// Bit index within the byte, masked to 0–7.
        bit: u8,
    },
    /// XOR bit `bit` (0–31) of integer register `reg` (1–31; `x0` stays
    /// hardwired to zero).
    RegBitFlip {
        /// Register number, masked to 0–31.
        reg: u8,
        /// Bit index within the register, masked to 0–31.
        bit: u8,
    },
    /// Stop execution with `trap` exactly as if the hart had raised it —
    /// models an external abort / parity machine-check.
    ForceTrap {
        /// The trap to raise.
        trap: Trap,
    },
    /// Truncate every LUT ROM to its first `keep` entries — the
    /// stuck-at/partial-ROM model. Lookups past the truncation point
    /// raise [`Trap::LutIndexOutOfRange`].
    TruncateLuts {
        /// Entries to keep per table.
        keep: u32,
    },
}

/// When a [`FaultKind`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Before the `n`-th instruction (0-based) of the **current**
    /// [`Machine::run`](crate::Machine::run) call.
    AtStep(u64),
    /// Before executing the instruction at this pc.
    AtPc(u32),
}

/// One trigger + effect pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub kind: FaultKind,
}

/// A fired fault, as recorded in the machine's fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault that fired.
    pub kind: FaultKind,
    /// Step index (within the run call) at which it fired.
    pub at_step: u64,
    /// pc at the moment of injection.
    pub pc: u32,
    /// Machine cycle counter at the moment of injection.
    pub cycles: u64,
}

/// An ordered set of faults for the next
/// [`Machine::run`](crate::Machine::run) calls. Each event fires at
/// most once; fired
/// events are consumed and appear in the machine's fault log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; useful for differential tests
    /// that prove the hooks are free).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The pending events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether any event is still pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an arbitrary event (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Flips one RAM bit at step `at_step` of the next run.
    pub fn flip_mem_bit(self, at_step: u64, addr: u32, bit: u8) -> Self {
        self.with_event(FaultEvent {
            trigger: FaultTrigger::AtStep(at_step),
            kind: FaultKind::MemBitFlip { addr, bit },
        })
    }

    /// Flips one register bit at step `at_step` of the next run.
    pub fn flip_reg_bit(self, at_step: u64, reg: u8, bit: u8) -> Self {
        self.with_event(FaultEvent {
            trigger: FaultTrigger::AtStep(at_step),
            kind: FaultKind::RegBitFlip { reg, bit },
        })
    }

    /// Forces `trap` when the pc reaches `at_pc`.
    pub fn force_trap_at_pc(self, at_pc: u32, trap: Trap) -> Self {
        self.with_event(FaultEvent {
            trigger: FaultTrigger::AtPc(at_pc),
            kind: FaultKind::ForceTrap { trap },
        })
    }

    /// Forces `trap` at step `at_step` of the next run.
    pub fn force_trap_at_step(self, at_step: u64, trap: Trap) -> Self {
        self.with_event(FaultEvent {
            trigger: FaultTrigger::AtStep(at_step),
            kind: FaultKind::ForceTrap { trap },
        })
    }

    /// Truncates the LUT ROMs to `keep` entries at step `at_step`.
    pub fn truncate_luts(self, at_step: u64, keep: u32) -> Self {
        self.with_event(FaultEvent {
            trigger: FaultTrigger::AtStep(at_step),
            kind: FaultKind::TruncateLuts { keep },
        })
    }

    /// Removes and returns every event due at run-local step `step` /
    /// pc `pc` (used by the machine's monitored run loop).
    pub(crate) fn take_due(&mut self, step: u64, pc: u32) -> Vec<FaultEvent> {
        let mut due = Vec::new();
        self.events.retain(|e| {
            let fires = match e.trigger {
                FaultTrigger::AtStep(s) => s <= step,
                FaultTrigger::AtPc(p) => p == pc,
            };
            if fires {
                due.push(*e);
            }
            !fires
        });
        due
    }

    /// A single-bit RAM flip derived deterministically from `seed`: the
    /// step is drawn from `[0, step_range)` and the flipped bit from the
    /// byte range `[addr_lo, addr_hi)`. The same seed always yields the
    /// same plan — the replay handle for a chaos harness.
    pub fn seeded_mem_flip(seed: u64, step_range: u64, addr_lo: u32, addr_hi: u32) -> Self {
        let mut s = SplitMix64::new(seed);
        let at_step = s.next_in(step_range.max(1));
        let span = (addr_hi - addr_lo).max(1) as u64;
        let addr = addr_lo + s.next_in(span) as u32;
        let bit = (s.next() & 7) as u8;
        FaultPlan::new().flip_mem_bit(at_step, addr, bit)
    }

    /// A single-bit register flip derived deterministically from `seed`
    /// (registers 1–31; `x0` is never chosen).
    pub fn seeded_reg_flip(seed: u64, step_range: u64) -> Self {
        let mut s = SplitMix64::new(seed);
        let at_step = s.next_in(step_range.max(1));
        let reg = 1 + (s.next_in(31)) as u8;
        let bit = (s.next() & 31) as u8;
        FaultPlan::new().flip_reg_bit(at_step, reg, bit)
    }
}

/// The classic splitmix64 generator — tiny, seedable, and with full
/// 64-bit avalanche, which is all deterministic fault placement needs.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `[0, n)` (`n > 0`).
    pub(crate) fn next_in(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_replayable() {
        let a = FaultPlan::seeded_mem_flip(42, 1000, 0x8000, 0x9000);
        let b = FaultPlan::seeded_mem_flip(42, 1000, 0x8000, 0x9000);
        assert_eq!(a, b);
        let c = FaultPlan::seeded_mem_flip(43, 1000, 0x8000, 0x9000);
        assert_ne!(a, c, "different seeds should move the fault");
        let FaultEvent {
            trigger: FaultTrigger::AtStep(s),
            kind: FaultKind::MemBitFlip { addr, bit },
        } = a.events()[0]
        else {
            panic!("seeded mem flip has unexpected shape");
        };
        assert!(s < 1000);
        assert!((0x8000..0x9000).contains(&addr));
        assert!(bit < 8);
    }

    #[test]
    fn seeded_reg_flip_never_targets_x0() {
        for seed in 0..64 {
            let p = FaultPlan::seeded_reg_flip(seed, 100);
            let FaultKind::RegBitFlip { reg, .. } = p.events()[0].kind else {
                panic!("unexpected kind");
            };
            assert!((1..32).contains(&reg));
        }
    }

    #[test]
    fn builder_accumulates_events() {
        let p = FaultPlan::new()
            .flip_mem_bit(5, 0x100, 3)
            .force_trap_at_pc(0x40, Trap::EnvironmentCall { pc: 0x40 })
            .truncate_luts(9, 4);
        assert_eq!(p.events().len(), 3);
        assert!(!p.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}
