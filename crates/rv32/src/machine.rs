//! Program loading and run-to-completion harness.

use crate::cpu::{Cpu, StepOutcome};
use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultRecord};
use crate::mem::Memory;
use crate::profile::ProfileReport;
use crate::trap::Trap;
use crate::{Platform, TimingModel};
use kwt_quant::LutSet;
use kwt_rvasm::{Program, Reg};
use std::collections::BTreeMap;

/// One executed instruction in a [`Machine::run_traced`] ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter.
    pub pc: u32,
    /// Raw instruction word (16-bit parcel for compressed).
    pub word: u32,
    /// Disassembly (best effort).
    pub text: String,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}: {:<10x} {}", self.pc, self.word, self.text)
    }
}

/// Outcome of a completed (halted) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles consumed (the paper's "Inference Clock Cycles").
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Value of `a0` at the `ebreak` — the program's exit/result code.
    pub exit_code: u32,
}

/// A loaded program on a platform: the top-level simulation object.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The hart (exposed for register/memory inspection in tests).
    pub cpu: Cpu,
    platform: Platform,
    entry: u32,
    region_names: BTreeMap<u32, String>,
    faults: Option<FaultPlan>,
    watchdog: Option<u64>,
    fault_log: Vec<FaultRecord>,
}

impl Machine {
    /// Loads a program image into fresh RAM and points the hart at its
    /// entry (`entry` symbol if present, else the text base). The stack
    /// pointer starts at the top of RAM.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::AccessOutOfBounds`] if the text or data section
    /// (plus reserved stack) does not fit the platform RAM — the 64 kB
    /// budget of Table II is enforced here.
    pub fn load(program: &Program, platform: Platform) -> Result<Self, Trap> {
        let text_end = program.text_base as u64 + program.text_bytes() as u64;
        let data_end = program.data_base as u64 + program.data.len() as u64;
        let limit = (platform.ram_end() - platform.stack_bytes) as u64;
        if program.text_base < platform.ram_base || text_end > limit {
            return Err(Trap::AccessOutOfBounds {
                addr: text_end as u32,
                pc: 0,
            });
        }
        if program.data_base < platform.ram_base || data_end > limit {
            return Err(Trap::AccessOutOfBounds {
                addr: data_end as u32,
                pc: 0,
            });
        }
        let mut mem = Memory::new(platform.ram_base, platform.ram_size);
        let text: Vec<u8> = program.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        mem.write_bytes(program.text_base, &text);
        mem.write_bytes(program.data_base, &program.data);
        let mut cpu = Cpu::new(mem, TimingModel::ibex(), LutSet::new());
        let entry = program.symbol("entry").unwrap_or(program.text_base);
        cpu.pc = entry;
        cpu.set_reg(Reg::Sp, platform.initial_sp());
        Ok(Machine {
            cpu,
            platform,
            entry,
            region_names: BTreeMap::new(),
            faults: None,
            watchdog: None,
            fault_log: Vec::new(),
        })
    }

    /// Resets the architectural registers — pc back at the entry symbol,
    /// integer registers cleared, stack pointer at the top of RAM — the
    /// cheap way to re-run a loaded program (the warm-rerun benchmarks
    /// use it). Everything else survives: memory contents, cycle/instret
    /// counters, CSR state, the profiler and the decode cache. Programs
    /// that depend on pristine CSRs, profiler state or data memory need a
    /// fresh [`Machine::load`] instead.
    pub fn reset_cpu(&mut self) {
        self.cpu.regs = [0; 32];
        self.cpu.pc = self.entry;
        self.cpu.set_reg(Reg::Sp, self.platform.initial_sp());
    }

    /// Replaces the timing model (builder style).
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.cpu = Cpu::new_with_state(self.cpu, timing);
        self
    }

    /// Replaces the LUT ROMs (builder style).
    pub fn with_luts(mut self, luts: LutSet) -> Self {
        self.cpu.set_luts(luts);
        self
    }

    /// Registers a human-readable name for a profiler region id.
    pub fn name_region(&mut self, id: u32, name: &str) {
        self.region_names.insert(id, name.to_string());
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs until `ebreak`, a trap, or `max_steps` retired instructions.
    ///
    /// With a [`FaultPlan`] armed ([`set_fault_plan`](Self::set_fault_plan))
    /// or a cycle watchdog set
    /// ([`set_cycle_watchdog`](Self::set_cycle_watchdog)), each step is
    /// additionally monitored;
    /// without either, the plain tight loop runs — fault support costs
    /// nothing on the fault-free path, and simulated cycle counts are
    /// identical either way.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] that stopped execution, including
    /// [`Trap::OutOfFuel`] when the step budget is exhausted,
    /// [`Trap::WatchdogExpired`] when the cycle watchdog fires, and any
    /// trap forced or provoked by an armed fault plan.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, Trap> {
        if self.watchdog.is_some() || self.faults.as_ref().is_some_and(|p| !p.is_empty()) {
            return self.run_monitored(max_steps);
        }
        for _ in 0..max_steps {
            match self.cpu.step()? {
                StepOutcome::Continue => {}
                StepOutcome::Halted => {
                    self.cpu.profiler.finish(self.cpu.cycles);
                    return Ok(RunResult {
                        cycles: self.cpu.cycles,
                        instructions: self.cpu.instret,
                        exit_code: self.cpu.reg(Reg::A0),
                    });
                }
            }
        }
        Err(Trap::OutOfFuel {
            executed: self.cpu.instret,
        })
    }

    /// The monitored twin of the [`run`](Self::run) loop: applies due
    /// fault events before each step and enforces the cycle watchdog
    /// after it. Architecturally identical to `run` when the plan is
    /// empty and the budget unreachable.
    fn run_monitored(&mut self, max_steps: u64) -> Result<RunResult, Trap> {
        let cycles0 = self.cpu.cycles;
        let budget = self.watchdog;
        for step in 0..max_steps {
            self.apply_due_faults(step)?;
            match self.cpu.step()? {
                StepOutcome::Continue => {}
                StepOutcome::Halted => {
                    self.cpu.profiler.finish(self.cpu.cycles);
                    return Ok(RunResult {
                        cycles: self.cpu.cycles,
                        instructions: self.cpu.instret,
                        exit_code: self.cpu.reg(Reg::A0),
                    });
                }
            }
            if let Some(b) = budget {
                let used = self.cpu.cycles - cycles0;
                if used > b {
                    return Err(Trap::WatchdogExpired {
                        budget: b,
                        cycles: used,
                    });
                }
            }
        }
        Err(Trap::OutOfFuel {
            executed: self.cpu.instret,
        })
    }

    /// One iteration of the monitored run loop, exposed so an external
    /// scheduler (the [`crate::cluster`] arbiter) can interleave harts
    /// instruction by instruction: applies due fault events, steps the
    /// hart once, finishes the profiler on halt, and enforces the cycle
    /// watchdog against `cycles0` (the cycle counter at run start).
    ///
    /// `run` with the monitors armed is exactly this in a loop, so a
    /// cluster driving every hart through `step_monitored` retires the
    /// same instruction stream at the same per-hart cycle counts as N
    /// independent [`Machine::run`] calls.
    ///
    /// # Errors
    ///
    /// Returns the same [`Trap`]s as [`Machine::run`] (except
    /// [`Trap::OutOfFuel`], which the caller's own step budget decides).
    pub fn step_monitored(&mut self, step: u64, cycles0: u64) -> Result<StepOutcome, Trap> {
        self.apply_due_faults(step)?;
        match self.cpu.step()? {
            StepOutcome::Halted => {
                self.cpu.profiler.finish(self.cpu.cycles);
                Ok(StepOutcome::Halted)
            }
            StepOutcome::Continue => {
                if let Some(b) = self.watchdog {
                    let used = self.cpu.cycles - cycles0;
                    if used > b {
                        return Err(Trap::WatchdogExpired {
                            budget: b,
                            cycles: used,
                        });
                    }
                }
                Ok(StepOutcome::Continue)
            }
        }
    }

    /// The loaded program's entry address (where [`Machine::reset_cpu`]
    /// points the hart).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Fires every pending fault event due before run-local step `step`
    /// (or at the current pc), consuming it and appending a
    /// [`FaultRecord`] to the [fault log](Self::fault_log).
    fn apply_due_faults(&mut self, step: u64) -> Result<(), Trap> {
        let Some(plan) = self.faults.as_mut() else {
            return Ok(());
        };
        if plan.is_empty() {
            return Ok(());
        }
        let pc = self.cpu.pc;
        let due: Vec<FaultEvent> = plan.take_due(step, pc);
        if due.is_empty() {
            return Ok(());
        }
        for e in due {
            self.fault_log.push(FaultRecord {
                kind: e.kind,
                at_step: step,
                pc,
                cycles: self.cpu.cycles,
            });
            match e.kind {
                FaultKind::MemBitFlip { addr, bit } => {
                    // direct poke past alignment checks — a particle
                    // strike does not honour the bus protocol
                    if let Ok(byte) = self.cpu.mem.load8(addr, pc) {
                        self.cpu
                            .mem
                            .store8(addr, byte ^ (1 << (bit & 7)), pc)
                            .expect("load8 succeeded, store8 must too");
                        self.cpu.invalidate_decode_cache(addr, 1);
                    }
                }
                FaultKind::RegBitFlip { reg, bit } => {
                    let r = (reg & 31) as usize;
                    if r != 0 {
                        self.cpu.regs[r] ^= 1 << (bit & 31);
                    }
                }
                FaultKind::ForceTrap { trap } => return Err(trap),
                FaultKind::TruncateLuts { keep } => {
                    let full = self.cpu.luts().clone();
                    let k = (keep as usize).min(full.exp_words().len());
                    let truncated = LutSet::from_words(
                        &full.exp_words()[..k],
                        &full.inv_words()[..k.min(full.inv_words().len())],
                        full.gelu.clone(),
                    );
                    self.cpu.set_luts(truncated);
                }
            }
        }
        Ok(())
    }

    /// Arms a [`FaultPlan`] for subsequent [`run`](Self::run) calls,
    /// replacing any previous plan. Events fire at most once; consumed
    /// events accumulate in the [fault log](Self::fault_log).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Drops any armed fault plan (pending events included). The fault
    /// log is kept.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// Events still pending in the armed fault plan.
    pub fn pending_faults(&self) -> &[FaultEvent] {
        self.faults.as_ref().map(|p| p.events()).unwrap_or(&[])
    }

    /// Arms (`Some`) or disarms (`None`) the per-[`run`](Self::run)-call
    /// cycle watchdog: a run consuming more than `budget` simulated
    /// cycles stops with [`Trap::WatchdogExpired`]. The budget is
    /// measured from the start of each `run` call, so a persistent
    /// session re-arms it implicitly on every inference.
    pub fn set_cycle_watchdog(&mut self, budget: Option<u64>) {
        self.watchdog = budget;
    }

    /// The armed cycle watchdog budget, if any.
    pub fn cycle_watchdog(&self) -> Option<u64> {
        self.watchdog
    }

    /// Every fault fired on this machine, in firing order.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    /// Clears the fault log.
    pub fn clear_fault_log(&mut self) {
        self.fault_log.clear();
    }

    /// The profiler report for the run so far, using registered region
    /// names.
    pub fn profile_report(&self) -> ProfileReport {
        self.cpu
            .profiler
            .report(self.cpu.cycles, &self.region_names)
    }

    /// The per-instruction-class cycle histogram for the run so far —
    /// the paper-style "where do the cycles go by instruction kind"
    /// breakdown (see [`crate::ClassHistogram`]). Counting must be
    /// [armed](Machine::set_class_histogram_enabled) first.
    pub fn class_histogram(&self) -> crate::ClassHistogram {
        self.cpu.class_histogram()
    }

    /// Arms or disarms per-class retirement counting (default off; see
    /// [`Cpu::set_class_histogram_enabled`]).
    pub fn set_class_histogram_enabled(&mut self, enabled: bool) {
        self.cpu.set_class_histogram_enabled(enabled);
    }

    /// Like [`Machine::run`], but keeps a ring buffer of the last
    /// `capacity` executed instructions (pc, raw word, disassembly) — the
    /// post-mortem a bare-metal target cannot give you. On a trap the
    /// trace ends at the faulting instruction.
    pub fn run_traced(
        &mut self,
        max_steps: u64,
        capacity: usize,
    ) -> (Result<RunResult, Trap>, Vec<TraceEntry>) {
        let mut trace: std::collections::VecDeque<TraceEntry> =
            std::collections::VecDeque::with_capacity(capacity.max(1));
        for _ in 0..max_steps {
            let pc = self.cpu.pc;
            let entry = self.describe(pc);
            if trace.len() == capacity.max(1) {
                trace.pop_front();
            }
            trace.push_back(entry);
            match self.cpu.step() {
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Halted) => {
                    self.cpu.profiler.finish(self.cpu.cycles);
                    return (
                        Ok(RunResult {
                            cycles: self.cpu.cycles,
                            instructions: self.cpu.instret,
                            exit_code: self.cpu.reg(Reg::A0),
                        }),
                        trace.into(),
                    );
                }
                Err(t) => return (Err(t), trace.into()),
            }
        }
        (
            Err(Trap::OutOfFuel {
                executed: self.cpu.instret,
            }),
            trace.into(),
        )
    }

    /// Disassembles the instruction at `pc` (best effort).
    fn describe(&self, pc: u32) -> TraceEntry {
        let lo = self.cpu.mem.fetch16(pc).unwrap_or(0);
        let (word, text) = if lo & 0b11 == 0b11 {
            let hi = self.cpu.mem.fetch16(pc.wrapping_add(2)).unwrap_or(0);
            let w = lo as u32 | ((hi as u32) << 16);
            (
                w,
                kwt_rvasm::Inst::decode(w)
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "<illegal>".into()),
            )
        } else {
            (
                lo as u32,
                kwt_rvasm::expand_compressed(lo)
                    .map(|i| format!("c.{i}"))
                    .unwrap_or_else(|| "<illegal>".into()),
            )
        };
        TraceEntry { pc, word, text }
    }

    // ---- host-side typed memory access ----

    /// Writes `f32` values (IEEE-754 bits) starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM.
    pub fn write_f32s(&mut self, addr: u32, values: &[f32]) {
        let bytes: Vec<u8> = values
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        self.cpu.mem.write_bytes(addr, &bytes);
        self.cpu.invalidate_decode_cache(addr, bytes.len() as u32);
    }

    /// Reads `len` `f32` values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM.
    pub fn read_f32s(&self, addr: u32, len: usize) -> Vec<f32> {
        self.cpu
            .mem
            .read_bytes(addr, len * 4)
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("chunk of 4"))))
            .collect()
    }

    /// Writes `i16` values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM.
    pub fn write_i16s(&mut self, addr: u32, values: &[i16]) {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.cpu.mem.write_bytes(addr, &bytes);
        self.cpu.invalidate_decode_cache(addr, bytes.len() as u32);
    }

    /// Reads `len` `i16` values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM.
    pub fn read_i16s(&self, addr: u32, len: usize) -> Vec<i16> {
        self.cpu
            .mem
            .read_bytes(addr, len * 2)
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes(c.try_into().expect("chunk of 2")))
            .collect()
    }

    /// Writes `i8` values starting at `addr` (the A8 image input path).
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM.
    pub fn write_i8s(&mut self, addr: u32, values: &[i8]) {
        let bytes: Vec<u8> = values.iter().map(|&v| v as u8).collect();
        self.cpu.mem.write_bytes(addr, &bytes);
        self.cpu.invalidate_decode_cache(addr, bytes.len() as u32);
    }

    /// Reads `len` `i8` values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM.
    pub fn read_i8s(&self, addr: u32, len: usize) -> Vec<i8> {
        self.cpu
            .mem
            .read_bytes(addr, len)
            .iter()
            .map(|&b| b as i8)
            .collect()
    }

    /// Writes `i32` values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM.
    pub fn write_i32s(&mut self, addr: u32, values: &[i32]) {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.cpu.mem.write_bytes(addr, &bytes);
        self.cpu.invalidate_decode_cache(addr, bytes.len() as u32);
    }

    /// Reads `len` `i32` values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM.
    pub fn read_i32s(&self, addr: u32, len: usize) -> Vec<i32> {
        self.cpu
            .mem
            .read_bytes(addr, len * 4)
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect()
    }
}

impl Cpu {
    /// Rebuilds a CPU with a new timing model, preserving all other state
    /// (used by [`Machine::with_timing`]).
    fn new_with_state(old: Cpu, timing: TimingModel) -> Cpu {
        let luts = old.luts().clone();
        let mut cpu = Cpu::new(old.mem.clone(), timing, luts);
        cpu.regs = old.regs;
        cpu.pc = old.pc;
        cpu.cycles = old.cycles;
        cpu.instret = old.instret;
        cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_rvasm::{Asm, Inst};

    fn program(build: impl FnOnce(&mut Asm)) -> Program {
        let mut asm = Asm::new(0, 0x8000);
        build(&mut asm);
        asm.emit(Inst::Ebreak);
        asm.finish().unwrap()
    }

    #[test]
    fn load_and_run_returns_exit_code() {
        let p = program(|a| a.li(Reg::A0, 7));
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        let r = m.run(100).unwrap();
        assert_eq!(r.exit_code, 7);
        assert!(r.cycles > 0);
        assert!(r.instructions >= 2);
    }

    #[test]
    fn ram_budget_enforced() {
        // A data section reaching into the reserved stack must be refused.
        let mut asm = Asm::new(0, 0x8000);
        asm.emit(Inst::Ebreak);
        asm.data_reserve(60 * 1024, 4); // 0x8000 + 60k > 64k - 4k stack
        let p = asm.finish().unwrap();
        assert!(matches!(
            Machine::load(&p, Platform::ibex()),
            Err(Trap::AccessOutOfBounds { .. })
        ));
    }

    #[test]
    fn out_of_fuel_reported() {
        // Infinite loop.
        let mut asm = Asm::new(0, 0x8000);
        let top = asm.new_label();
        asm.bind(top).unwrap();
        asm.jump_to(top);
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        assert!(matches!(m.run(50), Err(Trap::OutOfFuel { executed: 50 })));
    }

    #[test]
    fn typed_memory_io_round_trips() {
        let p = program(|a| a.nop());
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        m.write_f32s(0x9000, &[1.5, -2.25]);
        assert_eq!(m.read_f32s(0x9000, 2), vec![1.5, -2.25]);
        m.write_i16s(0xA000, &[-3, 700]);
        assert_eq!(m.read_i16s(0xA000, 2), vec![-3, 700]);
        assert_eq!(m.read_i32s(0xA000, 1), vec![(700 << 16) | 0xFFFD]);
    }

    #[test]
    fn entry_symbol_respected() {
        let mut asm = Asm::new(0, 0x8000);
        // dead code first
        asm.li(Reg::A0, 1);
        asm.emit(Inst::Ebreak);
        asm.here("entry");
        asm.li(Reg::A0, 2);
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        assert_eq!(m.run(100).unwrap().exit_code, 2);
    }

    #[test]
    fn with_timing_changes_cycle_counts() {
        let p = program(|a| {
            a.li(Reg::T0, 5);
            a.li(Reg::T1, 3);
            a.emit(Inst::Div {
                rd: Reg::A0,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
        });
        let mut ibex = Machine::load(&p, Platform::ibex()).unwrap();
        let mut ideal = Machine::load(&p, Platform::ibex())
            .unwrap()
            .with_timing(TimingModel::single_cycle());
        let c1 = ibex.run(100).unwrap().cycles;
        let c2 = ideal.run(100).unwrap().cycles;
        assert!(c1 > c2, "{c1} vs {c2}");
    }

    #[test]
    fn run_traced_captures_instruction_history() {
        let p = program(|a| {
            a.li(Reg::A0, 5);
            a.emit(Inst::Addi {
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 2,
            });
        });
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        let (result, trace) = m.run_traced(100, 8);
        assert_eq!(result.unwrap().exit_code, 7);
        assert!(trace.len() >= 3);
        assert!(trace.iter().any(|e| e.text.contains("addi a0, a0, 2")));
        assert!(trace.last().unwrap().text.contains("ebreak"));
        assert!(!trace[0].to_string().is_empty());
    }

    #[test]
    fn run_traced_ends_at_faulting_instruction() {
        // load from far outside RAM
        let mut asm = Asm::new(0, 0x8000);
        asm.here("entry");
        asm.li(Reg::T0, 0x0100_0000);
        asm.emit(Inst::Lw {
            rd: Reg::A0,
            rs1: Reg::T0,
            imm: 0,
        });
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        let (result, trace) = m.run_traced(100, 4);
        assert!(matches!(result, Err(Trap::AccessOutOfBounds { .. })));
        assert!(trace.last().unwrap().text.starts_with("lw"));
    }

    #[test]
    fn run_traced_ring_buffer_bounded() {
        // long loop; only the last `capacity` entries survive
        let mut asm = Asm::new(0, 0x8000);
        asm.here("entry");
        asm.li(Reg::T0, 50);
        let top = asm.new_label();
        asm.bind(top).unwrap();
        asm.emit(Inst::Addi {
            rd: Reg::T0,
            rs1: Reg::T0,
            imm: -1,
        });
        asm.branch_to(
            Inst::Bne {
                rs1: Reg::T0,
                rs2: Reg::Zero,
                offset: 0,
            },
            top,
        );
        asm.emit(Inst::Ebreak);
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        let (result, trace) = m.run_traced(1_000, 5);
        assert!(result.is_ok());
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn watchdog_bounds_runaway_programs() {
        // Infinite loop: without a watchdog it burns the whole step
        // budget; with one it stops at the cycle budget.
        let mut asm = Asm::new(0, 0x8000);
        let top = asm.new_label();
        asm.bind(top).unwrap();
        asm.jump_to(top);
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        m.set_cycle_watchdog(Some(100));
        match m.run(1_000_000) {
            Err(Trap::WatchdogExpired { budget, cycles }) => {
                assert_eq!(budget, 100);
                assert!(cycles > 100, "fired only once past the budget: {cycles}");
                assert!(cycles < 200, "fired promptly: {cycles}");
            }
            other => panic!("expected watchdog trap, got {other:?}"),
        }
        // disarmed again, the step budget is the only bound
        m.set_cycle_watchdog(None);
        m.reset_cpu();
        assert!(matches!(m.run(50), Err(Trap::OutOfFuel { .. })));
    }

    #[test]
    fn watchdog_with_slack_is_invisible() {
        let p = program(|a| a.li(Reg::A0, 7));
        let mut plain = Machine::load(&p, Platform::ibex()).unwrap();
        let baseline = plain.run(100).unwrap();
        let mut guarded = Machine::load(&p, Platform::ibex()).unwrap();
        guarded.set_cycle_watchdog(Some(u64::MAX));
        let r = guarded.run(100).unwrap();
        assert_eq!(r, baseline, "monitored loop must match the plain loop");
    }

    #[test]
    fn empty_fault_plan_is_bit_and_cycle_identical() {
        let p = program(|a| {
            a.li(Reg::T0, 5);
            a.li(Reg::T1, 3);
            a.emit(Inst::Mul {
                rd: Reg::A0,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
        });
        let mut plain = Machine::load(&p, Platform::ibex()).unwrap();
        let baseline = plain.run(100).unwrap();
        let mut hooked = Machine::load(&p, Platform::ibex()).unwrap();
        hooked.set_fault_plan(crate::FaultPlan::new());
        hooked.set_cycle_watchdog(Some(u64::MAX));
        let r = hooked.run(100).unwrap();
        assert_eq!(r, baseline);
        assert!(hooked.fault_log().is_empty());
    }

    #[test]
    fn forced_trap_fires_at_pc() {
        let p = program(|a| {
            a.li(Reg::A0, 1);
            a.li(Reg::A1, 2);
        });
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        let trap = Trap::AccessOutOfBounds {
            addr: 0xDEAD,
            pc: 0,
        };
        m.set_fault_plan(crate::FaultPlan::new().force_trap_at_pc(m.cpu.pc, trap));
        assert_eq!(m.run(100), Err(trap));
        assert_eq!(m.fault_log().len(), 1);
        // the event is consumed: a reset re-run completes cleanly
        m.reset_cpu();
        assert_eq!(m.run(100).unwrap().exit_code, 1);
    }

    #[test]
    fn reg_bit_flip_changes_the_result() {
        let p = program(|a| a.li(Reg::A0, 0));
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        // flip bit 4 of a0 right after it is written (step 1)
        m.set_fault_plan(crate::FaultPlan::new().flip_reg_bit(1, 10, 4));
        let r = m.run(100).unwrap();
        assert_eq!(r.exit_code, 16);
        assert_eq!(m.fault_log().len(), 1);
    }

    #[test]
    fn mem_bit_flip_in_text_invalidates_decode() {
        // li a0, 1; ebreak — flip a bit of the li immediately, before
        // the first step, so the decoded (cached) word changes.
        let p = program(|a| a.li(Reg::A0, 1));
        // warm the cache with a clean run first
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        assert_eq!(m.run(100).unwrap().exit_code, 1);
        m.reset_cpu();
        // addi imm bit: flipping a bit inside the immediate field of the
        // 32-bit li expansion changes the loaded constant
        m.set_fault_plan(crate::FaultPlan::new().flip_mem_bit(0, 2, 6));
        // decoding the corrupted word may legitimately trap; if it
        // runs, the flip must be visible through the cache
        if let Ok(res) = m.run(100) {
            assert_ne!(res.exit_code, 1, "flip must be visible through the cache");
        }
    }

    #[test]
    fn profiler_region_names_flow_through() {
        let p = program(|a| {
            a.li(Reg::T0, 3);
            a.emit(Inst::Csrrw {
                rd: Reg::Zero,
                rs1: Reg::T0,
                csr: 0x7C0,
            });
            a.nop();
            a.emit(Inst::Csrrw {
                rd: Reg::Zero,
                rs1: Reg::Zero,
                csr: 0x7C1,
            });
        });
        let mut m = Machine::load(&p, Platform::ibex()).unwrap();
        m.name_region(3, "gelu");
        m.run(100).unwrap();
        let report = m.profile_report();
        assert_eq!(report.regions[0].0, "gelu");
        assert!(report.regions[0].1 > 0);
    }
}
