//! Host golden models of the bare-metal truncating soft-float ops.
//!
//! The implementation lives in [`kwt_tensor::softfp`] so that crates
//! below the simulator in the dependency graph (notably `kwt-quant`'s A8
//! golden model) can share it; this module re-exports it under the
//! historical path. The simulator's `kfadd.t`/`kfsub.t`/`kfmul.t`
//! packed ops execute these functions directly, and the bare-metal
//! crate's differential tests pin the generated assembly to them
//! bit-for-bit.

pub use kwt_tensor::softfp::{add, mul, rsqrt, sub};
