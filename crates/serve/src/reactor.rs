//! A hand-rolled, dependency-free reactor: deterministic virtual-time
//! readiness scheduling for thousands of sources on one thread.
//!
//! There is no OS selector here on purpose — the workloads this repo
//! serves are synthetic 16 kHz streams and simulated devices, so
//! "readiness" is *when the next chunk of a stream is due*, measured on
//! whatever clock the caller advances (virtual ticks in the benches,
//! could be a monotonic wall clock behind a socket layer). The reactor
//! is a min-heap of `(due, seq, token)` with FIFO tie-breaking: `poll`
//! pops everything due at or before `now` in a deterministic order, so a
//! run over N multiplexed sessions replays identically every time —
//! which is what lets the benches assert bit-identical decision streams
//! across scheduling strategies.
//!
//! All storage is pre-allocated via [`Reactor::with_capacity`]; `arm`
//! and `poll_into` are allocation-free while the heap stays within
//! capacity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque source handle carried through the reactor (typically a session
/// slab index or an encoded [`SessionId`](crate::SessionId)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Deterministic virtual-time readiness queue (see the module docs).
#[derive(Debug, Default)]
pub struct Reactor {
    heap: BinaryHeap<Reverse<(u64, u64, Token)>>,
    seq: u64,
}

impl Reactor {
    /// A reactor with room for `capacity` armed sources before any heap
    /// growth.
    pub fn with_capacity(capacity: usize) -> Self {
        Reactor {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Arms `token` to become ready at time `due`. Sources armed for the
    /// same instant fire in arming order.
    pub fn arm(&mut self, due: u64, token: Token) {
        self.heap.push(Reverse((due, self.seq, token)));
        self.seq += 1;
    }

    /// The earliest pending deadline, if any — the caller's idle sleep
    /// bound.
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((due, _, _))| *due)
    }

    /// Pops every source due at or before `now` into `out` (appended in
    /// deterministic order) and returns how many fired.
    pub fn poll_into(&mut self, now: u64, out: &mut Vec<Token>) -> usize {
        let before = out.len();
        while let Some(Reverse((due, _, _))) = self.heap.peek() {
            if *due > now {
                break;
            }
            let Reverse((_, _, token)) = self.heap.pop().expect("peeked");
            out.push(token);
        }
        out.len() - before
    }

    /// Armed sources not yet fired.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_then_fifo_order() {
        let mut r = Reactor::with_capacity(8);
        r.arm(30, Token(3));
        r.arm(10, Token(1));
        r.arm(10, Token(2));
        r.arm(20, Token(9));
        assert_eq!(r.next_due(), Some(10));
        let mut fired = Vec::new();
        assert_eq!(r.poll_into(10, &mut fired), 2);
        assert_eq!(fired, [Token(1), Token(2)]);
        assert_eq!(r.poll_into(15, &mut fired), 0);
        assert_eq!(r.poll_into(30, &mut fired), 2);
        assert_eq!(fired[2..], [Token(9), Token(3)]);
        assert!(r.is_empty());
    }

    #[test]
    fn rearming_keeps_determinism() {
        // Two identical runs produce identical firing sequences.
        let run = || {
            let mut r = Reactor::with_capacity(4);
            let mut order = Vec::new();
            let mut fired = Vec::new();
            for s in 0..4u64 {
                r.arm(s % 2, Token(s));
            }
            let mut now = 0;
            while !r.is_empty() {
                fired.clear();
                r.poll_into(now, &mut fired);
                for t in &fired {
                    order.push((now, *t));
                    if now < 4 {
                        r.arm(now + 2, *t);
                    }
                }
                now += 1;
            }
            order
        };
        assert_eq!(run(), run());
    }
}
