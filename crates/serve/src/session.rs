//! Session identity and per-session slab state.

use kwt_audio::SampleRing;
use kwt_tensor::Mat;
use std::collections::VecDeque;
use std::fmt;

/// Generation-tagged handle to a slab slot.
///
/// The slab reuses slots: closing a session bumps the slot's generation,
/// so a handle held past `close` can never read or write the *next*
/// stream through the same slot — it fails with
/// [`ServeError::StaleSession`](crate::ServeError::StaleSession) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId {
    index: u32,
    generation: u32,
}

impl SessionId {
    pub(crate) fn new(index: u32, generation: u32) -> Self {
        SessionId { index, generation }
    }

    /// Slot index in the slab (stable for the life of the session).
    pub fn index(self) -> u32 {
        self.index
    }

    /// Slot reuse counter the handle was minted with.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}g{}", self.index, self.generation)
    }
}

/// One slab slot: everything a multiplexed stream needs, all allocated
/// when the slab is built and reused across sessions
/// ([`SampleRing::clear_for_reuse`] keeps the ring's buffer, the window
/// matrix is overwritten by the first `T` frame shifts, the vote deque
/// keeps its capacity).
///
/// The fields mirror [`kwt_engine::StreamingKws`] exactly — ring in place
/// of its `StreamingMfcc` buffer, same sliding window, same vote state —
/// which is what makes multiplexed decisions bit-identical to a
/// standalone streamer (the serve property tests assert it).
pub(crate) struct Slot {
    /// Bumped on close; part of every minted [`SessionId`].
    pub generation: u32,
    /// Occupied (open) vs free.
    pub active: bool,
    /// Bounded ingest ring; absolute indices are stream sample numbers.
    pub ring: SampleRing,
    /// Sliding `T x F` model window.
    pub window: Mat<f32>,
    /// MFCC frames folded into the window so far; the next frame covers
    /// stream samples `[frames_seen * hop, frames_seen * hop + win)`.
    pub frames_seen: u64,
    /// Most recent raw classes for majority smoothing.
    pub votes: VecDeque<usize>,
    /// Reusable per-class tally for [`kwt_engine::majority_vote`].
    pub counts: Vec<usize>,
}

impl Slot {
    pub fn new(
        ring_samples: usize,
        t_frames: usize,
        n_mfcc: usize,
        classes: usize,
        vote_window: usize,
    ) -> Self {
        Slot {
            generation: 0,
            active: false,
            ring: SampleRing::with_capacity(ring_samples),
            window: Mat::zeros(t_frames, n_mfcc),
            frames_seen: 0,
            votes: VecDeque::with_capacity(vote_window),
            counts: vec![0; classes],
        }
    }

    /// Returns the slot to the free pool: generation bumped (stale
    /// handles die), stream state forgotten, every allocation kept.
    pub fn release(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        self.active = false;
        self.ring.clear_for_reuse();
        self.frames_seen = 0;
        self.votes.clear();
        // `window` needs no clearing: nothing is classified before
        // `T` frames have been appended, and `T` appends overwrite
        // every row (same invariant as `StreamingKws::reset`).
    }
}
