//! Built-in serving accounting: counters, occupancy, and pre-allocated
//! log2 latency histograms with p50/p99/p999 readout.

/// Fixed 64-bucket base-2 histogram: values land in bucket
/// `⌈log2(v+1)⌉`, so no recording ever allocates and quantiles are read
/// with at most a factor-√2 representative error — plenty for latency
/// percentiles spanning nanoseconds to seconds (or cycles to
/// mega-cycles).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Folds one sample in (no allocation, O(1)).
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(63);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the geometric midpoint of the
    /// bucket the rank falls into; 0 when nothing was recorded. The top
    /// bucket answers with the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if b == 0 {
                    return 0;
                }
                let lo = 1u64 << (b - 1);
                let mid = lo + (lo >> 1);
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// Counters accumulated by a [`KwsServer`](crate::KwsServer) over its
/// lifetime. All plain data, updated in place — reading or recording
/// never allocates.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    /// Sessions admitted.
    pub sessions_opened: u64,
    /// Sessions closed (slots released for reuse).
    pub sessions_closed: u64,
    /// Chunks accepted into rings.
    pub chunks_accepted: u64,
    /// Samples accepted into rings.
    pub samples_accepted: u64,
    /// Chunks rejected whole by ring backpressure.
    pub chunks_rejected: u64,
    /// Samples in those rejected chunks.
    pub samples_dropped: u64,
    /// MFCC frames emitted across all sessions.
    pub frames_emitted: u64,
    /// Sliding-window decisions delivered.
    pub decisions: u64,
    /// Backend waves dispatched.
    pub waves: u64,
    /// Total windows across those waves — `wave_slots / waves` is the
    /// mean wave occupancy, the quantity cross-session batching exists
    /// to raise.
    pub wave_slots: u64,
    /// Summed simulated device cycles of all waves (0 on host backends).
    pub device_cycles: u64,
    /// Wall-clock ns from entering [`drive`](crate::KwsServer::drive) to
    /// each decision's delivery — in-server scheduling + inference
    /// latency.
    pub wall_latency_ns: LatencyHistogram,
    /// Simulated device cycles accumulated within the drive call before
    /// each decision was delivered — the deterministic queueing +
    /// service latency on the simulated SoC.
    pub sim_latency_cycles: LatencyHistogram,
}

impl ServeMetrics {
    /// Mean windows per dispatched wave (0 when no wave ran).
    pub fn wave_occupancy(&self) -> f64 {
        if self.waves == 0 {
            0.0
        } else {
            self.wave_slots as f64 / self.waves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50();
        // rank 500 falls in bucket [256, 512): representative 384.
        assert!((256..512).contains(&p50), "p50 = {p50}");
        assert!(h.p99() >= p50);
        assert!(h.p999() <= 1000);
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = LatencyHistogram::default();
        assert_eq!(h.p50(), 0);
        let mut h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn occupancy_is_mean_wave_fill() {
        let m = ServeMetrics {
            waves: 4,
            wave_slots: 14,
            ..ServeMetrics::default()
        };
        assert!((m.wave_occupancy() - 3.5).abs() < 1e-12);
    }
}
