//! The session-multiplexed ingest server.

use crate::metrics::ServeMetrics;
use crate::session::{SessionId, Slot};
use crate::{Result, ServeError};
use kwt_audio::{validate_samples, MfccExtractor, MfccScratch};
use kwt_engine::{majority_vote, Engine, Prediction, StreamDecision, StreamingConfig};
use kwt_tensor::Mat;
use std::time::Instant;

/// Sizing and smoothing knobs for [`KwsServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Slab capacity: sessions that may be open at once; admission
    /// beyond this fails with [`ServeError::SessionsFull`].
    pub max_sessions: usize,
    /// Per-session ring capacity in samples; `0` picks
    /// `win_length + 4 * hop_length` (room for one analysis window plus
    /// four hops of arrivals between drives). Chunks that do not fit are
    /// rejected whole with [`ServeError::Backpressure`].
    pub ring_samples: usize,
    /// Classification stride and majority-vote smoothing, with the same
    /// meaning (and the same default) as a standalone
    /// [`kwt_engine::StreamingKws`].
    pub streaming: StreamingConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 1024,
            ring_samples: 0,
            streaming: StreamingConfig::default(),
        }
    }
}

/// One delivered decision: which stream, and the same
/// [`StreamDecision`] a standalone streamer would have produced for it.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionDecision {
    /// The session the decision belongs to.
    pub session: SessionId,
    /// The sliding-window classification, bit-identical to
    /// [`kwt_engine::StreamingKws`] on the same audio.
    pub decision: StreamDecision,
}

/// Frame geometry shared by every per-session advance.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    win: usize,
    hop: u64,
    t_frames: u64,
    stride: u64,
}

/// Session-multiplexed KWS ingest server (see the [crate docs](crate)).
///
/// One engine, one slab, one scheduler: thousands of independent audio
/// streams are admitted into pre-allocated slots, buffered in bounded
/// rings, advanced to their next hop-aligned classification boundary,
/// and classified together in backend waves of
/// [`Engine::wave_width`] windows. Per-session results are bit-identical
/// to running each stream through its own
/// [`StreamingKws`](kwt_engine::StreamingKws); the multiplexing changes
/// *when* windows reach the backend, never *what* they compute.
pub struct KwsServer {
    engine: Engine,
    /// Cloned from the engine's extractor (exactly like `StreamingKws`),
    /// so frames match its batch output bit-for-bit.
    frontend: MfccExtractor,
    scratch: MfccScratch,
    geo: Geometry,
    vote_window: usize,
    slots: Vec<Slot>,
    /// Free-slot stack (indices into `slots`).
    free: Vec<u32>,
    active: usize,
    /// One analysis window of samples, assembled from a ring.
    frame_buf: Vec<f32>,
    /// One MFCC row.
    row_buf: Vec<f32>,
    /// Per-wave window staging, `wave_width` slots.
    staging: Vec<Mat<f32>>,
    /// Per-wave prediction staging, refilled in place.
    preds: Vec<Prediction>,
    /// Sessions halted at a classification boundary this round.
    ready: Vec<u32>,
    /// Round double-buffer.
    next_round: Vec<u32>,
    metrics: ServeMetrics,
}

impl KwsServer {
    /// Builds the slab and every arena up front — after this, admitting,
    /// buffering, scheduling and classifying allocate nothing (the
    /// crate's allocation-counting test proves it).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for a zero `max_sessions`, zero
    /// stride or vote window, or a ring too small to ever complete an
    /// analysis window.
    pub fn new(engine: Engine, config: ServeConfig) -> Result<Self> {
        if config.max_sessions == 0 {
            return Err(ServeError::Config {
                why: "max_sessions must be positive".into(),
            });
        }
        if config.streaming.stride_frames == 0 || config.streaming.vote_window == 0 {
            return Err(ServeError::Config {
                why: "stride_frames and vote_window must be positive".into(),
            });
        }
        let frontend = engine.frontend().clone();
        let fc = frontend.config();
        let (win, hop) = (fc.win_length, fc.hop_length);
        let n_mfcc = fc.n_mfcc;
        let ring_samples = if config.ring_samples == 0 {
            win + 4 * hop
        } else {
            config.ring_samples
        };
        if ring_samples < win {
            return Err(ServeError::Config {
                why: format!(
                    "ring_samples {ring_samples} cannot hold one {win}-sample analysis window"
                ),
            });
        }
        let c = *engine.config();
        let width = engine.wave_width();
        let slots = (0..config.max_sessions)
            .map(|_| {
                Slot::new(
                    ring_samples,
                    c.input_time,
                    n_mfcc,
                    c.num_classes,
                    config.streaming.vote_window,
                )
            })
            .collect();
        Ok(KwsServer {
            geo: Geometry {
                win,
                hop: hop as u64,
                t_frames: c.input_time as u64,
                stride: config.streaming.stride_frames as u64,
            },
            vote_window: config.streaming.vote_window,
            slots,
            free: (0..config.max_sessions as u32).rev().collect(),
            active: 0,
            frame_buf: vec![0.0; win],
            row_buf: vec![0.0; n_mfcc],
            staging: (0..width)
                .map(|_| Mat::zeros(c.input_time, c.input_freq))
                .collect(),
            preds: vec![Prediction::default(); width],
            ready: Vec::with_capacity(config.max_sessions),
            next_round: Vec::with_capacity(config.max_sessions),
            metrics: ServeMetrics::default(),
            scratch: MfccScratch::new(),
            frontend,
            engine,
        })
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Lifetime counters and latency histograms.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Currently open sessions.
    pub fn active_sessions(&self) -> usize {
        self.active
    }

    /// Slab capacity (the admission limit).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Windows the backend can classify concurrently per wave.
    pub fn wave_width(&self) -> usize {
        self.staging.len()
    }

    /// Per-session ring capacity in samples.
    pub fn ring_samples(&self) -> usize {
        self.slots[0].ring.capacity()
    }

    /// Admits a new stream into a free slab slot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SessionsFull`] when every slot is occupied.
    pub fn open(&mut self) -> Result<SessionId> {
        let Some(index) = self.free.pop() else {
            return Err(ServeError::SessionsFull {
                capacity: self.slots.len(),
            });
        };
        let slot = &mut self.slots[index as usize];
        debug_assert!(!slot.active && slot.ring.is_empty() && slot.frames_seen == 0);
        slot.active = true;
        self.active += 1;
        self.metrics.sessions_opened += 1;
        Ok(SessionId::new(index, slot.generation))
    }

    /// Closes a session: the slot's generation is bumped (the handle and
    /// any copies of it go stale) and the slot returns to the free pool
    /// with all its allocations intact. Samples that never completed an
    /// analysis window are dropped, like `StreamingKws::reset`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StaleSession`] for an unknown, closed or
    /// reused id.
    pub fn close(&mut self, id: SessionId) -> Result<()> {
        self.slot_index(id)?;
        self.slots[id.index() as usize].release();
        self.free.push(id.index());
        self.active -= 1;
        self.metrics.sessions_closed += 1;
        Ok(())
    }

    /// Buffers an audio chunk for `id`. Samples are validated first
    /// (the exact [`validate_samples`] gate the streaming front end
    /// applies), then accepted whole or rejected whole — a full ring is
    /// a typed [`ServeError::Backpressure`], never growth and never a
    /// panic, and a rejected chunk leaves the session exactly where it
    /// was. An empty chunk is a no-op.
    ///
    /// # Errors
    ///
    /// [`ServeError::StaleSession`], [`ServeError::Audio`] (non-finite
    /// samples, nothing buffered), or [`ServeError::Backpressure`].
    pub fn push(&mut self, id: SessionId, samples: &[f32]) -> Result<()> {
        let index = self.slot_index(id)?;
        validate_samples(samples)?;
        match self.slots[index].ring.push(samples) {
            Ok(()) => {
                self.metrics.chunks_accepted += 1;
                self.metrics.samples_accepted += samples.len() as u64;
                Ok(())
            }
            Err(overflow) => {
                self.metrics.chunks_rejected += 1;
                self.metrics.samples_dropped += overflow.dropped as u64;
                Err(ServeError::Backpressure {
                    session: id,
                    dropped: overflow.dropped,
                    free: overflow.free,
                })
            }
        }
    }

    /// Free sample slots left in `id`'s ring — how much the caller can
    /// push before hitting backpressure.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StaleSession`] for a dead id.
    pub fn ring_free(&self, id: SessionId) -> Result<usize> {
        Ok(self.slots[self.slot_index(id)?].ring.free())
    }

    /// Runs the scheduler until no session can produce another decision
    /// from its buffered audio, delivering every completed decision
    /// through `on_decision`, and returns how many were delivered.
    ///
    /// Each round: every candidate session consumes ring samples into
    /// hop-aligned MFCC frames (one shared frame kernel — the one batch
    /// extraction uses) and slides its `T x F` window until it crosses a
    /// classification boundary; all boundary-crossing windows are then
    /// classified together in backend waves of
    /// [`wave_width`](Self::wave_width), votes are updated and decisions
    /// delivered in deterministic slot order. Sessions that produced a
    /// decision re-enter the next round (a large backlog yields several
    /// decisions per drive).
    ///
    /// # Errors
    ///
    /// Propagates engine/front-end failures; decisions delivered before
    /// the failure stand, and every session keeps the progress it made
    /// (no rollback — same contract as `StreamingKws::push_with`).
    pub fn drive(&mut self, mut on_decision: impl FnMut(&SessionDecision)) -> Result<usize> {
        let started = Instant::now();
        let mut drive_cycles = 0u64;
        let mut delivered = 0usize;
        let vote_window = self.vote_window;
        let geo = self.geo;
        let Self {
            engine,
            frontend,
            scratch,
            slots,
            frame_buf,
            row_buf,
            staging,
            preds,
            ready,
            next_round,
            metrics,
            ..
        } = self;

        // Round 0: every active session is a candidate.
        ready.clear();
        for (index, slot) in slots.iter_mut().enumerate() {
            if slot.active
                && advance_to_boundary(slot, frontend, scratch, frame_buf, row_buf, geo, metrics)?
            {
                ready.push(index as u32);
            }
        }

        while !ready.is_empty() {
            // Classify this round's boundary-crossers in fused waves.
            for chunk in ready.chunks(staging.len()) {
                let k = chunk.len();
                for (stage, &index) in staging.iter_mut().zip(chunk) {
                    stage
                        .as_mut_slice()
                        .copy_from_slice(slots[index as usize].window.as_slice());
                }
                engine.classify_window_wave_into(&staging[..k], &mut preds[..k])?;
                let wave_cycles = engine.last_wave_device_cycles().unwrap_or(0);
                drive_cycles += wave_cycles;
                metrics.waves += 1;
                metrics.wave_slots += k as u64;
                metrics.device_cycles += wave_cycles;
                for (pred, &index) in preds[..k].iter().zip(chunk) {
                    let slot = &mut slots[index as usize];
                    if slot.votes.len() == vote_window {
                        slot.votes.pop_front();
                    }
                    slot.votes.push_back(pred.class);
                    let decision = SessionDecision {
                        session: SessionId::new(index, slot.generation),
                        decision: StreamDecision {
                            frame_index: slot.frames_seen - 1,
                            class: pred.class,
                            score: pred.score,
                            smoothed_class: majority_vote(&slot.votes, &mut slot.counts),
                        },
                    };
                    metrics.decisions += 1;
                    metrics
                        .wall_latency_ns
                        .record(started.elapsed().as_nanos() as u64);
                    metrics.sim_latency_cycles.record(drive_cycles);
                    on_decision(&decision);
                    delivered += 1;
                }
            }
            // Only sessions that just classified can have another
            // boundary buffered; everyone else is already starved.
            next_round.clear();
            for &index in ready.iter() {
                let slot = &mut slots[index as usize];
                if advance_to_boundary(slot, frontend, scratch, frame_buf, row_buf, geo, metrics)? {
                    next_round.push(index);
                }
            }
            std::mem::swap(ready, next_round);
        }
        Ok(delivered)
    }

    /// Validates an id against the slab, returning the slot index.
    fn slot_index(&self, id: SessionId) -> Result<usize> {
        let index = id.index() as usize;
        match self.slots.get(index) {
            Some(slot) if slot.active && slot.generation == id.generation() => Ok(index),
            _ => Err(ServeError::StaleSession { session: id }),
        }
    }
}

impl std::fmt::Debug for KwsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KwsServer")
            .field("engine", &self.engine)
            .field("capacity", &self.slots.len())
            .field("active", &self.active)
            .field("wave_width", &self.staging.len())
            .finish_non_exhaustive()
    }
}

/// Consumes buffered samples into hop-aligned frames, sliding the
/// session's window, until it crosses a classification boundary (`true`)
/// or starves (`false`) — the exact emission and classify conditions of
/// `StreamingMfcc::push` + `StreamingKws::push_with`, which is what
/// keeps multiplexed decisions bit-identical to a standalone streamer.
fn advance_to_boundary(
    slot: &mut Slot,
    frontend: &MfccExtractor,
    scratch: &mut MfccScratch,
    frame_buf: &mut [f32],
    row_buf: &mut [f32],
    geo: Geometry,
    metrics: &mut ServeMetrics,
) -> Result<bool> {
    loop {
        let start = slot.frames_seen * geo.hop;
        if slot.ring.end() < start + geo.win as u64 {
            return Ok(false);
        }
        slot.ring.copy_to(start, frame_buf);
        frontend.compute_frame_into(frame_buf, row_buf, scratch)?;
        let cols = slot.window.cols();
        slot.window.as_mut_slice().copy_within(cols.., 0);
        let last = slot.window.rows() - 1;
        slot.window.row_mut(last).copy_from_slice(row_buf);
        slot.frames_seen += 1;
        metrics.frames_emitted += 1;
        // Samples before the next frame's start can never be read again.
        slot.ring.discard_to(slot.frames_seen * geo.hop);
        if slot.frames_seen >= geo.t_frames
            && (slot.frames_seen - geo.t_frames).is_multiple_of(geo.stride)
        {
            return Ok(true);
        }
    }
}
