//! Cascade serving: wake-word triggers from the multiplexed detector,
//! verified by a gated second-stage engine.
//!
//! [`CascadeServer`] wraps the [`KwsServer`] (which keeps the tiny
//! detector always on across every session, batching windows into
//! backend waves) and adds the second cascade stage from
//! [`kwt_engine::CascadeEngine`]'s playbook: when a session's smoothed
//! detector decision lands on the wake class, the server re-reads that
//! session's most recent second of **raw audio** from its retention ring
//! and runs the big verifier on it. Sessions that never say the wake
//! word never pay for the verifier — the whole point of the cascade.
//!
//! The verifier has its own front end (KWT-1 consumes 98×40 MFCC windows
//! versus the detector's 26×16), which is why retention stores raw
//! samples rather than detector features: each stage extracts its own
//! view, exactly as two device images would on hardware.
//!
//! A per-session refractory window suppresses re-verification while one
//! utterance streams past the detector (a keyword spans many overlapping
//! windows; verifying each would erase the cascade's savings).

use crate::server::{KwsServer, SessionDecision};
use crate::session::SessionId;
use crate::{Result, ServeError};
use kwt_engine::{Engine, Prediction, StreamDecision};

/// Gating and retention knobs for [`CascadeServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeServeConfig {
    /// Detector class that means "wake word present".
    pub wake_class: usize,
    /// Minimum detector probability (raw window score) to trigger.
    pub wake_threshold: f32,
    /// Verifier class that confirms a detection.
    pub verify_class: usize,
    /// Frames a session stays silent after a trigger before it may
    /// trigger again (measured on the detector's frame clock).
    pub refractory_frames: u64,
}

impl Default for CascadeServeConfig {
    fn default() -> Self {
        CascadeServeConfig {
            wake_class: 1,
            wake_threshold: 0.6,
            verify_class: 1,
            refractory_frames: 26,
        }
    }
}

/// One verified wake-word event.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeEvent {
    /// The session that triggered.
    pub session: SessionId,
    /// The detector decision that fired the gate.
    pub decision: StreamDecision,
    /// The verifier's verdict on the retained audio.
    pub verdict: Prediction,
    /// `verdict.class == verify_class`.
    pub accepted: bool,
    /// Verifier device cycles for this verification (`None` on host
    /// backends).
    pub verifier_cycles: Option<u64>,
}

/// Cascade counters, cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Detector decisions observed across all sessions.
    pub decisions: u64,
    /// Decisions that passed the wake gate (before the refractory check).
    pub triggers: u64,
    /// Verifier invocations (triggers surviving the refractory window).
    pub verifications: u64,
    /// Verifications the verifier confirmed.
    pub accepts: u64,
    /// Total verifier device cycles spent (0 on host backends).
    pub verifier_device_cycles: u64,
}

/// Per-session raw-audio retention + refractory bookkeeping.
#[derive(Debug, Clone)]
struct Tail {
    /// Circular buffer of the most recent `len` samples.
    ring: Vec<f32>,
    /// Next write position.
    pos: usize,
    /// Total samples ever written (for left-zero-padding young sessions).
    written: u64,
    /// Generation this tail belongs to (slab slots are reused).
    generation: u32,
    /// Frame index of the last accepted trigger, if any.
    last_fire: Option<u64>,
}

impl Tail {
    fn reset(&mut self, generation: u32) {
        self.ring.iter_mut().for_each(|v| *v = 0.0);
        self.pos = 0;
        self.written = 0;
        self.generation = generation;
        self.last_fire = None;
    }

    fn push(&mut self, samples: &[f32]) {
        for &s in samples {
            self.ring[self.pos] = s;
            self.pos = (self.pos + 1) % self.ring.len();
        }
        self.written += samples.len() as u64;
    }

    /// Copies the retained audio, oldest first, into `out`
    /// (right-aligned; the prefix stays zero while the ring is young).
    fn snapshot(&self, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.ring.len());
        let n = self.ring.len();
        let filled = (self.written as usize).min(n);
        out[..n - filled].iter_mut().for_each(|v| *v = 0.0);
        for i in 0..filled {
            // Oldest retained sample sits at `pos` once the ring wrapped.
            out[n - filled + i] = self.ring[(self.pos + n - filled + i) % n];
        }
    }
}

/// The two-stage serving loop (see the module docs).
pub struct CascadeServer {
    inner: KwsServer,
    verifier: Engine,
    config: CascadeServeConfig,
    tails: Vec<Tail>,
    /// Scratch: one verifier input window.
    clip_buf: Vec<f32>,
    /// Scratch: verifier output.
    verdict: Prediction,
    /// Scratch: triggers collected during a drive.
    pending: Vec<(SessionId, StreamDecision)>,
    stats: CascadeStats,
}

impl CascadeServer {
    /// Wraps a detector server and a verifier engine.
    ///
    /// Retention is sized to one nominal verifier clip (one second for
    /// the KWT-1 front end), derived from the verifier's frame geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] when a gate class is out of range
    /// for its stage or the threshold is not a probability.
    pub fn new(detector: KwsServer, verifier: Engine, config: CascadeServeConfig) -> Result<Self> {
        let dc = detector.engine().config().num_classes;
        let vc = verifier.config().num_classes;
        if config.wake_class >= dc {
            return Err(ServeError::Config {
                why: format!(
                    "wake_class {} out of range for {dc}-class detector",
                    config.wake_class
                ),
            });
        }
        if config.verify_class >= vc {
            return Err(ServeError::Config {
                why: format!(
                    "verify_class {} out of range for {vc}-class verifier",
                    config.verify_class
                ),
            });
        }
        if !(config.wake_threshold.is_finite() && (0.0..=1.0).contains(&config.wake_threshold)) {
            return Err(ServeError::Config {
                why: format!(
                    "wake_threshold {} is not a probability",
                    config.wake_threshold
                ),
            });
        }
        // One nominal clip of the verifier's front end: T frames of hop
        // plus the window tail — for the KWT-1 geometry this is exactly
        // one second of audio.
        let fc = verifier.frontend().config();
        let clip_samples =
            fc.hop_length * (verifier.frontend().frames_per_clip() - 1) + fc.win_length;
        let capacity = detector.capacity();
        Ok(CascadeServer {
            tails: (0..capacity)
                .map(|_| Tail {
                    ring: vec![0.0; clip_samples],
                    pos: 0,
                    written: 0,
                    generation: 0,
                    last_fire: None,
                })
                .collect(),
            clip_buf: vec![0.0; clip_samples],
            verdict: Prediction::default(),
            pending: Vec::new(),
            inner: detector,
            verifier,
            config,
            stats: CascadeStats::default(),
        })
    }

    /// The wrapped detector server.
    pub fn detector(&self) -> &KwsServer {
        &self.inner
    }

    /// The verifier engine.
    pub fn verifier(&self) -> &Engine {
        &self.verifier
    }

    /// Cascade counters.
    pub fn stats(&self) -> CascadeStats {
        self.stats
    }

    /// Samples of raw audio retained per session for verification.
    pub fn retention_samples(&self) -> usize {
        self.clip_buf.len()
    }

    /// Admits a new session (see [`KwsServer::open`]).
    ///
    /// # Errors
    ///
    /// Propagates slab-full errors.
    pub fn open(&mut self) -> Result<SessionId> {
        let id = self.inner.open()?;
        self.tails[id.index() as usize].reset(id.generation());
        Ok(id)
    }

    /// Closes a session (see [`KwsServer::close`]).
    ///
    /// # Errors
    ///
    /// Propagates stale-handle errors.
    pub fn close(&mut self, id: SessionId) -> Result<()> {
        self.inner.close(id)
    }

    /// Buffers a chunk for a session, retaining it for verification.
    ///
    /// # Errors
    ///
    /// Propagates validation/backpressure errors; on backpressure the
    /// chunk is retained by neither stage.
    pub fn push(&mut self, id: SessionId, samples: &[f32]) -> Result<()> {
        self.inner.push(id, samples)?;
        let tail = &mut self.tails[id.index() as usize];
        debug_assert_eq!(tail.generation, id.generation());
        tail.push(samples);
        Ok(())
    }

    /// Drives the detector to its next quiescent point, verifying every
    /// gated trigger; `on_event` receives one [`CascadeEvent`] per
    /// verification. Returns the number of detector decisions delivered.
    ///
    /// # Errors
    ///
    /// Propagates detector and verifier failures.
    pub fn drive(&mut self, mut on_event: impl FnMut(&CascadeEvent)) -> Result<usize> {
        let config = self.config;
        let pending = &mut self.pending;
        let tails = &mut self.tails;
        let mut decisions = 0u64;
        let mut triggers = 0u64;
        pending.clear();
        let delivered = self.inner.drive(|sd: &SessionDecision| {
            decisions += 1;
            let d = &sd.decision;
            let fired = d.class == config.wake_class
                && d.smoothed_class == config.wake_class
                && d.score >= config.wake_threshold;
            if !fired {
                return;
            }
            triggers += 1;
            let tail = &mut tails[sd.session.index() as usize];
            if let Some(last) = tail.last_fire {
                if d.frame_index.saturating_sub(last) < config.refractory_frames {
                    return;
                }
            }
            tail.last_fire = Some(d.frame_index);
            pending.push((sd.session, d.clone()));
        })?;
        self.stats.decisions += decisions;
        self.stats.triggers += triggers;
        for (session, decision) in self.pending.drain(..) {
            self.tails[session.index() as usize].snapshot(&mut self.clip_buf);
            self.verifier
                .classify_into(&self.clip_buf, &mut self.verdict)?;
            let verifier_cycles = self.verifier.last_device_run().map(|r| r.cycles);
            self.stats.verifications += 1;
            self.stats.verifier_device_cycles += verifier_cycles.unwrap_or(0);
            let accepted = self.verdict.class == self.config.verify_class;
            if accepted {
                self.stats.accepts += 1;
            }
            let event = CascadeEvent {
                session,
                decision,
                verdict: self.verdict.clone(),
                accepted,
                verifier_cycles,
            };
            on_event(&event);
        }
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use kwt_audio::kwt_tiny_frontend;
    use kwt_model::{KwtConfig, KwtParams};

    fn engine(seed: u64) -> Engine {
        let params = KwtParams::init(KwtConfig::kwt_tiny(), seed).unwrap();
        Engine::host_float(params, kwt_tiny_frontend().unwrap()).unwrap()
    }

    fn server(threshold: f32) -> CascadeServer {
        let det = KwsServer::new(engine(1), ServeConfig::default()).unwrap();
        CascadeServer::new(
            det,
            engine(2),
            CascadeServeConfig {
                wake_threshold: threshold,
                refractory_frames: 4,
                ..CascadeServeConfig::default()
            },
        )
        .unwrap()
    }

    fn chunk(seed: u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 + seed as f32) * 0.017).sin() * 0.4)
            .collect()
    }

    #[test]
    fn zero_threshold_verifies_and_matches_plain_engine() {
        // Gate wide open: every smoothed wake-class decision verifies.
        let mut srv = server(0.0);
        let id = srv.open().unwrap();
        let mut events = Vec::new();
        for i in 0..20 {
            srv.push(id, &chunk(i, 1600)).unwrap();
            srv.drive(|e| events.push(e.clone())).unwrap();
        }
        let st = srv.stats();
        assert!(st.decisions > 0);
        assert_eq!(st.verifications, events.len() as u64);
        // The wake gate still requires class == wake_class; with a random
        // detector some decisions fire and some do not, but each event's
        // verdict must be internally consistent.
        for e in &events {
            assert_eq!(e.accepted, e.verdict.class == 1);
            assert_eq!(e.decision.class, 1);
        }
        assert!(st.triggers >= st.verifications);
    }

    #[test]
    fn impossible_threshold_never_verifies() {
        let mut srv = server(1.0);
        let id = srv.open().unwrap();
        let mut events = 0usize;
        for i in 0..12 {
            srv.push(id, &chunk(i, 1600)).unwrap();
            srv.drive(|_| events += 1).unwrap();
        }
        assert_eq!(events, 0);
        assert_eq!(srv.stats().verifications, 0);
        assert!(srv.stats().decisions > 0);
    }

    #[test]
    fn refractory_suppresses_back_to_back_triggers() {
        let mut srv = server(0.0);
        let id = srv.open().unwrap();
        let mut frames = Vec::new();
        for i in 0..30 {
            srv.push(id, &chunk(i, 1600)).unwrap();
            srv.drive(|e| frames.push(e.decision.frame_index)).unwrap();
        }
        for w in frames.windows(2) {
            assert!(w[1] - w[0] >= 4, "refractory violated: {frames:?}");
        }
    }

    #[test]
    fn retention_matches_verifier_clip() {
        let srv = server(0.5);
        // Tiny verifier front end: 62.5 ms windows, 37.5 ms hop, 26
        // frames → exactly one second of audio.
        assert_eq!(srv.retention_samples(), 600 * 25 + 1000);
        assert!(srv.detector().capacity() > 0);
    }

    #[test]
    fn snapshot_right_aligns_young_sessions() {
        let mut t = Tail {
            ring: vec![0.0; 8],
            pos: 0,
            written: 0,
            generation: 0,
            last_fire: None,
        };
        t.push(&[1.0, 2.0, 3.0]);
        let mut out = vec![9.0; 8];
        t.snapshot(&mut out);
        assert_eq!(out, vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0]);
        t.push(&[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        t.snapshot(&mut out);
        assert_eq!(out, vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn bad_gate_configs_are_rejected() {
        let det = KwsServer::new(engine(1), ServeConfig::default()).unwrap();
        let bad = CascadeServer::new(
            det,
            engine(2),
            CascadeServeConfig {
                wake_class: 5,
                ..CascadeServeConfig::default()
            },
        );
        assert!(bad.is_err());
        let det = KwsServer::new(engine(1), ServeConfig::default()).unwrap();
        let bad = CascadeServer::new(
            det,
            engine(2),
            CascadeServeConfig {
                wake_threshold: 2.0,
                ..CascadeServeConfig::default()
            },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn sessions_are_isolated() {
        let mut srv = server(0.0);
        let a = srv.open().unwrap();
        let b = srv.open().unwrap();
        // Only session `a` receives audio; any event must name `a`.
        let mut sessions = Vec::new();
        for i in 0..10 {
            srv.push(a, &chunk(i, 1600)).unwrap();
            srv.drive(|e| sessions.push(e.session)).unwrap();
        }
        assert!(sessions.iter().all(|s| *s == a));
        srv.close(b).unwrap();
        srv.close(a).unwrap();
    }
}
