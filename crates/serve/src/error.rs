use crate::SessionId;
use std::fmt;

/// Error type of the ingest server.
///
/// Backpressure is a first-class, *typed* outcome here — a full
/// per-session ring rejects the chunk whole and reports exactly how many
/// samples were refused, instead of growing a buffer or panicking. The
/// enum is `#[non_exhaustive]` because the admission-control taxonomy
/// grows with the serving work; downstream matches keep a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The session's bounded ring cannot take the chunk: `dropped`
    /// samples were refused whole (none were buffered) with `free` slots
    /// left. The session stays live — the caller may retry after a
    /// [`drive`](crate::KwsServer::drive) has consumed buffered audio.
    Backpressure {
        /// Session whose ring is full.
        session: SessionId,
        /// Samples in the rejected chunk.
        dropped: usize,
        /// Ring slots that were still free.
        free: usize,
    },
    /// Admission control: every slab slot is occupied.
    SessionsFull {
        /// Total slots in the slab.
        capacity: usize,
    },
    /// The id's slot was closed (and possibly reopened for another
    /// stream) — the generation tag no longer matches.
    StaleSession {
        /// The outdated id.
        session: SessionId,
    },
    /// A serving parameter is out of its valid domain.
    Config {
        /// What is inconsistent.
        why: String,
    },
    /// MFCC front-end failure (e.g. a chunk with non-finite samples,
    /// rejected before buffering).
    Audio(kwt_audio::AudioError),
    /// Inference failure in the wrapped engine.
    Engine(kwt_engine::EngineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backpressure {
                session,
                dropped,
                free,
            } => write!(
                f,
                "backpressure on {session}: chunk of {dropped} samples rejected ({free} free)"
            ),
            ServeError::SessionsFull { capacity } => {
                write!(
                    f,
                    "admission refused: all {capacity} session slots occupied"
                )
            }
            ServeError::StaleSession { session } => {
                write!(f, "stale session id {session}: slot closed or reused")
            }
            ServeError::Config { why } => write!(f, "serve configuration: {why}"),
            ServeError::Audio(e) => write!(f, "audio front end: {e}"),
            ServeError::Engine(e) => write!(f, "inference engine: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Audio(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kwt_audio::AudioError> for ServeError {
    fn from(e: kwt_audio::AudioError) -> Self {
        ServeError::Audio(e)
    }
}

impl From<kwt_engine::EngineError> for ServeError {
    fn from(e: kwt_engine::EngineError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let id = SessionId::new(3, 7);
        let e = ServeError::Backpressure {
            session: id,
            dropped: 160,
            free: 12,
        };
        assert!(e.to_string().contains("160"));
        let e: ServeError = kwt_audio::AudioError::SignalTooShort { got: 1, need: 2 }.into();
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
