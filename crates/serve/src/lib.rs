//! # kwt-serve
//!
//! The serving layer of the reproduction: a **session-multiplexed
//! ingest server** that drives thousands of concurrent keyword-spotting
//! streams through one engine on one event loop, batching windows
//! *across sessions* so wide backends (the simulated RV32 cluster) run
//! full waves instead of one stream's window at a time.
//!
//! The paper's deployment target is a single small device; the serving
//! question this crate answers is the production-scale inverse — many
//! microphones, one inference resource. The pieces:
//!
//! * **Slab sessions** ([`SessionId`]): every per-stream resource — a
//!   bounded [`kwt_audio::SampleRing`], the sliding `T x F` window, the
//!   vote state — is allocated once when the server is built and reused
//!   through open/close cycles. Handles are generation-tagged, so an id
//!   held past `close` fails with [`ServeError::StaleSession`] instead
//!   of touching the slot's next occupant.
//! * **Explicit backpressure**: a chunk that does not fit its session's
//!   ring is rejected *whole* with [`ServeError::Backpressure`]
//!   (how many samples, how much room was left); admission beyond the
//!   slab is [`ServeError::SessionsFull`]. Nothing ever grows silently
//!   and nothing panics on overload.
//! * **Cross-session batch scheduling** ([`KwsServer::drive`]): each
//!   round advances every candidate session to its next hop-aligned
//!   classification boundary, then classifies all boundary-crossing
//!   windows together in backend waves of [`Engine::wave_width`]
//!   windows ([`Engine::classify_window_wave_into`]). On a 4-hart
//!   cluster a wave costs one SoC timeline instead of four serial runs —
//!   that is where the multiplexed throughput win comes from.
//! * **Bit-identity**: scheduling never changes results. Per session the
//!   server replays the exact `StreamingMfcc` emission rule, the exact
//!   `StreamingKws` classify condition and the exact
//!   [`kwt_engine::majority_vote`] smoothing, and the wave contract
//!   guarantees wave logits equal serial logits — so every delivered
//!   [`SessionDecision`] is bit-identical to a standalone
//!   [`kwt_engine::StreamingKws`] over the same audio, for any
//!   interleaving and any chunk split (property-tested).
//! * **Accounting** ([`ServeMetrics`]): decisions, wave occupancy,
//!   summed device cycles, and pre-allocated p50/p99/p999 histograms of
//!   wall-clock and simulated-cycle delivery latency.
//! * **Reactor** ([`Reactor`]): a dependency-free, deterministic
//!   virtual-time readiness queue used by the benches to interleave
//!   thousands of synthetic 16 kHz streams reproducibly.
//! * **Wake-word cascade** ([`CascadeServer`]): wraps the multiplexed
//!   server in the two-stage always-on story — the server's tiny
//!   detector decisions gate a KWT-1 verifier pass over one-second
//!   sample tails of the triggering sessions, with a per-session
//!   refractory period ([`CascadeServeConfig`], [`CascadeStats`]).
//!
//! After warm-up the whole admit → buffer → schedule → classify →
//! deliver path performs **zero heap allocation** (asserted by this
//! crate's allocation-counting test, like the engine's).
//!
//! # Example
//!
//! ```
//! use kwt_engine::Engine;
//! use kwt_model::{KwtConfig, KwtParams};
//! use kwt_serve::{KwsServer, ServeConfig};
//!
//! # fn main() -> Result<(), kwt_serve::ServeError> {
//! let params = KwtParams::init(KwtConfig::kwt_tiny(), 7).unwrap();
//! let engine = Engine::host_float(params, kwt_audio::kwt_tiny_frontend().unwrap())?;
//! let mut server = KwsServer::new(engine, ServeConfig::default())?;
//! let a = server.open()?;
//! let b = server.open()?;
//! let chunk = vec![0.1f32; 1_600]; // 100 ms at 16 kHz
//! for _ in 0..12 {
//!     server.push(a, &chunk)?;
//!     server.push(b, &chunk)?;
//!     server.drive(|d| println!("{}: class {}", d.session, d.decision.smoothed_class))?;
//! }
//! assert!(server.metrics().decisions > 0);
//! server.close(a)?;
//! server.close(b)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cascade;
mod error;
mod metrics;
mod reactor;
mod server;
mod session;

pub use cascade::{CascadeEvent, CascadeServeConfig, CascadeServer, CascadeStats};
pub use error::ServeError;
pub use metrics::{LatencyHistogram, ServeMetrics};
pub use reactor::{Reactor, Token};
pub use server::{KwsServer, ServeConfig, SessionDecision};
pub use session::SessionId;

#[doc(no_inline)]
pub use kwt_engine::Engine;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
