//! The serving layer's headline guarantee, property-tested: N sessions
//! multiplexed through one server — arbitrary interleavings, arbitrary
//! chunk splits, slots reused across close/open — produce decision
//! streams **bit-identical** to running each stream through its own
//! standalone [`StreamingKws`]. Plus the typed-backpressure and
//! admission-control contracts at their exact boundaries.

use kwt_audio::kwt_tiny_frontend;
use kwt_engine::{Engine, StreamDecision, StreamingConfig, StreamingKws};
use kwt_model::{KwtConfig, KwtParams};
use kwt_serve::{KwsServer, ServeConfig, ServeError};
use proptest::prelude::*;

fn trained_ish() -> KwtParams {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    p
}

fn host_engine() -> Engine {
    Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap()
}

fn wave(seed: u64, n: usize) -> Vec<f32> {
    (0..n as u64)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
            let t = i as f64 / 16_000.0;
            ((2.0 * std::f64::consts::PI * (250.0 + seed as f64 % 700.0) * t).sin() * 0.4
                + noise * 0.2) as f32
        })
        .collect()
}

/// Ground truth: the standalone streamer over the whole signal (chunk
/// splits cannot matter — the front end is split-invariant by its own
/// property tests, and this test re-proves it end to end).
fn standalone(engine: Engine, cfg: StreamingConfig, signal: &[f32]) -> Vec<StreamDecision> {
    let mut kws = StreamingKws::new(engine, cfg).unwrap();
    kws.push(signal).unwrap()
}

fn assert_decisions_match(got: &[StreamDecision], want: &[StreamDecision], which: usize) {
    assert_eq!(got.len(), want.len(), "session {which}: decision count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.frame_index, w.frame_index, "session {which}");
        assert_eq!(g.class, w.class, "session {which} frame {}", w.frame_index);
        assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "session {which} frame {}",
            w.frame_index
        );
        assert_eq!(
            g.smoothed_class, w.smoothed_class,
            "session {which} frame {}",
            w.frame_index
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn multiplexed_sessions_are_bit_identical_to_standalone(
        seeds in proptest::collection::vec(0u64..1_000, 2..5),
        len_extra in 0usize..6_000,
        chunk_sel in proptest::collection::vec(1usize..2_000, 1..8),
        rotate in 0usize..7,
        streaming in (1usize..3, 1usize..6).prop_map(|(s, v)| StreamingConfig {
            stride_frames: s,
            vote_window: v,
        }),
    ) {
        let signals: Vec<Vec<f32>> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| wave(s, 16_000 + len_extra + i * 701))
            .collect();
        let n = signals.len();
        let mut server = KwsServer::new(
            host_engine(),
            ServeConfig { max_sessions: n, streaming, ..ServeConfig::default() },
        ).unwrap();
        let ids: Vec<_> = (0..n).map(|_| server.open().unwrap()).collect();

        // Interleave: each pass pushes every still-live session's next
        // chunk (session order rotated per pass), then drives once — so
        // waves genuinely mix sessions.
        let mut got: Vec<Vec<StreamDecision>> = vec![Vec::new(); n];
        let mut offset = vec![0usize; n];
        let mut pass = 0usize;
        while offset.iter().zip(&signals).any(|(o, s)| *o < s.len()) {
            for k in 0..n {
                let s = (k + rotate * pass) % n;
                let end = (offset[s] + chunk_sel[(pass + k) % chunk_sel.len()])
                    .min(signals[s].len());
                if offset[s] < end {
                    server.push(ids[s], &signals[s][offset[s]..end]).unwrap();
                    offset[s] = end;
                }
            }
            server.drive(|d| {
                let s = ids.iter().position(|&i| i == d.session).unwrap();
                got[s].push(d.decision.clone());
            }).unwrap();
            pass += 1;
        }

        for (s, signal) in signals.iter().enumerate() {
            let want = standalone(host_engine(), streaming, signal);
            assert_decisions_match(&got[s], &want, s);
        }
        prop_assert_eq!(server.metrics().decisions as usize,
            got.iter().map(Vec::len).sum::<usize>());
    }
}

#[test]
fn backpressure_fires_exactly_at_the_ring_boundary() {
    let mut server = KwsServer::new(
        host_engine(),
        ServeConfig {
            max_sessions: 2,
            ring_samples: 2_000,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let id = server.open().unwrap();
    let chunk = wave(3, 2_000);
    // exactly fills the ring
    server.push(id, &chunk).unwrap();
    assert_eq!(server.ring_free(id).unwrap(), 0);
    // one sample over: typed rejection, chunk refused whole
    match server.push(id, &chunk[..1]) {
        Err(ServeError::Backpressure {
            session,
            dropped,
            free,
        }) => {
            assert_eq!(session, id);
            assert_eq!(dropped, 1);
            assert_eq!(free, 0);
        }
        other => panic!("expected backpressure, got {other:?}"),
    }
    // draining makes room: 2000 samples hold frames [0,1000) and
    // [600,1600); everything before sample 1200 is then released
    server.drive(|_| {}).unwrap();
    assert_eq!(server.ring_free(id).unwrap(), 1_200);
    // a chunk one larger than the free space still rejects whole...
    match server.push(id, &chunk[..1_201]) {
        Err(ServeError::Backpressure { dropped, free, .. }) => {
            assert_eq!(dropped, 1_201);
            assert_eq!(free, 1_200);
        }
        other => panic!("expected backpressure, got {other:?}"),
    }
    // ...and an exactly-fitting one is accepted
    server.push(id, &chunk[..1_200]).unwrap();
    let m = server.metrics();
    assert_eq!(m.chunks_rejected, 2);
    assert_eq!(m.samples_dropped, 1_202);
    assert_eq!(m.chunks_accepted, 2);
}

#[test]
fn admission_control_and_generation_tags() {
    let mut server = KwsServer::new(
        host_engine(),
        ServeConfig {
            max_sessions: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let a = server.open().unwrap();
    let b = server.open().unwrap();
    assert!(matches!(
        server.open(),
        Err(ServeError::SessionsFull { capacity: 2 })
    ));
    // closing frees the slot; the reused slot mints a new generation
    server.close(a).unwrap();
    let c = server.open().unwrap();
    assert_eq!(c.index(), a.index());
    assert_ne!(c.generation(), a.generation());
    // the stale handle can no longer touch the slot's new occupant
    for r in [
        server.push(a, &[0.1]).err(),
        server.close(a).err(),
        server.ring_free(a).err(),
    ] {
        assert!(matches!(r, Some(ServeError::StaleSession { session }) if session == a));
    }
    server.close(b).unwrap();
    server.close(c).unwrap();
    assert_eq!(server.active_sessions(), 0);
    assert_eq!(server.metrics().sessions_opened, 3);
    assert_eq!(server.metrics().sessions_closed, 3);
}

#[test]
fn invalid_samples_are_rejected_before_buffering() {
    let mut server = KwsServer::new(host_engine(), ServeConfig::default()).unwrap();
    let id = server.open().unwrap();
    server.push(id, &[0.25, 0.5]).unwrap();
    let free = server.ring_free(id).unwrap();
    assert!(matches!(
        server.push(id, &[0.1, f32::NAN, 0.2]),
        Err(ServeError::Audio(_))
    ));
    assert_eq!(
        server.ring_free(id).unwrap(),
        free,
        "rejected chunk must not be buffered"
    );
}

#[test]
fn slot_reuse_does_not_leak_the_previous_stream() {
    // Run a full stream through a slot, close it, reopen, run a
    // different stream: the second stream's decisions must equal its
    // standalone reference — nothing from the first occupant (window
    // rows, votes, ring tail) may bleed through.
    let cfg = StreamingConfig::default();
    let mut server = KwsServer::new(
        host_engine(),
        ServeConfig {
            max_sessions: 1,
            streaming: cfg,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let first = wave(11, 19_000);
    let second = wave(42, 21_500);
    for signal in [&first, &second] {
        let id = server.open().unwrap();
        let mut got = Vec::new();
        for chunk in signal.chunks(1_111) {
            server.push(id, chunk).unwrap();
            server.drive(|d| got.push(d.decision.clone())).unwrap();
        }
        let want = standalone(host_engine(), cfg, signal);
        assert_decisions_match(&got, &want, 0);
        server.close(id).unwrap();
    }
}

#[test]
fn cluster_server_matches_serial_streamers_and_fuses_waves() {
    // The tentpole path: a 4-hart cluster behind the server, several
    // sessions multiplexed so waves carry windows from different
    // sessions — decisions must still be bit-identical to standalone
    // streamers over the *serial* rv32 engine (single-device reference),
    // while the wave accounting shows genuine cross-session fusion.
    use kwt_baremetal::InferenceImage;
    use kwt_quant::{A8Config, A8Kwt};
    let a8 = A8Kwt::quantize(&trained_ish(), A8Config::paper_a8()).unwrap();
    let image = InferenceImage::build_a8(&a8).unwrap();
    let fe = kwt_tiny_frontend().unwrap();
    let cfg = StreamingConfig::default();
    let cluster = Engine::rv32_cluster(&image, fe.clone(), 4).unwrap();
    let mut server = KwsServer::new(
        cluster,
        ServeConfig {
            max_sessions: 5,
            streaming: cfg,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert_eq!(server.wave_width(), 4);

    let signals: Vec<Vec<f32>> = (0..5).map(|s| wave(100 + s as u64, 20_200)).collect();
    let ids: Vec<_> = (0..5).map(|_| server.open().unwrap()).collect();
    let mut got: Vec<Vec<StreamDecision>> = vec![Vec::new(); 5];
    let mut offset = 0usize;
    while offset < 20_200 {
        let end = (offset + 1_600).min(20_200);
        for (s, id) in ids.iter().enumerate() {
            server.push(*id, &signals[s][offset..end]).unwrap();
        }
        server
            .drive(|d| {
                let s = ids.iter().position(|&i| i == d.session).unwrap();
                got[s].push(d.decision.clone());
            })
            .unwrap();
        offset = end;
    }

    for (s, signal) in signals.iter().enumerate() {
        let serial = Engine::rv32_sim(&image, fe.clone()).unwrap();
        let want = standalone(serial, cfg, signal);
        assert!(!want.is_empty());
        assert_decisions_match(&got[s], &want, s);
    }
    let m = server.metrics();
    assert!(m.device_cycles > 0, "cluster waves must report SoC cycles");
    assert!(
        m.wave_occupancy() > 2.0,
        "five ready sessions must fuse into multi-window waves, got {:.2}",
        m.wave_occupancy()
    );
    assert!(m.sim_latency_cycles.count() == m.decisions);
}
