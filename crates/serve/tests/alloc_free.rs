//! Proof that the serving steady state — admit, buffer, schedule,
//! batch-classify, deliver, close, reuse the slot — performs **zero heap
//! allocation** after warm-up. Same counting-allocator technique as the
//! engine's alloc_free test, one layer higher in the stack.

use kwt_audio::kwt_tiny_frontend;
use kwt_engine::{Engine, StreamingConfig};
use kwt_model::{KwtConfig, KwtParams};
use kwt_serve::{KwsServer, ServeConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn trained_ish() -> KwtParams {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).unwrap();
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    p
}

fn chunk(seed: u64) -> Vec<f32> {
    (0..1_600u64)
        .map(|i| {
            let t = i as f64 / 16_000.0;
            ((2.0 * std::f64::consts::PI * (300.0 + seed as f64 * 50.0) * t).sin() * 0.5) as f32
        })
        .collect()
}

#[test]
fn serve_steady_state_allocates_nothing() {
    let engine = Engine::host_float(trained_ish(), kwt_tiny_frontend().unwrap()).unwrap();
    let mut server = KwsServer::new(
        engine,
        ServeConfig {
            max_sessions: 8,
            streaming: StreamingConfig::default(),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let chunks: Vec<Vec<f32>> = (0..4).map(chunk).collect();
    let mut delivered = 0u64;
    let mut ids = Vec::with_capacity(6);

    // One full lifecycle, exercised twice to warm every arena: open a
    // fleet, stream enough audio through each session for several
    // decisions, then close everything (slots return to the pool). The
    // id buffer is reused so the measured loop is purely server work.
    let cycle = |server: &mut KwsServer, ids: &mut Vec<_>, delivered: &mut u64| {
        ids.clear();
        for _ in 0..6 {
            ids.push(server.open().unwrap());
        }
        for round in 0..12 {
            for (s, id) in ids.iter().enumerate() {
                server
                    .push(*id, &chunks[(s + round) % chunks.len()])
                    .unwrap();
            }
            *delivered += server.drive(|_| {}).unwrap() as u64;
        }
        for id in ids.drain(..) {
            server.close(id).unwrap();
        }
    };
    cycle(&mut server, &mut ids, &mut delivered);
    cycle(&mut server, &mut ids, &mut delivered);
    assert!(delivered > 0, "warm-up must produce decisions");

    // Steady state: the identical lifecycle — admission, buffering,
    // hop-aligned scheduling, fused waves, vote smoothing, delivery,
    // close-and-reuse — must not touch the allocator at all.
    let before = delivered;
    let n = allocations(|| {
        for _ in 0..3 {
            cycle(&mut server, &mut ids, &mut delivered);
        }
    });
    assert!(delivered > before, "steady state must produce decisions");
    assert_eq!(n, 0, "serving steady state allocated {n} times");
}

#[test]
fn reactor_polling_is_allocation_free_at_capacity() {
    use kwt_serve::{Reactor, Token};
    let mut reactor = Reactor::with_capacity(64);
    let mut fired: Vec<Token> = Vec::with_capacity(64);
    // Warm: fill to capacity once.
    for i in 0..64u64 {
        reactor.arm(i % 7, Token(i));
    }
    fired.clear();
    reactor.poll_into(7, &mut fired);
    let n = allocations(|| {
        for round in 0..50u64 {
            for i in 0..64u64 {
                reactor.arm(round + i % 5, Token(i));
            }
            fired.clear();
            reactor.poll_into(round + 5, &mut fired);
            while !reactor.is_empty() {
                let due = reactor.next_due().unwrap();
                reactor.poll_into(due, &mut fired);
            }
        }
    });
    assert_eq!(n, 0, "reactor hot loop allocated {n} times");
}
