//! Seeded waveform augmentation: background-noise mixing, time shift, gain.
//!
//! GSC-style training (Warden 2018, and the KWT recipes in PAPERS.md)
//! augments every utterance with a random time shift of up to ±100 ms and
//! background noise mixed in at a random level. This module reproduces
//! that recipe **bit-reproducibly**: every random draw comes from a
//! splitmix64 stream keyed by `(config seed, clip index)`, so the same
//! `(config, index, clip, noise bank)` always yields the same `f32`
//! waveform, bit for bit, regardless of how many clips were augmented
//! before it or on which thread. That determinism is what lets the A8
//! calibration sweep and the cascade bench commit baselines that rebuild
//! exactly in CI.
//!
//! All draws for one clip are consumed in a fixed order (shift, gain,
//! noise pick, noise offset, snr, apply-noise coin) even when a knob is
//! disabled, so toggling one option does not reshuffle the others.

/// splitmix64 step: advances the state and returns the next 64-bit draw.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` with 53-bit resolution.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Augmentation recipe. All knobs are per-clip random draws; ranges are
/// inclusive at both ends unless noted.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentConfig {
    /// Master seed; combined with the clip index to key the per-clip
    /// random stream.
    pub seed: u64,
    /// Maximum circular-free time shift in samples (draws uniformly in
    /// `[-max_shift, +max_shift]`; shifted-in samples are zero). GSC
    /// recipes use 100 ms = 1600 samples at 16 kHz. `0` disables.
    pub max_shift: usize,
    /// Random gain range in dB applied to the *speech* before noise.
    /// `(0.0, 0.0)` disables.
    pub gain_db: (f32, f32),
    /// Probability of mixing background noise into a clip (GSC recipe:
    /// 0.8). Ignored when the noise bank passed to
    /// [`Augmenter::augment_into`] is empty.
    pub noise_prob: f64,
    /// SNR range in dB when noise is mixed. The noise segment is scaled
    /// so `10·log10(speech_power / noise_power)` lands at the draw.
    pub snr_db: (f32, f32),
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            seed: 0x6177_6721, // "awg!"
            max_shift: 1600,   // ±100 ms at 16 kHz
            gain_db: (-3.0, 3.0),
            noise_prob: 0.8,
            snr_db: (5.0, 20.0),
        }
    }
}

impl AugmentConfig {
    /// Identity recipe: every knob disabled. Useful as a base for tests
    /// that want exactly one augmentation active.
    pub fn disabled() -> Self {
        AugmentConfig {
            seed: 0,
            max_shift: 0,
            gain_db: (0.0, 0.0),
            noise_prob: 0.0,
            snr_db: (0.0, 0.0),
        }
    }
}

/// Applies [`AugmentConfig`] draws to clips, reusing no mutable state
/// between clips — augmentation of clip `i` is a pure function of
/// `(config, i, clip, noise bank)`.
#[derive(Debug, Clone)]
pub struct Augmenter {
    config: AugmentConfig,
}

impl Augmenter {
    /// Builds an augmenter for a recipe.
    pub fn new(config: AugmentConfig) -> Self {
        Augmenter { config }
    }

    /// The active recipe.
    pub fn config(&self) -> &AugmentConfig {
        &self.config
    }

    /// Augments `clip` in place into `out` (resized to `clip.len()`).
    ///
    /// `index` keys the per-clip random stream; `noise_bank` supplies
    /// background clips (each at least as long as `clip`, or they are
    /// tiled). Draw order is fixed: shift, gain, noise pick, noise
    /// offset, SNR, noise coin — independent of which knobs are active.
    pub fn augment_into(
        &self,
        clip: &[f32],
        index: u64,
        noise_bank: &[Vec<f32>],
        out: &mut Vec<f32>,
    ) {
        let c = &self.config;
        let mut st = c
            .seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(index ^ 0xA0A0_5050_0505_0A0A);
        let n = clip.len();

        // 1. time shift
        let shift_draw = unit(&mut st);
        out.clear();
        out.resize(n, 0.0);
        if c.max_shift > 0 && n > 0 {
            let span = 2 * c.max_shift as i64 + 1;
            let shift = (shift_draw * span as f64) as i64 - c.max_shift as i64;
            for (i, slot) in out.iter_mut().enumerate() {
                let src = i as i64 - shift;
                if src >= 0 && (src as usize) < n {
                    *slot = clip[src as usize];
                }
            }
        } else {
            out.copy_from_slice(clip);
        }

        // 2. gain
        let gain_draw = unit(&mut st) as f32;
        if c.gain_db != (0.0, 0.0) {
            let db = c.gain_db.0 + (c.gain_db.1 - c.gain_db.0) * gain_draw;
            let g = 10f32.powf(db / 20.0);
            for v in out.iter_mut() {
                *v *= g;
            }
        }

        // 3. background noise at a drawn SNR
        let pick_draw = splitmix64(&mut st);
        let offset_draw = splitmix64(&mut st);
        let snr_draw = unit(&mut st) as f32;
        let coin = unit(&mut st);
        if !noise_bank.is_empty() && coin < c.noise_prob && n > 0 {
            let noise = &noise_bank[(pick_draw % noise_bank.len() as u64) as usize];
            if !noise.is_empty() {
                let offset = (offset_draw % noise.len() as u64) as usize;
                let snr_db = c.snr_db.0 + (c.snr_db.1 - c.snr_db.0) * snr_draw;
                let sig_power: f32 =
                    out.iter().map(|x| x * x).sum::<f32>() / n as f32 + f32::MIN_POSITIVE;
                let mut noise_power = 0.0f32;
                for i in 0..n {
                    let s = noise[(offset + i) % noise.len()];
                    noise_power += s * s;
                }
                noise_power = noise_power / n as f32 + f32::MIN_POSITIVE;
                let target = sig_power / 10f32.powf(snr_db / 10.0);
                let scale = (target / noise_power).sqrt();
                for (i, v) in out.iter_mut().enumerate() {
                    *v += scale * noise[(offset + i) % noise.len()];
                }
            }
        }
    }

    /// Allocating convenience wrapper around [`Augmenter::augment_into`].
    pub fn augment(&self, clip: &[f32], index: u64, noise_bank: &[Vec<f32>]) -> Vec<f32> {
        let mut out = Vec::new();
        self.augment_into(clip, index, noise_bank, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.02).sin() * 0.5).collect()
    }

    fn bank() -> Vec<Vec<f32>> {
        vec![
            (0..4000)
                .map(|i| ((i * 7919) % 997) as f32 / 997.0 - 0.5)
                .collect(),
            (0..2500)
                .map(|i| ((i * 104_729) % 331) as f32 / 331.0 - 0.5)
                .collect(),
        ]
    }

    #[test]
    fn same_seed_same_index_is_bit_identical() {
        let aug = Augmenter::new(AugmentConfig::default());
        let clip = tone(16_000);
        let a = aug.augment(&clip, 7, &bank());
        let b = aug.augment(&clip, 7, &bank());
        assert_eq!(a.len(), clip.len());
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b), "augmentation must be bit-reproducible");
    }

    #[test]
    fn augmentation_is_order_independent() {
        // Clip 7 augmented alone equals clip 7 augmented after clips 0..6:
        // there is no mutable RNG carried between clips.
        let aug = Augmenter::new(AugmentConfig::default());
        let clip = tone(8000);
        let alone = aug.augment(&clip, 7, &bank());
        for i in 0..7 {
            let _ = aug.augment(&clip, i, &bank());
        }
        let after = aug.augment(&clip, 7, &bank());
        assert_eq!(
            alone.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            after.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn different_index_or_seed_changes_output() {
        let aug = Augmenter::new(AugmentConfig::default());
        let clip = tone(8000);
        assert_ne!(
            aug.augment(&clip, 0, &bank()),
            aug.augment(&clip, 1, &bank())
        );
        let aug2 = Augmenter::new(AugmentConfig {
            seed: 999,
            ..AugmentConfig::default()
        });
        assert_ne!(
            aug.augment(&clip, 0, &bank()),
            aug2.augment(&clip, 0, &bank())
        );
    }

    #[test]
    fn disabled_config_is_identity() {
        let aug = Augmenter::new(AugmentConfig::disabled());
        let clip = tone(1000);
        assert_eq!(aug.augment(&clip, 3, &bank()), clip);
    }

    #[test]
    fn toggling_noise_does_not_reshuffle_shift() {
        // Same seed, noise on vs off: the shift draw must be identical, so
        // the noise-off output equals the noise-on output minus noise.
        let clip = tone(4000);
        let with = Augmenter::new(AugmentConfig {
            gain_db: (0.0, 0.0),
            noise_prob: 1.0,
            ..AugmentConfig::default()
        });
        let without = Augmenter::new(AugmentConfig {
            gain_db: (0.0, 0.0),
            noise_prob: 0.0,
            ..AugmentConfig::default()
        });
        let a = with.augment(&clip, 5, &bank());
        let b = without.augment(&clip, 5, &bank());
        // Wherever the shifted speech is zero, `a` holds pure noise;
        // wherever it isn't, a - b is the same noise sequence. Check that
        // b's nonzero support is a subset of a's differences structure by
        // verifying the shift matches: b must equal the clip shifted, and
        // a - b must have near-constant power (scaled noise).
        let nonzero_b = b.iter().filter(|x| **x != 0.0).count();
        assert!(nonzero_b > 0);
        let diff: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        let p: f32 = diff.iter().map(|x| x * x).sum::<f32>() / diff.len() as f32;
        assert!(p > 0.0, "noise should have been mixed in");
    }

    #[test]
    fn snr_is_respected() {
        let clip = tone(16_000);
        let aug = Augmenter::new(AugmentConfig {
            max_shift: 0,
            gain_db: (0.0, 0.0),
            noise_prob: 1.0,
            snr_db: (10.0, 10.0),
            ..AugmentConfig::default()
        });
        let out = aug.augment(&clip, 0, &bank());
        let noise: Vec<f32> = out.iter().zip(&clip).map(|(a, b)| a - b).collect();
        let pw = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        let snr = 10.0 * (pw(&clip) / pw(&noise)).log10();
        assert!((snr - 10.0).abs() < 0.5, "snr {snr} dB, wanted 10 dB");
    }

    #[test]
    fn empty_bank_never_mixes_noise() {
        let clip = tone(2000);
        let aug = Augmenter::new(AugmentConfig {
            max_shift: 0,
            gain_db: (0.0, 0.0),
            noise_prob: 1.0,
            ..AugmentConfig::default()
        });
        assert_eq!(aug.augment(&clip, 0, &[]), clip);
    }
}
