//! Dataset assembly: tasks, splits, deterministic sampling, and MFCC
//! materialisation.

use crate::synth::{KeywordVoice, SynthParams};
use crate::vocab::{keyword_index, GSC_KEYWORDS};
use kwt_audio::MfccExtractor;
use kwt_tensor::Mat;

/// Which classification task to materialise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// All 35 GSC keywords (KWT-1's task).
    AllKeywords,
    /// Binary "target" vs "not-target" — the paper trains "dog" vs
    /// "notdog" (§III). Label 1 = target, label 0 = everything else
    /// (other keywords and background noise).
    Binary {
        /// The wake word.
        target: &'static str,
    },
}

/// Dataset split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split.
    Train,
    /// Validation split (scale-factor calibration, early stopping).
    Val,
    /// Held-out test split (all reported accuracies).
    Test,
}

impl Split {
    fn index(self) -> usize {
        match self {
            Split::Train => 0,
            Split::Val => 1,
            Split::Test => 2,
        }
    }
}

/// Synthetic GSC configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GscConfig {
    /// The task (35-way or binary).
    pub task: Task,
    /// Samples per class for `[train, val, test]`.
    pub samples_per_class: [usize; 3],
    /// Master seed; every utterance is derived from
    /// `(seed, split, class, index)` so splits never overlap.
    pub seed: u64,
    /// Waveform synthesis parameters (difficulty).
    pub synth: SynthParams,
}

impl Default for GscConfig {
    fn default() -> Self {
        GscConfig {
            task: Task::Binary { target: "dog" },
            samples_per_class: [200, 50, 100],
            seed: 0x6B77_7421, // "kwt!"
            synth: SynthParams::default(),
        }
    }
}

impl GscConfig {
    /// The paper's KWT-Tiny setting: binary "dog"/"notdog" at
    /// [`SynthParams::paper_difficulty`], with a training set large enough
    /// for the 1.6 k-parameter model to generalise.
    pub fn paper_binary() -> Self {
        GscConfig {
            task: Task::Binary { target: "dog" },
            samples_per_class: [1200, 200, 300],
            synth: SynthParams::paper_difficulty(),
            ..GscConfig::default()
        }
    }

    /// The paper's KWT-1 setting: all 35 keywords at the same difficulty.
    /// `samples_per_class` is kept moderate because the 611 k-parameter
    /// model is ~400x more expensive per sample to train.
    pub fn paper_all_keywords() -> Self {
        GscConfig {
            task: Task::AllKeywords,
            samples_per_class: [120, 25, 40],
            synth: SynthParams::paper_difficulty(),
            ..GscConfig::default()
        }
    }
}

/// The synthetic dataset: an indexable, deterministic utterance generator.
///
/// Utterances are generated on demand — nothing is stored — so arbitrarily
/// large epochs cost only CPU.
#[derive(Debug, Clone)]
pub struct SyntheticGsc {
    config: GscConfig,
    voices: Vec<KeywordVoice>,
}

impl SyntheticGsc {
    /// Builds the generator for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if a binary task names a keyword outside the GSC vocabulary.
    pub fn new(config: GscConfig) -> Self {
        if let Task::Binary { target } = config.task {
            assert!(
                keyword_index(target).is_some(),
                "unknown target keyword `{target}`"
            );
        }
        let voices = (0..GSC_KEYWORDS.len()).map(KeywordVoice::new).collect();
        SyntheticGsc { config, voices }
    }

    /// The active configuration.
    pub fn config(&self) -> &GscConfig {
        &self.config
    }

    /// Number of output classes (35 or 2).
    pub fn num_classes(&self) -> usize {
        match self.config.task {
            Task::AllKeywords => GSC_KEYWORDS.len(),
            Task::Binary { .. } => 2,
        }
    }

    /// Human-readable class names.
    pub fn class_names(&self) -> Vec<String> {
        match self.config.task {
            Task::AllKeywords => GSC_KEYWORDS.iter().map(|s| s.to_string()).collect(),
            Task::Binary { target } => vec![format!("not{target}"), target.to_string()],
        }
    }

    /// Number of utterances in a split.
    pub fn len(&self, split: Split) -> usize {
        self.config.samples_per_class[split.index()] * self.num_classes()
    }

    /// `true` if the split holds no utterances.
    pub fn is_empty(&self, split: Split) -> bool {
        self.len(split) == 0
    }

    /// Generates utterance `idx` of `split`: `(waveform, label)`.
    ///
    /// Classes are interleaved (`idx % num_classes` is the label) so any
    /// prefix of a split is class-balanced. For the binary task the
    /// "notdog" class draws uniformly from the other 34 keywords plus a
    /// background-noise-only variant.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len(split)`.
    pub fn utterance(&self, split: Split, idx: usize) -> (Vec<f32>, usize) {
        assert!(
            idx < self.len(split),
            "index {idx} out of bounds for split with {} utterances",
            self.len(split)
        );
        let ncls = self.num_classes();
        let label = idx % ncls;
        // Unique per (seed, split, idx) stream.
        let useed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((split.index() as u64) << 56 | idx as u64);
        let wave = match self.config.task {
            Task::AllKeywords => self.voices[label].render(&self.config.synth, useed),
            Task::Binary { target } => {
                let target_idx = keyword_index(target).expect("validated in constructor");
                if label == 1 {
                    self.voices[target_idx].render(&self.config.synth, useed)
                } else {
                    // Draw the notdog source from a *hashed* stream so every
                    // split mixes all 34 other keywords plus noise clips
                    // (~15 % of notdog samples are background noise).
                    let mut h = useed ^ 0xA5A5_5A5A_0F0F_F0F0;
                    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    h ^= h >> 31;
                    let pick = h as usize % 40;
                    if pick >= 34 {
                        KeywordVoice::render_noise(&self.config.synth, useed)
                    } else {
                        let other = (0..GSC_KEYWORDS.len())
                            .filter(|&i| i != target_idx)
                            .nth(pick % 34)
                            .expect("34 non-target keywords");
                        self.voices[other].render(&self.config.synth, useed)
                    }
                }
            }
        };
        (wave, label)
    }

    /// Materialises a whole split through an MFCC front end.
    ///
    /// # Errors
    ///
    /// Propagates MFCC extraction errors (cannot occur for the presets,
    /// which pad to a fixed clip length).
    pub fn materialize(
        &self,
        split: Split,
        frontend: &MfccExtractor,
    ) -> Result<MfccDataset, kwt_audio::AudioError> {
        let n = self.len(split);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        // One scratch arena for the whole split: the extractor's rFFT
        // plan/filterbank tables and the padded-clip + FFT work buffers
        // are reused across every clip instead of being re-derived and
        // re-allocated per utterance (`extract_padded_into` is
        // bit-identical to the allocating `extract_padded`).
        let mut scratch = kwt_audio::MfccScratch::new();
        for i in 0..n {
            let (wave, label) = self.utterance(split, i);
            let mut mfcc = kwt_tensor::Mat::default();
            frontend.extract_padded_into(&wave, &mut mfcc, &mut scratch)?;
            x.push(mfcc);
            y.push(label);
        }
        Ok(MfccDataset {
            x,
            y,
            num_classes: self.num_classes(),
        })
    }
}

/// A split materialised as MFCC matrices — the trainer's working format.
#[derive(Debug, Clone)]
pub struct MfccDataset {
    /// Feature matrices, one `T x F` matrix per utterance.
    pub x: Vec<Mat<f32>>,
    /// Labels, parallel to `x`.
    pub y: Vec<usize>,
    /// Number of classes in the task.
    pub num_classes: usize,
}

impl MfccDataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Per-feature mean/std over the whole split — used to normalise
    /// inputs before the transformer (and to pick quantisation ranges).
    pub fn feature_stats(&self) -> (f32, f32) {
        let mut n = 0usize;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for m in &self.x {
            for &v in m.as_slice() {
                sum += v as f64;
                sq += (v as f64) * (v as f64);
                n += 1;
            }
        }
        if n == 0 {
            return (0.0, 1.0);
        }
        let mean = sum / n as f64;
        let var = (sq / n as f64 - mean * mean).max(1e-12);
        (mean as f32, var.sqrt() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwt_audio::kwt_tiny_frontend;

    fn tiny_config() -> GscConfig {
        GscConfig {
            samples_per_class: [4, 2, 2],
            ..GscConfig::default()
        }
    }

    #[test]
    fn binary_task_has_two_classes() {
        let ds = SyntheticGsc::new(tiny_config());
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(
            ds.class_names(),
            vec!["notdog".to_string(), "dog".to_string()]
        );
        assert_eq!(ds.len(Split::Train), 8);
        assert_eq!(ds.len(Split::Val), 4);
        assert!(!ds.is_empty(Split::Test));
    }

    #[test]
    fn all_keywords_task_has_35() {
        let ds = SyntheticGsc::new(GscConfig {
            task: Task::AllKeywords,
            samples_per_class: [1, 1, 1],
            ..GscConfig::default()
        });
        assert_eq!(ds.num_classes(), 35);
        assert_eq!(ds.len(Split::Train), 35);
        assert_eq!(ds.class_names()[4], "dog");
    }

    #[test]
    fn labels_are_interleaved_and_balanced() {
        let ds = SyntheticGsc::new(tiny_config());
        let labels: Vec<usize> = (0..ds.len(Split::Train))
            .map(|i| ds.utterance(Split::Train, i).1)
            .collect();
        assert_eq!(labels, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn utterances_are_deterministic_and_split_disjoint() {
        let ds = SyntheticGsc::new(tiny_config());
        let (a1, _) = ds.utterance(Split::Train, 1);
        let (a2, _) = ds.utterance(Split::Train, 1);
        assert_eq!(a1, a2);
        let (b, _) = ds.utterance(Split::Val, 1);
        assert_ne!(a1, b, "train and val must differ");
        let (c, _) = ds.utterance(Split::Test, 1);
        assert_ne!(a1, c);
        assert_ne!(b, c);
    }

    #[test]
    fn seeds_change_the_data() {
        let d1 = SyntheticGsc::new(tiny_config());
        let d2 = SyntheticGsc::new(GscConfig {
            seed: 999,
            ..tiny_config()
        });
        assert_ne!(
            d1.utterance(Split::Train, 0).0,
            d2.utterance(Split::Train, 0).0
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_index_panics() {
        let ds = SyntheticGsc::new(tiny_config());
        let _ = ds.utterance(Split::Val, 100);
    }

    #[test]
    #[should_panic(expected = "unknown target keyword")]
    fn unknown_target_panics() {
        let _ = SyntheticGsc::new(GscConfig {
            task: Task::Binary { target: "klaxon" },
            ..GscConfig::default()
        });
    }

    #[test]
    fn materialize_produces_mfcc_matrices() {
        let ds = SyntheticGsc::new(tiny_config());
        let fe = kwt_tiny_frontend().unwrap();
        let split = ds.materialize(Split::Val, &fe).unwrap();
        assert_eq!(split.len(), 4);
        assert!(!split.is_empty());
        assert_eq!(split.num_classes, 2);
        for m in &split.x {
            assert_eq!(m.shape(), (26, 16));
        }
        let (_, std) = split.feature_stats();
        assert!(std > 0.0);
    }

    #[test]
    fn binary_notdog_uses_varied_sources() {
        // Among a handful of notdog samples there should be at least two
        // distinct spectral signatures (different source keywords).
        let ds = SyntheticGsc::new(GscConfig {
            samples_per_class: [16, 2, 2],
            ..GscConfig::default()
        });
        let fe = kwt_tiny_frontend().unwrap();
        let mut sigs = Vec::new();
        for i in 0..ds.len(Split::Train) {
            let (wave, label) = ds.utterance(Split::Train, i);
            if label == 0 {
                let m = fe.extract_padded(&wave).unwrap();
                // coarse signature: mean of first MFCC column
                let sig: f32 = (0..m.rows()).map(|t| m[(t, 1)]).sum::<f32>() / m.rows() as f32;
                sigs.push(sig);
            }
        }
        sigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let spread = sigs.last().unwrap() - sigs.first().unwrap();
        assert!(spread > 0.1, "notdog class suspiciously uniform: {spread}");
    }
}
