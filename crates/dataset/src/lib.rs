//! # kwt-dataset
//!
//! A synthetic substitute for the Google Speech Commands (GSC) dataset the
//! paper trains on.
//!
//! Real GSC audio is not available in this environment, so each of the 35
//! keywords is mapped to a deterministic *formant trajectory* — a small
//! sequence of vowel-like segments with class-specific formant frequencies
//! — rendered as a harmonic-rich waveform. Per-utterance "speaker" jitter
//! (pitch, tempo, formant spread, amplitude, noise SNR) plays the role of
//! speaker variation, and additive noise sets task difficulty.
//!
//! What matters for the paper's experiments is *relative* behaviour —
//! bigger models beat smaller ones, coarser quantisation loses accuracy,
//! oversized scale factors collapse from overflow — and those orderings
//! only need a classification task of controllable difficulty that flows
//! through the identical MFCC → transformer pipeline.
//!
//! Two tasks are provided, mirroring the paper:
//!
//! * [`Task::AllKeywords`] — 35-way classification (KWT-1's setting)
//! * [`Task::Binary`] — "dog" vs "notdog" (KWT-Tiny's setting, §III)
//!
//! # Example
//!
//! ```
//! use kwt_dataset::{GscConfig, SyntheticGsc, Split, Task};
//!
//! let ds = SyntheticGsc::new(GscConfig {
//!     task: Task::Binary { target: "dog" },
//!     samples_per_class: [8, 2, 2],
//!     ..GscConfig::default()
//! });
//! let (audio, label) = ds.utterance(Split::Train, 0);
//! assert_eq!(audio.len(), 16_000);
//! assert!(label < ds.num_classes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gsc;
mod synth;
mod vocab;

pub use gsc::{GscConfig, MfccDataset, Split, SyntheticGsc, Task};
pub use synth::{KeywordVoice, SynthParams};
pub use vocab::{keyword_index, GSC_KEYWORDS};
