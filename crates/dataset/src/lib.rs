//! # kwt-dataset
//!
//! Datasets for the KWT experiments: a real Google Speech Commands v2
//! loader and a synthetic GSC substitute, behind the same task/split API.
//!
//! ## Real speech: the GSC v2 loader
//!
//! [`GscV2`] loads an on-disk Google Speech Commands v2 directory tree
//! (`<keyword>/<speaker>_nohash_<n>.wav` plus `_background_noise_/`),
//! assigning train/val/test splits with the dataset's official SHA-1
//! hash of the speaker id ([`which_set`]) so splits match every other
//! GSC consumer. A small checksummed subset is committed under
//! `data/gsc_v2_subset/` and verified byte-exactly against its
//! `MANIFEST.tsv` by [`GscV2::open_checked`], so CI runs fully offline;
//! a full GSC v2 download drops into the same loader (see the README's
//! dataset section). [`generate_subset`] regenerates such subsets
//! deterministically, and the WAV codec ([`read_wav_16k_mono`] /
//! [`write_wav_16k_mono`]) handles the 16 kHz mono PCM files. Seeded, bit-reproducible augmentation — background
//! noise mixing, time shift, gain — lives in [`Augmenter`].
//!
//! ## Synthetic fallback
//!
//! [`SyntheticGsc`] maps each of the 35 keywords to a deterministic
//! *formant trajectory* — a small sequence of vowel-like segments with
//! class-specific formant frequencies — rendered as a harmonic-rich
//! waveform. Per-utterance "speaker" jitter (pitch, tempo, formant
//! spread, amplitude, noise SNR) plays the role of speaker variation,
//! and additive noise sets task difficulty. It needs no data on disk,
//! which keeps training-dependent tests hermetic, and its *relative*
//! orderings (bigger models beat smaller ones, coarser quantisation
//! loses accuracy, oversized scale factors collapse from overflow) flow
//! through the identical MFCC → transformer pipeline.
//!
//! Two tasks are provided, mirroring the paper:
//!
//! * [`Task::AllKeywords`] — 35-way classification (KWT-1's setting)
//! * [`Task::Binary`] — "dog" vs "notdog" (KWT-Tiny's setting, §III)
//!
//! # Example
//!
//! ```
//! use kwt_dataset::{GscConfig, SyntheticGsc, Split, Task};
//!
//! let ds = SyntheticGsc::new(GscConfig {
//!     task: Task::Binary { target: "dog" },
//!     samples_per_class: [8, 2, 2],
//!     ..GscConfig::default()
//! });
//! let (audio, label) = ds.utterance(Split::Train, 0);
//! assert_eq!(audio.len(), 16_000);
//! assert!(label < ds.num_classes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod gsc;
mod gscv2;
mod synth;
mod vocab;
mod wav;

pub use augment::{AugmentConfig, Augmenter};
pub use gsc::{GscConfig, MfccDataset, Split, SyntheticGsc, Task};
pub use gscv2::{
    fnv1a64, generate_subset, which_set, GscV2, GscV2Error, SubsetSpec, CLIP_SAMPLES,
    MANIFEST_NAME, NOISE_DIR,
};
pub use synth::{KeywordVoice, SynthParams};
pub use vocab::{keyword_index, GSC_KEYWORDS};
pub use wav::{
    decode_wav, encode_wav_16k_mono, quantize_pcm16, read_wav_16k_mono, write_wav_16k_mono,
    WavError, GSC_SAMPLE_RATE,
};
