//! Minimal RIFF/WAVE I/O for Google Speech Commands clips.
//!
//! GSC v2 ships every utterance as 16 kHz mono PCM16 WAV, so this module
//! implements exactly that profile — plus enough header tolerance
//! (`LIST`/`fact`/other chunks are skipped, `fmt ` may carry extension
//! bytes) to read files produced by common recorders. Anything else
//! (stereo, float PCM, other sample rates when the caller demands 16 kHz)
//! is reported as a typed [`WavError`] instead of being resampled: the
//! loader's job is to validate the dataset, not to repair it.
//!
//! Samples convert to `f32` in `[-1, 1)` by dividing by 32768, and back
//! with saturating round-to-nearest — the same convention the synthetic
//! path uses, so a clip that round-trips through
//! [`write_wav_16k_mono`] / [`read_wav_16k_mono`] feeds the MFCC front
//! end with at most 1/65536 of quantisation error.

use std::fmt;
use std::io::{Read, Write};

/// Sample rate every GSC v2 clip uses.
pub const GSC_SAMPLE_RATE: u32 = 16_000;

/// Errors from WAV parsing or encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WavError {
    /// The file is not a RIFF/WAVE container.
    NotRiff,
    /// The file ended before a required chunk or field.
    Truncated,
    /// `fmt ` chunk missing before the `data` chunk.
    MissingFmt,
    /// No `data` chunk found.
    MissingData,
    /// Audio format is not integer PCM (format tag 1).
    NotPcm(u16),
    /// Not mono.
    NotMono(u16),
    /// Not 16-bit samples.
    Not16Bit(u16),
    /// Sample rate differs from the required one.
    WrongRate {
        /// Rate found in the header.
        found: u32,
        /// Rate the caller required.
        expected: u32,
    },
    /// An underlying I/O error (message only, to stay `Eq`).
    Io(String),
}

impl fmt::Display for WavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WavError::NotRiff => write!(f, "not a RIFF/WAVE file"),
            WavError::Truncated => write!(f, "file truncated mid-chunk"),
            WavError::MissingFmt => write!(f, "missing `fmt ` chunk"),
            WavError::MissingData => write!(f, "missing `data` chunk"),
            WavError::NotPcm(tag) => write!(f, "format tag {tag} is not integer PCM"),
            WavError::NotMono(ch) => write!(f, "{ch} channels; GSC clips are mono"),
            WavError::Not16Bit(b) => write!(f, "{b}-bit samples; GSC clips are 16-bit"),
            WavError::WrongRate { found, expected } => {
                write!(f, "sample rate {found} Hz; expected {expected} Hz")
            }
            WavError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for WavError {}

impl From<std::io::Error> for WavError {
    fn from(e: std::io::Error) -> Self {
        WavError::Io(e.to_string())
    }
}

fn rd_u16(b: &[u8], at: usize) -> Result<u16, WavError> {
    let s = b.get(at..at + 2).ok_or(WavError::Truncated)?;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

fn rd_u32(b: &[u8], at: usize) -> Result<u32, WavError> {
    let s = b.get(at..at + 4).ok_or(WavError::Truncated)?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Decodes an in-memory WAV file as mono PCM16 at `expected_rate` Hz,
/// returning samples scaled to `[-1, 1)`.
///
/// Unknown chunks (`LIST`, `fact`, …) are skipped; the `fmt ` chunk may be
/// longer than 16 bytes (WAVE_FORMAT_EXTENSIBLE headers still carry the
/// base fields at the same offsets).
///
/// # Errors
///
/// Any container or format mismatch yields the corresponding [`WavError`].
pub fn decode_wav(bytes: &[u8], expected_rate: u32) -> Result<Vec<f32>, WavError> {
    if bytes.len() < 12 || &bytes[0..4] != b"RIFF" || &bytes[8..12] != b"WAVE" {
        return Err(WavError::NotRiff);
    }
    let mut at = 12usize;
    let mut fmt: Option<(u16, u16, u32, u16)> = None; // (tag, channels, rate, bits)
    let mut data: Option<&[u8]> = None;
    while at + 8 <= bytes.len() {
        let id = &bytes[at..at + 4];
        let len = rd_u32(bytes, at + 4)? as usize;
        let body = bytes.get(at + 8..at + 8 + len).ok_or(WavError::Truncated)?;
        match id {
            b"fmt " => {
                if len < 16 {
                    return Err(WavError::Truncated);
                }
                fmt = Some((
                    rd_u16(body, 0)?,
                    rd_u16(body, 2)?,
                    rd_u32(body, 4)?,
                    rd_u16(body, 14)?,
                ));
            }
            b"data" => {
                data = Some(body);
                // GSC files put `data` last; stop scanning once found.
                break;
            }
            _ => {}
        }
        // Chunks are word-aligned: odd lengths carry a pad byte.
        at += 8 + len + (len & 1);
    }
    let (tag, channels, rate, bits) = fmt.ok_or(WavError::MissingFmt)?;
    let data = data.ok_or(WavError::MissingData)?;
    if tag != 1 {
        return Err(WavError::NotPcm(tag));
    }
    if channels != 1 {
        return Err(WavError::NotMono(channels));
    }
    if bits != 16 {
        return Err(WavError::Not16Bit(bits));
    }
    if rate != expected_rate {
        return Err(WavError::WrongRate {
            found: rate,
            expected: expected_rate,
        });
    }
    let n = data.len() / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let v = i16::from_le_bytes([data[2 * i], data[2 * i + 1]]);
        out.push(v as f32 / 32768.0);
    }
    Ok(out)
}

/// Encodes mono `f32` samples in `[-1, 1]` as a 16 kHz PCM16 WAV file.
///
/// Values outside `[-1, 1]` saturate; conversion is round-to-nearest.
pub fn encode_wav_16k_mono(samples: &[f32]) -> Vec<u8> {
    let data_len = (samples.len() * 2) as u32;
    let mut out = Vec::with_capacity(44 + samples.len() * 2);
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&(36 + data_len).to_le_bytes());
    out.extend_from_slice(b"WAVE");
    out.extend_from_slice(b"fmt ");
    out.extend_from_slice(&16u32.to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // PCM
    out.extend_from_slice(&1u16.to_le_bytes()); // mono
    out.extend_from_slice(&GSC_SAMPLE_RATE.to_le_bytes());
    out.extend_from_slice(&(GSC_SAMPLE_RATE * 2).to_le_bytes()); // byte rate
    out.extend_from_slice(&2u16.to_le_bytes()); // block align
    out.extend_from_slice(&16u16.to_le_bytes()); // bits
    out.extend_from_slice(b"data");
    out.extend_from_slice(&data_len.to_le_bytes());
    for &s in samples {
        let v = (s * 32768.0).round().clamp(-32768.0, 32767.0) as i16;
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reads a 16 kHz mono PCM16 WAV file from disk.
///
/// # Errors
///
/// I/O failures and format mismatches yield [`WavError`].
pub fn read_wav_16k_mono(path: &std::path::Path) -> Result<Vec<f32>, WavError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_wav(&bytes, GSC_SAMPLE_RATE)
}

/// Writes mono `f32` samples to disk as a 16 kHz PCM16 WAV file.
///
/// # Errors
///
/// Propagates filesystem errors as [`WavError::Io`].
pub fn write_wav_16k_mono(path: &std::path::Path, samples: &[f32]) -> Result<(), WavError> {
    let bytes = encode_wav_16k_mono(samples);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Quantises samples exactly as [`encode_wav_16k_mono`] does, without the
/// container — the in-memory image of what a WAV round-trip preserves.
/// The subset generator uses it so checked-in audio and the manifest
/// checksums agree bit-for-bit with what the loader will read back.
pub fn quantize_pcm16(samples: &[f32]) -> Vec<f32> {
    samples
        .iter()
        .map(|&s| (s * 32768.0).round().clamp(-32768.0, 32767.0) as i16 as f32 / 32768.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_pcm16_exact() {
        let wave: Vec<f32> = (0..1600).map(|i| (i as f32 * 0.013).sin() * 0.8).collect();
        let bytes = encode_wav_16k_mono(&wave);
        let back = decode_wav(&bytes, GSC_SAMPLE_RATE).unwrap();
        assert_eq!(back, quantize_pcm16(&wave));
        // Second round trip is lossless: PCM16 is a fixed point.
        let bytes2 = encode_wav_16k_mono(&back);
        assert_eq!(decode_wav(&bytes2, GSC_SAMPLE_RATE).unwrap(), back);
    }

    #[test]
    fn saturation_clamps() {
        let bytes = encode_wav_16k_mono(&[2.0, -2.0]);
        let back = decode_wav(&bytes, GSC_SAMPLE_RATE).unwrap();
        assert_eq!(back, vec![32767.0 / 32768.0, -1.0]);
    }

    #[test]
    fn skips_unknown_chunks() {
        let mut bytes = encode_wav_16k_mono(&[0.25; 8]);
        // Splice a LIST chunk between fmt and data (offset 36 = data hdr).
        let tail = bytes.split_off(36);
        bytes.extend_from_slice(b"LIST");
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(b"INFOx");
        bytes.push(0); // pad byte for odd length
        bytes.extend_from_slice(&tail);
        let riff_len = (bytes.len() - 8) as u32;
        bytes[4..8].copy_from_slice(&riff_len.to_le_bytes());
        let back = decode_wav(&bytes, GSC_SAMPLE_RATE).unwrap();
        assert_eq!(back.len(), 8);
    }

    #[test]
    fn format_mismatches_are_typed() {
        assert_eq!(decode_wav(b"nope", 16_000), Err(WavError::NotRiff));
        let good = encode_wav_16k_mono(&[0.0; 4]);
        let mut stereo = good.clone();
        stereo[22] = 2; // channel count
        assert_eq!(decode_wav(&stereo, 16_000), Err(WavError::NotMono(2)),);
        let mut eight = good.clone();
        eight[34] = 8; // bits per sample
        assert_eq!(decode_wav(&eight, 16_000), Err(WavError::Not16Bit(8)));
        assert_eq!(
            decode_wav(&good, 8_000),
            Err(WavError::WrongRate {
                found: 16_000,
                expected: 8_000
            }),
        );
        let mut truncated = good;
        truncated.truncate(40);
        assert!(decode_wav(&truncated, 16_000).is_err());
    }
}
