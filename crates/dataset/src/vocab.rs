//! The 35-word Google Speech Commands v2 vocabulary.

/// The 35 keywords of Google Speech Commands v2, in canonical order.
///
/// KWT-1 classifies all 35; KWT-Tiny collapses them to
/// `{"dog", "notdog"}` (paper §III).
pub const GSC_KEYWORDS: [&str; 35] = [
    "backward", "bed", "bird", "cat", "dog", "down", "eight", "five", "follow", "forward", "four",
    "go", "happy", "house", "learn", "left", "marvin", "nine", "no", "off", "on", "one", "right",
    "seven", "sheila", "six", "stop", "three", "tree", "two", "up", "visual", "wow", "yes", "zero",
];

/// Looks up the canonical index of a keyword.
///
/// # Example
/// ```
/// assert_eq!(kwt_dataset::keyword_index("dog"), Some(4));
/// assert_eq!(kwt_dataset::keyword_index("klaxon"), None);
/// ```
pub fn keyword_index(word: &str) -> Option<usize> {
    GSC_KEYWORDS.iter().position(|&w| w == word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_five_unique_keywords() {
        assert_eq!(GSC_KEYWORDS.len(), 35);
        let mut sorted = GSC_KEYWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 35);
    }

    #[test]
    fn index_round_trips() {
        for (i, w) in GSC_KEYWORDS.iter().enumerate() {
            assert_eq!(keyword_index(w), Some(i));
        }
        assert_eq!(keyword_index(""), None);
    }
}
