//! Formant-trajectory keyword synthesis.
//!
//! Each keyword owns a deterministic sequence of 2–4 vowel-like segments.
//! A segment is rendered as a harmonic series at pitch `f0` whose harmonic
//! amplitudes are shaped by two formant resonances — enough spectral
//! structure for an MFCC front end to separate classes, with per-utterance
//! jitter supplying within-class variation.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Global synthesis parameters (sample rate, difficulty).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// Output sample rate in Hz.
    pub sample_rate: u32,
    /// Clip length in samples (keywords are centred inside it).
    pub clip_samples: usize,
    /// Standard deviation of per-utterance formant jitter, as a fraction of
    /// the formant frequency (speaker variation; raises task difficulty).
    pub formant_jitter: f32,
    /// Pitch jitter fraction.
    pub pitch_jitter: f32,
    /// Signal-to-noise ratio range in dB; each utterance draws uniformly.
    pub snr_db: (f32, f32),
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            sample_rate: 16_000,
            clip_samples: 16_000,
            formant_jitter: 0.06,
            pitch_jitter: 0.15,
            snr_db: (8.0, 25.0),
        }
    }
}

impl SynthParams {
    /// Difficulty calibrated so a trained KWT-Tiny lands in the paper's
    /// accuracy band (Table IV: 87.2 % on the 2-class task): heavy speaker
    /// variation and strongly negative SNR.
    pub fn paper_difficulty() -> Self {
        SynthParams {
            formant_jitter: 0.30,
            pitch_jitter: 0.35,
            snr_db: (-22.0, -6.0),
            ..SynthParams::default()
        }
    }
}

/// One vowel-like segment of a keyword.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    /// First formant (Hz).
    f1: f32,
    /// Second formant (Hz).
    f2: f32,
    /// Fraction of the utterance this segment occupies.
    weight: f32,
    /// Voicing: 1.0 = fully voiced harmonic stack, 0.0 = noise burst.
    voicing: f32,
}

/// The deterministic voice of a single keyword: its segment trajectory.
///
/// Two distinct class indices always produce distinct trajectories
/// (formants are derived from a per-class hash), so classes are separable
/// in the clean limit.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordVoice {
    class_index: usize,
    segments: Vec<Segment>,
    base_pitch: f32,
}

/// Cheap deterministic 64-bit mix (splitmix64 step).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f32 {
    (h >> 11) as f32 / (1u64 << 53) as f32
}

impl KeywordVoice {
    /// Derives the voice of class `class_index` (0..35 for GSC).
    pub fn new(class_index: usize) -> Self {
        let h0 = mix(class_index as u64 ^ 0xC0FF_EE00);
        let n_segments = 2 + (mix(h0) % 3) as usize; // 2..=4
        let mut segments = Vec::with_capacity(n_segments);
        for s in 0..n_segments {
            let hs = mix(h0 ^ (s as u64).wrapping_mul(0x1234_5678_9ABC_DEF1));
            // Formants on a vowel-like grid; spread wide so classes differ.
            let f1 = 250.0 + 650.0 * unit(hs);
            let f2 = 900.0 + 1_700.0 * unit(mix(hs ^ 1));
            let weight = 0.5 + unit(mix(hs ^ 2));
            let voicing = if unit(mix(hs ^ 3)) < 0.8 { 1.0 } else { 0.3 };
            segments.push(Segment {
                f1,
                f2,
                weight,
                voicing,
            });
        }
        let total: f32 = segments.iter().map(|s| s.weight).sum();
        for s in &mut segments {
            s.weight /= total;
        }
        let base_pitch = 110.0 + 120.0 * unit(mix(h0 ^ 0xBEEF));
        KeywordVoice {
            class_index,
            segments,
            base_pitch,
        }
    }

    /// Class index this voice was derived from.
    pub fn class_index(&self) -> usize {
        self.class_index
    }

    /// Renders one utterance. `utterance_seed` selects the "speaker":
    /// the same `(class, seed)` pair always produces the same waveform.
    pub fn render(&self, params: &SynthParams, utterance_seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(
            mix(utterance_seed ^ (self.class_index as u64) << 32) ^ 0xDEAD_BEEF,
        );
        let sr = params.sample_rate as f32;
        let n = params.clip_samples;

        // Per-utterance jitter.
        let pitch = self.base_pitch * (1.0 + params.pitch_jitter * (rng.gen::<f32>() - 0.5) * 2.0);
        let tempo: f32 = 0.75 + 0.35 * rng.gen::<f32>(); // keyword fills 55..80 % of the clip
        let word_len = ((n as f32) * 0.72 * tempo) as usize;
        let word_start = ((n - word_len) as f32 * rng.gen::<f32>() * 0.8) as usize;
        let snr_db = rng.gen_range(params.snr_db.0..=params.snr_db.1);
        let amp = 0.25 + 0.15 * rng.gen::<f32>();

        let jitter = |rng: &mut ChaCha8Rng, f: f32| {
            f * (1.0 + params.formant_jitter * (rng.gen::<f32>() - 0.5) * 2.0)
        };

        // Per-segment jittered formants.
        let segs: Vec<(Segment, f32, f32)> = self
            .segments
            .iter()
            .map(|s| {
                let f1 = jitter(&mut rng, s.f1);
                let f2 = jitter(&mut rng, s.f2);
                (*s, f1, f2)
            })
            .collect();

        let mut out = vec![0.0f32; n];
        let mut seg_start = 0usize;
        let mut phase = [0.0f64; 12];
        for (seg, f1, f2) in &segs {
            let seg_len = (seg.weight * word_len as f32) as usize;
            let resonance = |f: f32| -> f32 {
                let bw = 120.0;
                let r1 = 1.0 / (1.0 + ((f - f1) / bw).powi(2));
                let r2 = 0.6 / (1.0 + ((f - f2) / bw).powi(2));
                r1 + r2
            };
            for i in 0..seg_len {
                let idx = word_start + seg_start + i;
                if idx >= n {
                    break;
                }
                // Raised-cosine envelope over the segment.
                let env = 0.5
                    - 0.5 * (2.0 * std::f32::consts::PI * i as f32 / seg_len.max(1) as f32).cos();
                let mut sample = 0.0f32;
                // Voiced part: harmonic stack shaped by the formants.
                for (k, ph) in phase.iter_mut().enumerate() {
                    let f = pitch * (k + 1) as f32;
                    if f > sr / 2.0 - 200.0 {
                        break;
                    }
                    *ph += f as f64 / sr as f64;
                    if *ph > 1.0 {
                        *ph -= 1.0;
                    }
                    let weight = resonance(f);
                    sample +=
                        weight * seg.voicing * (2.0 * std::f64::consts::PI * *ph).sin() as f32;
                }
                // Unvoiced part: filtered noise.
                if seg.voicing < 1.0 {
                    let noise: f32 = rng.gen::<f32>() - 0.5;
                    sample += (1.0 - seg.voicing) * noise * (resonance(*f2) + 0.3);
                }
                out[idx] += amp * env * sample;
            }
            seg_start += seg_len;
        }

        // Additive white noise at the drawn SNR.
        let sig_power: f32 = out.iter().map(|x| x * x).sum::<f32>() / n as f32 + f32::MIN_POSITIVE;
        let noise_power = sig_power / 10f32.powf(snr_db / 10.0);
        let noise_amp = noise_power.sqrt() * 3.0f32.sqrt(); // uniform [-a, a] has power a^2/3
        for v in &mut out {
            *v += noise_amp * (rng.gen::<f32>() * 2.0 - 1.0);
        }
        out
    }

    /// Renders a "background noise" clip (no keyword) — the raw material
    /// of the notdog class's silence portion.
    pub fn render_noise(params: &SynthParams, utterance_seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(mix(utterance_seed ^ 0x5115_ECE0));
        let amp = 0.02 + 0.05 * rng.gen::<f32>();
        (0..params.clip_samples)
            .map(|_| amp * (rng.gen::<f32>() * 2.0 - 1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voices_are_deterministic() {
        let a = KeywordVoice::new(4);
        let b = KeywordVoice::new(4);
        assert_eq!(a, b);
        let p = SynthParams::default();
        assert_eq!(a.render(&p, 7), b.render(&p, 7));
    }

    #[test]
    fn different_classes_have_different_voices() {
        for i in 0..35 {
            for j in (i + 1)..35 {
                assert_ne!(
                    KeywordVoice::new(i).render(&SynthParams::default(), 0),
                    KeywordVoice::new(j).render(&SynthParams::default(), 0),
                    "classes {i} and {j} collide"
                );
            }
        }
    }

    #[test]
    fn different_seeds_vary_within_class() {
        let v = KeywordVoice::new(10);
        let p = SynthParams::default();
        assert_ne!(v.render(&p, 0), v.render(&p, 1));
    }

    #[test]
    fn render_has_expected_length_and_is_finite() {
        let v = KeywordVoice::new(0);
        let p = SynthParams::default();
        let w = v.render(&p, 3);
        assert_eq!(w.len(), p.clip_samples);
        assert!(w.iter().all(|x| x.is_finite()));
        // bounded amplitude (loose sanity bound)
        assert!(w.iter().all(|x| x.abs() < 4.0));
    }

    #[test]
    fn utterance_actually_contains_signal() {
        let v = KeywordVoice::new(4);
        let p = SynthParams::default();
        let w = v.render(&p, 42);
        let power: f32 = w.iter().map(|x| x * x).sum::<f32>() / w.len() as f32;
        assert!(power > 1e-5, "utterance nearly silent: {power}");
    }

    #[test]
    fn noise_clip_is_quiet_relative_to_speech() {
        let p = SynthParams::default();
        let speech = KeywordVoice::new(4).render(&p, 1);
        let noise = KeywordVoice::render_noise(&p, 1);
        let pw = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!(pw(&speech) > pw(&noise));
        assert_eq!(noise.len(), p.clip_samples);
    }

    #[test]
    fn class_index_is_kept() {
        assert_eq!(KeywordVoice::new(17).class_index(), 17);
    }
}
