//! # kwt-hw
//!
//! A component-level FPGA area model substituting for the paper's Vivado
//! synthesis run (Table VIII, Arty-A7 35T).
//!
//! We cannot synthesise RTL in this environment, so the modified-Ibex
//! area is estimated from a per-block resource model: each added hardware
//! block (the three LUT ROMs, the Q8.24 fixed-point datapath, the two
//! float converters, the decoder extension) carries LUT/DSP/FF/BRAM
//! costs. The *baseline* numbers are calibrated to the paper's reported
//! synthesis (LUT 5092, DSP 10, FF 5276, BRAM 16), and block costs are
//! sized from their logic content (e.g. a 320 x 32-bit ROM in LUT6-based
//! distributed memory is `320*32/64 = 160` LUTs).
//!
//! The paper's headline "~29 % area overhead" corresponds to the combined
//! logic-cell metric `(dLUT + dFF) / (LUT + FF)`, which this model
//! reproduces: see [`AreaModel::overhead_percent`].
//!
//! # Example
//!
//! ```
//! let model = kwt_hw::AreaModel::paper();
//! let t8 = model.table8();
//! assert_eq!(t8[0].baseline, 5092); // LUT row
//! assert!((model.overhead_percent() - 29.0).abs() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// FPGA resource vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Six-input lookup tables (logic).
    pub lut: u32,
    /// DSP48 slices.
    pub dsp: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Block RAMs.
    pub bram: u32,
}

impl Resources {
    /// Component-wise sum.
    pub fn plus(self, other: Resources) -> Resources {
        Resources {
            lut: self.lut + other.lut,
            dsp: self.dsp + other.dsp,
            ff: self.ff + other.ff,
            bram: self.bram + other.bram,
        }
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {} / DSP {} / FF {} / BRAM {}",
            self.lut, self.dsp, self.ff, self.bram
        )
    }
}

/// A named hardware block with its resource cost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Block name.
    pub name: String,
    /// Estimated resources.
    pub cost: Resources,
}

/// One row of the Table VIII reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table8Row {
    /// Resource name (`LUT`, `DSP`, `FF`, `BRAM`).
    pub attribute: &'static str,
    /// Baseline Ibex count.
    pub baseline: u32,
    /// Modified Ibex count.
    pub modified: u32,
}

impl Table8Row {
    /// Relative increase over the baseline, in percent.
    pub fn overhead_percent(&self) -> f64 {
        if self.baseline == 0 {
            return 0.0;
        }
        100.0 * (self.modified as f64 - self.baseline as f64) / self.baseline as f64
    }
}

/// Baseline + added blocks = the modified Ibex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Baseline core (calibrated to the paper's synthesis).
    pub baseline: Resources,
    /// Blocks added for the custom-1 extension.
    pub added: Vec<Block>,
}

impl AreaModel {
    /// The model calibrated against the paper's Table VIII.
    pub fn paper() -> Self {
        let block = |name: &str, lut: u32, dsp: u32, ff: u32| Block {
            name: name.to_string(),
            cost: Resources {
                lut,
                dsp,
                ff,
                bram: 0, // ROMs are distributed LUT memory, not BRAM (Table VIII: BRAM +0)
            },
        };
        AreaModel {
            baseline: Resources {
                lut: 5_092,
                dsp: 10,
                ff: 5_276,
                bram: 16,
            },
            added: vec![
                // 320 x 32-bit ROM as distributed memory: 10240/64 LUT6s.
                block("exp_lut_rom", 160, 0, 0),
                block("inv_lut_rom", 160, 0, 0),
                // 32 x 32-bit GELU ROM.
                block("gelu_lut_rom", 16, 0, 0),
                // Q8.24 datapath: index extraction, clamps, GELU piecewise
                // comparators, result mux.
                block("fixed_point_alu", 580, 0, 180),
                // IEEE-754 -> Q8.24: unpack, shifter, saturation.
                block("float_to_fixed", 640, 3, 280),
                // Q8.24 -> IEEE-754: priority encoder, normaliser, pack.
                block("fixed_to_float", 600, 3, 258),
                // custom-1 decode, funct3 dispatch, writeback mux.
                block("decoder_extension", 120, 0, 80),
            ],
        }
    }

    /// Total resources of the modified core.
    pub fn modified(&self) -> Resources {
        self.added
            .iter()
            .fold(self.baseline, |acc, b| acc.plus(b.cost))
    }

    /// The four rows of Table VIII.
    pub fn table8(&self) -> Vec<Table8Row> {
        let m = self.modified();
        vec![
            Table8Row {
                attribute: "LUT",
                baseline: self.baseline.lut,
                modified: m.lut,
            },
            Table8Row {
                attribute: "DSP",
                baseline: self.baseline.dsp,
                modified: m.dsp,
            },
            Table8Row {
                attribute: "FF",
                baseline: self.baseline.ff,
                modified: m.ff,
            },
            Table8Row {
                attribute: "BRAM",
                baseline: self.baseline.bram,
                modified: m.bram,
            },
        ]
    }

    /// The paper's headline area metric: combined logic-cell overhead
    /// `(dLUT + dFF) / (LUT_base + FF_base)` in percent (~29 %).
    pub fn overhead_percent(&self) -> f64 {
        let m = self.modified();
        let delta = (m.lut - self.baseline.lut) + (m.ff - self.baseline.ff);
        let base = self.baseline.lut + self.baseline.ff;
        100.0 * delta as f64 / base as f64
    }

    /// ROM bytes implied by the LUT-memory blocks (must equal the
    /// quantisation crate's LUT set size).
    pub fn rom_bytes(&self) -> usize {
        (320 + 320 + 32) * 4
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_table8() {
        let m = AreaModel::paper();
        assert_eq!(m.baseline.lut, 5_092);
        assert_eq!(m.baseline.dsp, 10);
        assert_eq!(m.baseline.ff, 5_276);
        assert_eq!(m.baseline.bram, 16);
    }

    #[test]
    fn modified_matches_paper_table8() {
        let m = AreaModel::paper().modified();
        assert_eq!(m.lut, 7_368);
        assert_eq!(m.dsp, 16);
        assert_eq!(m.ff, 6_074);
        assert_eq!(m.bram, 16); // no BRAM change
    }

    #[test]
    fn headline_overhead_is_about_29_percent() {
        let pct = AreaModel::paper().overhead_percent();
        assert!((28.0..31.0).contains(&pct), "overhead {pct:.1}%");
    }

    #[test]
    fn table8_rows_are_complete() {
        let rows = AreaModel::paper().table8();
        assert_eq!(rows.len(), 4);
        let lut = &rows[0];
        assert!(lut.overhead_percent() > 40.0); // +2276 over 5092
        let bram = &rows[3];
        assert_eq!(bram.overhead_percent(), 0.0);
    }

    #[test]
    fn rom_matches_quant_crate() {
        assert_eq!(
            AreaModel::paper().rom_bytes(),
            kwt_quant::LutSet::new().rom_bytes()
        );
    }

    #[test]
    fn resources_sum_and_display() {
        let a = Resources {
            lut: 1,
            dsp: 2,
            ff: 3,
            bram: 4,
        };
        let b = a.plus(a);
        assert_eq!(b.lut, 2);
        assert_eq!(b.bram, 8);
        assert!(a.to_string().contains("DSP 2"));
    }
}
