//! Simulator throughput: how many simulated instructions per host second
//! the RV32 core sustains (contextualises the Table IX runtimes), with a
//! decode-cache-on/off comparison group for the pre-decode execution
//! cache.
//!
//! Set `KWT_BENCH_SMOKE=1` to run every benchmark exactly once (CI smoke
//! mode).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kwt_bench::microbench::loop_program;
use kwt_rv32::{Machine, Platform};

fn bench_program(c: &mut Criterion, name: &str, program: &kwt_rvasm::Program) {
    let mut g = c.benchmark_group(format!("rv32_simulator_{name}"));
    // count instructions once
    let mut m = Machine::load(program, Platform::ibex()).unwrap();
    let instructions = m.run(1_000_000).unwrap().instructions;
    g.throughput(Throughput::Elements(instructions));
    g.bench_function("decode_cache_on", |b| {
        b.iter(|| {
            let mut m = Machine::load(program, Platform::ibex()).unwrap();
            m.run(1_000_000).unwrap()
        })
    });
    g.bench_function("decode_cache_off", |b| {
        b.iter(|| {
            let mut m = Machine::load(program, Platform::ibex()).unwrap();
            m.cpu.set_decode_cache_enabled(false);
            m.run(1_000_000).unwrap()
        })
    });
    // Steady-state stepping (machine reused, cache warm) — the regime an
    // inference-length run actually spends its time in.
    let mut warm = Machine::load(program, Platform::ibex()).unwrap();
    g.bench_function("decode_cache_warm_rerun", |b| {
        b.iter(|| {
            warm.reset_cpu();
            warm.run(1_000_000).unwrap()
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    bench_program(c, "arith", &loop_program(false, 2_000));
    bench_program(c, "memory", &loop_program(true, 2_000));
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
