//! Simulator throughput: how many simulated instructions per host second
//! the RV32 core sustains (contextualises the Table IX runtimes), with a
//! decode-cache-on/off comparison group for the pre-decode execution
//! cache.
//!
//! Set `KWT_BENCH_SMOKE=1` to run every benchmark exactly once (CI smoke
//! mode).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kwt_bench::microbench::loop_program;
use kwt_rv32::{Machine, Platform};

fn bench_program(c: &mut Criterion, name: &str, program: &kwt_rvasm::Program) {
    let mut g = c.benchmark_group(format!("rv32_simulator_{name}"));
    // count instructions once
    let mut m = Machine::load(program, Platform::ibex()).unwrap();
    let instructions = m.run(1_000_000).unwrap().instructions;
    g.throughput(Throughput::Elements(instructions));
    g.bench_function("decode_cache_on", |b| {
        b.iter(|| {
            let mut m = Machine::load(program, Platform::ibex()).unwrap();
            m.run(1_000_000).unwrap()
        })
    });
    g.bench_function("decode_cache_off", |b| {
        b.iter(|| {
            let mut m = Machine::load(program, Platform::ibex()).unwrap();
            m.cpu.set_decode_cache_enabled(false);
            m.run(1_000_000).unwrap()
        })
    });
    // Steady-state stepping (machine reused, cache warm) — the regime an
    // inference-length run actually spends its time in.
    let mut warm = Machine::load(program, Platform::ibex()).unwrap();
    g.bench_function("decode_cache_warm_rerun", |b| {
        b.iter(|| {
            warm.reset_cpu();
            warm.run(1_000_000).unwrap()
        })
    });
    g.finish();
}

/// Scalar vs Xkwtdot inference image: one full quantised+LUT inference
/// per iteration on a persistent session (warm decode cache), so the
/// measured ratio is the packed-MAC extension's end-to-end win.
fn bench_isa_variants(c: &mut Criterion) {
    use kwt_baremetal::{InferenceImage, KernelIsa};
    use kwt_quant::{Nonlinearity, QuantConfig, QuantizedKwt};
    use kwt_tensor::Mat;
    let params = kwt_bench::enginebench::bench_params();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best())
        .with_nonlinearity(Nonlinearity::FixedLut);
    let mfcc = Mat::from_fn(26, 16, |r, col| {
        let h = ((r * 16 + col) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 10.0
    });
    let mut g = c.benchmark_group("rv32_inference_isa");
    for (name, isa) in [
        ("rv32im", KernelIsa::Rv32im),
        ("xkwtdot", KernelIsa::Xkwtdot),
    ] {
        let image = InferenceImage::build_quant_with_isa(&qm, isa).unwrap();
        let mut session = image.session().unwrap();
        let mut logits = Vec::new();
        g.bench_function(name, |b| {
            b.iter(|| session.run_into(&mfcc, &mut logits).unwrap())
        });
    }
    // the fully-INT8 kdot4 image with the fused attention row pipeline
    {
        use kwt_quant::{A8Config, A8Kwt};
        let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).unwrap();
        let image = InferenceImage::build_a8(&a8).unwrap();
        let mut session = image.session().unwrap();
        let mut logits = Vec::new();
        g.bench_function("xkwtdot_a8", |b| {
            b.iter(|| session.run_into(&mfcc, &mut logits).unwrap())
        });
    }
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    bench_program(c, "arith", &loop_program(false, 2_000));
    bench_program(c, "memory", &loop_program(true, 2_000));
}

criterion_group!(benches, bench_simulator, bench_isa_variants);
criterion_main!(benches);
