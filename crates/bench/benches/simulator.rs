//! Simulator throughput: how many simulated instructions per host second
//! the RV32 core sustains (contextualises the Table IX runtimes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kwt_rv32::{Machine, Platform};
use kwt_rvasm::{Asm, Inst, Reg};

fn bench_simulator(c: &mut Criterion) {
    // ~1000-instruction arithmetic loop program
    let mut asm = Asm::new(0, 0x8000);
    asm.here("entry");
    asm.li(Reg::T0, 100); // loop counter
    asm.li(Reg::A0, 0);
    let top = asm.new_label();
    asm.bind(top).unwrap();
    for _ in 0..4 {
        asm.emit(Inst::Addi { rd: Reg::A0, rs1: Reg::A0, imm: 3 });
        asm.emit(Inst::Xor { rd: Reg::A1, rs1: Reg::A0, rs2: Reg::T0 });
        asm.emit(Inst::Mul { rd: Reg::A2, rs1: Reg::A1, rs2: Reg::A0 });
    }
    asm.emit(Inst::Addi { rd: Reg::T0, rs1: Reg::T0, imm: -1 });
    asm.branch_to(Inst::Bne { rs1: Reg::T0, rs2: Reg::Zero, offset: 0 }, top);
    asm.emit(Inst::Ebreak);
    let program = asm.finish().unwrap();

    let mut g = c.benchmark_group("rv32_simulator");
    // count instructions once
    let mut m = Machine::load(&program, Platform::ibex()).unwrap();
    let instructions = m.run(1_000_000).unwrap().instructions;
    g.throughput(Throughput::Elements(instructions));
    g.bench_function("arith_loop", |b| {
        b.iter(|| {
            let mut m = Machine::load(&program, Platform::ibex()).unwrap();
            m.run(1_000_000).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
