//! Criterion benches for the host tensor kernels (float vs quantised) at
//! the KWT-Tiny shapes — the per-kernel backdrop of Table IX — plus
//! naive-vs-packed comparison groups for the blocked GEMM fast paths.
//!
//! Set `KWT_BENCH_SMOKE=1` to run every benchmark exactly once (CI smoke
//! mode); `KWT_BENCH_MEAS_MS` tunes the per-benchmark time budget.

use criterion::{criterion_group, criterion_main, Criterion};
use kwt_bench::microbench::{matmul_operands, MATMUL_SHAPES};
use kwt_tensor::{ops, packed, qops, Mat, PackedMat};
use std::hint::black_box;

/// One naive-vs-packed comparison group per shape: `*_naive` entries run
/// the reference oracles, `*_packed` the blocked kernels over pre-packed
/// weights (the model's amortised configuration), `*_packfly` the drop-in
/// entry points that pack per call.
fn bench_matmul_comparison(c: &mut Criterion, m: usize, k: usize, n: usize) {
    let (a, b, aq, bq8, bq16) = matmul_operands(m, k, n);
    let pb8 = PackedMat::pack(&bq8);
    let pb16 = PackedMat::pack(&bq16);
    let pbf = PackedMat::pack(&b);
    let mut g = c.benchmark_group(format!("matmul_{m}x{k}x{n}"));
    g.bench_function("i16xi8_naive", |bench| {
        bench.iter(|| {
            qops::reference::matmul_i16_i8(black_box(&aq), black_box(&bq8), None, 6).unwrap()
        })
    });
    g.bench_function("i16xi8_packed", |bench| {
        bench.iter(|| {
            packed::matmul_i16_i8_packed(black_box(&aq), black_box(&pb8), None, 6).unwrap()
        })
    });
    g.bench_function("i16xi8_packfly", |bench| {
        bench.iter(|| qops::matmul_i16_i8(black_box(&aq), black_box(&bq8), None, 6).unwrap())
    });
    g.bench_function("i16xi16_naive", |bench| {
        bench.iter(|| qops::reference::matmul_i16_i16(black_box(&aq), black_box(&bq16), 6).unwrap())
    });
    g.bench_function("i16xi16_packed", |bench| {
        bench.iter(|| packed::matmul_i16_i16_packed(black_box(&aq), black_box(&pb16), 6).unwrap())
    });
    g.bench_function("f32_naive", |bench| {
        bench.iter(|| ops::reference::matrix_multiply(black_box(&a), black_box(&b)).unwrap())
    });
    g.bench_function("f32_packed", |bench| {
        bench.iter(|| packed::matrix_multiply_packed(black_box(&a), black_box(&pbf)).unwrap())
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    for (m, k, n) in MATMUL_SHAPES {
        bench_matmul_comparison(c, m, k, n);
    }
}

fn bench_layer_norm(c: &mut Criterion) {
    let gamma = vec![1.0f32; 12];
    let beta = vec![0.0f32; 12];
    c.bench_function("layer_norm_27x12", |bench| {
        bench.iter_batched(
            || Mat::from_fn(27, 12, |r, q| (r + q) as f32 * 0.3),
            |mut m| ops::layer_norm_rows(&mut m, &gamma, &beta, 1e-5).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_attention(c: &mut Criterion) {
    let q = Mat::from_fn(27, 8, |r, cc| ((r + cc) as f32 * 0.2).sin());
    let k = Mat::from_fn(27, 8, |r, cc| ((r * cc) as f32 * 0.1).cos());
    let v = Mat::from_fn(27, 8, |r, cc| (r as f32 - cc as f32) * 0.05);
    c.bench_function("sdpa_27x8", |bench| {
        bench.iter(|| {
            ops::scaled_dot_product_attention(black_box(&q), black_box(&k), black_box(&v)).unwrap()
        })
    });
}

criterion_group!(benches, bench_matmul, bench_layer_norm, bench_attention);
criterion_main!(benches);
