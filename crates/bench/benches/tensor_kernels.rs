//! Criterion benches for the host tensor kernels (float vs quantised) at
//! the KWT-Tiny shapes — the per-kernel backdrop of Table IX.

use criterion::{criterion_group, criterion_main, Criterion};
use kwt_tensor::{ops, qops, Mat};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    // KWT-Tiny MLP shape: (27 x 12) x (12 x 24)
    let a = Mat::from_fn(27, 12, |r, q| ((r * 12 + q) as f32 * 0.1).sin());
    let b = Mat::from_fn(12, 24, |r, q| ((r * 24 + q) as f32 * 0.07).cos() * 0.5);
    let (aq, _) = qops::quantize_i16(&a, 5);
    let (bq, _) = qops::quantize_i8(&b, 6);
    let mut g = c.benchmark_group("matmul_27x12x24");
    g.bench_function("f32", |bench| {
        bench.iter(|| ops::matrix_multiply(black_box(&a), black_box(&b)).unwrap())
    });
    g.bench_function("i16xi8", |bench| {
        bench.iter(|| qops::matmul_i16_i8(black_box(&aq), black_box(&bq), None, 6).unwrap())
    });
    g.finish();
}

fn bench_layer_norm(c: &mut Criterion) {
    let gamma = vec![1.0f32; 12];
    let beta = vec![0.0f32; 12];
    c.bench_function("layer_norm_27x12", |bench| {
        bench.iter_batched(
            || Mat::from_fn(27, 12, |r, q| (r + q) as f32 * 0.3),
            |mut m| ops::layer_norm_rows(&mut m, &gamma, &beta, 1e-5).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_attention(c: &mut Criterion) {
    let q = Mat::from_fn(27, 8, |r, cc| ((r + cc) as f32 * 0.2).sin());
    let k = Mat::from_fn(27, 8, |r, cc| ((r * cc) as f32 * 0.1).cos());
    let v = Mat::from_fn(27, 8, |r, cc| (r as f32 - cc as f32) * 0.05);
    c.bench_function("sdpa_27x8", |bench| {
        bench.iter(|| {
            ops::scaled_dot_product_attention(black_box(&q), black_box(&k), black_box(&v))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_matmul, bench_layer_norm, bench_attention);
criterion_main!(benches);
