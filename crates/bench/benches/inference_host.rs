//! Host-side end-to-end inference: float vs quantised vs LUT-accelerated
//! KWT-Tiny (the host mirror of Table IX).

use criterion::{criterion_group, criterion_main, Criterion};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{Nonlinearity, QuantConfig, QuantizedKwt};
use kwt_tensor::Mat;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let params = KwtParams::init(KwtConfig::kwt_tiny(), 7).unwrap();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let qa = qm.clone().with_nonlinearity(Nonlinearity::FixedLut);
    let x = Mat::from_fn(26, 16, |r, cc| ((r * 16 + cc) as f32 * 0.13).sin() * 4.0);
    let mut g = c.benchmark_group("kwt_tiny_inference_host");
    g.bench_function("float", |b| {
        b.iter(|| kwt_model::forward(black_box(&params), black_box(&x)).unwrap())
    });
    g.bench_function("quantised", |b| {
        b.iter(|| qm.forward(black_box(&x)).unwrap())
    });
    g.bench_function("quantised_lut", |b| {
        b.iter(|| qa.forward(black_box(&x)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
