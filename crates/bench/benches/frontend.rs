//! MFCC front-end throughput for both paper input geometries.

use criterion::{criterion_group, criterion_main, Criterion};
use kwt_audio::{kwt1_frontend, kwt_tiny_frontend};
use std::hint::black_box;

fn bench_mfcc(c: &mut Criterion) {
    let audio: Vec<f32> = (0..16_000)
        .map(|i| (2.0 * std::f32::consts::PI * 440.0 * i as f32 / 16_000.0).sin())
        .collect();
    let fe1 = kwt1_frontend().unwrap();
    let fet = kwt_tiny_frontend().unwrap();
    let mut g = c.benchmark_group("mfcc");
    g.bench_function("kwt1_40x98", |b| {
        b.iter(|| fe1.extract_padded(black_box(&audio)).unwrap())
    });
    g.bench_function("kwt_tiny_16x26", |b| {
        b.iter(|| fet.extract_padded(black_box(&audio)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_mfcc);
criterion_main!(benches);
