//! MFCC front-end throughput for both paper input geometries: the
//! fixed-point block pipeline (`mfcc` group), its direct-to-`i8` A8
//! emission, and the f64 oracle it replaced (`mfcc_reference` group).

use criterion::{criterion_group, criterion_main, Criterion};
use kwt_audio::{kwt1_frontend, kwt_tiny_frontend, MfccScratch};
use kwt_quant::A8Config;
use kwt_tensor::Mat;
use std::hint::black_box;

fn bench_mfcc(c: &mut Criterion) {
    let audio: Vec<f32> = (0..16_000)
        .map(|i| (2.0 * std::f32::consts::PI * 440.0 * i as f32 / 16_000.0).sin())
        .collect();
    let fe1 = kwt1_frontend().unwrap();
    let fet = kwt_tiny_frontend().unwrap();
    let a8_exp = A8Config::paper_a8().input_exponent();

    let mut g = c.benchmark_group("mfcc");
    for (name, fe) in [("kwt1_40x98", &fe1), ("kwt_tiny_16x26", &fet)] {
        let mut scratch = MfccScratch::new();
        let mut out = Mat::default();
        g.bench_function(&format!("{name}/fixed"), |b| {
            b.iter(|| {
                fe.extract_padded_into(black_box(&audio), &mut out, &mut scratch)
                    .unwrap()
            })
        });
        let mut out_q = Mat::default();
        g.bench_function(&format!("{name}/fixed_a8"), |b| {
            b.iter(|| {
                fe.extract_padded_a8_into(black_box(&audio), a8_exp, &mut out_q, &mut scratch)
                    .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("mfcc_reference");
    g.bench_function("kwt1_40x98", |b| {
        b.iter(|| fe1.extract_padded_reference(black_box(&audio)).unwrap())
    });
    g.bench_function("kwt_tiny_16x26", |b| {
        b.iter(|| fet.extract_padded_reference(black_box(&audio)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_mfcc);
criterion_main!(benches);
