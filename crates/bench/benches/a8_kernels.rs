//! Generic vs specialised A8 kernels at the model geometries: each
//! benchmark simulates one GEMM (or LayerNorm) micro-program end to end
//! — assemble, load, run to `ebreak` — so the measured host time tracks
//! the simulated instruction count, and the generic/specialised ratio
//! mirrors the device-cycle win recorded in `results/TUNING.md`.
//!
//! The factor choices come from the committed `results/TUNED_KERNELS.txt`
//! (via `TunedKernels::embedded()`), i.e. exactly what
//! `InferenceImage::build_a8` emits. Set `KWT_BENCH_SMOKE=1` to run every
//! benchmark exactly once (CI smoke mode).

use criterion::{criterion_group, criterion_main, Criterion};
use kwt_baremetal::specialise::TunedKernels;
use kwt_bench::tune::{gemm_micro, gemm_sites, ln_micro};
use kwt_model::KwtConfig;
use std::hint::black_box;

fn bench_a8_kernels(c: &mut Criterion) {
    let tuned = TunedKernels::embedded();
    let cfg = KwtConfig::kwt_tiny();

    let mut g = c.benchmark_group("a8_kernels");
    for geom in gemm_sites(&cfg) {
        let label = format!("gemm_{}x{}x{}", geom.m, geom.k, geom.n);
        g.bench_function(&format!("{label}_generic"), |b| {
            b.iter(|| gemm_micro(black_box(&geom), None))
        });
        let factors = tuned.gemm_factors(&geom);
        g.bench_function(&format!("{label}_specialised"), |b| {
            b.iter(|| gemm_micro(black_box(&geom), Some(&factors)))
        });
    }

    let cols = cfg.dim;
    g.bench_function(&format!("ln_cols{cols}_generic"), |b| {
        b.iter(|| ln_micro(black_box(cols), None))
    });
    let lf = tuned.ln_factors(cols);
    g.bench_function(&format!("ln_cols{cols}_specialised"), |b| {
        b.iter(|| ln_micro(black_box(cols), Some(&lf)))
    });
    g.finish();
}

criterion_group!(benches, bench_a8_kernels);
criterion_main!(benches);
