//! Unified-engine classification: the one-shot seed path vs the engine's
//! scratch-reuse steady state, per host backend (the criterion mirror of
//! `paper bench-engine`; the simulator backend lives only in the JSON
//! collector to keep `cargo bench` fast).

use criterion::{criterion_group, criterion_main, Criterion};
use kwt_audio::kwt_tiny_frontend;
use kwt_bench::enginebench::{bench_clips, bench_params};
use kwt_engine::{Engine, Prediction};
use kwt_quant::{QuantConfig, QuantizedKwt};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let params = bench_params();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let fe = kwt_tiny_frontend().unwrap();
    let clip = &bench_clips(1)[0];

    let mut g = c.benchmark_group("engine_classify");
    g.bench_function("float_one_shot", |b| {
        b.iter(|| {
            let mfcc = fe.extract_padded(black_box(clip)).unwrap();
            kwt_model::forward(&params, &mfcc).unwrap()
        })
    });
    let mut float_engine = Engine::host_float(params.clone(), fe.clone()).unwrap();
    let mut pred = Prediction::default();
    g.bench_function("float_engine_reuse", |b| {
        b.iter(|| {
            float_engine
                .classify_into(black_box(clip), &mut pred)
                .unwrap()
        })
    });
    g.bench_function("quant_one_shot", |b| {
        b.iter(|| {
            let mfcc = fe.extract_padded(black_box(clip)).unwrap();
            qm.forward(&mfcc).unwrap()
        })
    });
    let mut quant_engine = Engine::host_quant(qm.clone(), fe.clone()).unwrap();
    g.bench_function("quant_engine_reuse", |b| {
        b.iter(|| {
            quant_engine
                .classify_into(black_box(clip), &mut pred)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
