//! Exact vs LUT-approximated SoftMax and GELU (host golden models) — the
//! accuracy/speed trade the custom instructions exploit (Fig. 7, §VI).

use criterion::{criterion_group, criterion_main, Criterion};
use kwt_quant::{fixed_gelu, fixed_softmax, LutSet, Q8_24};
use kwt_tensor::math::gelu_exact;
use kwt_tensor::ops;
use std::hint::black_box;

fn bench_softmax(c: &mut Criterion) {
    let xs: Vec<f32> = (0..27).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
    let luts = LutSet::new();
    let mut g = c.benchmark_group("softmax_27");
    g.bench_function("float_exact", |bench| {
        bench.iter_batched(
            || xs.clone(),
            |mut v| ops::softmax_normalized(&mut v).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("q824_lut", |bench| {
        bench.iter(|| fixed_softmax(black_box(&xs), &luts))
    });
    g.finish();
}

fn bench_gelu(c: &mut Criterion) {
    let luts = LutSet::new();
    let mut g = c.benchmark_group("gelu_scalar");
    g.bench_function("exact_erf", |bench| {
        bench.iter(|| gelu_exact(black_box(0.73)))
    });
    g.bench_function("q824_lut", |bench| {
        bench.iter(|| fixed_gelu(black_box(0.73), &luts))
    });
    g.finish();
}

fn bench_q824(c: &mut Criterion) {
    c.bench_function("q824_mul", |bench| {
        let a = Q8_24::from_f32(1.371);
        let b = Q8_24::from_f32(-0.442);
        bench.iter(|| black_box(a) * black_box(b))
    });
}

criterion_group!(benches, bench_softmax, bench_gelu, bench_q824);
criterion_main!(benches);
