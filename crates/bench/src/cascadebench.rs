//! Wake-word cascade benchmark (`paper bench-cascade` ->
//! `BENCH_cascade.json`) and its gate (`paper check-cascade`).
//!
//! The question: at realistic keyword duty cycles (speech containing the
//! wake word in ~1–5 % of one-second windows), how much cheaper is the
//! two-stage cascade — always-on KWT-Tiny A8 detector gating a KWT-1
//! scale A8 verifier — than running the big model on every window, and
//! what do its false-accept/false-reject rates look like?
//!
//! Three measurement layers, from expensive-and-exact to cheap-and-exact:
//!
//! * **Device cycles** (RV32 simulator): the tiny detector runs on the
//!   paper's 64 kB Ibex image; the verifier is the same KWT-1-architecture
//!   model on a [`Platform::ibex_with_ram`] build (identical timing
//!   model, bigger RAM — the 611 k-parameter model cannot fit 64 kB).
//!   One verifier inference costs ~180 M cycles, ~900× the tuned tiny
//!   image, which is the entire economic case for the cascade.
//! * **Decisions** (host A8 golden models): `A8Kwt::forward_a8` is
//!   bit-identical to the device images (asserted by the bare-metal test
//!   suite *and* re-proved on-device by this bench's identity block), so
//!   false-accept/false-reject sweeps over hundreds of windows run
//!   host-side at device fidelity in seconds instead of hours.
//! * **Identity** (device, small N): a [`kwt_engine::CascadeEngine`] over
//!   two simulated-device engines with `always_verify` must produce
//!   verdict logits bit-identical to the plain verifier engine on the
//!   same windows — the cascade adds gating, never numerics.
//!
//! The duty-cycle streams are deterministic: held-out synthetic "dog"
//! utterances (seed namespace disjoint from every training stream) mixed
//! with background noise and other-keyword fillers, all passed through
//! the seeded [`kwt_dataset::Augmenter`] (time shift, gain, noise at
//! drawn SNR) so windows resemble field audio rather than clean renders.
//!
//! The **gate block** is fixed-size and uses seeded-init weights for both
//! stages, so `check-cascade` re-measures it identically anywhere — no
//! trained artefacts required. The headline duty rows deploy the
//! quantization-faithful 1-epoch detector (see
//! [`crate::gscbench::quant_faithful_detector`] for why the fully
//! trained checkpoint cannot ride the A8 path), with its exponents
//! calibrated on the committed GSC v2 subset, plus a locally trained
//! verifier when available (`results/kwt1_binary_verifier.json`, built
//! by a non-smoke `bench-cascade` run; not committed — ~7 MB), falling
//! back to seeded-init verifier weights under `--smoke`.

use kwt_audio::{kwt1_frontend, kwt_tiny_frontend, MfccExtractor};
use kwt_baremetal::InferenceImage;
use kwt_dataset::{AugmentConfig, Augmenter, KeywordVoice, SynthParams, GSC_KEYWORDS};
use kwt_engine::{CascadeConfig, CascadeEngine, Engine};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{A8Config, A8Kwt};
use kwt_rv32::Platform;
use serde::Serialize;

/// Samples per analysis window (1 s at 16 kHz).
const WINDOW: usize = 16_000;
/// Detector wake-probability threshold.
const WAKE_THRESHOLD: f32 = 0.5;
/// Simulated RAM for KWT-1-scale images (the timing model is the Ibex's;
/// only the RAM ceiling moves).
const VERIFIER_RAM: u32 = 16 * 1024 * 1024;
/// Fixed gate sub-load: windows at 5 % duty, re-measured by
/// `check-cascade` (must match the committed baseline exactly).
const GATE_WINDOWS: usize = 40;
/// Device windows in the verdict-identity block.
const IDENTITY_WINDOWS: usize = 3;
/// "dog" — the paper's wake word.
const WAKE_KEYWORD: usize = 4;

fn headline_windows() -> usize {
    if crate::timing::smoke() {
        60
    } else {
        240
    }
}

/// One duty-cycle arm of `BENCH_cascade.json`.
#[derive(Debug, Clone, Serialize)]
pub struct DutyRow {
    /// Fraction of windows containing the wake word, percent.
    pub duty_pct: f64,
    /// Windows in the stream.
    pub windows: usize,
    /// Windows that actually contain the wake word.
    pub keyword_windows: usize,
    /// Detector firings (wake probability >= threshold).
    pub triggers: usize,
    /// Cascade accepts (verifier confirmed a trigger).
    pub accepts: usize,
    /// Non-keyword windows the cascade accepted.
    pub false_accepts: usize,
    /// Keyword windows the cascade rejected (detector miss or verifier
    /// veto).
    pub false_rejects: usize,
    /// `false_accepts / non-keyword windows`.
    pub fa_rate: f64,
    /// `false_rejects / keyword windows`.
    pub fr_rate: f64,
    /// False-accept rate of the tiny detector alone (no verifier) — the
    /// column the cascade has to beat.
    pub detector_alone_fa_rate: f64,
    /// False-reject rate of the tiny detector alone.
    pub detector_alone_fr_rate: f64,
    /// Mega-cycles per hour of audio for the cascade
    /// (detector every window + verifier per trigger).
    pub cascade_mcycles_per_hour: f64,
    /// Mega-cycles per hour running the verifier on every window.
    pub always_on_mcycles_per_hour: f64,
    /// `always_on / cascade` — > 1 means the cascade is cheaper.
    pub saving_factor: f64,
    /// Device cycles per true detection (cascade cost of the stream over
    /// its true accepts); `null`-ish large when nothing was detected.
    pub cycles_per_detection: f64,
}

/// The fixed, weight-independent gate block.
#[derive(Debug, Clone, Serialize)]
pub struct CascadeGate {
    /// Windows in the gate stream.
    pub windows: usize,
    /// Keyword windows in the gate stream.
    pub keyword_windows: usize,
    /// Detector triggers over the gate stream (host A8 golden model).
    pub triggers: usize,
    /// Windows run through the on-device identity block.
    pub identity_windows: usize,
    /// Device cascade verdicts bit-identical to the plain verifier.
    pub identical: bool,
    /// Device cycles per detector window (mean over the identity block).
    pub detector_cycles: u64,
    /// Device cycles per verifier window.
    pub verifier_cycles: u64,
    /// Gate-stream trigger rate.
    pub trigger_rate: f64,
    /// Cascade mega-cycles per hour at the gate trigger rate.
    pub cascade_mcycles_per_hour: f64,
    /// Always-on-verifier mega-cycles per hour.
    pub always_on_mcycles_per_hour: f64,
    /// `always_on / cascade` at 5 % duty — the headline the gate defends.
    pub saving_factor: f64,
}

/// Everything `bench-cascade` writes to `BENCH_cascade.json`.
#[derive(Debug, Clone, Serialize)]
pub struct CascadeBenchSummary {
    /// Tool + mode provenance.
    pub generated_by: String,
    /// Whether the headline rows used the reduced smoke load.
    pub smoke: bool,
    /// Detector weights provenance (`trained` / `seeded-init`).
    pub detector_weights: String,
    /// Verifier weights provenance.
    pub verifier_weights: String,
    /// The fixed gate block.
    pub gate: CascadeGate,
    /// Duty-cycle sweep.
    pub duty_rows: Vec<DutyRow>,
}

/// Deterministic splitmix64 stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One window of a duty-cycle stream.
struct StreamWindow {
    wave: Vec<f32>,
    is_keyword: bool,
}

/// Builds a deterministic 1 s-window stream at `duty_pct` keyword duty:
/// wake-word renders (held-out seeds) among background-noise and
/// other-keyword fillers, each window augmented (shift/gain/noise) by
/// the seeded recipe.
fn duty_stream(duty_pct: f64, n: usize, stream_seed: u64) -> Vec<StreamWindow> {
    let synth = SynthParams::paper_difficulty();
    let dog = KeywordVoice::new(WAKE_KEYWORD);
    let aug = Augmenter::new(AugmentConfig {
        seed: stream_seed ^ 0xA06_3EED,
        ..AugmentConfig::default()
    });
    // Small noise bank for the augmenter, disjoint seed space.
    let bank: Vec<Vec<f32>> = (0..4)
        .map(|i| KeywordVoice::render_noise(&synth, stream_seed ^ 0xBA4C ^ (i as u64) << 40))
        .collect();
    let mut st = stream_seed ^ 0xD07_17E5;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let is_keyword = unit(&mut st) * 100.0 < duty_pct;
        // Held-out utterance seeds: namespace disjoint from the training
        // streams by the 0x0FF1.. XOR (same convention as the committed
        // GSC subset generator).
        let useed = mix(&mut st) ^ 0x0FF1_1FE0_5EED_0002;
        let raw = if is_keyword {
            dog.render(&synth, useed)
        } else if unit(&mut st) < 0.5 {
            KeywordVoice::render_noise(&synth, useed)
        } else {
            // A non-target keyword — speech that must NOT wake the device.
            let pick = (mix(&mut st) as usize) % (GSC_KEYWORDS.len() - 1);
            let cls = if pick >= WAKE_KEYWORD { pick + 1 } else { pick };
            KeywordVoice::new(cls).render(&synth, useed)
        };
        let wave = aug.augment(&raw, i as u64, &bank);
        debug_assert_eq!(wave.len(), WINDOW);
        out.push(StreamWindow { wave, is_keyword });
    }
    out
}

/// Host-side cascade decisions over a stream via the A8 golden models
/// (bit-identical to the device images — re-proved in the gate's device
/// identity block).
struct HostSweep {
    triggers: usize,
    accepts: usize,
    false_accepts: usize,
    false_rejects: usize,
    det_alone_fa: usize,
    det_alone_fr: usize,
}

fn softmax_prob(logits: &[f32], class: usize) -> f32 {
    let m = logits.iter().fold(f32::MIN, |a, &b| a.max(b));
    let exps: Vec<f32> = logits.iter().map(|&l| (l - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps[class] / sum
}

fn host_sweep(
    stream: &[StreamWindow],
    det: &A8Kwt,
    det_fe: &MfccExtractor,
    ver: &A8Kwt,
    ver_fe: &MfccExtractor,
) -> HostSweep {
    let mut s = HostSweep {
        triggers: 0,
        accepts: 0,
        false_accepts: 0,
        false_rejects: 0,
        det_alone_fa: 0,
        det_alone_fr: 0,
    };
    for w in stream {
        let dm = det_fe.extract_padded(&w.wave).expect("detector mfcc");
        let (dlogits, _) = det.forward_a8(&dm).expect("detector forward");
        let fired = softmax_prob(&dlogits, 1) >= WAKE_THRESHOLD;
        if fired {
            s.triggers += 1;
        }
        // Detector-alone decision: fire == accept.
        if fired && !w.is_keyword {
            s.det_alone_fa += 1;
        }
        if !fired && w.is_keyword {
            s.det_alone_fr += 1;
        }
        // Cascade decision: verifier confirms each trigger.
        let accepted = if fired {
            let vm = ver_fe.extract_padded(&w.wave).expect("verifier mfcc");
            let (vlogits, _) = ver.forward_a8(&vm).expect("verifier forward");
            let am = vlogits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            am == 1
        } else {
            false
        };
        if accepted {
            s.accepts += 1;
            if !w.is_keyword {
                s.false_accepts += 1;
            }
        } else if w.is_keyword {
            s.false_rejects += 1;
        }
    }
    s
}

/// Builds the verifier model: KWT-1's architecture on the binary task.
fn verifier_config() -> KwtConfig {
    KwtConfig {
        num_classes: 2,
        ..KwtConfig::kwt1()
    }
}

/// Headline verifier weights: a locally trained checkpoint when present
/// (written by a previous non-smoke run), else seeded init.
fn headline_verifier(smoke: bool) -> (KwtParams, &'static str) {
    let cache = std::path::Path::new("results/kwt1_binary_verifier.json");
    if let Ok(p) = KwtParams::load_json(cache) {
        if p.config == verifier_config() {
            return (p, "trained (results/kwt1_binary_verifier.json)");
        }
    }
    if !smoke {
        eprintln!("[cascade] training the KWT-1-binary verifier (minutes; cached after)...");
        let ds = kwt_dataset::SyntheticGsc::new(kwt_dataset::GscConfig::paper_binary());
        let fe = kwt1_frontend().expect("preset");
        let train = ds
            .materialize(kwt_dataset::Split::Train, &fe)
            .expect("mfcc");
        let val = ds.materialize(kwt_dataset::Split::Val, &fe).expect("mfcc");
        let mut trainer = kwt_train::Trainer::new(
            KwtParams::init(verifier_config(), 42).expect("valid config"),
            kwt_train::TrainConfig {
                epochs: 2,
                batch_size: 16,
                verbose: true,
                ..kwt_train::TrainConfig::default()
            },
        );
        trainer.fit(&train, &val).expect("training");
        let params = trainer.into_params();
        std::fs::create_dir_all("results").ok();
        params.save_json(cache).ok();
        return (params, "trained (results/kwt1_binary_verifier.json)");
    }
    (
        KwtParams::init(verifier_config(), 42).expect("valid config"),
        "seeded-init (smoke)",
    )
}

/// Measures the fixed gate block: device identity + device cycles +
/// host trigger economics, all from seeded-init weights.
fn measure_gate() -> CascadeGate {
    let det_params = KwtParams::init(KwtConfig::kwt_tiny(), 42).expect("valid config");
    let ver_params = KwtParams::init(verifier_config(), 42).expect("valid config");
    let det_a8 = A8Kwt::quantize(&det_params, A8Config::paper_a8()).expect("detector a8");
    let ver_a8 = A8Kwt::quantize(&ver_params, A8Config::paper_a8()).expect("verifier a8");
    let det_image = InferenceImage::build_a8(&det_a8).expect("detector image");
    let ver_image =
        InferenceImage::build_a8_with_on(&ver_a8, None, Platform::ibex_with_ram(VERIFIER_RAM))
            .expect("verifier image");
    let det_fe = kwt_tiny_frontend().expect("preset");
    let ver_fe = kwt1_frontend().expect("preset");

    // --- Device identity block: cascade(always_verify) == plain verifier.
    let stream = duty_stream(5.0, GATE_WINDOWS, 0xCA5C_ADE0);
    let mut cascade = CascadeEngine::new(
        Engine::rv32_sim(&det_image, det_fe.clone()).expect("detector engine"),
        Engine::rv32_sim(&ver_image, ver_fe.clone()).expect("verifier engine"),
        CascadeConfig {
            wake_class: 1,
            wake_threshold: WAKE_THRESHOLD,
            verify_class: 1,
            always_verify: true,
        },
    )
    .expect("cascade");
    let mut plain = Engine::rv32_sim(&ver_image, ver_fe.clone()).expect("plain verifier");
    let mut identical = true;
    let mut det_cycles_sum = 0u64;
    let mut ver_cycles = 0u64;
    for w in stream.iter().take(IDENTITY_WINDOWS) {
        let d = cascade.classify(&w.wave).expect("cascade classify");
        let p = plain.classify(&w.wave).expect("plain classify");
        let v = d.verdict.expect("always_verify ran the verifier");
        let vb: Vec<u32> = v.logits.iter().map(|x| x.to_bits()).collect();
        let pb: Vec<u32> = p.logits.iter().map(|x| x.to_bits()).collect();
        identical &= vb == pb;
        det_cycles_sum += d.detector_cycles.expect("device detector reports cycles");
        ver_cycles = d.verifier_cycles.expect("device verifier reports cycles");
    }
    let detector_cycles = det_cycles_sum / IDENTITY_WINDOWS as u64;

    // --- Host trigger economics over the whole gate stream.
    let sweep = host_sweep(&stream, &det_a8, &det_fe, &ver_a8, &ver_fe);
    let keyword_windows = stream.iter().filter(|w| w.is_keyword).count();
    let trigger_rate = sweep.triggers as f64 / stream.len() as f64;
    let per_hour = 3600.0;
    let cascade_mc = per_hour * (detector_cycles as f64 + trigger_rate * ver_cycles as f64) / 1.0e6;
    let always_mc = per_hour * ver_cycles as f64 / 1.0e6;
    CascadeGate {
        windows: stream.len(),
        keyword_windows,
        triggers: sweep.triggers,
        identity_windows: IDENTITY_WINDOWS,
        identical,
        detector_cycles,
        verifier_cycles: ver_cycles,
        trigger_rate,
        cascade_mcycles_per_hour: cascade_mc,
        always_on_mcycles_per_hour: always_mc,
        saving_factor: always_mc / cascade_mc,
    }
}

/// Runs the full benchmark and renders `BENCH_cascade.json` + a summary.
pub fn collect() -> CascadeBenchSummary {
    let smoke = crate::timing::smoke();
    let gate = measure_gate();

    // Headline detector: the quantization-faithful 1-epoch reference
    // (deterministic, seconds to train). The 30-epoch float checkpoint is
    // deliberately NOT used: through the device's fixed nonlinearities it
    // collapses to a constant classifier and no exponent choice recovers
    // it — see the `gscbench` module docs.
    let det_params = crate::gscbench::quant_faithful_detector();
    let det_src = "1-epoch quantization-faithful (seed 42)".to_string();
    let (ver_params, ver_src) = headline_verifier(smoke);

    // Per-dataset A8 calibration for the detector: re-derive exponents on
    // the committed GSC v2 subset when it is present (the tentpole loop:
    // dataset -> calibration -> deployment), else keep the defaults.
    let det_cfg = match calibrated_detector_config(&det_params) {
        Some(cfg) => cfg,
        None => A8Config::paper_a8(),
    };
    let det_a8 = A8Kwt::quantize(&det_params, det_cfg).expect("detector a8");
    let ver_a8 = A8Kwt::quantize(&ver_params, A8Config::paper_a8()).expect("verifier a8");
    let det_fe = kwt_tiny_frontend().expect("preset");
    let ver_fe = kwt1_frontend().expect("preset");

    let n = headline_windows();
    let mut duty_rows = Vec::new();
    for duty in [1.0f64, 2.0, 5.0, 10.0] {
        let stream = duty_stream(duty, n, 0xD0D0 + duty as u64);
        let s = host_sweep(&stream, &det_a8, &det_fe, &ver_a8, &ver_fe);
        let keyword_windows = stream.iter().filter(|w| w.is_keyword).count();
        let non_keyword = (stream.len() - keyword_windows).max(1);
        let trigger_rate = s.triggers as f64 / stream.len() as f64;
        let cascade_mc = 3600.0
            * (gate.detector_cycles as f64 + trigger_rate * gate.verifier_cycles as f64)
            / 1.0e6;
        let always_mc = 3600.0 * gate.verifier_cycles as f64 / 1.0e6;
        let true_accepts = s.accepts - s.false_accepts;
        let stream_cycles = stream.len() as f64 * gate.detector_cycles as f64
            + s.triggers as f64 * gate.verifier_cycles as f64;
        duty_rows.push(DutyRow {
            duty_pct: duty,
            windows: stream.len(),
            keyword_windows,
            triggers: s.triggers,
            accepts: s.accepts,
            false_accepts: s.false_accepts,
            false_rejects: s.false_rejects,
            fa_rate: s.false_accepts as f64 / non_keyword as f64,
            fr_rate: if keyword_windows == 0 {
                0.0
            } else {
                s.false_rejects as f64 / keyword_windows as f64
            },
            detector_alone_fa_rate: s.det_alone_fa as f64 / non_keyword as f64,
            detector_alone_fr_rate: if keyword_windows == 0 {
                0.0
            } else {
                s.det_alone_fr as f64 / keyword_windows as f64
            },
            cascade_mcycles_per_hour: cascade_mc,
            always_on_mcycles_per_hour: always_mc,
            saving_factor: always_mc / cascade_mc,
            cycles_per_detection: if true_accepts > 0 {
                stream_cycles / true_accepts as f64
            } else {
                f64::INFINITY
            },
        });
    }
    CascadeBenchSummary {
        generated_by: format!(
            "paper bench-cascade ({})",
            if smoke { "smoke" } else { "full" }
        ),
        smoke,
        detector_weights: det_src,
        verifier_weights: ver_src.to_string(),
        gate,
        duty_rows,
    }
}

/// Calibrates the detector's A8 exponents on the committed GSC v2
/// subset (`data/gsc_v2_subset`), if it exists at the current working
/// directory or the repository root. Returns `None` when absent.
fn calibrated_detector_config(det_params: &KwtParams) -> Option<A8Config> {
    let root = ["data/gsc_v2_subset", "../data/gsc_v2_subset"]
        .iter()
        .map(std::path::Path::new)
        .find(|p| p.join(kwt_dataset::MANIFEST_NAME).exists())?;
    let ds =
        kwt_dataset::GscV2::open_checked(root, kwt_dataset::Task::Binary { target: "dog" }).ok()?;
    let fe = kwt_tiny_frontend().ok()?;
    let cal = ds.materialize(kwt_dataset::Split::Train, &fe, None).ok()?;
    let r = kwt_quant::calibrate_a8(det_params, &cal, A8Config::paper_a8()).ok()?;
    eprintln!(
        "[cascade] detector A8 exponents calibrated on the GSC subset \
         (agreement {:.1}% vs float, input_bits {})",
        r.agreement * 100.0,
        r.config.input_bits
    );
    Some(r.config)
}

fn fmt_duty_table(rows: &[DutyRow]) -> String {
    let mut s = String::new();
    s.push_str(
        "| duty % | windows | FA rate | FR rate | det-alone FA | cascade Mcyc/h | \
         always-on Mcyc/h | saving |\n|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {:.0} | {} | {:.3} | {:.3} | {:.3} | {:.0} | {:.0} | {:.1}x |\n",
            r.duty_pct,
            r.windows,
            r.fa_rate,
            r.fr_rate,
            r.detector_alone_fa_rate,
            r.cascade_mcycles_per_hour,
            r.always_on_mcycles_per_hour,
            r.saving_factor,
        ));
    }
    s
}

/// Runs the benchmark and writes `BENCH_cascade.json` under `out_dir`.
///
/// # Panics
///
/// Panics on model-construction or device failures (a bench that cannot
/// run must fail the invocation, not fabricate rows).
pub fn run_and_write(out_dir: &std::path::Path) -> String {
    let summary = collect();
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    let path = out_dir.join("BENCH_cascade.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_cascade.json");
    format!(
        "## Cascade bench\n\ndetector {} cyc/window, verifier {} cyc/window \
         ({:.0}x); gate: identity={} over {} device windows, saving {:.1}x at \
         {:.0}% trigger rate\n\n{}\nwrote {}\n",
        summary.gate.detector_cycles,
        summary.gate.verifier_cycles,
        summary.gate.verifier_cycles as f64 / summary.gate.detector_cycles as f64,
        summary.gate.identical,
        summary.gate.identity_windows,
        summary.gate.saving_factor,
        summary.gate.trigger_rate * 100.0,
        fmt_duty_table(&summary.duty_rows),
        path.display(),
    )
}

#[derive(serde::Deserialize)]
struct BaselineGate {
    windows: usize,
    keyword_windows: usize,
    triggers: usize,
    identical: bool,
    detector_cycles: u64,
    verifier_cycles: u64,
    saving_factor: f64,
}

#[derive(serde::Deserialize)]
struct BaselineCascadeDoc {
    gate: BaselineGate,
}

/// The cascade gate (wired into `scripts/verify.sh` and CI): re-measures
/// the fixed gate block — seeded-init weights, deterministic stream —
/// then asserts:
///
/// 1. device cascade verdicts are **bit-identical** to the plain
///    verifier over the identity block (`always_verify` mode);
/// 2. the cascade is **cheaper per hour of audio than the always-on
///    KWT-1 verifier at 5 % keyword duty** (the ISSUE's acceptance
///    criterion; measured saving is ~10–100× depending on trigger rate);
/// 3. against the committed `BENCH_cascade.json` (path overridable via
///    `KWT_CASCADE_BASELINE`): stream shape and trigger count match
///    exactly, per-stage device cycles within **±5 %**, saving factor
///    within **±5 %**.
///
/// Skips step 3 with a message when no baseline exists (fresh clones).
///
/// # Panics
///
/// Panics (failing the verify run) on identity loss, a cascade that is
/// not cheaper at 5 % duty, baseline drift, or an unparseable baseline.
pub fn check() -> String {
    let gate = measure_gate();
    assert!(
        gate.identical,
        "device cascade verdicts are no longer bit-identical to the plain verifier — \
         the cascade changed numerics, not just gating"
    );
    assert!(
        gate.saving_factor > 1.0,
        "cascade at {:.1} Mcycles/h is not cheaper than the always-on verifier at \
         {:.1} Mcycles/h (5% duty) — the gate exists to keep this economic win",
        gate.cascade_mcycles_per_hour,
        gate.always_on_mcycles_per_hour
    );
    let path =
        std::env::var("KWT_CASCADE_BASELINE").unwrap_or_else(|_| "BENCH_cascade.json".to_string());
    let baseline_line = match std::fs::read_to_string(&path) {
        Err(_) => format!(
            "baseline: skipped, no committed numbers at `{path}` \
             (run `paper bench-cascade` from the repository root to create one)"
        ),
        Ok(text) => {
            let doc: BaselineCascadeDoc = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("cannot parse cascade baseline {path}: {e}"));
            let b = doc.gate;
            assert!(
                b.identical,
                "committed baseline recorded an identity failure"
            );
            assert_eq!(
                (gate.windows, gate.keyword_windows, gate.triggers),
                (b.windows, b.keyword_windows, b.triggers),
                "gate stream drifted from the committed baseline — the generator or the \
                 detector decisions changed; re-run `paper bench-cascade` and review the diff"
            );
            let dc = gate.detector_cycles as f64 / b.detector_cycles as f64 - 1.0;
            let vc = gate.verifier_cycles as f64 / b.verifier_cycles as f64 - 1.0;
            assert!(
                dc.abs() <= 0.05,
                "detector device cycles {} drifted {:+.2}% from the committed {} (gate: 5%)",
                gate.detector_cycles,
                dc * 100.0,
                b.detector_cycles
            );
            assert!(
                vc.abs() <= 0.05,
                "verifier device cycles {} drifted {:+.2}% from the committed {} (gate: 5%)",
                gate.verifier_cycles,
                vc * 100.0,
                b.verifier_cycles
            );
            let sf = gate.saving_factor / b.saving_factor - 1.0;
            assert!(
                sf.abs() <= 0.05,
                "cascade saving factor {:.2}x drifted {:+.2}% from the committed {:.2}x",
                gate.saving_factor,
                sf * 100.0,
                b.saving_factor
            );
            format!(
                "baseline: detector cycles {:+.2}%, verifier cycles {:+.2}%, saving {:.2}x \
                 (committed {:.2}x)",
                dc * 100.0,
                vc * 100.0,
                gate.saving_factor,
                b.saving_factor
            )
        }
    };
    format!(
        "## Cascade gate\n\n{} device windows verdict-identical; detector {} cyc, verifier {} \
         cyc ({:.0}x); saving {:.1}x at {:.0}% gate trigger rate (> 1x required); {baseline_line}\n",
        gate.identity_windows,
        gate.detector_cycles,
        gate.verifier_cycles,
        gate.verifier_cycles as f64 / gate.detector_cycles as f64,
        gate.saving_factor,
        gate.trigger_rate * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_stream_is_deterministic_and_duty_scales() {
        let a = duty_stream(5.0, 30, 7);
        let b = duty_stream(5.0, 30, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.is_keyword, y.is_keyword);
            assert_eq!(x.wave, y.wave);
        }
        let lo: usize = duty_stream(1.0, 200, 7)
            .iter()
            .filter(|w| w.is_keyword)
            .count();
        let hi: usize = duty_stream(10.0, 200, 7)
            .iter()
            .filter(|w| w.is_keyword)
            .count();
        assert!(hi > lo, "duty must scale keyword density: {lo} vs {hi}");
    }

    #[test]
    fn softmax_prob_is_a_probability() {
        let p = softmax_prob(&[1.0, 3.0], 1);
        assert!(p > 0.5 && p < 1.0);
        assert!((softmax_prob(&[2.0, 2.0], 0) - 0.5).abs() < 1e-6);
    }
}
