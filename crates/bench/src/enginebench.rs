//! End-to-end engine throughput benchmarks with a machine-readable
//! summary (`BENCH_engine.json`), driven by the `paper bench-engine`
//! target.
//!
//! For each backend, measures clips/second of audio-in → prediction-out
//! classification in three modes:
//!
//! * `one_shot` — the pre-engine seed path: a fresh allocating call chain
//!   per clip (`extract_padded_reference` — the seed's generic-FFT MFCC,
//!   kept as an oracle — + `kwt_model::forward` / `QuantizedKwt::forward`
//!   / `InferenceImage::run`, the last rebuilding the simulator machine
//!   every call);
//! * `scratch_reuse` — `Engine::classify_into` with reused arenas (and,
//!   for the RV32 backend, a persistent warm machine);
//! * `batched` — `Engine::classify_batch_into` over the whole clip set.
//!
//! Honors `KWT_BENCH_SMOKE=1` and `KWT_BENCH_MEAS_MS` exactly like
//! [`crate::microbench`].

use crate::timing::{smoke, time_ns};
use kwt_audio::kwt_tiny_frontend;
use kwt_baremetal::{InferenceImage, KernelIsa};
use kwt_engine::{Engine, Prediction};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{A8Config, A8Kwt, Nonlinearity, QuantConfig, QuantizedKwt};
use serde::Serialize;
use std::hint::black_box;

/// Clip count for the (slow) rv32 rows: 3 by default (2 in smoke mode),
/// overridable with `KWT_BENCH_CLIPS` for less noisy numbers — the
/// chosen count is recorded per row.
fn rv32_clip_count() -> usize {
    std::env::var("KWT_BENCH_CLIPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(if smoke() { 2 } else { 3 })
}

/// One backend × mode throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRow {
    /// Backend name (`host_float`, `host_quant`, `rv32_sim`).
    pub backend: String,
    /// Mode (`one_shot`, `scratch_reuse`, `batched`).
    pub mode: String,
    /// Clips per measured batch.
    pub clips: usize,
    /// ns per clip.
    pub ns_per_clip: f64,
    /// Clips per second.
    pub clips_per_s: f64,
}

/// Per-backend speedup summary.
#[derive(Debug, Clone, Serialize)]
pub struct EngineSpeedup {
    /// Backend name.
    pub backend: String,
    /// `one_shot` ns / `scratch_reuse` ns.
    pub scratch_reuse_vs_one_shot: f64,
    /// `one_shot` ns / `batched` ns.
    pub batched_vs_one_shot: f64,
}

/// One instruction-class row of the rv32 cycle histogram (paper-style
/// cycles-per-class attribution for the ISA comparison).
#[derive(Debug, Clone, Serialize)]
pub struct CycleClassRow {
    /// Image variant the attribution belongs to (`accel`,
    /// `accel_xkwtdot`, `accel_xkwtdot_a8`).
    pub variant: String,
    /// Kernel ISA (`rv32im` or `xkwtdot`).
    pub isa: String,
    /// Instruction class name (see `kwt_rv32::InstClass`).
    pub class: String,
    /// Instructions retired in the class for one inference.
    pub instructions: u64,
    /// Cycles consumed by the class for one inference.
    pub cycles: u64,
}

/// End-to-end simulated-device cycles for one image variant — the
/// paper's "Inference Clock Cycles" metric (its KWT-Tiny trajectory:
/// 26 M float → 13 M quantised → 5.5 M quantised + custom-1; this
/// repro's smaller preset follows the same ordering, and the Xkwtdot
/// row extends it).
#[derive(Debug, Clone, Serialize)]
pub struct DeviceCycles {
    /// Image variant (`float`, `quant`, `accel`, `accel_xkwtdot`).
    pub variant: String,
    /// Kernel ISA of the image.
    pub isa: String,
    /// Cycles for one inference.
    pub cycles: u64,
    /// Instructions retired for one inference.
    pub instructions: u64,
}

/// One profiled-region row of an accelerated image: per-kernel cycle
/// attribution (GEMM vs LayerNorm vs attention vs boundaries), so a
/// cycle regression localises to the kernel that caused it.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceKernelRow {
    /// Image variant (`accel`, `accel_xkwtdot`, `accel_xkwtdot_a8`).
    pub variant: String,
    /// Profiled region name (`attn/matmul`, `top/layernorm`, …).
    pub region: String,
    /// Self-cycles attributed to the region for one inference.
    pub cycles: u64,
    /// Region entry count for one inference.
    pub calls: u64,
    /// Share of the inference's total cycles.
    pub percent_of_total: f64,
}

/// One MFCC front-end throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct FrontendRow {
    /// Input geometry (`kwt_tiny_16x26` or `kwt1_40x98`).
    pub geometry: String,
    /// Extraction path: `reference` (the seed's f64 generic-FFT oracle),
    /// `fixed` (the block-vectorised fixed-point pipeline) or `fixed_a8`
    /// (fixed path emitting `i8` at the A8 input exponent).
    pub path: String,
    /// Clips per measured batch.
    pub clips: usize,
    /// ns per clip of MFCC extraction.
    pub ns_per_clip: f64,
    /// ms per clip (the paper-facing unit; the PR 5 acceptance gate is
    /// `fixed <= 0.1 ms` for the KWT-Tiny geometry).
    pub ms_per_clip: f64,
    /// Throughput multiple over the `reference` row of the same
    /// geometry.
    pub speedup_vs_reference: f64,
}

/// One row of the simulated-cluster scaling table: the tuned A8 image
/// on an N-hart cluster with banked shared memory, measured in
/// **simulated SoC cycles** (deterministic — wall-clock noise never
/// touches these numbers, so they are gateable by `paper
/// check-cluster`).
#[derive(Debug, Clone, Serialize)]
pub struct ClusterRow {
    /// Hart count.
    pub harts: usize,
    /// Shared-memory bank count (word-interleaved, single-cycle).
    pub banks: usize,
    /// Clips pushed through the cluster (waves of `harts`).
    pub clips: usize,
    /// Total SoC cycles to finish all clips.
    pub soc_cycles: u64,
    /// Sequential single-core cycles for the same clips on a serial
    /// `DeviceSession` — the speedup denominator.
    pub serial_cycles: u64,
    /// SoC cycles per clip.
    pub cycles_per_clip: f64,
    /// Clips per million SoC cycles — the cluster-throughput headline.
    pub clips_per_mcycle: f64,
    /// `serial_cycles / soc_cycles`: >1 means the cluster beats the
    /// single core (the PR gate: >= 3x at 4 harts).
    pub speedup_vs_serial: f64,
    /// Mean per-hart utilisation (busy cycles / SoC timeline).
    pub hart_utilisation: f64,
    /// Stall cycles / occupied cycles — the bank-conflict tax.
    pub stall_fraction: f64,
}

/// One row of the sharded-batch scaling table.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelRow {
    /// Backend name.
    pub backend: String,
    /// Worker thread count passed to `classify_batch_parallel`.
    pub threads: usize,
    /// Clips per measured batch.
    pub clips: usize,
    /// Clips per second, audio in → prediction out.
    pub clips_per_s: f64,
    /// Throughput relative to the 1-thread row.
    pub speedup_vs_1_thread: f64,
    /// Host CPUs visible to the process — scaling is bounded by this
    /// (a 1-CPU container time-slices the workers and shows ~1×).
    pub host_cpus: usize,
}

/// The full `BENCH_engine.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct EngineBenchSummary {
    /// Producing command.
    pub generated_by: String,
    /// True when produced under `KWT_BENCH_SMOKE=1` (timings meaningless).
    pub smoke: bool,
    /// Raw measurements.
    pub rows: Vec<EngineRow>,
    /// MFCC front-end throughput per geometry and path (the PR 5
    /// `fixed`-path budget for KWT-Tiny is 0.1 ms/clip).
    pub frontend: Vec<FrontendRow>,
    /// Per-backend speedups of the engine paths over the seed path.
    pub speedups: Vec<EngineSpeedup>,
    /// Sharded `classify_batch_parallel` throughput over the rv32 A8
    /// engine at 1/2/4 host threads.
    pub parallel_scaling: Vec<ParallelRow>,
    /// Simulated-cluster throughput of the tuned A8 image at 1/2/4/8
    /// harts against the banked shared memory (deterministic SoC
    /// cycles; gated by `paper check-cluster`).
    pub cluster_scaling: Vec<ClusterRow>,
    /// End-to-end device cycles per image variant (paper Table IX
    /// analogue, extended with the Xkwtdot and A8 rows).
    pub device_cycles: Vec<DeviceCycles>,
    /// Per-instruction-class cycle attribution of the accelerated images
    /// (scalar vs Xkwtdot vs A8) — where each win comes from.
    pub rv32_cycle_classes: Vec<CycleClassRow>,
    /// Per-kernel (profiled-region) cycle attribution of the accelerated
    /// images — GEMM vs LayerNorm vs attention vs boundary ops.
    pub device_kernel_cycles: Vec<DeviceKernelRow>,
}

/// Deterministic benchmark clips (1 s at 16 kHz): tone pairs + noise, the
/// same family the engine equivalence tests use.
pub fn bench_clips(n: usize) -> Vec<Vec<f32>> {
    (0..n as u64)
        .map(|seed| {
            (0..16_000u64)
                .map(|i| {
                    let t = i as f64 / 16_000.0;
                    let h = (i ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_mul(0x2545_F491_4F6C_DD1D);
                    let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
                    (0.5 * (2.0 * std::f64::consts::PI * (220.0 + 40.0 * seed as f64) * t).sin()
                        + 0.05 * noise) as f32
                })
                .collect()
        })
        .collect()
}

/// The benchmark model: KWT-Tiny weights shrunk into a realistic
/// post-training range (throughput does not depend on training).
pub fn bench_params() -> KwtParams {
    let mut p = KwtParams::init(KwtConfig::kwt_tiny(), 77).expect("valid preset");
    p.visit_mut(|s| {
        for v in s {
            *v *= 0.6;
        }
    });
    p
}

struct BackendBench {
    backend: &'static str,
    clips: Vec<Vec<f32>>,
    one_shot_ns: f64,
    scratch_ns: f64,
    batched_ns: f64,
}

fn measure(
    backend: &'static str,
    clips: Vec<Vec<f32>>,
    mut one_shot: impl FnMut(&[f32]),
    engine: &mut Engine,
) -> BackendBench {
    let per_clip = |total: f64| total / clips.len() as f64;
    let one_shot_ns = per_clip(time_ns(|| {
        for c in &clips {
            one_shot(black_box(c));
        }
    }));
    let mut pred = Prediction::default();
    // warm the arenas before timing the steady state
    for c in &clips {
        engine.classify_into(c, &mut pred).expect("classify");
    }
    let scratch_ns = per_clip(time_ns(|| {
        for c in &clips {
            engine
                .classify_into(black_box(c), &mut pred)
                .expect("classify");
        }
    }));
    let mut out = Vec::new();
    engine.classify_batch_into(&clips, &mut out).expect("batch");
    let batched_ns = per_clip(time_ns(|| {
        engine
            .classify_batch_into(black_box(&clips), &mut out)
            .expect("batch");
    }));
    BackendBench {
        backend,
        clips,
        one_shot_ns,
        scratch_ns,
        batched_ns,
    }
}

/// Runs every backend × mode measurement and returns the summary.
pub fn collect() -> EngineBenchSummary {
    let params = bench_params();
    let qm = QuantizedKwt::quantize(&params, QuantConfig::paper_best());
    let accel = qm.clone().with_nonlinearity(Nonlinearity::FixedLut);
    let image = InferenceImage::build_quant(&accel).expect("image builds");
    let ximage = InferenceImage::build_quant_with_isa(&accel, KernelIsa::Xkwtdot)
        .expect("xkwtdot image builds");
    let a8 = A8Kwt::quantize(&params, A8Config::paper_a8()).expect("a8 exponents valid");
    let a8image = InferenceImage::build_a8(&a8).expect("a8 image builds");
    let fe = kwt_tiny_frontend().expect("preset is valid");

    let mut benches = Vec::new();

    // host_float: seed path = extract_padded + forward (packs per call).
    {
        let clips = bench_clips(8);
        let mut engine = Engine::host_float(params.clone(), fe.clone()).expect("engine");
        let p = params.clone();
        let f = fe.clone();
        benches.push(measure(
            "host_float",
            clips,
            move |c| {
                let mfcc = f.extract_padded_reference(c).expect("mfcc");
                black_box(kwt_model::forward(&p, &mfcc).expect("forward"));
            },
            &mut engine,
        ));
    }

    // host_quant: seed path = extract_padded + QuantizedKwt::forward
    // (fresh activation buffers per call).
    {
        let clips = bench_clips(8);
        let mut engine = Engine::host_quant(qm.clone(), fe.clone()).expect("engine");
        let q = qm.clone();
        let f = fe.clone();
        benches.push(measure(
            "host_quant",
            clips,
            move |c| {
                let mfcc = f.extract_padded_reference(c).expect("mfcc");
                black_box(q.forward(&mfcc).expect("forward"));
            },
            &mut engine,
        ));
    }

    // rv32_sim: seed path = InferenceImage::run — a fresh Machine::load
    // and a cold decode cache per clip.
    {
        let clips = bench_clips(rv32_clip_count());
        let mut engine = Engine::rv32_sim(&image, fe.clone()).expect("engine");
        let f = fe.clone();
        let img = image.clone();
        benches.push(measure(
            "rv32_sim",
            clips,
            move |c| {
                let mfcc = f.extract_padded_reference(c).expect("mfcc");
                black_box(img.run(&mfcc).expect("device run"));
            },
            &mut engine,
        ));
    }

    // rv32_sim_xkwtdot: the same accelerated model over the custom-2
    // packed-MAC image (bit-identical logits, far fewer simulated
    // instructions). Every mode measures the xkwtdot image, so each row
    // is self-consistent; the ISA win itself is the ratio between this
    // backend's rows and the rv32_sim rows above.
    {
        let clips = bench_clips(rv32_clip_count());
        let mut engine = Engine::rv32_sim(&ximage, fe.clone()).expect("engine");
        let f = fe.clone();
        let img = ximage.clone();
        benches.push(measure(
            "rv32_sim_xkwtdot",
            clips,
            move |c| {
                let mfcc = f.extract_padded_reference(c).expect("mfcc");
                black_box(img.run(&mfcc).expect("device run"));
            },
            &mut engine,
        ));
    }

    // rv32_sim_a8: the fully-INT8 kdot4 image with the fused attention
    // row pipeline (numerics differ from the i16 path; logits are
    // bit-identical to the host A8 golden model instead).
    {
        let clips = bench_clips(rv32_clip_count());
        let mut engine = Engine::rv32_sim(&a8image, fe.clone()).expect("engine");
        let f = fe.clone();
        let img = a8image.clone();
        benches.push(measure(
            "rv32_sim_a8",
            clips,
            move |c| {
                let mfcc = f.extract_padded_reference(c).expect("mfcc");
                black_box(img.run(&mfcc).expect("device run"));
            },
            &mut engine,
        ));
    }

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for b in &benches {
        for (mode, ns) in [
            ("one_shot", b.one_shot_ns),
            ("scratch_reuse", b.scratch_ns),
            ("batched", b.batched_ns),
        ] {
            rows.push(EngineRow {
                backend: b.backend.to_string(),
                mode: mode.to_string(),
                clips: b.clips.len(),
                ns_per_clip: ns,
                clips_per_s: 1e9 / ns,
            });
        }
        speedups.push(EngineSpeedup {
            backend: b.backend.to_string(),
            scratch_reuse_vs_one_shot: b.one_shot_ns / b.scratch_ns,
            batched_vs_one_shot: b.one_shot_ns / b.batched_ns,
        });
    }
    // MFCC front-end throughput: the f64 oracle vs the fixed-point block
    // pipeline (float and direct-i8 emission) on both paper geometries.
    let mut frontend = Vec::new();
    {
        use kwt_audio::{kwt1_frontend, MfccScratch};
        use kwt_tensor::Mat;
        let a8_exp = A8Config::paper_a8().input_exponent();
        let clips = bench_clips(8);
        for (geometry, fe) in [
            ("kwt_tiny_16x26", kwt_tiny_frontend().expect("preset")),
            ("kwt1_40x98", kwt1_frontend().expect("preset")),
        ] {
            let mut scratch = MfccScratch::new();
            let mut feat = Mat::default();
            let mut feat_q = Mat::default();
            // warm the arenas, then measure each path per clip
            for c in &clips {
                fe.extract_padded_into(c, &mut feat, &mut scratch)
                    .expect("mfcc");
                fe.extract_padded_a8_into(c, a8_exp, &mut feat_q, &mut scratch)
                    .expect("mfcc");
            }
            let per_clip = |total: f64| total / clips.len() as f64;
            let reference_ns = per_clip(time_ns(|| {
                for c in &clips {
                    black_box(fe.extract_padded_reference(black_box(c)).expect("mfcc"));
                }
            }));
            let fixed_ns = per_clip(time_ns(|| {
                for c in &clips {
                    fe.extract_padded_into(black_box(c), &mut feat, &mut scratch)
                        .expect("mfcc");
                    black_box(&feat);
                }
            }));
            let fixed_a8_ns = per_clip(time_ns(|| {
                for c in &clips {
                    fe.extract_padded_a8_into(black_box(c), a8_exp, &mut feat_q, &mut scratch)
                        .expect("mfcc");
                    black_box(&feat_q);
                }
            }));
            for (path, ns) in [
                ("reference", reference_ns),
                ("fixed", fixed_ns),
                ("fixed_a8", fixed_a8_ns),
            ] {
                frontend.push(FrontendRow {
                    geometry: geometry.to_string(),
                    path: path.to_string(),
                    clips: clips.len(),
                    ns_per_clip: ns,
                    ms_per_clip: ns / 1e6,
                    speedup_vs_reference: reference_ns / ns,
                });
            }
        }
    }

    // sharded-batch scaling: the A8 rv32 engine across host threads
    // (each worker owns an independent DeviceSession clone)
    let mut parallel_scaling = Vec::new();
    {
        let host_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let clips = bench_clips(rv32_clip_count() * 4);
        let mut engine = Engine::rv32_sim(&a8image, fe.clone()).expect("engine");
        let mut out = Vec::new();
        let mut base = 0.0f64;
        for threads in [1usize, 2, 4] {
            engine
                .classify_batch_parallel(&clips, threads, &mut out)
                .expect("parallel batch");
            let ns = time_ns(|| {
                engine
                    .classify_batch_parallel(black_box(&clips), threads, &mut out)
                    .expect("parallel batch");
            }) / clips.len() as f64;
            if threads == 1 {
                base = ns;
            }
            parallel_scaling.push(ParallelRow {
                backend: "rv32_sim_a8".to_string(),
                threads,
                clips: clips.len(),
                clips_per_s: 1e9 / ns,
                speedup_vs_1_thread: base / ns,
                host_cpus,
            });
        }
    }

    // simulated-cluster scaling: the tuned A8 image at 1/2/4/8 harts
    // against the banked shared memory, in deterministic SoC cycles
    let cluster_scaling = collect_cluster(&a8image, &fe);

    // device-side cycle metrics: one inference per image variant, plus
    // the per-class attribution for the accelerated-image comparison.
    let mfcc = fe
        .extract_padded_reference(&bench_clips(1)[0])
        .expect("mfcc");
    let mut device_cycles = Vec::new();
    let mut rv32_cycle_classes = Vec::new();
    let mut device_kernel_cycles = Vec::new();
    let float_image = InferenceImage::build_float(&params).expect("float image");
    let quant_image = InferenceImage::build_quant(&qm).expect("quant image");
    for (variant, img) in [
        ("float", &float_image),
        ("quant", &quant_image),
        ("accel", &image),
        ("accel_xkwtdot", &ximage),
        ("accel_xkwtdot_a8", &a8image),
    ] {
        let mut session = img.session().expect("session");
        session.set_class_histogram_enabled(true);
        let (_, run) = session.run(&mfcc).expect("device run");
        device_cycles.push(DeviceCycles {
            variant: variant.to_string(),
            isa: img.isa.as_str().to_string(),
            cycles: run.cycles,
            instructions: run.instructions,
        });
        if variant.starts_with("accel") {
            for (class, instructions, cycles) in session.machine().class_histogram().rows() {
                rv32_cycle_classes.push(CycleClassRow {
                    variant: variant.to_string(),
                    isa: img.isa.as_str().to_string(),
                    class: class.name().to_string(),
                    instructions,
                    cycles,
                });
            }
            let report = session.machine().profile_report();
            for (region, cycles, calls) in &report.regions {
                device_kernel_cycles.push(DeviceKernelRow {
                    variant: variant.to_string(),
                    region: region.clone(),
                    cycles: *cycles,
                    calls: *calls,
                    percent_of_total: 100.0 * *cycles as f64 / report.total_cycles.max(1) as f64,
                });
            }
        }
    }

    EngineBenchSummary {
        generated_by: "paper bench-engine".to_string(),
        smoke: smoke(),
        rows,
        frontend,
        speedups,
        parallel_scaling,
        cluster_scaling,
        device_cycles,
        rv32_cycle_classes,
        device_kernel_cycles,
    }
}

/// Measures the simulated-cluster scaling table: the tuned A8 image
/// pushed through 1/2/4/8-hart clusters in waves (one clip per hart
/// mailbox), against a sequential single-core `DeviceSession` baseline
/// over the same clips. Everything here is *simulated* cycles, so the
/// table is bit-reproducible run to run.
pub fn collect_cluster(a8image: &InferenceImage, fe: &kwt_audio::MfccExtractor) -> Vec<ClusterRow> {
    use kwt_audio::MfccScratch;
    use kwt_baremetal::cluster::wave_all_ok;
    use kwt_tensor::Mat;
    let clips = bench_clips(8);
    let mut scratch = MfccScratch::new();
    let mut mfccs = Vec::new();
    for c in &clips {
        let mut m = Mat::default();
        fe.extract_padded_into(c, &mut m, &mut scratch)
            .expect("mfcc");
        mfccs.push(m);
    }

    // sequential single-core baseline: one serial session, back to back
    let mut session = a8image.session().expect("serial session");
    let mut logits = Vec::new();
    let mut serial_cycles = 0u64;
    for m in &mfccs {
        serial_cycles += session.run_into(m, &mut logits).expect("serial run").cycles;
    }

    let mut rows = Vec::new();
    for harts in [1usize, 2, 4, 8] {
        let mut cs = a8image.cluster_session(harts).expect("cluster session");
        let (mut soc, mut busy, mut stalled) = (0u64, 0u64, 0u64);
        for wave_clips in mfccs.chunks(harts) {
            for (h, m) in wave_clips.iter().enumerate() {
                cs.load_clip(h, m).expect("load clip");
            }
            let wave = cs.run_loaded(wave_clips.len());
            assert!(wave_all_ok(&wave), "cluster bench wave must not fault");
            soc += wave.soc_cycles;
            for s in &wave.stats {
                busy += s.busy_cycles;
                stalled += s.stall_cycles;
            }
        }
        rows.push(ClusterRow {
            harts,
            banks: cs.bank_config().banks,
            clips: mfccs.len(),
            soc_cycles: soc,
            serial_cycles,
            cycles_per_clip: soc as f64 / mfccs.len() as f64,
            clips_per_mcycle: mfccs.len() as f64 * 1e6 / soc as f64,
            speedup_vs_serial: serial_cycles as f64 / soc as f64,
            hart_utilisation: busy as f64 / (soc as f64 * harts as f64),
            stall_fraction: stalled as f64 / (busy + stalled).max(1) as f64,
        });
    }
    rows
}

/// Runs [`collect`], writes `BENCH_engine.json` under `out_dir`, and
/// returns a human-readable table.
pub fn run_and_write(out_dir: &std::path::Path) -> String {
    let summary = collect();
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    let path = out_dir.join("BENCH_engine.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let mut out = format!("# bench-engine (written to {})\n", path.display());
    out.push_str("clips/sec, audio in -> prediction out:\n");
    for r in &summary.rows {
        out.push_str(&format!(
            "  {:<12} {:<14} {:>12.0} ns/clip  {:>10.1} clips/s\n",
            r.backend, r.mode, r.ns_per_clip, r.clips_per_s
        ));
    }
    out.push_str("mfcc front end, ms/clip (PR 5 budget: fixed <= 0.1 ms on kwt_tiny):\n");
    for r in &summary.frontend {
        out.push_str(&format!(
            "  {:<15} {:<10} {:>10.4} ms/clip  {:>6.2}x vs reference\n",
            r.geometry, r.path, r.ms_per_clip, r.speedup_vs_reference
        ));
    }
    out.push_str("engine vs one-shot seed path:\n");
    for s in &summary.speedups {
        out.push_str(&format!(
            "  {:<17} scratch-reuse {:.2}x   batched {:.2}x\n",
            s.backend, s.scratch_reuse_vs_one_shot, s.batched_vs_one_shot
        ));
    }
    out.push_str("sharded classify_batch_parallel (rv32_sim_a8):\n");
    for p in &summary.parallel_scaling {
        out.push_str(&format!(
            "  {} threads ({} clips, {} cpus) {:>10.1} clips/s  {:.2}x vs 1 thread\n",
            p.threads, p.clips, p.host_cpus, p.clips_per_s, p.speedup_vs_1_thread
        ));
    }
    out.push_str("simulated cluster, tuned A8 image (clips/SoC-cycle; gate: >=3x at 4 harts):\n");
    for c in &summary.cluster_scaling {
        out.push_str(&format!(
            "  {} harts x {} banks ({} clips) {:>12} soc cycles  {:>7.3} clips/Mcycle  \
             {:.2}x vs serial  util {:.2}  stalls {:.3}\n",
            c.harts,
            c.banks,
            c.clips,
            c.soc_cycles,
            c.clips_per_mcycle,
            c.speedup_vs_serial,
            c.hart_utilisation,
            c.stall_fraction
        ));
    }
    out.push_str(
        "device cycles per inference (paper trajectory: 26M float -> 13M quant -> 5.5M accel):\n",
    );
    for d in &summary.device_cycles {
        out.push_str(&format!(
            "  {:<15} isa {:<8} {:>12} cycles {:>12} instructions\n",
            d.variant, d.isa, d.cycles, d.instructions
        ));
    }
    out.push_str("accel image cycles by instruction class (scalar vs Xkwtdot vs A8):\n");
    for c in &summary.rv32_cycle_classes {
        out.push_str(&format!(
            "  {:<16} {:<8} {:<12} {:>12} instructions {:>12} cycles\n",
            c.variant, c.isa, c.class, c.instructions, c.cycles
        ));
    }
    out.push_str("accel image cycles by kernel region (GEMM vs LayerNorm vs attention):\n");
    for k in &summary.device_kernel_cycles {
        out.push_str(&format!(
            "  {:<16} {:<16} {:>12} cycles {:>6} calls {:>6.1}%\n",
            k.variant, k.region, k.cycles, k.calls, k.percent_of_total
        ));
    }
    if summary.smoke {
        out.push_str("(smoke mode: single-iteration timings, not meaningful)\n");
    }
    out
}
