//! Shared wall-clock measurement used by the `BENCH_*.json` collectors
//! ([`crate::microbench`], [`crate::enginebench`]): adaptive iteration
//! counts, best-of-batches timing, and the `KWT_BENCH_SMOKE` /
//! `KWT_BENCH_MEAS_MS` environment controls.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// True under `KWT_BENCH_SMOKE=1` — run every measurement exactly once
/// (compile + execute proof, no timing fidelity).
pub(crate) fn smoke() -> bool {
    std::env::var("KWT_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Per-measurement budget (`KWT_BENCH_MEAS_MS`, default 200 ms).
pub(crate) fn budget() -> Duration {
    let ms = std::env::var("KWT_BENCH_MEAS_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// Best-of-batches ns/call of `f` under the global budget; a single call
/// in smoke mode.
pub(crate) fn time_ns<O>(mut f: impl FnMut() -> O) -> f64 {
    if smoke() {
        let t0 = Instant::now();
        black_box(f());
        return t0.elapsed().as_nanos() as f64;
    }
    let target = budget();
    let calib = target.min(Duration::from_millis(40));
    let mut n: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt >= calib || n >= 1 << 40 {
            break;
        }
        n = if dt.as_nanos() == 0 {
            n * 16
        } else {
            ((n as u128 * calib.as_nanos() * 2 / dt.as_nanos().max(1)) as u64).max(n + 1)
        };
    }
    let mut best = f64::INFINITY;
    let mut spent = Duration::ZERO;
    while spent < target {
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        let dt = t0.elapsed();
        spent += dt;
        best = best.min(dt.as_nanos() as f64 / n as f64);
    }
    best
}
