//! Regenerates the paper's tables and figures.
//!
//! ```text
//! paper all            # everything (quick mode)
//! paper table9         # one artefact
//! paper table4 --full  # include the expensive KWT-1 training
//! paper bench-tensor   # packed-GEMM / decode-cache speedups -> BENCH_tensor.json
//! paper bench-engine   # engine clips/sec, one-shot vs scratch-reuse vs batched -> BENCH_engine.json
//! paper bench-serve    # session-multiplexed serving arms -> BENCH_serve.json (--smoke: small fleet)
//! paper check-serve    # serve gate: fused waves >= 2x serial device, bit-identical decisions, 5% vs baseline
//! paper check-a8       # A8-vs-i16 top-1 agreement gate + device/host bit-identity spot check
//! paper check-cycles   # device-cycle regression gate vs the committed BENCH_engine.json (3%)
//! paper check-cluster  # cluster gate: single-hart identity, serial-identical logits, >=3x @ 4 harts
//! paper tune-kernels   # A8 kernel-specialiser factor sweep -> results/TUNED_KERNELS.txt + TUNING.md
//! paper check-tuning   # tuner determinism + tuned-not-slower-than-generic gate
//! paper check-frontend # fixed-point MFCC vs f64 oracle top-1 agreement gate (99.5%)
//! paper fault-sweep    # chaos harness: fault taxonomy x image flavours -> FAULT_SWEEP.md
//! paper fault-sweep --smoke  # fewer seeds per cell (the CI gate)
//! paper bench-cascade  # wake-word cascade duty sweep -> BENCH_cascade.json (--smoke: seeded weights)
//! paper check-cascade  # cascade gate: device verdict identity + cheaper-than-always-on + baseline
//! paper make-gsc-subset    # generate the committed GSC v2 subset under data/gsc_v2_subset
//! paper check-calibration  # offline subset verification + A8 calibration >= 99% float agreement
//! ```

use kwt_bench::experiments as exp;
use kwt_bench::ExpContext;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let ctx = ExpContext {
        full,
        ..ExpContext::default()
    };
    let all = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "table9",
        "fig3",
        "fig4",
        "fig5",
        "fig7",
        "ablation-timing",
        "ablation-nonlinearity",
        "bench-tensor",
        "bench-engine",
        "bench-serve",
        "check-serve",
        "check-a8",
        "check-frontend",
        "check-cycles",
        "check-cluster",
        "tune-kernels",
        "check-tuning",
        "fault-sweep",
        "bench-cascade",
        "check-cascade",
        "check-calibration",
    ];
    let selected: Vec<&str> = if targets.is_empty() || targets.contains(&"all") {
        all.to_vec()
    } else {
        targets
    };
    for t in selected {
        let out = match t {
            "table1" => exp::table1(&ctx),
            "table2" => exp::table2(&ctx),
            "table3" => exp::table3(&ctx),
            "table4" => exp::table4(&ctx),
            "table5" => exp::table5(&ctx),
            "table6" => exp::table6(&ctx),
            "table7" => exp::table7(&ctx),
            "table8" => exp::table8(&ctx),
            "table9" => exp::table9(&ctx),
            "fig3" => exp::fig3(&ctx),
            "fig4" => exp::fig4(&ctx),
            "fig5" => exp::fig5(&ctx),
            "fig7" => exp::fig7(&ctx),
            "ablation-timing" => exp::ablation_timing(&ctx),
            "ablation-nonlinearity" => exp::ablation_nonlinearity(&ctx),
            "bench-tensor" => kwt_bench::microbench::run_and_write(std::path::Path::new(".")),
            "bench-engine" => kwt_bench::enginebench::run_and_write(std::path::Path::new(".")),
            "bench-serve" => {
                if smoke {
                    std::env::set_var("KWT_BENCH_SMOKE", "1");
                }
                kwt_bench::servebench::run_and_write(std::path::Path::new("."))
            }
            "check-serve" => kwt_bench::servebench::check(),
            "check-a8" => exp::check_a8(&ctx),
            "check-cycles" => exp::check_cycles(&ctx),
            "check-cluster" => exp::check_cluster(&ctx),
            "check-frontend" => exp::check_frontend(&ctx),
            "tune-kernels" => kwt_bench::tune::run_and_write(std::path::Path::new(".")),
            "check-tuning" => kwt_bench::tune::check(),
            "fault-sweep" => kwt_bench::faultsweep::run(&ctx, smoke),
            "bench-cascade" => {
                if smoke {
                    std::env::set_var("KWT_BENCH_SMOKE", "1");
                }
                kwt_bench::cascadebench::run_and_write(std::path::Path::new("."))
            }
            "check-cascade" => kwt_bench::cascadebench::check(),
            "make-gsc-subset" => kwt_bench::gscbench::make_subset(),
            "check-calibration" => kwt_bench::gscbench::check_calibration(),
            other => {
                eprintln!("unknown target `{other}`; available: all {all:?}");
                std::process::exit(2);
            }
        };
        println!("{out}");
    }
}
