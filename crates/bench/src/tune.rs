//! `paper tune-kernels` / `paper check-tuning`: cycle-counter
//! autotuning for the A8 kernel specialiser.
//!
//! For every GEMM geometry and LayerNorm width the A8 image emits
//! (derived from the committed model configuration, exactly as
//! `InferenceImage::build_a8` derives them), the tuner enumerates the
//! valid unroll/blocking factor grid, times each candidate kernel on
//! the deterministic cycle counter in an isolated micro-program, checks
//! the candidate's output bit-identical against the generic kernel, and
//! records the fastest factors (deterministic tie-break: grid order) in
//! `results/TUNED_KERNELS.txt` — the committed artefact
//! `kwt_baremetal::specialise::TunedKernels::embedded()` bakes into the
//! image builder. `results/TUNING.md` gets the full factor-grid →
//! cycles sweep table.
//!
//! The CI gate re-derives the table from scratch and fails on any
//! divergence from the committed artefact (tuner non-determinism or a
//! stale file) and on any tuned kernel slower than the generic kernel
//! it replaces.

use kwt_baremetal::specialise::{
    default_ln_factors, emit_gemm_a8_spec, emit_ln_a8_spec, GemmFactors, GemmGeom, LnFactors,
    TunedKernels,
};
use kwt_baremetal::A8Kernels;
use kwt_model::KwtConfig;
use kwt_rv32::{Machine, Platform};
use kwt_rvasm::{Asm, Inst, Label, Reg};
use std::fmt::Write as _;
use std::path::Path;

const IN_A: u32 = 0xA000;
const IN_B: u32 = 0xA800;
const BIAS: u32 = 0xB000;
const OUT: u32 = 0xB400;
const PARAMS: u32 = 0xB800;
const FROW: u32 = 0xBC00;

/// The GEMM geometries the A8 image instantiates for `c` — the same
/// site list (and order) as `InferenceImage::build_a8`, deduplicated.
pub fn gemm_sites(c: &KwtConfig) -> Vec<GemmGeom> {
    let s = c.seqlen();
    let sites = [
        (c.input_time, c.input_freq, c.dim), // patch projection
        (s, c.dim, 3 * c.dim_head),          // qkv projection
        (s, c.dim_head, c.dim),              // attention out projection
        (s, c.dim, c.mlp_dim),               // mlp hidden
        (s, c.mlp_dim, c.dim),               // mlp out
        (1, c.dim, c.num_classes),           // classifier head
    ];
    let mut out: Vec<GemmGeom> = Vec::new();
    for (m, k, n) in sites {
        let geom = GemmGeom {
            m,
            k,
            n,
            has_bias: true,
        };
        if !out.contains(&geom) {
            out.push(geom);
        }
    }
    out
}

/// The candidate factor grid for one geometry, in deterministic order:
/// every divisor of `N` for the column block, `{1, 2, full}` for the
/// depth unroll, row caching on/off — validity-filtered.
pub fn factor_grid(geom: &GemmGeom) -> Vec<GemmFactors> {
    let blocks = if geom.k > 0 && geom.k.is_multiple_of(4) {
        geom.k / 4
    } else {
        geom.k
    };
    let mut ks = vec![1usize, 2, blocks.max(1)];
    ks.sort_unstable();
    ks.dedup();
    let mut out = Vec::new();
    for j_unroll in GemmFactors::j_candidates(geom.n) {
        for &k_unroll in &ks {
            for cache_a in [false, true] {
                let f = GemmFactors {
                    j_unroll,
                    k_unroll,
                    cache_a,
                };
                if f.validate(geom).is_ok() && !out.contains(&f) {
                    out.push(f);
                }
            }
        }
    }
    out
}

/// The LayerNorm unroll candidates for a width, in deterministic order.
pub fn ln_grid(cols: usize) -> Vec<LnFactors> {
    let mut out = Vec::new();
    for unroll in 1..=cols {
        let f = LnFactors { unroll };
        if f.validate(cols).is_ok() {
            out.push(f);
        }
    }
    out
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rand_i8s(seed: u64, len: usize) -> Vec<u8> {
    let mut st = seed;
    (0..len).map(|_| (splitmix(&mut st) >> 8) as u8).collect()
}

/// Assembles and runs one isolated kernel micro-program; returns the
/// run's total cycles and the bytes at `read.0 .. read.0 + read.1`.
/// The fixed call overhead (argument loads + call + ebreak) is
/// identical across candidates of one geometry, so cycle comparisons
/// are exact.
fn run_micro(
    emit_extra: impl FnOnce(&mut Asm, &A8Kernels) -> Label,
    inputs: &[(u32, Vec<u8>)],
    args: &[i32],
    read: (u32, usize),
) -> (u64, Vec<u8>) {
    const ARGS: [Reg; 8] = [
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
    ];
    let mut asm = Asm::new(0, 0x8000);
    let over = asm.new_label();
    asm.jump_to(over);
    let generic = A8Kernels::emit(&mut asm, 8, 4);
    let target = emit_extra(&mut asm, &generic);
    asm.bind(over).expect("fresh label");
    asm.here("entry");
    for (i, &v) in args.iter().enumerate() {
        asm.li(ARGS[i], v);
    }
    asm.call(target);
    asm.emit(Inst::Ebreak);
    let p = asm.finish().expect("micro-program assembles");
    let mut m = Machine::load(&p, Platform::ibex()).expect("fits");
    for (addr, bytes) in inputs {
        m.cpu.mem.write_bytes(*addr, bytes);
        m.cpu.invalidate_decode_cache(*addr, bytes.len() as u32);
    }
    let stats = m.run(500_000_000).expect("micro-program halts");
    (stats.cycles, m.cpu.mem.read_bytes(read.0, read.1).to_vec())
}

/// Run one GEMM micro-program on the simulator: deterministic inputs,
/// `factors: None` for the generic `matmul_a8`, `Some` for a specialised
/// kernel. Returns (device cycles, output bytes) — also the workload the
/// `a8_kernels` criterion bench times on the host side.
pub fn gemm_micro(geom: &GemmGeom, factors: Option<&GemmFactors>) -> (u64, Vec<u8>) {
    let a = rand_i8s(0xA8 + geom.k as u64, geom.m * geom.k);
    let wt = rand_i8s(0x88 + geom.n as u64, geom.n * geom.k);
    let bias: Vec<u8> = {
        let mut st = 0xB1A5 + geom.n as u64;
        (0..geom.n)
            .flat_map(|_| ((splitmix(&mut st) % 4001) as i32 - 2000).to_le_bytes())
            .collect()
    };
    let f = factors.copied();
    let geom = *geom;
    run_micro(
        move |asm, gk| match &f {
            Some(f) => emit_gemm_a8_spec(asm, &geom, f, gk.matmul_a8),
            None => gk.matmul_a8,
        },
        &[(IN_A, a), (IN_B, wt), (BIAS, bias)],
        &[
            IN_A as i32,
            IN_B as i32,
            BIAS as i32,
            OUT as i32,
            geom.m as i32,
            geom.k as i32,
            geom.n as i32,
            6,
        ],
        (OUT, geom.m * geom.n),
    )
}

/// LayerNorm counterpart of [`gemm_micro`]: 4 rows of `cols` columns,
/// `factors: None` for the generic `ln_a8`.
pub fn ln_micro(cols: usize, factors: Option<&LnFactors>) -> (u64, Vec<u8>) {
    let rows = 4usize;
    let x = rand_i8s(0x11 + cols as u64, rows * cols);
    let gamma: Vec<u8> = (0..cols)
        .flat_map(|i| (0.5 + i as f32 * 0.2).to_bits().to_le_bytes())
        .collect();
    let beta: Vec<u8> = (0..cols)
        .flat_map(|i| (-0.3 + i as f32 * 0.1).to_bits().to_le_bytes())
        .collect();
    let params: Vec<u8> = [
        0.0625f32.to_bits() as i32,
        16.0f32.to_bits() as i32,
        (1.0 / cols as f32).to_bits() as i32,
        1e-5f32.to_bits() as i32,
        FROW as i32,
    ]
    .iter()
    .flat_map(|v| v.to_le_bytes())
    .collect();
    let f = factors.copied();
    run_micro(
        move |asm, gk| match &f {
            Some(f) => emit_ln_a8_spec(asm, cols, f),
            None => gk.ln_a8,
        },
        &[(IN_A, x), (IN_B, gamma), (BIAS, beta), (PARAMS, params)],
        &[
            IN_A as i32,
            IN_B as i32,
            BIAS as i32,
            rows as i32,
            cols as i32,
            PARAMS as i32,
        ],
        (IN_A, rows * cols),
    )
}

/// One measured grid point, for the sweep table and the gate.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The geometry label (`gemm 26x16x12` / `ln cols=12`).
    pub site: String,
    /// The factor label.
    pub factors: String,
    /// Micro-program cycles for this candidate.
    pub cycles: u64,
    /// Whether this candidate won the site.
    pub winner: bool,
}

/// The full sweep result: the winning table plus every measured point.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winners, in site order.
    pub table: TunedKernels,
    /// Generic-kernel cycles per site (same micro-program harness).
    pub generic: Vec<(String, u64)>,
    /// Every measured grid point.
    pub sweep: Vec<SweepRow>,
}

/// Runs the full deterministic sweep for the committed model
/// configuration. Every candidate's output is asserted bit-identical
/// to the generic kernel before it is eligible to win.
///
/// # Panics
///
/// Panics if any specialised candidate's output diverges from the
/// generic kernel — that is a specialiser bug, not a tuning outcome.
pub fn tune() -> TuneResult {
    let c = KwtConfig::kwt_tiny();
    let mut result = TuneResult {
        table: TunedKernels::default(),
        generic: Vec::new(),
        sweep: Vec::new(),
    };
    for geom in gemm_sites(&c) {
        let site = format!("gemm {}x{}x{}", geom.m, geom.k, geom.n);
        let (generic_cycles, want) = gemm_micro(&geom, None);
        result.generic.push((site.clone(), generic_cycles));
        let mut best: Option<(u64, GemmFactors)> = None;
        let mut rows = Vec::new();
        for f in factor_grid(&geom) {
            let (cycles, got) = gemm_micro(&geom, Some(&f));
            assert_eq!(
                got, want,
                "{site}: specialised kernel with {f:?} diverges from the generic kernel"
            );
            rows.push((f, cycles));
            if best.is_none_or(|(bc, _)| cycles < bc) {
                best = Some((cycles, f));
            }
        }
        let (_, winner) = best.expect("non-empty factor grid");
        for (f, cycles) in rows {
            result.sweep.push(SweepRow {
                site: site.clone(),
                factors: format!(
                    "j_unroll={} k_unroll={} cache_a={}",
                    f.j_unroll, f.k_unroll, f.cache_a as u8
                ),
                cycles,
                winner: f == winner,
            });
        }
        result.table.gemm.push((geom, winner));
    }
    let cols = c.dim;
    let site = format!("ln cols={cols}");
    let (generic_cycles, want) = ln_micro(cols, None);
    result.generic.push((site.clone(), generic_cycles));
    let mut best: Option<(u64, LnFactors)> = None;
    let mut rows = Vec::new();
    for f in ln_grid(cols) {
        let (cycles, got) = ln_micro(cols, Some(&f));
        assert_eq!(
            got, want,
            "{site}: specialised LayerNorm with {f:?} diverges from the generic kernel"
        );
        rows.push((f, cycles));
        if best.is_none_or(|(bc, _)| cycles < bc) {
            best = Some((cycles, f));
        }
    }
    let (_, winner) = best.unwrap_or((generic_cycles, default_ln_factors(cols)));
    for (f, cycles) in rows {
        result.sweep.push(SweepRow {
            site: site.clone(),
            factors: format!("unroll={}", f.unroll),
            cycles,
            winner: f == winner,
        });
    }
    result.table.ln.push((cols, winner));
    result
}

fn sweep_markdown(r: &TuneResult) -> String {
    let mut md = String::from(
        "# A8 kernel tuning sweep\n\n\
         Generated by `paper tune-kernels`: every valid unroll/blocking factor per\n\
         model kernel geometry, timed in an isolated micro-program on the\n\
         deterministic cycle counter (fixed call overhead included, identical per\n\
         site — comparisons are exact). Winners are committed in\n\
         `results/TUNED_KERNELS.txt` and baked into `InferenceImage::build_a8`;\n\
         every candidate's output is verified bit-identical to the generic kernel\n\
         before being eligible.\n",
    );
    for (site, generic_cycles) in &r.generic {
        let _ = write!(md, "\n## {site}\n\n");
        let _ = write!(md, "generic kernel: {generic_cycles} cycles\n\n");
        md.push_str("| factors | cycles | vs generic | |\n|---|---|---|---|\n");
        for row in r.sweep.iter().filter(|row| &row.site == site) {
            let _ = writeln!(
                md,
                "| `{}` | {} | {:.2}x | {} |",
                row.factors,
                row.cycles,
                *generic_cycles as f64 / row.cycles as f64,
                if row.winner { "**winner**" } else { "" }
            );
        }
    }
    md
}

/// `paper tune-kernels`: runs the sweep and writes
/// `results/TUNED_KERNELS.txt` + `results/TUNING.md` under `root`.
pub fn run_and_write(root: &Path) -> String {
    let r = tune();
    let dir = root.join("results");
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(dir.join("TUNED_KERNELS.txt"), r.table.to_text())
        .expect("write TUNED_KERNELS.txt");
    std::fs::write(dir.join("TUNING.md"), sweep_markdown(&r)).expect("write TUNING.md");
    let mut out = String::from("## Kernel tuning\n\n");
    let _ = writeln!(
        out,
        "swept {} grid points across {} sites; winners -> results/TUNED_KERNELS.txt, sweep -> results/TUNING.md",
        r.sweep.len(),
        r.generic.len()
    );
    for (geom, f) in &r.table.gemm {
        let _ = writeln!(
            out,
            "- gemm {}x{}x{}: j_unroll={} k_unroll={} cache_a={}",
            geom.m, geom.k, geom.n, f.j_unroll, f.k_unroll, f.cache_a as u8
        );
    }
    for (cols, f) in &r.table.ln {
        let _ = writeln!(out, "- ln cols={}: unroll={}", cols, f.unroll);
    }
    out
}

/// `paper check-tuning` (wired into `scripts/verify.sh` and CI):
/// re-derives the tuned table and fails on any drift from the artefact
/// the running binary was compiled with, on drift from the on-disk
/// `results/TUNED_KERNELS.txt` when present, and on any tuned kernel
/// slower than the generic kernel it replaces.
///
/// # Panics
///
/// Panics (failing the verify run) on any of the three conditions.
pub fn check() -> String {
    let r = tune();
    let embedded = TunedKernels::embedded();
    assert_eq!(
        embedded, r.table,
        "committed TUNED_KERNELS.txt is stale: a fresh `paper tune-kernels` sweep \
         derives a different table — regenerate and rebuild"
    );
    if let Ok(text) = std::fs::read_to_string("results/TUNED_KERNELS.txt") {
        let on_disk = TunedKernels::parse(&text).expect("on-disk TUNED_KERNELS.txt parses");
        assert_eq!(
            on_disk, r.table,
            "results/TUNED_KERNELS.txt on disk differs from a fresh sweep"
        );
    }
    let mut lines = String::from("## Tuning gate\n\n");
    for (geom, f) in &r.table.gemm {
        let site = format!("gemm {}x{}x{}", geom.m, geom.k, geom.n);
        let generic = result_cycles(&r, &site);
        let (tuned, _) = gemm_micro(geom, Some(f));
        assert!(
            tuned <= generic,
            "{site}: tuned kernel ({tuned} cycles) is slower than generic ({generic})"
        );
        let _ = writeln!(
            lines,
            "- {site}: tuned {tuned} <= generic {generic} cycles ({:.2}x)",
            generic as f64 / tuned as f64
        );
    }
    for (cols, f) in &r.table.ln {
        let site = format!("ln cols={cols}");
        let generic = result_cycles(&r, &site);
        let (tuned, _) = ln_micro(*cols, Some(f));
        assert!(
            tuned <= generic,
            "{site}: tuned kernel ({tuned} cycles) is slower than generic ({generic})"
        );
        let _ = writeln!(
            lines,
            "- {site}: tuned {tuned} <= generic {generic} cycles ({:.2}x)",
            generic as f64 / tuned as f64
        );
    }
    lines
        .push_str("\ntuner deterministic, artefact in sync, no tuned kernel slower than generic\n");
    lines
}

fn result_cycles(r: &TuneResult, site: &str) -> u64 {
    r.generic
        .iter()
        .find(|(s, _)| s == site)
        .map(|(_, c)| *c)
        .expect("site measured")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_deterministic_and_nonempty() {
        let c = KwtConfig::kwt_tiny();
        let sites = gemm_sites(&c);
        assert!(sites.len() >= 5, "kwt-tiny has >= 5 distinct GEMM sites");
        for geom in &sites {
            let grid = factor_grid(geom);
            assert!(!grid.is_empty(), "{geom:?} has candidates");
            assert_eq!(grid, factor_grid(geom), "grid enumeration deterministic");
        }
        assert!(!ln_grid(c.dim).is_empty());
    }

    #[test]
    fn micro_harness_is_deterministic() {
        let geom = gemm_sites(&KwtConfig::kwt_tiny())[0];
        let a = gemm_micro(&geom, None);
        let b = gemm_micro(&geom, None);
        assert_eq!(a, b);
    }
}
