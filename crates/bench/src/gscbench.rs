//! GSC v2 subset tooling: `paper make-gsc-subset` and the calibration
//! acceptance gate `paper check-calibration`.
//!
//! The committed subset at `data/gsc_v2_subset` is the repository's
//! offline stand-in for the real Google Speech Commands v2 download: the
//! same directory layout (`<keyword>/<speaker>_nohash_<take>.wav`,
//! `_background_noise_/`), the same official SHA-1 split function, real
//! RIFF/PCM16 files, plus a checksummed `MANIFEST.tsv` so CI can prove
//! the tree is byte-exact before trusting any number derived from it.
//!
//! `check-calibration` is the acceptance gate for the per-dataset A8
//! sweep: open the committed subset fully offline (manifest-verified),
//! run [`kwt_quant::calibrate_a8`] for a deterministic reference
//! KWT-Tiny on the subset's training split, and require **≥ 99 % top-1
//! agreement with the float model**. The reference model is trained for
//! exactly one epoch (seed 42, single-threaded — bit-reproducible): at
//! that point `A8Config::paper_a8`'s exponents misrepresent it badly
//! (~1 % agreement), and the data-driven input-exponent re-derivation
//! recovers full float fidelity — which is precisely the behaviour the
//! gate exists to protect.
//!
//! Why not the fully-trained checkpoint? The paper's fixed nonlinearities
//! (GELU clip at −1.857/1.595, LUT SoftMax) clamp exactly the activation
//! regions a hard-trained model grows into, so A8 fidelity *decreases*
//! with training (measured here: 100 % at 1 epoch, ~88 % at 6, ~74 % at
//! 30) and no exponent choice can recover it. That tension is a device
//! property, not a calibration bug; the gate pins the part calibration
//! can and must fix. See `docs/ARCHITECTURE.md`.

use kwt_audio::kwt_tiny_frontend;
use kwt_dataset::{
    generate_subset, GscConfig, GscV2, Split, SubsetSpec, SyntheticGsc, Task, MANIFEST_NAME,
};
use kwt_model::{KwtConfig, KwtParams};
use kwt_quant::{calibrate_a8, A8Config, CalibrationResult};
use kwt_train::{TrainConfig, Trainer};

/// Where the committed subset lives, relative to the repository root.
pub const SUBSET_DIR: &str = "data/gsc_v2_subset";

/// Agreement floor of the calibration gate.
const MIN_AGREEMENT: f64 = 0.99;

/// Generates the committed GSC v2 subset at [`SUBSET_DIR`] (refuses to
/// clobber an existing manifest — delete the directory to regenerate).
///
/// # Panics
///
/// Panics when generation fails (existing manifest, unwritable tree).
pub fn make_subset() -> String {
    let root = std::path::Path::new(SUBSET_DIR);
    let spec = SubsetSpec::default();
    let n = generate_subset(root, &spec)
        .unwrap_or_else(|e| panic!("cannot generate subset at {SUBSET_DIR}: {e}"));
    let ds = GscV2::open_checked(root, Task::Binary { target: "dog" })
        .expect("freshly generated subset must verify");
    format!(
        "## GSC v2 subset\n\nwrote {n} WAV files under `{SUBSET_DIR}` \
         ({} train / {} val / {} test binary clips), manifest `{}` verified\n",
        ds.len(Split::Train),
        ds.len(Split::Val),
        ds.len(Split::Test),
        MANIFEST_NAME,
    )
}

/// The quantization-faithful reference detector: KWT-Tiny trained for
/// one epoch on the synthetic binary task, seed 42, single-threaded —
/// bit-reproducible anywhere, and still inside the activation range the
/// A8 device's fixed nonlinearities represent exactly (see the module
/// docs for why the 30-epoch checkpoint is not).
pub fn quant_faithful_detector() -> KwtParams {
    let ds = SyntheticGsc::new(GscConfig::paper_binary());
    let fe = kwt_tiny_frontend().expect("preset is valid");
    let train = ds
        .materialize(Split::Train, &fe)
        .expect("synthetic set materialises");
    let val = ds
        .materialize(Split::Val, &fe)
        .expect("synthetic set materialises");
    let mut trainer = Trainer::new(
        KwtParams::init(KwtConfig::kwt_tiny(), 42).expect("valid config"),
        TrainConfig {
            epochs: 1,
            threads: 1,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&train, &val).expect("training");
    trainer.into_params()
}

/// Calibrates `params` on the committed subset's training split, after
/// verifying the tree offline against its manifest.
///
/// # Panics
///
/// Panics when the subset is missing or corrupt, or calibration errors.
pub fn calibrate_on_subset(params: &KwtParams) -> CalibrationResult {
    let root = std::path::Path::new(SUBSET_DIR);
    assert!(
        root.join(MANIFEST_NAME).exists(),
        "committed GSC subset missing at `{SUBSET_DIR}` — run `paper make-gsc-subset` \
         from the repository root and commit the result"
    );
    let ds = GscV2::open_checked(root, Task::Binary { target: "dog" })
        .unwrap_or_else(|e| panic!("committed GSC subset failed verification: {e}"));
    let fe = kwt_tiny_frontend().expect("preset is valid");
    let cal = ds
        .materialize(Split::Train, &fe, None)
        .expect("subset training split materialises offline");
    calibrate_a8(params, &cal, A8Config::paper_a8()).expect("calibration runs")
}

/// The calibration gate (wired into `scripts/verify.sh` and CI):
///
/// 1. opens the committed subset **offline** with full manifest
///    verification (any byte drift in the tree fails here);
/// 2. trains the deterministic reference detector
///    ([`quant_faithful_detector`]) and calibrates its A8 exponents on
///    the subset's training split ([`kwt_quant::calibrate_a8`]);
/// 3. asserts the calibrated config reaches **≥ 99 % top-1 agreement**
///    with the float model on that split — up from ~1 % at the
///    hand-tuned defaults, so the gate fails the moment the data-driven
///    re-derivation stops working.
///
/// # Panics
///
/// Panics (failing the verify run) when the subset is missing or
/// corrupt, calibration errors, or agreement lands under the floor.
pub fn check_calibration() -> String {
    let params = quant_faithful_detector();
    let r = calibrate_on_subset(&params);
    assert!(
        r.agreement >= MIN_AGREEMENT,
        "calibrated A8 agreement {:.4} on the GSC subset is under the {MIN_AGREEMENT} gate \
         (started at {:.4}, input_bits {} from max |mfcc| {:.2})",
        r.agreement,
        r.start_agreement,
        r.config.input_bits,
        r.max_abs_input
    );
    format!(
        "## Calibration gate\n\nGSC subset verified offline; calibrated A8 agreement {:.2}% \
         vs float (floor {:.0}%), up from {:.2}% at the hand-tuned exponents; input_bits {} \
         from max |mfcc| {:.2}; {} trials over {} passes\n",
        r.agreement * 100.0,
        MIN_AGREEMENT * 100.0,
        r.start_agreement * 100.0,
        r.config.input_bits,
        r.max_abs_input,
        r.trials.len(),
        r.passes,
    )
}
