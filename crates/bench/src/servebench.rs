//! Serving-layer benchmark (`paper bench-serve` -> `BENCH_serve.json`)
//! and its regression gate (`paper check-serve`).
//!
//! Two questions, each answered by a matched pair of arms over the same
//! deterministic synthetic load:
//!
//! 1. **Scale** (host arms, wall clock): can one [`KwsServer`] multiplex
//!    10k+ concurrent 16 kHz streams through a single `host_float`
//!    engine, and what are the detections/s and in-server delivery
//!    latency percentiles? The naive arm is the classic
//!    one-session-at-a-time loop — a single [`StreamingKws`] reset and
//!    replayed per stream. On a 1-CPU container both arms share one
//!    core, so the wall-clock ratio mostly measures scheduling overhead;
//!    it is recorded honestly alongside.
//! 2. **Throughput win** (cluster arms, simulated SoC cycles —
//!    deterministic, so gateable): the same multiplexed load behind a
//!    4-hart RV32 cluster (cross-session fused waves) versus the serial
//!    single-core device. The headline `speedup` is detections per SoC
//!    cycle, fused vs serial — the paper-PR gate requires **>= 2x** and
//!    the measured value (~4x at 4 harts) is re-proved by `check-serve`
//!    on every bench CI run.
//!
//! Equal correctness is asserted *inside* the bench: the two cluster
//! arms must deliver bit-identical decision streams, and the
//! multiplexed host arm is spot-checked against the naive loop on every
//! distinct stream in the pool. A throughput number from a wrong answer
//! is not a number.
//!
//! Honors `KWT_BENCH_SMOKE=1` (smaller fleet, one pass) like the other
//! collectors. The gate sub-load is fixed-size regardless of smoke so
//! `check-serve` always compares like with like.

use kwt_audio::kwt_tiny_frontend;
use kwt_baremetal::InferenceImage;
use kwt_engine::{Engine, StreamDecision, StreamingConfig, StreamingKws};
use kwt_quant::{A8Config, A8Kwt};
use kwt_serve::{KwsServer, Reactor, ServeConfig, ServeMetrics, SessionId, Token};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Ingest chunk size: 100 ms at 16 kHz, the cadence a real microphone
/// gateway would batch at.
const CHUNK: usize = 1_600;
/// Samples per synthetic stream (1.2 s): 31 MFCC frames, 6 sliding-window
/// decisions per session at the default stride.
const STREAM_SAMPLES: usize = 19_200;
/// Distinct signals in the pool; sessions cycle through it, which keeps
/// generation cheap at 10k+ sessions and gives every pool member a
/// standalone reference for the correctness spot check.
const POOL: usize = 16;
/// Fixed gate sub-load re-measured by `check-serve` (must match the
/// committed `BENCH_serve.json` exactly for the +-5 % comparison).
const GATE_SESSIONS: usize = 24;

fn host_sessions() -> usize {
    if crate::timing::smoke() {
        256
    } else {
        10_240
    }
}

fn cluster_sessions() -> usize {
    if crate::timing::smoke() {
        16
    } else {
        96
    }
}

/// One wall-clock host arm of `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeHostRow {
    /// `multiplexed` (one `KwsServer`) or `naive_loop` (one
    /// `StreamingKws` reset per stream).
    pub arm: String,
    /// Engine backend behind the arm.
    pub backend: String,
    /// Concurrent sessions driven to completion.
    pub sessions: usize,
    /// Audio per session, seconds.
    pub audio_s_per_session: f64,
    /// Total decisions delivered.
    pub decisions: u64,
    /// Wall-clock for the whole load, milliseconds.
    pub wall_ms: f64,
    /// Decisions per second of wall clock — the host throughput line.
    pub detections_per_s: f64,
    /// In-server delivery latency percentiles, microseconds (drive entry
    /// to decision callback; 0 for the naive arm, which has no server).
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile, microseconds.
    pub p999_us: f64,
    /// Chunks rejected by ring backpressure (expected 0 — the load
    /// generator respects the rings; nonzero means the bench is wrong).
    pub chunks_rejected: u64,
}

/// One simulated-SoC cluster arm of `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeClusterRow {
    /// `fused_waves_4h` (cross-session batches on the 4-hart cluster) or
    /// `serial_device` (same scheduler, one window at a time on the
    /// single-core device).
    pub arm: String,
    /// Engine backend behind the arm.
    pub backend: String,
    /// Concurrent sessions driven to completion.
    pub sessions: usize,
    /// Total decisions delivered.
    pub decisions: u64,
    /// Summed simulated device cycles across all waves.
    pub device_cycles: u64,
    /// Decisions per million SoC cycles — the deterministic throughput
    /// headline the speedup gate is computed from.
    pub detections_per_mcycle: f64,
    /// Mean windows per dispatched wave (1.0 on the serial arm; > 2 on
    /// the fused arm proves genuine cross-session batching).
    pub wave_occupancy: f64,
    /// Simulated queueing + service latency percentiles, kilocycles.
    pub sim_p50_kcycles: f64,
    /// 99th percentile, kilocycles.
    pub sim_p99_kcycles: f64,
    /// 99.9th percentile, kilocycles.
    pub sim_p999_kcycles: f64,
}

/// The fixed-size sub-load `check-serve` re-measures against the
/// committed baseline. Simulated cycles are deterministic per build, so
/// every field reproduces exactly until the code intentionally changes.
#[derive(Debug, Clone, Serialize)]
pub struct ServeGate {
    /// Sessions in the gate load.
    pub sessions: usize,
    /// Samples per session.
    pub samples_per_session: usize,
    /// Ingest chunk size, samples.
    pub chunk_samples: usize,
    /// Decisions delivered by each arm (identical by construction).
    pub decisions: u64,
    /// Fused-wave arm throughput, decisions per million SoC cycles.
    pub fused_detections_per_mcycle: f64,
    /// Serial-device arm throughput, decisions per million SoC cycles.
    pub serial_detections_per_mcycle: f64,
    /// Fused / serial — the multiplexing win; gate requires >= 2x.
    pub speedup: f64,
    /// Fused arm simulated p99 delivery latency, kilocycles.
    pub sim_p99_kcycles: f64,
    /// Decisions compared bit-for-bit between the two arms.
    pub identical_decisions: u64,
}

/// The full `BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchSummary {
    /// Producing command.
    pub generated_by: String,
    /// True when produced under `KWT_BENCH_SMOKE=1` (small fleet,
    /// wall-clock numbers meaningless; gate section still full-size).
    pub smoke: bool,
    /// Wall-clock host arms (multiplexed vs naive loop).
    pub host: Vec<ServeHostRow>,
    /// Simulated-SoC cluster arms (fused waves vs serial device).
    pub cluster: Vec<ServeClusterRow>,
    /// Fused / serial detections-per-cycle at the full cluster load.
    pub cluster_speedup_vs_serial: f64,
    /// Multiplexed / naive wall-clock detections/s on the host (bounded
    /// by available CPUs — ~1x on a 1-CPU container).
    pub host_wall_speedup_vs_naive: f64,
    /// Host-arm decisions compared bit-for-bit (multiplexed vs naive).
    pub identical_host_decisions: u64,
    /// The fixed sub-load `check-serve` gates against.
    pub gate: ServeGate,
}

/// Deterministic pool of distinct synthetic streams (tone + hash noise,
/// the same family as [`crate::enginebench::bench_clips`] but with a
/// parameterised length).
pub fn stream_pool(n: usize, samples: usize) -> Vec<Vec<f32>> {
    (0..n as u64)
        .map(|seed| {
            (0..samples as u64)
                .map(|i| {
                    let t = i as f64 / 16_000.0;
                    let h = (i ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_mul(0x2545_F491_4F6C_DD1D);
                    let noise = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
                    (0.4 * (2.0 * std::f64::consts::PI * (230.0 + 55.0 * seed as f64) * t).sin()
                        + 0.05 * noise) as f32
                })
                .collect()
        })
        .collect()
}

struct MuxRun {
    decisions: u64,
    wall: Duration,
    metrics: ServeMetrics,
    /// Decision streams of the first `collect_first` sessions.
    collected: Vec<Vec<StreamDecision>>,
}

/// Drive `sessions` concurrent streams (session `s` plays
/// `pool[s % pool.len()]`) through one server in reactor virtual time:
/// arrivals are staggered across the chunk period, every due session
/// pushes its next 100 ms, then one `drive` fuses all boundary-crossing
/// windows into waves. Fully deterministic.
fn run_multiplexed(
    engine: Engine,
    sessions: usize,
    pool: &[Vec<f32>],
    collect_first: usize,
) -> MuxRun {
    let mut server = KwsServer::new(
        engine,
        ServeConfig {
            max_sessions: sessions,
            ..ServeConfig::default()
        },
    )
    .expect("serve config is valid");
    let ids: Vec<SessionId> = (0..sessions)
        .map(|_| server.open().expect("slab sized for the fleet"))
        .collect();
    let mut reactor = Reactor::with_capacity(sessions);
    // Arrivals are staggered across the chunk period, but coarsely: each
    // poll batch must still carry enough sessions (>= 16) to fill the
    // backend's waves, otherwise the event loop classifies half-empty
    // batches and the fused arm degenerates to the serial one.
    let phases = (sessions / 16).clamp(1, 16);
    for s in 0..sessions {
        reactor.arm(((s % phases) * (CHUNK / phases)) as u64, Token(s as u64));
    }
    let mut offsets = vec![0usize; sessions];
    let mut fired: Vec<Token> = Vec::with_capacity(sessions);
    let mut collected: Vec<Vec<StreamDecision>> = vec![Vec::new(); collect_first];
    let mut decisions = 0u64;
    let t0 = Instant::now();
    while let Some(now) = reactor.next_due() {
        fired.clear();
        reactor.poll_into(now, &mut fired);
        for &Token(tok) in &fired {
            let s = tok as usize;
            let signal = &pool[s % pool.len()];
            let end = (offsets[s] + CHUNK).min(signal.len());
            server
                .push(ids[s], &signal[offsets[s]..end])
                .expect("load generator respects ring capacity");
            offsets[s] = end;
            if end < signal.len() {
                reactor.arm(now + CHUNK as u64, Token(tok));
            }
        }
        decisions += server
            .drive(|d| {
                let s = d.session.index() as usize;
                if s < collect_first {
                    collected[s].push(d.decision.clone());
                }
            })
            .expect("drive succeeds on valid audio") as u64;
    }
    MuxRun {
        decisions,
        wall: t0.elapsed(),
        metrics: server.metrics().clone(),
        collected,
    }
}

/// The naive baseline: one `StreamingKws`, reset and replayed per
/// stream, chunks pushed in the same 100 ms cadence — no multiplexing,
/// no cross-session waves, one window at a time.
fn run_naive_host(
    engine: Engine,
    sessions: usize,
    pool: &[Vec<f32>],
    collect_first: usize,
) -> (u64, Duration, Vec<Vec<StreamDecision>>) {
    let mut kws = StreamingKws::new(engine, StreamingConfig::default()).expect("streaming config");
    let mut collected: Vec<Vec<StreamDecision>> = vec![Vec::new(); collect_first];
    let mut decisions = 0u64;
    let t0 = Instant::now();
    for s in 0..sessions {
        kws.reset();
        let signal = &pool[s % pool.len()];
        for chunk in signal.chunks(CHUNK) {
            let ds = kws.push(chunk).expect("valid audio");
            decisions += ds.len() as u64;
            if s < collect_first {
                collected[s].extend(ds);
            }
        }
    }
    (decisions, t0.elapsed(), collected)
}

/// Bit-exact comparison of per-session decision streams; returns the
/// number of decisions compared.
///
/// # Panics
///
/// Panics on the first mismatch — a throughput arm that disagrees with
/// its reference invalidates the whole benchmark.
fn assert_identical(got: &[Vec<StreamDecision>], want: &[Vec<StreamDecision>], what: &str) -> u64 {
    let mut compared = 0u64;
    for (s, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{what}: session {s} decision count");
        for (a, b) in g.iter().zip(w) {
            assert_eq!(a.frame_index, b.frame_index, "{what}: session {s}");
            assert_eq!(
                a.class, b.class,
                "{what}: session {s} frame {}",
                b.frame_index
            );
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{what}: session {s} frame {}",
                b.frame_index
            );
            assert_eq!(
                a.smoothed_class, b.smoothed_class,
                "{what}: session {s} frame {}",
                b.frame_index
            );
            compared += 1;
        }
    }
    compared
}

fn a8_image() -> InferenceImage {
    let a8 = A8Kwt::quantize(&crate::enginebench::bench_params(), A8Config::paper_a8())
        .expect("a8 exponents valid");
    InferenceImage::build_a8(&a8).expect("a8 image builds")
}

fn host_row(arm: &str, sessions: usize, run: &MuxRun) -> ServeHostRow {
    let wall_s = run.wall.as_secs_f64();
    ServeHostRow {
        arm: arm.into(),
        backend: "host_float".into(),
        sessions,
        audio_s_per_session: STREAM_SAMPLES as f64 / 16_000.0,
        decisions: run.decisions,
        wall_ms: wall_s * 1e3,
        detections_per_s: run.decisions as f64 / wall_s,
        p50_us: run.metrics.wall_latency_ns.p50() as f64 / 1e3,
        p99_us: run.metrics.wall_latency_ns.p99() as f64 / 1e3,
        p999_us: run.metrics.wall_latency_ns.p999() as f64 / 1e3,
        chunks_rejected: run.metrics.chunks_rejected,
    }
}

fn cluster_row(arm: &str, backend: &str, sessions: usize, run: &MuxRun) -> ServeClusterRow {
    ServeClusterRow {
        arm: arm.into(),
        backend: backend.into(),
        sessions,
        decisions: run.decisions,
        device_cycles: run.metrics.device_cycles,
        detections_per_mcycle: run.decisions as f64 * 1e6 / run.metrics.device_cycles.max(1) as f64,
        wave_occupancy: run.metrics.wave_occupancy(),
        sim_p50_kcycles: run.metrics.sim_latency_cycles.p50() as f64 / 1e3,
        sim_p99_kcycles: run.metrics.sim_latency_cycles.p99() as f64 / 1e3,
        sim_p999_kcycles: run.metrics.sim_latency_cycles.p999() as f64 / 1e3,
    }
}

/// Runs the two cluster arms over `sessions` streams and proves their
/// decision streams bit-identical. Shared by [`collect`] and the gate.
fn cluster_arms(
    image: &InferenceImage,
    sessions: usize,
    pool: &[Vec<f32>],
) -> (ServeClusterRow, ServeClusterRow, u64) {
    let fe = kwt_tiny_frontend().expect("preset is valid");
    let fused_engine = Engine::rv32_cluster(image, fe.clone(), 4).expect("cluster engine");
    let serial_engine = Engine::rv32_sim(image, fe).expect("serial engine");
    let fused = run_multiplexed(fused_engine, sessions, pool, sessions);
    let serial = run_multiplexed(serial_engine, sessions, pool, sessions);
    let identical = assert_identical(&fused.collected, &serial.collected, "fused vs serial");
    assert!(identical > 0, "cluster arms must deliver decisions");
    (
        cluster_row(
            "fused_waves_4h",
            "rv32_cluster_a8 (4 harts)",
            sessions,
            &fused,
        ),
        cluster_row("serial_device", "rv32_sim_a8", sessions, &serial),
        identical,
    )
}

/// Measures the fixed-size gate sub-load (both cluster arms, identity
/// asserted). Deterministic: simulated cycles only.
pub(crate) fn measure_gate() -> ServeGate {
    let image = a8_image();
    let pool = stream_pool(8, STREAM_SAMPLES);
    let (fused, serial, identical) = cluster_arms(&image, GATE_SESSIONS, &pool);
    assert_eq!(fused.decisions, serial.decisions);
    ServeGate {
        sessions: GATE_SESSIONS,
        samples_per_session: STREAM_SAMPLES,
        chunk_samples: CHUNK,
        decisions: fused.decisions,
        fused_detections_per_mcycle: fused.detections_per_mcycle,
        serial_detections_per_mcycle: serial.detections_per_mcycle,
        speedup: fused.detections_per_mcycle / serial.detections_per_mcycle,
        sim_p99_kcycles: fused.sim_p99_kcycles,
        identical_decisions: identical,
    }
}

/// Collects the full `BENCH_serve.json` document.
pub fn collect() -> ServeBenchSummary {
    let smoke = crate::timing::smoke();
    let pool = stream_pool(POOL, STREAM_SAMPLES);
    let fe = kwt_tiny_frontend().expect("preset is valid");
    let params = crate::enginebench::bench_params();

    // Host arms: wall-clock scale.
    let n_host = host_sessions();
    eprintln!("[serve] multiplexed host arm: {n_host} sessions...");
    let mux = run_multiplexed(
        Engine::host_float(params.clone(), fe.clone()).expect("host engine"),
        n_host,
        &pool,
        POOL.min(n_host),
    );
    eprintln!("[serve] naive host arm: {n_host} sessions...");
    let (naive_decisions, naive_wall, naive_collected) = run_naive_host(
        Engine::host_float(params, fe).expect("host engine"),
        n_host,
        &pool,
        POOL.min(n_host),
    );
    assert_eq!(
        mux.decisions, naive_decisions,
        "host arms disagree on decision count"
    );
    let identical_host = assert_identical(&mux.collected, &naive_collected, "multiplexed vs naive");
    let mux_row = host_row("multiplexed", n_host, &mux);
    let naive_row = ServeHostRow {
        arm: "naive_loop".into(),
        backend: "host_float".into(),
        sessions: n_host,
        audio_s_per_session: STREAM_SAMPLES as f64 / 16_000.0,
        decisions: naive_decisions,
        wall_ms: naive_wall.as_secs_f64() * 1e3,
        detections_per_s: naive_decisions as f64 / naive_wall.as_secs_f64(),
        p50_us: 0.0,
        p99_us: 0.0,
        p999_us: 0.0,
        chunks_rejected: 0,
    };
    let host_wall_speedup = mux_row.detections_per_s / naive_row.detections_per_s;

    // Cluster arms: deterministic SoC-cycle throughput.
    let image = a8_image();
    let n_cluster = cluster_sessions();
    eprintln!("[serve] cluster arms: {n_cluster} sessions on the A8 image...");
    let (fused, serial, _) = cluster_arms(&image, n_cluster, &pool);
    let cluster_speedup = fused.detections_per_mcycle / serial.detections_per_mcycle;

    eprintln!("[serve] gate sub-load: {GATE_SESSIONS} sessions...");
    let gate = measure_gate();

    ServeBenchSummary {
        generated_by: "paper bench-serve".into(),
        smoke,
        host: vec![mux_row, naive_row],
        cluster: vec![fused, serial],
        cluster_speedup_vs_serial: cluster_speedup,
        host_wall_speedup_vs_naive: host_wall_speedup,
        identical_host_decisions: identical_host,
        gate,
    }
}

/// Runs [`collect`], writes `BENCH_serve.json` under `out_dir`, and
/// returns a human-readable table.
pub fn run_and_write(out_dir: &std::path::Path) -> String {
    let summary = collect();
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    let path = out_dir.join("BENCH_serve.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let mut out = format!("# bench-serve (written to {})\n", path.display());
    out.push_str("host arms, wall clock (1-CPU containers time-slice both arms):\n");
    for r in &summary.host {
        out.push_str(&format!(
            "  {:<12} {} sessions x {:.1} s  {:>8} decisions  {:>9.1} ms  {:>9.1} det/s  \
             p50 {:>7.1} us  p99 {:>8.1} us  p999 {:>8.1} us\n",
            r.arm,
            r.sessions,
            r.audio_s_per_session,
            r.decisions,
            r.wall_ms,
            r.detections_per_s,
            r.p50_us,
            r.p99_us,
            r.p999_us
        ));
    }
    out.push_str(&format!(
        "  host wall speedup (multiplexed vs naive): {:.2}x; {} decisions spot-checked identical\n",
        summary.host_wall_speedup_vs_naive, summary.identical_host_decisions
    ));
    out.push_str("cluster arms, simulated SoC cycles (deterministic; gate >= 2x):\n");
    for r in &summary.cluster {
        out.push_str(&format!(
            "  {:<14} {:<24} {} sessions  {:>6} decisions  {:>12} cycles  \
             {:>7.3} det/Mcycle  occupancy {:>4.2}  sim p99 {:>8.1} kcycles\n",
            r.arm,
            r.backend,
            r.sessions,
            r.decisions,
            r.device_cycles,
            r.detections_per_mcycle,
            r.wave_occupancy,
            r.sim_p99_kcycles
        ));
    }
    out.push_str(&format!(
        "  cluster speedup (fused waves vs serial device): {:.2}x\n",
        summary.cluster_speedup_vs_serial
    ));
    out.push_str(&format!(
        "gate sub-load ({} sessions): {:.2}x speedup, {:.3} det/Mcycle fused, sim p99 {:.1} kcycles, \
         {} decisions bit-identical across arms\n",
        summary.gate.sessions,
        summary.gate.speedup,
        summary.gate.fused_detections_per_mcycle,
        summary.gate.sim_p99_kcycles,
        summary.gate.identical_decisions
    ));
    if summary.smoke {
        out.push_str("(smoke mode: small fleet, wall-clock rows not meaningful)\n");
    }
    out
}

/// Minimal mirror of the committed `BENCH_serve.json` gate section (the
/// serde shim skips unknown fields, so this tracks only what the gate
/// compares).
#[derive(serde::Deserialize)]
struct BaselineGate {
    decisions: u64,
    fused_detections_per_mcycle: f64,
    speedup: f64,
    sim_p99_kcycles: f64,
}

/// Minimal mirror of the committed `BENCH_serve.json` document.
#[derive(serde::Deserialize)]
struct BaselineServeDoc {
    gate: BaselineGate,
}

/// Serving regression gate (wired into `scripts/verify.sh` and CI):
/// re-measures the fixed gate sub-load — both cluster arms, decision
/// streams proved bit-identical — then asserts:
///
/// 1. fused-wave throughput is **>= 2x** the serial device
///    (the PR's headline multiplexing win; measured ~4x at 4 harts);
/// 2. against the committed `BENCH_serve.json` (path overridable via
///    `KWT_SERVE_BASELINE`): the decision count matches exactly,
///    fused detections/Mcycle has not fallen **> 5 %**, and the fused
///    simulated p99 latency has not grown **> 5 %**.
///
/// Simulated cycle counts are deterministic per build, so the 5 %
/// margin only absorbs intentional, committed re-baselines — not noise.
/// Returns a skip message for step 2 when no baseline file exists
/// (fresh clones / scratch dirs); CI runs it from the repository root
/// where `BENCH_serve.json` is committed.
///
/// # Panics
///
/// Panics (failing the verify run) on any cross-arm decision mismatch,
/// a speedup below 2x, a baseline regression beyond 5 %, or an
/// unparseable baseline file.
pub fn check() -> String {
    let gate = measure_gate();
    assert!(
        gate.speedup >= 2.0,
        "multiplexed fused-wave throughput is only {:.2}x the serial device (gate: >= 2x) — \
         cross-session batching has stopped paying for itself",
        gate.speedup
    );
    let path =
        std::env::var("KWT_SERVE_BASELINE").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let baseline_line = match std::fs::read_to_string(&path) {
        Err(_) => format!(
            "baseline: skipped, no committed numbers at `{path}` \
             (run `paper bench-serve` from the repository root to create one)"
        ),
        Ok(text) => {
            let doc: BaselineServeDoc = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("cannot parse serve baseline {path}: {e}"));
            let b = doc.gate;
            assert_eq!(
                gate.decisions, b.decisions,
                "gate sub-load delivered {} decisions but the committed baseline recorded {} — \
                 the load or the streaming semantics changed; re-run `paper bench-serve` and \
                 review the diff",
                gate.decisions, b.decisions
            );
            let thr = gate.fused_detections_per_mcycle / b.fused_detections_per_mcycle - 1.0;
            assert!(
                thr >= -0.05,
                "serve throughput regression: fused arm at {:.3} det/Mcycle is {:.2}% below the \
                 committed {:.3} (gate: 5%) — investigate, or re-run `paper bench-serve` and \
                 commit the new BENCH_serve.json if intentional",
                gate.fused_detections_per_mcycle,
                -thr * 100.0,
                b.fused_detections_per_mcycle
            );
            let lat = gate.sim_p99_kcycles / b.sim_p99_kcycles - 1.0;
            assert!(
                lat <= 0.05,
                "serve latency regression: fused sim p99 at {:.1} kcycles is {:.2}% above the \
                 committed {:.1} (gate: 5%)",
                gate.sim_p99_kcycles,
                lat * 100.0,
                b.sim_p99_kcycles
            );
            format!(
                "baseline: throughput {:+.2}% (committed {:.3} det/Mcycle), sim p99 {:+.2}% \
                 (committed {:.1} kcycles), speedup committed {:.2}x",
                thr * 100.0,
                b.fused_detections_per_mcycle,
                lat * 100.0,
                b.sim_p99_kcycles,
                b.speedup
            )
        }
    };
    format!(
        "## Serve gate\n\n{} sessions multiplexed: fused waves {:.3} det/Mcycle vs serial \
         {:.3} = {:.2}x (>= 2x required); {} decisions bit-identical across arms; \
         {baseline_line}\n",
        gate.sessions,
        gate.fused_detections_per_mcycle,
        gate.serial_detections_per_mcycle,
        gate.speedup,
        gate.identical_decisions
    )
}
